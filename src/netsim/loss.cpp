#include "netsim/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::netsim {

GilbertElliott::GilbertElliott(double p_good_to_bad, double p_bad_to_good,
                               double loss_good, double loss_bad)
    : p_gb_{p_good_to_bad},
      p_bg_{p_bad_to_good},
      loss_good_{loss_good},
      loss_bad_{loss_bad} {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(p_good_to_bad) || !in01(p_bad_to_good) || !in01(loss_good) ||
      !in01(loss_bad)) {
    throw std::invalid_argument("GilbertElliott: probabilities must be in [0,1]");
  }
  if (p_bad_to_good <= 0.0) {
    throw std::invalid_argument("GilbertElliott: bad state must be escapable");
  }
}

GilbertElliott GilbertElliott::for_target_loss(double target_loss,
                                               double mean_burst_len) {
  if (target_loss < 0.0 || target_loss >= 1.0) {
    throw std::invalid_argument("for_target_loss: target must be in [0,1)");
  }
  if (mean_burst_len < 1.0) {
    throw std::invalid_argument("for_target_loss: burst length must be >= 1");
  }
  // Bad state drops everything; good state drops nothing. Stationary
  // probability of bad must equal target_loss:
  //   pi_bad = p_gb / (p_gb + p_bg) = target  with  p_bg = 1/burst.
  const double p_bg = 1.0 / mean_burst_len;
  if (target_loss == 0.0) return GilbertElliott{0.0, p_bg, 0.0, 1.0};
  const double p_gb = target_loss * p_bg / (1.0 - target_loss);
  return GilbertElliott{std::min(p_gb, 1.0), p_bg, 0.0, 1.0};
}

bool GilbertElliott::packet_lost(core::Rng& rng) {
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
}

double GilbertElliott::stationary_loss() const {
  const double denom = p_gb_ + p_bg_;
  if (denom == 0.0) return loss_good_;
  const double pi_bad = p_gb_ / denom;
  return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

double residual_loss(double raw_loss_fraction, core::Milliseconds rtt,
                     const MitigationConfig& cfg) {
  const double raw = std::clamp(raw_loss_fraction, 0.0, 1.0);
  if (!cfg.enabled) return raw;

  // FEC recovers a lost packet when the group loss stays within the
  // redundancy budget; model its survivor rate as raw * raw/(raw + k) with
  // k proportional to overhead — near-quadratic suppression at low loss,
  // ineffective once raw >> overhead.
  const double k = std::max(0.3 * cfg.fec_overhead, 1e-6);
  const double after_fec = raw * (raw / (raw + k));

  // One retransmission round fits when the RTT leaves headroom inside the
  // de-jitter budget; a retry recovers most — not all — of the residual
  // (the deadline-missed fraction survives). This RTT gate is the
  // mechanism behind the latency x loss compounding of Fig 2.
  constexpr double kRetrySurvival = 0.4;
  double residual = after_fec;
  if (rtt.ms() > 0.0 && rtt.ms() <= cfg.retransmit_budget_ms) {
    residual *= kRetrySurvival;
  }
  return std::clamp(residual, 0.0, raw);
}

double loss_impairment(double residual_loss_fraction) {
  const double r = std::clamp(residual_loss_fraction, 0.0, 1.0);
  // Concealment hides residuals below ~0.2 %; quality collapses by ~5 %.
  constexpr double kOnset = 0.002;
  constexpr double kCollapse = 0.05;
  if (r <= kOnset) return 0.0;
  const double x = std::clamp((r - kOnset) / (kCollapse - kOnset), 0.0, 1.0);
  return x * x * (3.0 - 2.0 * x);  // smoothstep
}

}  // namespace usaas::netsim
