// Packet-loss processes and the application-layer safeguards that mask them.
//
// Fig 1 (middle-left)'s headline is that loss barely moves engagement up to
// 2 % because "MS Teams is able to effectively mitigate the packet loss
// using application layer safeguards". We model both halves explicitly:
//   - GilbertElliott: the classic two-state bursty loss channel, so loss is
//     not i.i.d. (bursts are what FEC struggles with);
//   - LossMitigation: a FEC + bounded-retransmission model that converts a
//     raw network loss rate into the residual loss the media pipeline sees,
//     paying a latency/bandwidth budget. The ablation bench disables it.
#pragma once

#include <cstddef>

#include "core/rng.h"
#include "core/units.h"

namespace usaas::netsim {

/// Two-state Markov (Gilbert-Elliott) loss channel.
class GilbertElliott {
 public:
  /// p_good_to_bad / p_bad_to_good are per-packet transition probabilities;
  /// loss_good / loss_bad are per-state drop probabilities.
  GilbertElliott(double p_good_to_bad, double p_bad_to_good, double loss_good,
                 double loss_bad);

  /// Convenience: builds a channel whose stationary loss matches
  /// `target_loss` (as a fraction) with the given mean burst length.
  [[nodiscard]] static GilbertElliott for_target_loss(double target_loss,
                                                      double mean_burst_len);

  /// Simulates one packet; true = lost. Advances the channel state.
  bool packet_lost(core::Rng& rng);

  /// Stationary loss probability of the chain.
  [[nodiscard]] double stationary_loss() const;

  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  double p_gb_;
  double p_bg_;
  double loss_good_;
  double loss_bad_;
  bool bad_{false};
};

/// Application-layer loss mitigation (FEC + bounded retransmit), the
/// "safeguards" of §3.2.
struct MitigationConfig {
  /// Fraction of redundancy added by FEC (0.2 = 20 % overhead). FEC can
  /// recover isolated losses up to roughly its overhead fraction.
  double fec_overhead{0.2};
  /// How many retransmission rounds fit in the de-jitter budget. Each
  /// round needs one RTT; interactive audio tolerates ~200 ms of buffer.
  double retransmit_budget_ms{200.0};
  /// Whether mitigation is enabled at all (ablation switch).
  bool enabled{true};
};

/// Residual loss (fraction) after mitigation, given raw network loss
/// (fraction) and the path RTT. Monotone in raw loss; approximately
/// quadratic suppression at low loss (both FEC and a retransmit must fail),
/// saturating once loss swamps the redundancy.
[[nodiscard]] double residual_loss(double raw_loss_fraction,
                                   core::Milliseconds rtt,
                                   const MitigationConfig& cfg = {});

/// Effective audio/video impairment in [0, 1] as a function of residual
/// loss: concealment hides tiny residuals, quality collapses past ~2-3 %
/// residual (which is what drives the paper's ">= 3 % loss => users drop
/// off" observation).
[[nodiscard]] double loss_impairment(double residual_loss_fraction);

}  // namespace usaas::netsim
