#include "netsim/path_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::netsim {

PathModel::PathModel(NetworkConditions baseline, PathModelConfig cfg,
                     core::Rng rng)
    : baseline_{baseline}, cfg_{cfg}, rng_{rng} {
  if (cfg_.persistence < 0.0 || cfg_.persistence >= 1.0) {
    throw std::invalid_argument("PathModel: persistence must be in [0, 1)");
  }
  if (cfg_.noise_scale < 0.0) {
    throw std::invalid_argument("PathModel: negative noise scale");
  }
}

NetworkConditions PathModel::step() {
  // Episode state machine.
  if (in_episode_) {
    if (rng_.bernoulli(cfg_.episode_end_prob)) in_episode_ = false;
  } else {
    if (rng_.bernoulli(cfg_.episode_start_prob)) in_episode_ = true;
  }

  auto evolve = [&](double& state) {
    const double shock = rng_.normal(0.0, cfg_.noise_scale);
    state = 1.0 + cfg_.persistence * (state - 1.0) + shock;
    state = std::max(state, 0.05);
  };
  evolve(lat_state_);
  evolve(jit_state_);
  evolve(bw_state_);
  evolve(loss_state_);

  NetworkConditions c;
  double lat = baseline_.latency.ms() * lat_state_;
  double jit = baseline_.jitter.ms() * jit_state_;
  double bw = baseline_.bandwidth.mbps() * bw_state_;
  double loss = baseline_.loss.percent() * loss_state_;
  if (in_episode_) {
    lat *= cfg_.episode_latency_mult;
    jit *= cfg_.episode_jitter_mult;
    bw *= cfg_.episode_bw_mult;
    loss += cfg_.episode_loss_add_pct;
  }
  c.latency = core::Milliseconds{std::max(lat, 0.1)};
  c.jitter = core::Milliseconds{std::max(jit, 0.0)};
  c.bandwidth = core::Mbps{std::max(bw, 0.01)};
  c.loss = core::clamp_percent(core::Percent{loss});
  return c;
}

std::vector<NetworkConditions> simulate_path(const NetworkConditions& baseline,
                                             const PathModelConfig& cfg,
                                             std::size_t ticks,
                                             core::Rng rng) {
  PathModel model{baseline, cfg, rng};
  std::vector<NetworkConditions> out;
  out.reserve(ticks);
  for (std::size_t i = 0; i < ticks; ++i) out.push_back(model.step());
  return out;
}

}  // namespace usaas::netsim
