// The four network-condition metrics the Teams client reports every five
// seconds (§3.1): latency, packet loss, jitter, and available bandwidth.
#pragma once

#include "core/units.h"

namespace usaas::netsim {

/// Instantaneous (one 5-second sample) or session-baseline conditions.
struct NetworkConditions {
  core::Milliseconds latency{0.0};
  core::Percent loss{0.0};
  core::Milliseconds jitter{0.0};
  core::Mbps bandwidth{0.0};
};

/// The paper's per-metric "roughly constant" control windows used when one
/// metric is being swept (§3.2): latency 0-40 ms, loss 0-0.2 %, jitter
/// 0-5 ms, bandwidth 3-4 Mbps.
struct ControlWindows {
  double latency_lo_ms{0.0};
  double latency_hi_ms{40.0};
  double loss_lo_pct{0.0};
  double loss_hi_pct{0.2};
  double jitter_lo_ms{0.0};
  double jitter_hi_ms{5.0};
  double bandwidth_lo_mbps{3.0};
  double bandwidth_hi_mbps{4.0};
};

/// Which metric a sweep varies; the others stay inside ControlWindows.
enum class Metric {
  kLatency,
  kLoss,
  kJitter,
  kBandwidth,
};

[[nodiscard]] constexpr const char* to_string(Metric m) {
  switch (m) {
    case Metric::kLatency: return "latency";
    case Metric::kLoss: return "loss";
    case Metric::kJitter: return "jitter";
    case Metric::kBandwidth: return "bandwidth";
  }
  return "unknown";
}

/// Reads the given metric out of a conditions record, in its natural unit
/// (ms / % / ms / Mbps).
[[nodiscard]] constexpr double metric_value(const NetworkConditions& c,
                                            Metric m) {
  switch (m) {
    case Metric::kLatency: return c.latency.ms();
    case Metric::kLoss: return c.loss.percent();
    case Metric::kJitter: return c.jitter.ms();
    case Metric::kBandwidth: return c.bandwidth.mbps();
  }
  return 0.0;
}

/// True when every metric *other than* `swept` lies inside its control
/// window. This is the paper's confounder-control filter.
[[nodiscard]] constexpr bool others_in_control(const NetworkConditions& c,
                                               Metric swept,
                                               const ControlWindows& w = {}) {
  const bool lat_ok = c.latency.ms() >= w.latency_lo_ms &&
                      c.latency.ms() <= w.latency_hi_ms;
  const bool loss_ok = c.loss.percent() >= w.loss_lo_pct &&
                       c.loss.percent() <= w.loss_hi_pct;
  const bool jit_ok = c.jitter.ms() >= w.jitter_lo_ms &&
                      c.jitter.ms() <= w.jitter_hi_ms;
  const bool bw_ok = c.bandwidth.mbps() >= w.bandwidth_lo_mbps &&
                     c.bandwidth.mbps() <= w.bandwidth_hi_mbps;
  switch (swept) {
    case Metric::kLatency: return loss_ok && jit_ok && bw_ok;
    case Metric::kLoss: return lat_ok && jit_ok && bw_ok;
    case Metric::kJitter: return lat_ok && loss_ok && bw_ok;
    case Metric::kBandwidth: return lat_ok && loss_ok && jit_ok;
  }
  return false;
}

}  // namespace usaas::netsim
