#include "netsim/media_session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace usaas::netsim {

MediaSessionResult simulate_media_session(double duration_seconds,
                                          double raw_loss_fraction,
                                          core::Milliseconds rtt,
                                          const MediaSessionConfig& config,
                                          core::Rng& rng) {
  if (duration_seconds <= 0.0) {
    throw std::invalid_argument("simulate_media_session: non-positive duration");
  }
  if (config.fec_group_size == 0 || config.interleave_depth == 0) {
    throw std::invalid_argument("simulate_media_session: zero group/depth");
  }
  const auto total_packets = static_cast<std::size_t>(
      duration_seconds * config.packets_per_second);

  MediaSessionResult result;
  result.packets_sent = total_packets;
  if (total_packets == 0) return result;

  // 1. Channel: per-packet loss from the bursty Gilbert-Elliott chain.
  std::vector<char> lost(total_packets, 0);
  if (raw_loss_fraction > 0.0) {
    auto channel = GilbertElliott::for_target_loss(
        std::min(raw_loss_fraction, 0.99), config.mean_burst_length);
    for (std::size_t i = 0; i < total_packets; ++i) {
      if (channel.packet_lost(rng)) {
        lost[i] = 1;
        ++result.lost_raw;
      }
    }
  }

  if (!config.mitigation.enabled) {
    result.lost_residual = result.lost_raw;
    return result;
  }

  // 2. FEC with interleaving: packet i belongs to group
  //    (i / (G * D)) * D + (i % D) — D groups fill in parallel, so a burst
  //    of consecutive losses spreads across D groups.
  const std::size_t g = config.fec_group_size;
  const std::size_t d = config.interleave_depth;
  const auto repair = static_cast<std::size_t>(
      std::ceil(config.mitigation.fec_overhead * static_cast<double>(g)));
  const std::size_t span = g * d;
  const std::size_t num_groups = (total_packets + span - 1) / span * d;
  std::vector<std::size_t> group_losses(num_groups, 0);
  for (std::size_t i = 0; i < total_packets; ++i) {
    if (lost[i] == 0) continue;
    const std::size_t group = (i / span) * d + (i % d);
    ++group_losses[group];
  }
  // A group recovers all its losses when they fit the repair budget.
  for (std::size_t i = 0; i < total_packets; ++i) {
    if (lost[i] == 0) continue;
    const std::size_t group = (i / span) * d + (i % d);
    if (group_losses[group] <= repair) {
      lost[i] = 0;
      ++result.recovered_fec;
    }
  }

  // 3. One retransmission round when the RTT fits the de-jitter budget:
  //    the repair packet must survive the channel (approximated i.i.d. at
  //    the stationary rate — retransmissions are time-shifted past the
  //    burst) and land before the playout deadline.
  const bool retx_fits =
      rtt.ms() > 0.0 && rtt.ms() <= config.mitigation.retransmit_budget_ms;
  if (retx_fits) {
    // Fraction of the budget left after one RTT bounds on-time arrival.
    const double deadline_margin = std::clamp(
        1.0 - rtt.ms() / config.mitigation.retransmit_budget_ms, 0.0, 1.0);
    const double p_success = (1.0 - raw_loss_fraction) *
                             std::min(1.0, 0.25 + deadline_margin);
    for (std::size_t i = 0; i < total_packets; ++i) {
      if (lost[i] == 0) continue;
      if (rng.bernoulli(p_success)) {
        lost[i] = 0;
        ++result.recovered_retransmit;
      }
    }
  }

  for (const char l : lost) result.lost_residual += l != 0 ? 1 : 0;
  return result;
}

}  // namespace usaas::netsim
