// Access-network profiles.
//
// The Teams corpus spans whatever last miles its users sit on; to reproduce
// realistic joint distributions of (latency, loss, jitter, bandwidth) — and
// enough mass in every sweep bin of Fig 1 — we model a mixture of access
// technologies. Parameter ranges follow common published characterizations
// (FCC MBA reports for fixed broadband, LTE field studies, LEO measurement
// papers); exact values matter less than coverage of the sweep windows.
#pragma once

#include <span>
#include <string>

#include "core/rng.h"
#include "netsim/conditions.h"

namespace usaas::netsim {

enum class AccessTechnology {
  kFiber,
  kCable,
  kDsl,
  kWifiCongested,
  kLte,
  kGeoSatellite,
  kLeoSatellite,
};

/// Number of AccessTechnology enumerators (per-access bucketed storage).
inline constexpr int kNumAccessTechnologies = 7;

[[nodiscard]] const char* to_string(AccessTechnology t);

/// Distribution parameters for per-session baseline conditions on one
/// access technology. Latencies/jitter are lognormal, loss is a mixture of
/// "clean" sessions and lossy tails, bandwidth is lognormal clamped.
struct AccessProfile {
  AccessTechnology technology{AccessTechnology::kFiber};
  // lognormal(mu, sigma) of base one-way-ish latency in ms
  double latency_mu{2.5};
  double latency_sigma{0.5};
  // probability a session is "lossy"; clean sessions draw from the low
  // exponential, lossy ones from the heavy tail.
  double lossy_session_prob{0.05};
  double clean_loss_mean_pct{0.05};
  double lossy_loss_mean_pct{1.5};
  // lognormal jitter (ms)
  double jitter_mu{0.5};
  double jitter_sigma{0.6};
  // lognormal bandwidth (Mbps), clamped to [bw_floor, bw_ceil]
  double bandwidth_mu{1.2};
  double bandwidth_sigma{0.5};
  double bw_floor_mbps{0.1};
  double bw_ceil_mbps{8.0};
};

/// The built-in profile for a technology.
[[nodiscard]] AccessProfile profile_for(AccessTechnology t);

/// All technologies, with the mixture weights used by the default dataset
/// generator (enterprise US population: mostly cable/fiber, some DSL/LTE).
struct MixtureEntry {
  AccessTechnology technology;
  double weight;
};
[[nodiscard]] std::span<const MixtureEntry> default_access_mixture();

/// Draws a session-baseline NetworkConditions from a profile.
[[nodiscard]] NetworkConditions sample_session_baseline(const AccessProfile& p,
                                                        core::Rng& rng);

/// Draws the technology first (per the mixture), then the baseline.
[[nodiscard]] NetworkConditions sample_mixed_baseline(core::Rng& rng);

/// Uniform "sweep" sampler: picks the swept metric uniformly over
/// [sweep_lo, sweep_hi] and the controlled metrics uniformly inside their
/// control windows. The figure benches use this to guarantee even bin
/// occupancy across the whole swept range, exactly like a controlled study.
[[nodiscard]] NetworkConditions sample_sweep(Metric swept, double sweep_lo,
                                             double sweep_hi,
                                             const ControlWindows& windows,
                                             core::Rng& rng);

}  // namespace usaas::netsim
