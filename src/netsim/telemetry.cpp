#include "netsim/telemetry.h"

#include <stdexcept>

namespace usaas::netsim {

NetworkConditions SessionNetworkSummary::mean_conditions() const {
  NetworkConditions c;
  c.latency = core::Milliseconds{latency_ms.mean};
  c.loss = core::Percent{loss_pct.mean};
  c.jitter = core::Milliseconds{jitter_ms.mean};
  c.bandwidth = core::Mbps{bandwidth_mbps.mean};
  return c;
}

NetworkConditions SessionNetworkSummary::p95_conditions() const {
  NetworkConditions c;
  c.latency = core::Milliseconds{latency_ms.p95};
  c.loss = core::Percent{loss_pct.p95};
  c.jitter = core::Milliseconds{jitter_ms.p95};
  // For bandwidth, the damaging tail is the low one; the p95 aggregate
  // field stores the 5th percentile for bandwidth (see finalize()).
  c.bandwidth = core::Mbps{bandwidth_mbps.p95};
  return c;
}

void TelemetryCollector::record(const NetworkConditions& sample) {
  latency_.push_back(sample.latency.ms());
  loss_.push_back(sample.loss.percent());
  jitter_.push_back(sample.jitter.ms());
  bandwidth_.push_back(sample.bandwidth.mbps());
}

namespace {

MetricAggregate aggregate(const std::vector<double>& xs, double tail_q) {
  MetricAggregate a;
  a.mean = core::mean(xs);
  a.median = core::median(xs);
  a.p95 = core::quantile(xs, tail_q);
  return a;
}

}  // namespace

SessionNetworkSummary TelemetryCollector::finalize() const {
  if (latency_.empty()) {
    throw std::logic_error("TelemetryCollector::finalize: no samples");
  }
  SessionNetworkSummary s;
  s.latency_ms = aggregate(latency_, 0.95);
  s.loss_pct = aggregate(loss_, 0.95);
  s.jitter_ms = aggregate(jitter_, 0.95);
  // Bandwidth's harmful tail is the low side: store P5 in the tail slot.
  s.bandwidth_mbps = aggregate(bandwidth_, 0.05);
  s.sample_count = latency_.size();
  s.duration_seconds =
      static_cast<double>(latency_.size()) * kSampleIntervalSeconds;
  return s;
}

SessionNetworkSummary summarize_path(
    const std::vector<NetworkConditions>& samples) {
  TelemetryCollector c;
  for (const auto& s : samples) c.record(s);
  return c.finalize();
}

}  // namespace usaas::netsim
