// Temporal evolution of a session's network conditions.
//
// The client samples every 5 seconds (§3.1); real paths are autocorrelated
// (congestion epochs, Wi-Fi fades), so consecutive samples are not i.i.d.
// PathModel evolves each metric as a mean-reverting AR(1) process around
// the session baseline, with occasional multiplicative "episodes" (a
// congestion burst raising latency+jitter+loss together, the cross-metric
// correlation Fig 2 exploits).
#pragma once

#include <vector>

#include "core/rng.h"
#include "netsim/conditions.h"

namespace usaas::netsim {

struct PathModelConfig {
  /// AR(1) persistence per 5-second step, in [0, 1).
  double persistence{0.85};
  /// Relative noise scale of each step (fraction of baseline).
  double noise_scale{0.12};
  /// Per-step probability a congestion episode starts / ends.
  double episode_start_prob{0.01};
  double episode_end_prob{0.25};
  /// Multipliers applied during an episode.
  double episode_latency_mult{2.0};
  double episode_loss_add_pct{0.8};
  double episode_jitter_mult{2.5};
  double episode_bw_mult{0.5};
};

/// Stateful per-session path simulator. Construct once per session, call
/// step() once per 5-second tick.
class PathModel {
 public:
  PathModel(NetworkConditions baseline, PathModelConfig cfg, core::Rng rng);

  /// Advances one tick and returns the instantaneous conditions.
  NetworkConditions step();

  [[nodiscard]] const NetworkConditions& baseline() const { return baseline_; }
  [[nodiscard]] bool in_episode() const { return in_episode_; }

 private:
  NetworkConditions baseline_;
  PathModelConfig cfg_;
  core::Rng rng_;
  // AR(1) state as deviation factors around 1.0.
  double lat_state_{1.0};
  double jit_state_{1.0};
  double bw_state_{1.0};
  double loss_state_{1.0};
  bool in_episode_{false};
};

/// Convenience: runs a PathModel for `ticks` steps and returns the samples.
[[nodiscard]] std::vector<NetworkConditions> simulate_path(
    const NetworkConditions& baseline, const PathModelConfig& cfg,
    std::size_t ticks, core::Rng rng);

}  // namespace usaas::netsim
