// Packet-level media-session simulation.
//
// The behaviour model consumes the *analytic* residual-loss formula in
// netsim/loss.h. This module is its ground truth: it simulates an actual
// media stream packet by packet — bursty Gilbert-Elliott losses, block FEC
// with interleaving, and one deadline-bounded retransmission round — and
// reports what actually survived. A property test checks the analytic
// model tracks this simulation across the (loss, RTT) grid, so the Fig 1/2
// results do not rest on an unverified closed form.
#pragma once

#include <cstddef>

#include "core/rng.h"
#include "core/units.h"
#include "netsim/loss.h"

namespace usaas::netsim {

struct MediaSessionConfig {
  /// Media packet rate (50 pps = one 20 ms audio frame per packet).
  double packets_per_second{50.0};
  /// FEC block: data packets per group; redundancy derives from the
  /// MitigationConfig's fec_overhead (ceil(group * overhead) repair
  /// packets, recovering up to that many losses per group).
  std::size_t fec_group_size{10};
  /// Interleaving depth: consecutive packets are spread across this many
  /// FEC groups, de-bursting the Gilbert-Elliott channel. Depth 1 = none.
  std::size_t interleave_depth{4};
  /// Mean burst length of the loss channel (packets).
  double mean_burst_length{3.0};
  MitigationConfig mitigation{};
};

struct MediaSessionResult {
  std::size_t packets_sent{0};
  std::size_t lost_raw{0};
  std::size_t recovered_fec{0};
  std::size_t recovered_retransmit{0};
  std::size_t lost_residual{0};

  [[nodiscard]] double raw_loss_rate() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(lost_raw) / packets_sent;
  }
  [[nodiscard]] double residual_loss_rate() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(lost_residual) / packets_sent;
  }
};

/// Simulates `duration_seconds` of a media stream over a channel with the
/// given stationary loss (fraction) and path RTT.
[[nodiscard]] MediaSessionResult simulate_media_session(
    double duration_seconds, double raw_loss_fraction, core::Milliseconds rtt,
    const MediaSessionConfig& config, core::Rng& rng);

}  // namespace usaas::netsim
