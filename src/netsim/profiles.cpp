#include "netsim/profiles.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace usaas::netsim {

const char* to_string(AccessTechnology t) {
  switch (t) {
    case AccessTechnology::kFiber: return "fiber";
    case AccessTechnology::kCable: return "cable";
    case AccessTechnology::kDsl: return "dsl";
    case AccessTechnology::kWifiCongested: return "wifi-congested";
    case AccessTechnology::kLte: return "lte";
    case AccessTechnology::kGeoSatellite: return "geo-satellite";
    case AccessTechnology::kLeoSatellite: return "leo-satellite";
  }
  return "unknown";
}

AccessProfile profile_for(AccessTechnology t) {
  AccessProfile p;
  p.technology = t;
  switch (t) {
    case AccessTechnology::kFiber:
      p.latency_mu = 2.3;   // ~10 ms median
      p.latency_sigma = 0.45;
      p.lossy_session_prob = 0.02;
      p.clean_loss_mean_pct = 0.02;
      p.lossy_loss_mean_pct = 0.8;
      p.jitter_mu = 0.2;
      p.jitter_sigma = 0.5;
      p.bandwidth_mu = 1.35;  // ~3.9 Mbps median available to the call
      p.bandwidth_sigma = 0.35;
      break;
    case AccessTechnology::kCable:
      p.latency_mu = 3.0;   // ~20 ms median
      p.latency_sigma = 0.55;
      p.lossy_session_prob = 0.06;
      p.clean_loss_mean_pct = 0.05;
      p.lossy_loss_mean_pct = 1.2;
      p.jitter_mu = 0.8;
      p.jitter_sigma = 0.6;
      p.bandwidth_mu = 1.25;
      p.bandwidth_sigma = 0.45;
      break;
    case AccessTechnology::kDsl:
      p.latency_mu = 3.6;   // ~36 ms median
      p.latency_sigma = 0.5;
      p.lossy_session_prob = 0.10;
      p.clean_loss_mean_pct = 0.08;
      p.lossy_loss_mean_pct = 1.6;
      p.jitter_mu = 1.2;
      p.jitter_sigma = 0.6;
      p.bandwidth_mu = 0.7;
      p.bandwidth_sigma = 0.5;
      break;
    case AccessTechnology::kWifiCongested:
      p.latency_mu = 4.0;   // ~55 ms median with big tail
      p.latency_sigma = 0.8;
      p.lossy_session_prob = 0.2;
      p.clean_loss_mean_pct = 0.1;
      p.lossy_loss_mean_pct = 2.0;
      p.jitter_mu = 1.8;
      p.jitter_sigma = 0.7;
      p.bandwidth_mu = 1.0;
      p.bandwidth_sigma = 0.6;
      break;
    case AccessTechnology::kLte:
      p.latency_mu = 4.1;   // ~60 ms median
      p.latency_sigma = 0.6;
      p.lossy_session_prob = 0.15;
      p.clean_loss_mean_pct = 0.1;
      p.lossy_loss_mean_pct = 1.8;
      p.jitter_mu = 2.0;
      p.jitter_sigma = 0.6;
      p.bandwidth_mu = 1.1;
      p.bandwidth_sigma = 0.55;
      break;
    case AccessTechnology::kGeoSatellite:
      p.latency_mu = 6.3;   // ~550 ms median (GEO round trip)
      p.latency_sigma = 0.15;
      p.lossy_session_prob = 0.15;
      p.clean_loss_mean_pct = 0.1;
      p.lossy_loss_mean_pct = 1.5;
      p.jitter_mu = 2.3;
      p.jitter_sigma = 0.5;
      p.bandwidth_mu = 0.9;
      p.bandwidth_sigma = 0.5;
      break;
    case AccessTechnology::kLeoSatellite:
      p.latency_mu = 3.7;   // ~40 ms median
      p.latency_sigma = 0.45;
      p.lossy_session_prob = 0.18;
      p.clean_loss_mean_pct = 0.12;
      p.lossy_loss_mean_pct = 1.8;
      p.jitter_mu = 2.2;    // LEO handovers: jittery
      p.jitter_sigma = 0.55;
      p.bandwidth_mu = 1.2;
      p.bandwidth_sigma = 0.6;
      break;
  }
  return p;
}

std::span<const MixtureEntry> default_access_mixture() {
  static constexpr std::array<MixtureEntry, 7> kMixture = {{
      {AccessTechnology::kFiber, 0.22},
      {AccessTechnology::kCable, 0.38},
      {AccessTechnology::kDsl, 0.10},
      {AccessTechnology::kWifiCongested, 0.12},
      {AccessTechnology::kLte, 0.13},
      {AccessTechnology::kGeoSatellite, 0.02},
      {AccessTechnology::kLeoSatellite, 0.03},
  }};
  return kMixture;
}

NetworkConditions sample_session_baseline(const AccessProfile& p,
                                          core::Rng& rng) {
  NetworkConditions c;
  c.latency = core::Milliseconds{rng.lognormal(p.latency_mu, p.latency_sigma)};
  const bool lossy = rng.bernoulli(p.lossy_session_prob);
  const double loss_mean =
      lossy ? p.lossy_loss_mean_pct : p.clean_loss_mean_pct;
  c.loss = core::clamp_percent(
      core::Percent{rng.exponential(1.0 / loss_mean)});
  c.jitter = core::Milliseconds{rng.lognormal(p.jitter_mu, p.jitter_sigma)};
  const double bw = std::clamp(rng.lognormal(p.bandwidth_mu, p.bandwidth_sigma),
                               p.bw_floor_mbps, p.bw_ceil_mbps);
  c.bandwidth = core::Mbps{bw};
  return c;
}

NetworkConditions sample_mixed_baseline(core::Rng& rng) {
  const auto mixture = default_access_mixture();
  std::array<double, 7> weights{};
  for (std::size_t i = 0; i < mixture.size(); ++i) weights[i] = mixture[i].weight;
  const std::size_t idx = rng.weighted_index(weights);
  return sample_session_baseline(profile_for(mixture[idx].technology), rng);
}

NetworkConditions sample_sweep(Metric swept, double sweep_lo, double sweep_hi,
                               const ControlWindows& w, core::Rng& rng) {
  if (sweep_lo > sweep_hi) {
    throw std::invalid_argument("sample_sweep: lo > hi");
  }
  NetworkConditions c;
  c.latency =
      core::Milliseconds{rng.uniform(w.latency_lo_ms, w.latency_hi_ms)};
  c.loss = core::Percent{rng.uniform(w.loss_lo_pct, w.loss_hi_pct)};
  c.jitter = core::Milliseconds{rng.uniform(w.jitter_lo_ms, w.jitter_hi_ms)};
  c.bandwidth =
      core::Mbps{rng.uniform(w.bandwidth_lo_mbps, w.bandwidth_hi_mbps)};
  const double v = rng.uniform(sweep_lo, sweep_hi);
  switch (swept) {
    case Metric::kLatency: c.latency = core::Milliseconds{v}; break;
    case Metric::kLoss: c.loss = core::Percent{v}; break;
    case Metric::kJitter: c.jitter = core::Milliseconds{v}; break;
    case Metric::kBandwidth: c.bandwidth = core::Mbps{v}; break;
  }
  return c;
}

}  // namespace usaas::netsim
