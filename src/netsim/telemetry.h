// Client-side telemetry: the 5-second sampler and the session-end
// aggregation the paper describes verbatim in §3.1:
//
//   "The client running on the user-end of MS Teams gathers network
//    latency, packet loss percent, jitter, and available bandwidth
//    information every 5 seconds. When the user session ends, each client
//    computes the mean, median, and 95th percentile (P95) value for each
//    of these metrics per session."
#pragma once

#include <cstddef>
#include <vector>

#include "core/stats.h"
#include "core/units.h"
#include "netsim/conditions.h"

namespace usaas::netsim {

/// The interval between telemetry samples.
inline constexpr double kSampleIntervalSeconds = 5.0;

/// Per-session aggregate of one metric: mean / median / P95.
struct MetricAggregate {
  double mean{0.0};
  double median{0.0};
  double p95{0.0};
};

/// The session-end report a client uploads: one aggregate per metric plus
/// the session duration.
struct SessionNetworkSummary {
  MetricAggregate latency_ms;
  MetricAggregate loss_pct;
  MetricAggregate jitter_ms;
  MetricAggregate bandwidth_mbps;
  double duration_seconds{0.0};
  std::size_t sample_count{0};

  /// Session-mean conditions as a NetworkConditions record (the paper
  /// reports results using means; "similar trends hold for P95").
  [[nodiscard]] NetworkConditions mean_conditions() const;
  /// Same, using P95 per metric (P5 for bandwidth — the tail that hurts
  /// is the *low* bandwidth tail).
  [[nodiscard]] NetworkConditions p95_conditions() const;
};

/// Accumulates 5-second samples during a session and produces the summary
/// at session end. Buffers samples because median/P95 need the full set —
/// exactly what a real client does for a bounded-length call.
class TelemetryCollector {
 public:
  void record(const NetworkConditions& sample);

  [[nodiscard]] std::size_t sample_count() const { return latency_.size(); }
  [[nodiscard]] bool empty() const { return latency_.empty(); }

  /// Finalizes the session. Throws std::logic_error when no samples were
  /// recorded (a zero-length session uploads nothing).
  [[nodiscard]] SessionNetworkSummary finalize() const;

 private:
  std::vector<double> latency_;
  std::vector<double> loss_;
  std::vector<double> jitter_;
  std::vector<double> bandwidth_;
};

/// Aggregates a pre-simulated path (vector of samples) directly.
[[nodiscard]] SessionNetworkSummary summarize_path(
    const std::vector<NetworkConditions>& samples);

}  // namespace usaas::netsim
