// Speed-test screenshot rendering.
//
// §4.2 gathers "screenshots (or links to them) of network performance test
// reports ... across test providers like Ookla, Fast (powered by Netflix),
// Starlink itself, and others" and extracts the numbers with Azure OCR.
// Our substitute renders a test result into the text layout each provider
// uses (the 'pixels' OCR would read), so the extraction pipeline faces the
// same provider-specific formats, units, and ambiguity the paper's did.
#pragma once

#include <string>

namespace usaas::ocr {

enum class Provider {
  kOokla,
  kFast,
  kStarlinkApp,
  kMlab,
};

inline constexpr int kNumProviders = 4;

[[nodiscard]] const char* to_string(Provider p);

/// The true measurement behind a screenshot.
struct TestResult {
  Provider provider{Provider::kOokla};
  double download_mbps{0.0};
  double upload_mbps{0.0};
  double latency_ms{0.0};
  /// Server / ISP caption; Starlink tests show "Starlink".
  std::string isp{"Starlink"};
};

/// Renders the provider-specific text layout (what OCR will read).
/// Multi-line, '\n'-separated, matching each provider's labels and units:
/// Ookla prints "DOWNLOAD Mbps / 123.45", Fast prints a big bare number
/// with "Mbps" underneath, the Starlink app prints "Download 123 Mbps".
[[nodiscard]] std::string render_screenshot(const TestResult& result);

}  // namespace usaas::ocr
