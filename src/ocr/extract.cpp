#include "ocr/extract.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <string>
#include <vector>

#include "nlp/tokenizer.h"

namespace usaas::ocr {

namespace {

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  const std::string h = nlp::to_lower(haystack);
  return h.find(nlp::to_lower(needle)) != std::string::npos;
}

std::optional<double> parse_number(std::string_view token) {
  const std::string repaired = ReportExtractor::repair_numeric(token);
  if (repaired.empty()) return std::nullopt;
  double value = 0.0;
  const auto* begin = repaired.data();
  const auto* end = repaired.data() + repaired.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// First parseable number on a line (after confusion repair).
std::optional<double> first_number(std::string_view line) {
  std::string token;
  auto is_numeric_char = [](char c) {
    return (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '.' ||
           c == ',' || c == 'O' || c == 'o' || c == 'l' || c == 'I' ||
           c == 'S' || c == 'B' || c == 'Z' || c == 'g' || c == 'b';
  };
  for (std::size_t i = 0; i <= line.size(); ++i) {
    const bool boundary = i == line.size() || !is_numeric_char(line[i]);
    if (!boundary) {
      token.push_back(line[i]);
      continue;
    }
    if (!token.empty()) {
      // A candidate must contain at least one true digit; otherwise label
      // letters like the O in "DOWNLOAD" would read as numbers.
      const bool has_true_digit = std::any_of(
          token.begin(), token.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c)) != 0;
          });
      if (has_true_digit) {
        if (const auto v = parse_number(token)) return v;
      }
      token.clear();
    }
  }
  return std::nullopt;
}

/// Number on this line, or on the following line (Ookla's label-then-value
/// layout).
std::optional<double> number_near(const std::vector<std::string>& lines,
                                  std::size_t i) {
  if (const auto v = first_number(lines[i])) return v;
  if (i + 1 < lines.size()) return first_number(lines[i + 1]);
  return std::nullopt;
}

}  // namespace

std::string ReportExtractor::repair_numeric(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  bool has_digit = false;
  bool seen_dot = false;
  for (const char c : token) {
    char r = c;
    switch (c) {
      case 'O': case 'o': r = '0'; break;
      case 'l': case 'I': r = '1'; break;
      case 'S': case 's': r = '5'; break;
      case 'B': r = '8'; break;
      case 'b': r = '6'; break;
      case 'Z': case 'z': r = '2'; break;
      case 'g': r = '9'; break;
      case ',': r = '.'; break;
      default: break;
    }
    if (r == '.') {
      if (seen_dot) return {};  // two separators: unrecoverable
      seen_dot = true;
      out.push_back(r);
    } else if (std::isdigit(static_cast<unsigned char>(r)) != 0) {
      has_digit = true;
      out.push_back(r);
    } else {
      return {};  // non-numeric residue
    }
  }
  if (!has_digit) return {};
  if (!out.empty() && out.back() == '.') out.pop_back();
  if (!out.empty() && out.front() == '.') out.insert(out.begin(), '0');
  return out;
}

std::optional<SpeedtestReport> ReportExtractor::extract(
    std::string_view ocr_text, ExtractionStats* stats) const {
  if (stats != nullptr) ++stats->attempted;
  const auto lines = split_lines(ocr_text);

  // Provider recognition by layout cues.
  std::optional<Provider> provider;
  for (const auto& line : lines) {
    if (contains_ci(line, "speedtest")) provider = Provider::kOokla;
    if (contains_ci(line, "fast.com")) provider = Provider::kFast;
    if (contains_ci(line, "starlink") && contains_ci(ocr_text, "speed test")) {
      provider = Provider::kStarlinkApp;
    }
    if (contains_ci(line, "m-lab") || contains_ci(line, "mlab")) {
      provider = Provider::kMlab;
    }
    if (provider) break;
  }
  if (!provider) {
    if (stats != nullptr) ++stats->provider_unrecognized;
    return std::nullopt;
  }

  SpeedtestReport report;
  report.provider = *provider;

  // Field extraction: label-anchored, tolerant of the value being on the
  // label line or the next line.
  std::optional<double> down;
  std::optional<double> up;
  std::optional<double> lat;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& line = lines[i];
    if (!down && contains_ci(line, "download")) down = number_near(lines, i);
    if (!up && contains_ci(line, "upload")) up = number_near(lines, i);
    if (!lat && (contains_ci(line, "ping") || contains_ci(line, "latency") ||
                 contains_ci(line, "round-trip"))) {
      lat = number_near(lines, i);
    }
  }
  // Fast.com: the headline number is the first line, bare.
  if (!down && *provider == Provider::kFast && !lines.empty()) {
    down = first_number(lines.front());
  }

  if (!down) {
    if (stats != nullptr) ++stats->download_missing;
    return std::nullopt;
  }
  if (*down < kMinPlausibleDown || *down > kMaxPlausibleDown) {
    if (stats != nullptr) ++stats->implausible;
    return std::nullopt;
  }
  report.download_mbps = *down;
  report.upload_mbps = up;
  report.latency_ms = lat;
  if (stats != nullptr) ++stats->extracted;
  return report;
}

}  // namespace usaas::ocr
