// Field extraction from OCR'd speed-test screenshots.
//
// The inverse of render + noise: recognize the provider from layout cues,
// normalize OCR confusions inside numeric fields, and pull out
// (download, upload, latency). Extraction fails when the numbers are
// unrecoverable — those reports are dropped from Fig 7, just as the
// paper's pipeline only identified ~1750 usable reports.
#pragma once

#include <optional>
#include <string_view>

#include "ocr/screenshot.h"

namespace usaas::ocr {

/// A successfully extracted report.
struct SpeedtestReport {
  Provider provider{Provider::kOokla};
  double download_mbps{0.0};
  std::optional<double> upload_mbps;
  std::optional<double> latency_ms;
};

/// Running tally of extraction outcomes (reported by the Fig 7 bench).
struct ExtractionStats {
  std::size_t attempted{0};
  std::size_t extracted{0};
  std::size_t provider_unrecognized{0};
  std::size_t download_missing{0};
  std::size_t implausible{0};

  [[nodiscard]] double success_rate() const {
    return attempted == 0
               ? 0.0
               : static_cast<double>(extracted) / static_cast<double>(attempted);
  }
};

class ReportExtractor {
 public:
  /// Extracts from OCR'd text; nullopt when no usable download figure can
  /// be recovered. Updates `stats` when provided.
  [[nodiscard]] std::optional<SpeedtestReport> extract(
      std::string_view ocr_text, ExtractionStats* stats = nullptr) const;

  /// Repairs common digit confusions in a numeric token ("1O3,5" ->
  /// "103.5"); exposed for tests.
  [[nodiscard]] static std::string repair_numeric(std::string_view token);

  /// Plausibility window for Starlink-era downlink numbers (Mbps).
  static constexpr double kMinPlausibleDown = 0.1;
  static constexpr double kMaxPlausibleDown = 500.0;
};

}  // namespace usaas::ocr
