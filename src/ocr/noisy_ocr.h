// The noisy OCR channel.
//
// Real OCR over phone screenshots misreads characters (0<->O, 1<->l,
// 5<->S, 8<->B, .<->,) and drops thin glyphs entirely — JPEG artifacts,
// dark-mode themes, cropped edges. NoisyOcr corrupts rendered screenshot
// text with exactly those confusions so the extractor downstream must be
// (and is) tolerant, and so a realistic fraction of the paper's ~1750
// reports fails extraction.
#pragma once

#include <string>
#include <string_view>

#include "core/rng.h"

namespace usaas::ocr {

struct OcrNoiseParams {
  /// Per-character probability of a confusion substitution.
  double confusion_rate{0.012};
  /// Per-character probability of dropping the character.
  double drop_rate{0.004};
  /// Probability an entire line is lost (cropped / covered by UI chrome).
  double line_loss_rate{0.01};
};

class NoisyOcr {
 public:
  explicit NoisyOcr(OcrNoiseParams params = {});

  /// Passes `rendered` through the OCR channel.
  [[nodiscard]] std::string read(std::string_view rendered,
                                 core::Rng& rng) const;

  /// The canonical confusion for a character (identity when none).
  [[nodiscard]] static char confuse(char c);

 private:
  OcrNoiseParams params_;
};

}  // namespace usaas::ocr
