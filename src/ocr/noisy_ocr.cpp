#include "ocr/noisy_ocr.h"

namespace usaas::ocr {

NoisyOcr::NoisyOcr(OcrNoiseParams params) : params_{params} {}

char NoisyOcr::confuse(char c) {
  switch (c) {
    case '0': return 'O';
    case 'O': return '0';
    case '1': return 'l';
    case 'l': return '1';
    case '5': return 'S';
    case 'S': return '5';
    case '8': return 'B';
    case 'B': return '8';
    case '6': return 'b';
    case 'b': return '6';
    case '.': return ',';
    case ',': return '.';
    case '2': return 'Z';
    case 'Z': return '2';
    case 'g': return '9';
    case '9': return 'g';
    default: return c;
  }
}

std::string NoisyOcr::read(std::string_view rendered, core::Rng& rng) const {
  std::string out;
  out.reserve(rendered.size());
  bool dropping_line = false;
  for (const char c : rendered) {
    if (c == '\n') {
      dropping_line = false;
      out.push_back(c);
      // Decide the fate of the upcoming line.
      if (rng.bernoulli(params_.line_loss_rate)) dropping_line = true;
      continue;
    }
    if (dropping_line) continue;
    if (rng.bernoulli(params_.drop_rate)) continue;
    if (rng.bernoulli(params_.confusion_rate)) {
      out.push_back(confuse(c));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace usaas::ocr
