#include "ocr/screenshot.h"

#include <cstdio>

namespace usaas::ocr {

const char* to_string(Provider p) {
  switch (p) {
    case Provider::kOokla: return "ookla";
    case Provider::kFast: return "fast";
    case Provider::kStarlinkApp: return "starlink-app";
    case Provider::kMlab: return "mlab";
  }
  return "unknown";
}

namespace {

std::string fmt(const char* pattern, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

}  // namespace

std::string render_screenshot(const TestResult& r) {
  switch (r.provider) {
    case Provider::kOokla:
      return "SPEEDTEST\n"
             "DOWNLOAD Mbps\n" +
             fmt("%.2f", r.download_mbps) +
             "\nUPLOAD Mbps\n" +
             fmt("%.2f", r.upload_mbps) +
             "\nPing ms\n" +
             fmt("%.0f", r.latency_ms) +
             "\nConnections  Multi\n" + r.isp + "\n";
    case Provider::kFast:
      return fmt("%.0f", r.download_mbps) +
             "\nMbps\n"
             "Your internet speed\n"
             "Latency: " + fmt("%.0f", r.latency_ms) + " ms\n" +
             "Upload: " + fmt("%.1f", r.upload_mbps) + " Mbps\n" +
             "FAST.com\n";
    case Provider::kStarlinkApp:
      return "STARLINK\n"
             "SPEED TEST\n"
             "Download " + fmt("%.0f", r.download_mbps) + " Mbps\n" +
             "Upload " + fmt("%.0f", r.upload_mbps) + " Mbps\n" +
             "Latency " + fmt("%.0f", r.latency_ms) + " ms\n";
    case Provider::kMlab:
      return "M-Lab Speed Test\n"
             "Download: " + fmt("%.1f", r.download_mbps) + " Mb/s\n" +
             "Upload: " + fmt("%.1f", r.upload_mbps) + " Mb/s\n" +
             "Round-trip time: " + fmt("%.0f", r.latency_ms) + " ms\n";
  }
  return "";
}

}  // namespace usaas::ocr
