// The ISP bridge: conferencing sessions whose network conditions follow
// an ISP's actual state.
//
// §5's flagship example: "If SpaceX Starlink ... wants to understand how
// users on their network are perceiving the MS Teams experience, USaaS
// could filter online user actions and MOS on MS Teams pertaining to
// Starlink and the offline feedback on the same on social media ... User
// actions could be used to corroborate the user posts on social media."
//
// IspCoupledCallGenerator produces calls whose participants ride the LEO
// substrate: per-day conditions derive from the SpeedModel (congestion ->
// lower available bandwidth, higher latency) and the OutageModel (affected
// users see severe loss or fail to stay in the call). corroborate() then
// lines the implicit daily series up against the social side.
#pragma once

#include <cstdint>
#include <vector>

#include "confsim/behavior.h"
#include "confsim/call.h"
#include "confsim/mos.h"
#include "core/timeseries.h"
#include "leo/outages.h"
#include "leo/speed.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "social/post.h"

namespace usaas::service {

struct IspCallConfig {
  std::uint64_t seed{2022};
  core::Date first_day{2022, 1, 1};
  core::Date last_day{2022, 12, 31};
  /// Calls with at least one Starlink participant per day.
  double calls_per_day{40.0};
  /// Meeting sizes as in the enterprise corpus.
  double mean_extra_participants{3.0};
  int max_participants{25};
  confsim::BehaviorParams behavior{confsim::default_behavior_params()};
  netsim::MitigationConfig mitigation{};
  confsim::MosModelParams mos{};
  /// Fraction of the subscriber's downlink available to the call.
  double call_bandwidth_share{0.06};
};

/// Generates ISP-coupled calls: every participant is a subscriber of the
/// modeled ISP; conditions follow the constellation's congestion state and
/// outage process day by day.
class IspCoupledCallGenerator {
 public:
  IspCoupledCallGenerator(leo::SpeedModel speed_model,
                          leo::OutageModel outage_model, IspCallConfig config);

  [[nodiscard]] std::vector<confsim::CallRecord> generate() const;

 private:
  [[nodiscard]] netsim::NetworkConditions conditions_for(
      const core::Date& d, core::Rng& rng) const;

  leo::SpeedModel speed_model_;
  leo::OutageModel outage_model_;
  IspCallConfig config_;
  confsim::UserBehaviorModel behavior_model_;
  confsim::MosModel mos_model_;
};

/// One day classified by which side saw trouble.
enum class DayClass {
  kQuiet,
  kCorroborated,   // both implicit and social sides spiked
  kSocialOnly,     // posts complained, calls looked fine
  kImplicitOnly,   // calls degraded, subreddit quiet
};

[[nodiscard]] const char* to_string(DayClass c);

struct CorroborationReport {
  core::Date first;
  core::Date last;
  /// Daily implicit distress: early-drop-off rate of the ISP's sessions.
  core::DailySeries implicit_dropoff;
  /// Daily explicit distress: outage-keyword count in negative threads.
  core::DailySeries social_keywords;
  /// Pearson correlation between the two daily series.
  double correlation{0.0};
  std::vector<core::Date> corroborated_days;
  std::vector<core::Date> social_only_days;
  std::vector<core::Date> implicit_only_days;

  CorroborationReport(core::Date f, core::Date l)
      : first{f}, last{l}, implicit_dropoff{f, l}, social_keywords{f, l} {}
};

struct CorroborationConfig {
  /// A day is an implicit spike when its drop-off rate exceeds
  /// mean + k * stddev of the series (and a floor).
  double implicit_z{3.0};
  double implicit_min_rate{0.05};
  /// Social spike thresholding, same scheme on keyword counts.
  double social_z{3.0};
  double social_min_count{8.0};
};

/// Lines up the implicit side (ISP-coupled calls) with the explicit side
/// (the subreddit) and classifies each day.
[[nodiscard]] CorroborationReport corroborate(
    std::span<const confsim::CallRecord> calls,
    std::span<const social::Post> posts, core::Date first, core::Date last,
    const nlp::SentimentAnalyzer& analyzer,
    const CorroborationConfig& config = {});

}  // namespace usaas::service
