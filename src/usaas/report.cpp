#include "usaas/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/rng.h"
#include "core/stats.h"
#include "nlp/keywords.h"
#include "nlp/summarizer.h"
#include "ocr/extract.h"
#include "ocr/noisy_ocr.h"

namespace usaas::service {

namespace {

struct WeekTally {
  std::size_t posts{0};
  std::size_t strong_pos{0};
  std::size_t strong_neg{0};

  [[nodiscard]] std::optional<double> pos_share() const {
    const auto total = strong_pos + strong_neg;
    if (total == 0) return std::nullopt;
    return static_cast<double>(strong_pos) / static_cast<double>(total);
  }
};

}  // namespace

WeeklyReport generate_weekly_report(std::span<const social::Post> corpus,
                                    core::Date week_start,
                                    const nlp::SentimentAnalyzer& analyzer,
                                    const ReportConfig& config) {
  WeeklyReport report;
  report.week_start = week_start;
  report.week_end = week_start.plus_days(6);
  const core::Date prev_start = week_start.plus_days(-7);

  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  const ocr::NoisyOcr channel;
  const ocr::ReportExtractor extractor;
  core::Rng ocr_rng{config.ocr_seed};

  WeekTally this_week;
  WeekTally prev_week;
  std::map<std::int64_t, double> keyword_by_day;
  std::map<std::int64_t, std::size_t> posts_by_day;
  std::vector<double> downlinks;
  nlp::TrendMiner miner{config.trend};  // fed with the corpus up to week end

  for (const social::Post& post : corpus) {
    if (post.date > report.week_end) continue;
    miner.add_document({post.date, post.full_text(), post.popularity()});

    const bool in_week =
        week_start <= post.date && post.date <= report.week_end;
    const bool in_prev = prev_start <= post.date && post.date < week_start;
    if (!in_week && !in_prev) continue;

    const auto scores = analyzer.score(post.full_text());
    WeekTally& tally = in_week ? this_week : prev_week;
    ++tally.posts;
    if (scores.strong_positive()) ++tally.strong_pos;
    if (scores.strong_negative()) ++tally.strong_neg;

    if (!in_week) continue;
    ++posts_by_day[post.date.days_since_epoch()];
    const auto hits = dict.count_occurrences(post.full_text());
    if (hits > 0 && scores.negative >= 0.4) {
      keyword_by_day[post.date.days_since_epoch()] +=
          static_cast<double>(hits);
      report.outage_keyword_count += static_cast<double>(hits);
    }
    if (post.screenshot) {
      ++report.speedtest_reports;
      if (const auto extracted =
              extractor.extract(channel.read(*post.screenshot, ocr_rng))) {
        downlinks.push_back(extracted->download_mbps);
      }
    }
  }

  report.posts = this_week.posts;
  report.strong_positive = this_week.strong_pos;
  report.strong_negative = this_week.strong_neg;
  report.pos_share = this_week.pos_share();
  const auto prev_share = prev_week.pos_share();
  if (report.pos_share && prev_share) {
    report.pos_share_delta = *report.pos_share - *prev_share;
  }

  // Alert days: keyword count far above the week's own baseline.
  const double daily_mean = report.outage_keyword_count / 7.0;
  for (const auto& [day, count] : keyword_by_day) {
    if (count >= config.alert_min_count &&
        count > config.alert_multiple * daily_mean) {
      report.alert_days.push_back(core::Date::from_days_since_epoch(day));
    }
  }

  if (!downlinks.empty()) {
    report.median_downlink_mbps = core::median(downlinks);
  }

  // Emerging topics whose first detection falls inside the week.
  for (const auto& topic : miner.detect()) {
    if (topic.first_detected < week_start ||
        report.week_end < topic.first_detected) {
      continue;
    }
    if (report.emerging_topics.size() >= config.max_emerging_topics) break;
    report.emerging_topics.push_back(topic.term);
  }

  // Loudest day summary.
  std::int64_t loudest = week_start.days_since_epoch();
  std::size_t loudest_count = 0;
  for (const auto& [day, count] : posts_by_day) {
    if (count > loudest_count) {
      loudest = day;
      loudest_count = count;
    }
  }
  report.loudest_day = core::Date::from_days_since_epoch(loudest);
  std::vector<std::string> loudest_docs;
  for (const social::Post& post : corpus) {
    if (post.date == report.loudest_day) {
      loudest_docs.push_back(post.full_text());
    }
  }
  report.loudest_day_summary =
      nlp::Summarizer{}.summarize_to_text(loudest_docs);
  return report;
}

std::string WeeklyReport::render_text() const {
  std::string out;
  char buf[256];
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  add("USaaS weekly report %s .. %s\n", week_start.to_string().c_str(),
      week_end.to_string().c_str());
  add("  posts: %zu (strong +%zu / -%zu)\n", posts, strong_positive,
      strong_negative);
  if (pos_share) {
    add("  sentiment balance: %.0f%% positive", 100.0 * *pos_share);
    if (pos_share_delta) {
      add(" (%+.0f pp week-over-week)", 100.0 * *pos_share_delta);
    }
    out += '\n';
  }
  add("  outage chatter: %.0f keyword mentions", outage_keyword_count);
  if (alert_days.empty()) {
    out += ", no alert days\n";
  } else {
    out += ", ALERTS:";
    for (const auto& d : alert_days) add(" %s", d.to_string().c_str());
    out += '\n';
  }
  if (median_downlink_mbps) {
    add("  speed tests: %zu shared, median %.1f Mbps down\n",
        speedtest_reports, *median_downlink_mbps);
  }
  if (!emerging_topics.empty()) {
    out += "  emerging topics:";
    for (const auto& t : emerging_topics) add(" '%s'", t.c_str());
    out += '\n';
  }
  add("  loudest day %s: %s\n", loudest_day.to_string().c_str(),
      loudest_day_summary.c_str());
  return out;
}

}  // namespace usaas::service
