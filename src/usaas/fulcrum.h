// The "shifting fulcrum" tracker: the Fig 7 pipeline.
//
// §4.2's method end to end:
//   * take speed-test screenshot posts, run OCR + extraction, keep the
//     usable reports (the paper found ~1750);
//   * monthly median downlink, with 90 %/95 % subsample stability checks;
//   * sentiment-score the posts that *share* speed tests, keep strong
//     scores, and compute Pos = strong_pos / (strong_pos + strong_neg)
//     per month;
//   * model the adaptation baseline (EWMA of experienced speeds) that
//     explains why Pos tracks speed *changes* rather than levels.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/date.h"
#include "core/rng.h"
#include "core/timeseries.h"
#include "nlp/sentiment.h"
#include "ocr/extract.h"
#include "ocr/noisy_ocr.h"
#include "social/post.h"

namespace usaas::service {

/// One month's row of the Fig 7 table.
struct FulcrumMonth {
  int year{0};
  int month{0};
  std::size_t reports{0};
  double median_downlink_mbps{0.0};
  /// Medians of the other OCR-extracted fields (0 when no report in the
  /// month carried the field — uplink/latency are optional per provider).
  double median_uplink_mbps{0.0};
  double median_latency_ms{0.0};
  /// Subsampled medians (stability check).
  double median_95pct_sample{0.0};
  double median_90pct_sample{0.0};
  /// Normalized strong-positive share of strong-scored speed-test posts;
  /// nullopt when the month had no strong-scored posts.
  std::optional<double> pos_score;
  std::size_t strong_positive{0};
  std::size_t strong_negative{0};
};

struct FulcrumConfig {
  ocr::OcrNoiseParams ocr_noise{};
  std::uint64_t ocr_seed{4242};
  std::uint64_t subsample_seed{99};
  /// EWMA factor of the adaptation (expectation) model fitted to the
  /// extracted reports — used by expectation_series().
  double adaptation_alpha{0.035};
};

class FulcrumTracker {
 public:
  explicit FulcrumTracker(const nlp::SentimentAnalyzer& analyzer,
                          FulcrumConfig config = {});

  /// Runs the full pipeline over the posts. Only speed-test posts carrying
  /// screenshots enter OCR; extraction failures are dropped (and counted).
  [[nodiscard]] std::vector<FulcrumMonth> analyze(
      std::span<const social::Post> posts) const;

  /// Extraction statistics of the last analyze() call.
  [[nodiscard]] const ocr::ExtractionStats& extraction_stats() const {
    return stats_;
  }

  /// The adaptation baseline implied by the extracted reports: a daily
  /// EWMA over per-day median extracted speeds. This is the "fulcrum" the
  /// community measures against.
  [[nodiscard]] core::DailySeries expectation_series(
      std::span<const social::Post> posts, core::Date first,
      core::Date last) const;

 private:
  const nlp::SentimentAnalyzer* analyzer_;  // non-owning
  FulcrumConfig config_;
  mutable ocr::ExtractionStats stats_;
};

}  // namespace usaas::service
