#include "usaas/query_scheduler.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

namespace usaas::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Smallest admission wait: one microsecond. Purely a forward-progress
/// floor for the legacy refill loop (see legacy_bucket_wait); virtual-
/// clock tests that assert exact waits always need more than this.
constexpr double kMinWaitSeconds = 1e-6;

/// The enum values are the /debug/traces wire contract; convert
/// explicitly so a reordering on either side is a compile-visible edit
/// here, not a silent JSON corruption.
[[nodiscard]] core::telemetry::TraceOutcome trace_outcome(
    AdmissionOutcome o) {
  switch (o) {
    case AdmissionOutcome::kAdmitted:
      return core::telemetry::TraceOutcome::kAdmitted;
    case AdmissionOutcome::kDegraded:
      return core::telemetry::TraceOutcome::kDegraded;
    case AdmissionOutcome::kShed:
      return core::telemetry::TraceOutcome::kShed;
    case AdmissionOutcome::kExpired:
      return core::telemetry::TraceOutcome::kExpired;
  }
  return core::telemetry::TraceOutcome::kShed;
}

[[nodiscard]] core::telemetry::TracePath trace_path(ServedBy s) {
  switch (s) {
    case ServedBy::kCache: return core::telemetry::TracePath::kCache;
    case ServedBy::kSummaryMerge:
      return core::telemetry::TracePath::kSummaryMerge;
    case ServedBy::kScan: return core::telemetry::TracePath::kScan;
    case ServedBy::kMixed: return core::telemetry::TracePath::kMixed;
    case ServedBy::kInvalid: return core::telemetry::TracePath::kInvalid;
    case ServedBy::kExpired: return core::telemetry::TracePath::kExpired;
  }
  return core::telemetry::TracePath::kNone;
}

[[nodiscard]] std::uint32_t clamp_u32(std::uint64_t v) {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(v, std::numeric_limits<std::uint32_t>::max()));
}

}  // namespace

QueryScheduler::QueryScheduler(QueryService& service, SchedulerConfig config)
    : service_{service}, config_{std::move(config)} {
  if (config_.clock != nullptr) {
    clock_ = config_.clock;
  } else {
    owned_clock_ = std::make_unique<core::SteadyClock>();
    clock_ = owned_clock_.get();
  }
  telemetry_ = config_.telemetry != nullptr ? config_.telemetry
                                            : &service_.telemetry_registry();
  if (config_.fair_queue) {
    queue_ = std::make_unique<FairQueue>(*clock_);
  }
  core::telemetry::Registry& reg = *telemetry_;
  submitted_total_ = reg.counter("usaas_admission_submitted_total",
                                 "Queries entering admission control");
  const auto outcome_counter = [&](const char* outcome) {
    return reg.counter("usaas_admission_queries_total",
                       "Admission outcomes (admitted: ran fresh; degraded: "
                       "served a stale cached insight; shed: rejected; "
                       "expired: the caller's budget ran out)",
                       {{"outcome", outcome}});
  };
  admitted_total_ = outcome_counter("admitted");
  degraded_total_ = outcome_counter("degraded");
  shed_total_ = outcome_counter("shed");
  expired_total_ = outcome_counter("expired");
  shed_with_degradable_total_ = reg.counter(
      "usaas_admission_shed_with_degradable_total",
      "Tripwire: queries shed while a degradable cached insight existed");
  breaker_short_circuits_total_ = reg.counter(
      "usaas_admission_breaker_short_circuits_total",
      "Submissions an open circuit breaker sent straight to "
      "degrade-or-shed without waiting for tokens");
  degrade_feedback_total_ = reg.counter(
      "usaas_admission_degrade_feedback_total",
      "Cost-bias bumps from consecutive stale serves (the degraded-"
      "outcome feedback loop into the cost estimator)");
  wait_seconds_ = reg.histogram(
      "usaas_admission_wait_seconds",
      "Time a submission spent waiting for tokens before resolution");
}

double QueryScheduler::cost_tokens(const QueryCostEstimate& est) const {
  // A current-version cache hit is O(1) no matter how wide the window:
  // charge the floor so repeated dashboards never starve.
  if (est.cached) return config_.min_cost_tokens;
  // Observed history beats the structural guess: the slow-query log keys
  // on the same canonical fingerprint submit() is about to run.
  if (est.slow_log_seconds >= 0.0) {
    return std::max(config_.min_cost_tokens,
                    est.slow_log_seconds / config_.seconds_per_token);
  }
  const double structural =
      config_.summary_month_cost * static_cast<double>(est.summary_months) +
      config_.scan_month_cost * static_cast<double>(est.scan_months);
  return std::max(config_.min_cost_tokens, structural);
}

double QueryScheduler::estimate_cost(const Query& query) const {
  return cost_tokens(service_.estimate_query(query));
}

QueryScheduler::TenantState& QueryScheduler::tenant_state_locked(
    const std::string& tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  const auto qos_it = config_.tenant_qos.find(tenant);
  const TenantQos qos = qos_it != config_.tenant_qos.end()
                            ? qos_it->second
                            : config_.default_qos;
  // Tenant names arrive from the wire; sanitize before they become
  // label values (control bytes and unbounded length would otherwise
  // pollute the exposition). Sanitized collisions share a label series —
  // a safe failure mode for hostile names.
  const std::string label = core::telemetry::sanitize_label_value(tenant);
  TenantState state{
      core::TokenBucket{qos.rate_per_sec, qos.burst, clock_->now()},
      0,
      telemetry_->gauge("usaas_admission_queue_depth",
                        "Submissions currently waiting for tokens",
                        {{"tenant", label}}),
      CircuitBreaker{config_.breaker},
      telemetry_->gauge("usaas_admission_breaker_state",
                        "Circuit-breaker state (0 closed, 1 open, 2 "
                        "half-open)",
                        {{"tenant", label}}),
      1.0,
      0,
      telemetry_->gauge("usaas_admission_cost_bias",
                        "Per-tenant cost bias from the degrade feedback "
                        "loop (1 = unbiased; decays back after fresh "
                        "admits)",
                        {{"tenant", label}})};
  state.bias_gauge.set(1.0);
  return tenants_.emplace(tenant, std::move(state)).first->second;
}

bool QueryScheduler::legacy_bucket_wait(TenantState& state, double cost,
                                        double deadline) {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    state.bucket.refill(clock_->now());
    if (state.bucket.try_consume(cost)) return true;
    const double need = state.bucket.seconds_until(cost);
    // Unpayable (cost > burst) or won't accrue before the deadline:
    // stop waiting and fall through to degrade-or-shed.
    if (need == kInf || clock_->now() + need > deadline) return false;
    ++state.queue_depth;
    state.depth_gauge.set(static_cast<double>(state.queue_depth));
    lock.unlock();
    // VirtualClock advances here instead of sleeping; either way refills
    // resume from a later now(). Another thread may drain the tokens we
    // waited for, so loop (the deadline bounds the retries). The floor
    // matters: after contended consumes the deficit can be so small that
    // `now + need` rounds back to `now`, and an unfloored wait would spin
    // forever without minting a single token.
    clock_->wait(std::max(need, kMinWaitSeconds));
    lock.lock();
    --state.queue_depth;
    state.depth_gauge.set(static_cast<double>(state.queue_depth));
  }
}

void QueryScheduler::record_outcome_locked(const std::string& tenant,
                                           TenantState& state,
                                           AdmissionOutcome outcome,
                                           bool short_circuit, double now,
                                           std::uint64_t trace_id) {
  const CircuitBreaker::State breaker_before = state.breaker.state();
  const double bias_before = state.cost_bias;
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      ++totals_.admitted;
      admitted_total_.add();
      state.breaker.record_success();
      state.consecutive_stale = 0;
      // A tenant getting fresh answers again earns its bias back.
      if (state.cost_bias > 1.0) {
        state.cost_bias =
            std::max(1.0, state.cost_bias * config_.cost_bias_decay);
      }
      break;
    case AdmissionOutcome::kDegraded:
      ++totals_.degraded;
      degraded_total_.add();
      // Streak-neutral for the breaker — serving stale is the system
      // working as designed — EXCEPT when this was the half-open probe:
      // an answer (even a stale one) means the tenant's service is
      // functioning, so the probe resolves as success instead of leaving
      // the breaker wedged with a probe forever in flight.
      if (!short_circuit &&
          state.breaker.state() == CircuitBreaker::State::kHalfOpen) {
        state.breaker.record_success();
      }
      // It IS underprovisioning evidence for the cost model, though —
      // enough of it in a row bumps the bias.
      if (config_.degrade_feedback_threshold > 0 &&
          ++state.consecutive_stale >= config_.degrade_feedback_threshold) {
        state.consecutive_stale = 0;
        state.cost_bias = std::min(
            state.cost_bias * config_.degrade_feedback_factor,
            config_.cost_bias_max);
        ++totals_.degrade_feedback_bumps;
        degrade_feedback_total_.add();
      }
      break;
    case AdmissionOutcome::kShed:
      ++totals_.shed;
      shed_total_.add();
      // A short-circuited shed is the breaker's own output — feeding it
      // back would re-arm the cooldown forever.
      if (!short_circuit) state.breaker.record_failure(now);
      break;
    case AdmissionOutcome::kExpired:
      ++totals_.expired;
      expired_total_.add();
      if (!short_circuit) state.breaker.record_failure(now);
      break;
  }
  state.breaker_gauge.set(static_cast<double>(state.breaker.state()));
  state.bias_gauge.set(state.cost_bias);
  // Journal the state changes this outcome caused (the journal's mutex
  // is a leaf under mu_; a disabled journal returns without locking).
  core::telemetry::EventJournal& journal = service_.journal();
  if (journal.enabled()) {
    const CircuitBreaker::State breaker_after = state.breaker.state();
    if (breaker_after != breaker_before) {
      journal.record(core::telemetry::JournalEventKind::kBreakerTransition,
                     tenant, trace_id, now,
                     static_cast<double>(breaker_before),
                     static_cast<double>(breaker_after));
    }
    if (state.cost_bias > bias_before) {
      journal.record(core::telemetry::JournalEventKind::kCostBiasBump,
                     tenant, trace_id, now, bias_before, state.cost_bias);
    } else if (state.cost_bias < bias_before) {
      journal.record(core::telemetry::JournalEventKind::kCostBiasDecay,
                     tenant, trace_id, now, bias_before, state.cost_bias);
    }
  }
}

ScheduledResult QueryScheduler::submit(const std::string& tenant,
                                       const Query& query,
                                       double budget_seconds,
                                       std::uint64_t trace_id) {
  core::telemetry::RequestTracer& tracer = service_.tracer();
  if (trace_id == 0) trace_id = tracer.mint_id();  // 0 when tracing is off
  bool queued = false;
  bool unpayable = false;
  ScheduledResult result =
      submit_impl(tenant, query, budget_seconds, trace_id, queued, unpayable);
  result.trace_id = trace_id;
  if (tracer.enabled()) {
    core::telemetry::TraceRecord rec{};
    rec.trace_id = trace_id;
    rec.corpus_version = result.insight.corpus_version;
    rec.staleness = result.insight.staleness;
    rec.wait_seconds = result.wait_seconds;
    rec.cost_tokens = result.cost_tokens;
    rec.retry_after_seconds = result.retry_after_seconds;
    // A degraded answer carries the ORIGINAL run's execution report (it
    // came out of the insight cache); only an execution stamped with this
    // request's trace ID describes work done on this request's behalf.
    const QueryExecution& exec = result.insight.execution;
    if (exec.trace_id == trace_id) {
      rec.run_seconds = exec.seconds;
      rec.validate_seconds = exec.validate_seconds;
      rec.cache_probe_seconds = exec.cache_probe_seconds;
      rec.implicit_seconds = exec.implicit_seconds;
      rec.social_seconds = exec.social_seconds;
      rec.shards_from_summary = clamp_u32(exec.shards_from_summary);
      rec.shards_scanned = clamp_u32(exec.shards_scanned);
      rec.post_shards_from_summary =
          clamp_u32(exec.post_shards_from_summary);
      rec.post_shards_scanned = clamp_u32(exec.post_shards_scanned);
    }
    rec.outcome =
        static_cast<std::uint8_t>(trace_outcome(result.outcome));
    // How THIS request was answered: admitted runs report their own
    // path, a degraded answer is by definition a cache serve, a shed
    // carries no answer at all.
    core::telemetry::TracePath path = core::telemetry::TracePath::kNone;
    switch (result.outcome) {
      case AdmissionOutcome::kAdmitted:
        path = trace_path(result.insight.execution.served_by);
        break;
      case AdmissionOutcome::kDegraded:
        path = core::telemetry::TracePath::kCache;
        break;
      case AdmissionOutcome::kShed:
        path = core::telemetry::TracePath::kNone;
        break;
      case AdmissionOutcome::kExpired:
        path = core::telemetry::TracePath::kExpired;
        break;
    }
    rec.served_by = static_cast<std::uint8_t>(path);
    if (queued) rec.flags |= core::telemetry::TraceRecord::kFlagQueued;
    if (result.breaker_short_circuit) {
      rec.flags |= core::telemetry::TraceRecord::kFlagBreakerShortCircuit;
    }
    if (unpayable) {
      rec.flags |= core::telemetry::TraceRecord::kFlagUnpayable;
    }
    rec.set_tenant(tenant);
    tracer.record(rec);
  }
  return result;
}

ScheduledResult QueryScheduler::submit_impl(const std::string& tenant,
                                            const Query& query,
                                            double budget_seconds,
                                            std::uint64_t trace_id,
                                            bool& queued, bool& unpayable) {
  // Estimate outside the scheduler mutex: the probe takes the service's
  // read lock and must not serialize other tenants' admissions.
  const QueryCostEstimate est = service_.estimate_query(query);
  const double raw_cost = cost_tokens(est);

  ScheduledResult result;
  const double start = clock_->now();
  // The admission wait is bounded by BOTH the scheduler knob and the
  // caller's total budget; the total deadline additionally rides into
  // the run itself. An infinite budget reproduces PR 7 exactly.
  const double max_wait =
      std::min(config_.max_wait_seconds, std::max(0.0, budget_seconds));
  const double admission_deadline = start + max_wait;
  const double total_deadline =
      budget_seconds == kInf ? kInf : start + budget_seconds;

  TenantState* state = nullptr;
  double cost = raw_cost;
  bool short_circuit = false;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    ++totals_.submitted;
    submitted_total_.add();
    state = &tenant_state_locked(tenant);
    cost = raw_cost * state->cost_bias;
    const CircuitBreaker::State breaker_before = state->breaker.state();
    if (!state->breaker.allow(clock_->now())) {
      short_circuit = true;
      ++totals_.breaker_short_circuits;
      breaker_short_circuits_total_.add();
    }
    // allow() may have transitioned open -> half-open; keep the gauge
    // (and the journal) honest either way.
    const CircuitBreaker::State breaker_after = state->breaker.state();
    state->breaker_gauge.set(static_cast<double>(breaker_after));
    if (breaker_after != breaker_before && service_.journal().enabled()) {
      service_.journal().record(
          core::telemetry::JournalEventKind::kBreakerTransition, tenant,
          trace_id, start, static_cast<double>(breaker_before),
          static_cast<double>(breaker_after));
    }
  }
  result.cost_tokens = cost;
  result.breaker_short_circuit = short_circuit;

  bool acquired = false;
  if (!short_circuit) {
    if (queue_ != nullptr) {
      {
        const std::lock_guard<std::mutex> lock{mu_};
        ++state->queue_depth;
        state->depth_gauge.set(static_cast<double>(state->queue_depth));
      }
      // Lock ordering: the queue holds FairQueue::mu_ while calling this
      // closure, which takes QueryScheduler::mu_ — never the reverse.
      const FairQueue::WaitReport out =
          queue_->wait_reported(admission_deadline, [&](double now) -> double {
            const std::lock_guard<std::mutex> lock{mu_};
            state->bucket.refill(now);
            if (state->bucket.try_consume(cost)) return 0.0;
            return state->bucket.seconds_until(cost);
          });
      {
        const std::lock_guard<std::mutex> lock{mu_};
        --state->queue_depth;
        state->depth_gauge.set(static_cast<double>(state->queue_depth));
      }
      acquired = out.outcome == FairQueue::Outcome::kAcquired;
      queued = out.parked;
      unpayable = out.outcome == FairQueue::Outcome::kUnpayable;
    } else {
      acquired = legacy_bucket_wait(*state, cost, admission_deadline);
    }
  }
  result.wait_seconds = clock_->now() - start;
  wait_seconds_.observe(result.wait_seconds);

  if (acquired) {
    const double now = clock_->now();
    if (now >= total_deadline) {
      // Tokens were spent but the caller is already gone; don't start a
      // computation nobody will read. The tokens are not refunded — the
      // admission machinery DID run on this tenant's behalf.
      const std::lock_guard<std::mutex> lock{mu_};
      record_outcome_locked(tenant, *state, AdmissionOutcome::kExpired,
                            short_circuit, now, trace_id);
      result.outcome = AdmissionOutcome::kExpired;
      return result;
    }
    RunBudget budget;
    if (total_deadline != kInf) {
      budget.clock = clock_;
      budget.deadline = total_deadline;
    }
    budget.trace_id = trace_id;
    result.insight = service_.run(query, budget);
    const double after = clock_->now();
    const std::lock_guard<std::mutex> lock{mu_};
    if (result.insight.error == QueryError::kDeadlineExceeded) {
      record_outcome_locked(tenant, *state, AdmissionOutcome::kExpired,
                            short_circuit, after, trace_id);
      result.outcome = AdmissionOutcome::kExpired;
    } else {
      record_outcome_locked(tenant, *state, AdmissionOutcome::kAdmitted,
                            short_circuit, after, trace_id);
      result.outcome = AdmissionOutcome::kAdmitted;
    }
    return result;
  }

  if (clock_->now() >= total_deadline) {
    // The whole budget drained inside admission: even an O(1) stale
    // answer would arrive after the caller hung up.
    const std::lock_guard<std::mutex> lock{mu_};
    record_outcome_locked(tenant, *state, AdmissionOutcome::kExpired,
                          short_circuit, clock_->now(), trace_id);
    result.outcome = AdmissionOutcome::kExpired;
    return result;
  }

  // Saturated (or breaker-open). Degrade before shedding: any cached
  // answer within the staleness bound beats an error — an open breaker
  // degrades service, it does not black-hole it. With
  // max_versions_behind == 0 the probe still runs (bound 0 = current
  // version only) purely to feed the tripwire: shedding while an answer
  // sat in the cache is the failure mode this scheduler exists to
  // prevent.
  std::optional<Insight> stale =
      service_.find_stale_cached(query, config_.max_versions_behind);
  const std::lock_guard<std::mutex> lock{mu_};
  const double now = clock_->now();
  if (stale.has_value() && config_.max_versions_behind > 0) {
    record_outcome_locked(tenant, *state, AdmissionOutcome::kDegraded,
                          short_circuit, now, trace_id);
    result.outcome = AdmissionOutcome::kDegraded;
    result.insight = *std::move(stale);
    return result;
  }
  record_outcome_locked(tenant, *state, AdmissionOutcome::kShed,
                        short_circuit, now, trace_id);
  if (stale.has_value()) {
    ++totals_.shed_with_degradable;
    shed_with_degradable_total_.add();
  }
  // Retry-After: when the bucket will afford this query, stretched to
  // the breaker's probe time while open. Unpayable (cost > burst) has
  // no finite answer — leave the hint at the breaker term alone.
  state->bucket.refill(now);
  double retry = state->bucket.seconds_until(cost);
  if (retry == kInf) retry = 0.0;
  result.retry_after_seconds =
      std::max(retry, state->breaker.seconds_until_probe(now));
  result.outcome = AdmissionOutcome::kShed;
  return result;
}

SchedulerStats QueryScheduler::stats() const {
  // Queue stats first: FairQueue::mu_ must never be taken after mu_
  // (the queue's sweep holds its lock while calling into ours).
  const FairQueue::Stats fq =
      queue_ != nullptr ? queue_->stats() : FairQueue::Stats{};
  const std::lock_guard<std::mutex> lock{mu_};
  SchedulerStats out = totals_;
  out.fair_queue = fq;
  for (const auto& [tenant, state] : tenants_) {
    out.tenants[tenant] = {state.bucket.tokens(), state.queue_depth,
                           state.breaker.state(), state.cost_bias,
                           state.consecutive_stale};
  }
  return out;
}

}  // namespace usaas::service
