#include "usaas/query_scheduler.h"

#include <algorithm>
#include <limits>

namespace usaas::service {

namespace {

/// Smallest admission wait: one microsecond. Purely a forward-progress
/// floor for the refill loop (see submit); virtual-clock tests that
/// assert exact waits always need more than this.
constexpr double kMinWaitSeconds = 1e-6;

}  // namespace

QueryScheduler::QueryScheduler(QueryService& service, SchedulerConfig config)
    : service_{service}, config_{std::move(config)} {
  if (config_.clock != nullptr) {
    clock_ = config_.clock;
  } else {
    owned_clock_ = std::make_unique<core::SteadyClock>();
    clock_ = owned_clock_.get();
  }
  telemetry_ = config_.telemetry != nullptr ? config_.telemetry
                                            : &service_.telemetry_registry();
  core::telemetry::Registry& reg = *telemetry_;
  submitted_total_ = reg.counter("usaas_admission_submitted_total",
                                 "Queries entering admission control");
  const auto outcome_counter = [&](const char* outcome) {
    return reg.counter("usaas_admission_queries_total",
                       "Admission outcomes (admitted: ran fresh; degraded: "
                       "served a stale cached insight; shed: rejected)",
                       {{"outcome", outcome}});
  };
  admitted_total_ = outcome_counter("admitted");
  degraded_total_ = outcome_counter("degraded");
  shed_total_ = outcome_counter("shed");
  shed_with_degradable_total_ = reg.counter(
      "usaas_admission_shed_with_degradable_total",
      "Tripwire: queries shed while a degradable cached insight existed");
  wait_seconds_ = reg.histogram(
      "usaas_admission_wait_seconds",
      "Time a submission spent waiting for tokens before resolution");
}

double QueryScheduler::cost_tokens(const QueryCostEstimate& est) const {
  // A current-version cache hit is O(1) no matter how wide the window:
  // charge the floor so repeated dashboards never starve.
  if (est.cached) return config_.min_cost_tokens;
  // Observed history beats the structural guess: the slow-query log keys
  // on the same canonical fingerprint submit() is about to run.
  if (est.slow_log_seconds >= 0.0) {
    return std::max(config_.min_cost_tokens,
                    est.slow_log_seconds / config_.seconds_per_token);
  }
  const double structural =
      config_.summary_month_cost * static_cast<double>(est.summary_months) +
      config_.scan_month_cost * static_cast<double>(est.scan_months);
  return std::max(config_.min_cost_tokens, structural);
}

double QueryScheduler::estimate_cost(const Query& query) const {
  return cost_tokens(service_.estimate_query(query));
}

QueryScheduler::TenantState& QueryScheduler::tenant_state_locked(
    const std::string& tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  const auto qos_it = config_.tenant_qos.find(tenant);
  const TenantQos qos = qos_it != config_.tenant_qos.end()
                            ? qos_it->second
                            : config_.default_qos;
  TenantState state{
      core::TokenBucket{qos.rate_per_sec, qos.burst, clock_->now()},
      0,
      telemetry_->gauge("usaas_admission_queue_depth",
                        "Submissions currently waiting for tokens",
                        {{"tenant", tenant}})};
  return tenants_.emplace(tenant, std::move(state)).first->second;
}

ScheduledResult QueryScheduler::submit(const std::string& tenant,
                                       const Query& query) {
  // Estimate outside the scheduler mutex: the probe takes the service's
  // read lock and must not serialize other tenants' admissions.
  const QueryCostEstimate est = service_.estimate_query(query);
  const double cost = cost_tokens(est);

  ScheduledResult result;
  result.cost_tokens = cost;
  const double start = clock_->now();
  const double deadline = start + config_.max_wait_seconds;

  std::unique_lock<std::mutex> lock{mu_};
  ++totals_.submitted;
  submitted_total_.add();
  TenantState& state = tenant_state_locked(tenant);
  bool admitted = false;
  for (;;) {
    state.bucket.refill(clock_->now());
    if (state.bucket.try_consume(cost)) {
      admitted = true;
      break;
    }
    const double need = state.bucket.seconds_until(cost);
    // Unpayable (cost > burst) or won't accrue before the deadline:
    // stop waiting and fall through to degrade-or-shed.
    if (need == std::numeric_limits<double>::infinity() ||
        clock_->now() + need > deadline) {
      break;
    }
    ++state.queue_depth;
    state.depth_gauge.set(static_cast<double>(state.queue_depth));
    lock.unlock();
    // VirtualClock advances here instead of sleeping; either way refills
    // resume from a later now(). Another thread may drain the tokens we
    // waited for, so loop (the deadline bounds the retries). The floor
    // matters: after contended consumes the deficit can be so small that
    // `now + need` rounds back to `now`, and an unfloored wait would spin
    // forever without minting a single token.
    clock_->wait(std::max(need, kMinWaitSeconds));
    lock.lock();
    --state.queue_depth;
    state.depth_gauge.set(static_cast<double>(state.queue_depth));
  }
  result.wait_seconds = clock_->now() - start;

  if (admitted) {
    ++totals_.admitted;
    admitted_total_.add();
    lock.unlock();
    wait_seconds_.observe(result.wait_seconds);
    result.outcome = AdmissionOutcome::kAdmitted;
    result.insight = service_.run(query);
    return result;
  }
  lock.unlock();
  wait_seconds_.observe(result.wait_seconds);

  // Saturated. Degrade before shedding: any cached answer within the
  // staleness bound beats an error. With max_versions_behind == 0 the
  // probe still runs (bound 0 = current version only) purely to feed the
  // tripwire: shedding while an answer sat in the cache is the failure
  // mode this scheduler exists to prevent.
  std::optional<Insight> stale =
      service_.find_stale_cached(query, config_.max_versions_behind);
  std::lock_guard<std::mutex> tally{mu_};
  if (stale.has_value() && config_.max_versions_behind > 0) {
    ++totals_.degraded;
    degraded_total_.add();
    result.outcome = AdmissionOutcome::kDegraded;
    result.insight = *std::move(stale);
    return result;
  }
  ++totals_.shed;
  shed_total_.add();
  if (stale.has_value()) {
    ++totals_.shed_with_degradable;
    shed_with_degradable_total_.add();
  }
  result.outcome = AdmissionOutcome::kShed;
  return result;
}

SchedulerStats QueryScheduler::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  SchedulerStats out = totals_;
  for (const auto& [tenant, state] : tenants_) {
    out.tenants[tenant] = {state.bucket.tokens(), state.queue_depth};
  }
  return out;
}

}  // namespace usaas::service
