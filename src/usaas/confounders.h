// Confounder analysis: "Are networks to blame always?" (§6).
//
// The paper's first future-work question: network conditions correlate
// with user actions, but platform, meeting size, and long-term
// conditioning shape behaviour too, and "an effective USaaS should take
// into account all such confounders." This module quantifies each
// observable factor's share of engagement variance (a one-way
// eta-squared decomposition over factor strata) and checks whether the
// network effect survives *within* strata — the difference between a
// confounded correlation and a real one.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "confsim/call.h"
#include "usaas/signals.h"

namespace usaas::service {

/// The observable grouping factors of the call corpus.
enum class Factor {
  kLatencyQuartile,   // network: mean session latency, corpus quartiles
  kLossQuartile,      // network: mean session loss
  kPlatform,
  kMeetingSize,       // 3-4, 5-7, 8-11, 12+
};

[[nodiscard]] const char* to_string(Factor f);

/// One factor's variance share for one engagement metric.
struct FactorEffect {
  Factor factor{Factor::kLatencyQuartile};
  /// Eta-squared: between-group variance / total variance, in [0, 1].
  double eta_squared{0.0};
  /// Number of strata actually populated.
  std::size_t groups{0};
};

/// The full report for one engagement metric.
struct ConfounderReport {
  EngagementMetric metric{EngagementMetric::kPresence};
  std::vector<FactorEffect> effects;  // sorted by eta_squared, descending

  [[nodiscard]] double effect_of(Factor f) const;
};

/// Computes the eta-squared decomposition over the sessions. Requires at
/// least 100 sessions (throws std::invalid_argument otherwise).
[[nodiscard]] ConfounderReport analyze_confounders(
    std::span<const confsim::ParticipantRecord> sessions,
    EngagementMetric metric);

/// Stratified network effect: the engagement drop across latency
/// quartiles computed *within* each meeting-size stratum, then averaged.
/// If the raw latency effect were a meeting-size artifact, this would
/// collapse toward zero.
struct StratifiedEffect {
  /// Raw drop (percentage points) between the first and last latency
  /// quartile, all sessions pooled.
  double raw_drop{0.0};
  /// Same drop averaged over within-stratum estimates.
  double stratified_drop{0.0};
  std::size_t strata_used{0};
};

[[nodiscard]] StratifiedEffect latency_effect_within_meeting_size(
    std::span<const confsim::ParticipantRecord> sessions,
    EngagementMetric metric);

}  // namespace usaas::service
