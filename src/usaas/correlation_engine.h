// The engagement-vs-network correlation engine: §3's analysis pipeline.
//
// Consumes participant records exactly as the paper's analysts did —
// session-aggregated network metrics + engagement actions + sampled MOS —
// and produces:
//   * binned engagement curves per network metric with the paper's
//     "other metrics roughly constant" confounder filter (Fig 1, Fig 3);
//   * the 2-D latency x loss compounding grid (Fig 2);
//   * engagement-vs-MOS correlations on the sampled-feedback subset
//     (Fig 4).
// It never reads the behaviour model's parameters: the planted curves
// must be recovered from data.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "confsim/call.h"
#include "core/histogram.h"
#include "netsim/conditions.h"
#include "usaas/signals.h"

namespace usaas::service {

/// One point of a recovered engagement curve.
struct CurvePoint {
  double metric_value{0.0};   // bin center, natural units (ms / % / Mbps)
  double engagement{0.0};     // mean engagement in bin (percentage points)
  std::size_t sessions{0};
};

struct EngagementCurve {
  netsim::Metric network_metric{netsim::Metric::kLatency};
  EngagementMetric engagement_metric{EngagementMetric::kPresence};
  std::vector<CurvePoint> points;

  /// Engagement at the best (first) populated bin minus at the worst
  /// (last) populated bin — the paper's "drops by N%" statements, measured
  /// relative to the curve's own maximum (normalized like Fig 1's y-axis).
  [[nodiscard]] double relative_drop_percent() const;

  /// Curve normalized so its max = 100 (the paper's plotting convention).
  [[nodiscard]] EngagementCurve normalized() const;
};

/// Which session aggregate the analysis reads (§3.1: "we report results
/// using the mean but similar trends hold for P95 values as well").
enum class SessionAggregate {
  kMean,
  kP95,
};

struct SweepSpec {
  netsim::Metric metric{netsim::Metric::kLatency};
  double lo{0.0};
  double hi{300.0};
  std::size_t bins{15};
  netsim::ControlWindows control{};
  /// Apply the others-in-control confounder filter.
  bool control_others{true};
  SessionAggregate aggregate{SessionAggregate::kMean};
};

/// Optional row filter (e.g. by platform for Fig 3).
using ParticipantFilter =
    std::function<bool(const confsim::ParticipantRecord&)>;

class CorrelationEngine {
 public:
  CorrelationEngine() = default;

  /// Ingests calls (only participants passing the enterprise filter's
  /// per-call requirements are assumed; callers pre-filter calls).
  void ingest(std::span<const confsim::CallRecord> calls);
  void ingest(const confsim::CallRecord& call);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  /// Fig 1 / Fig 3: binned engagement curve over one network metric.
  [[nodiscard]] EngagementCurve engagement_curve(
      const SweepSpec& spec, EngagementMetric engagement,
      const ParticipantFilter& filter = nullptr) const;

  /// Early-drop-off rate (fraction) binned over one network metric.
  [[nodiscard]] std::vector<CurvePoint> dropoff_curve(
      const SweepSpec& spec, const ParticipantFilter& filter = nullptr) const;

  /// Fig 2: latency x loss grid of mean engagement.
  [[nodiscard]] core::Grid2D compounding_grid(
      EngagementMetric engagement, double latency_hi_ms, std::size_t lat_bins,
      double loss_hi_pct, std::size_t loss_bins) const;

  /// Fig 4: correlation between an engagement metric and MOS over the
  /// MOS-sampled subset. Returns nullopt when fewer than `min_samples`
  /// rated sessions exist.
  struct MosCorrelation {
    double pearson{0.0};
    double spearman{0.0};
    std::size_t rated_sessions{0};
    /// Mean MOS per engagement decile (the Fig 4 plot series).
    std::vector<CurvePoint> decile_curve;
  };
  [[nodiscard]] std::optional<MosCorrelation> mos_correlation(
      EngagementMetric engagement, std::size_t min_samples = 50) const;

  [[nodiscard]] std::span<const confsim::ParticipantRecord> sessions() const {
    return sessions_;
  }

 private:
  std::vector<confsim::ParticipantRecord> sessions_;
};

}  // namespace usaas::service
