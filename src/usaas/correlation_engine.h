// The engagement-vs-network correlation engine: §3's analysis pipeline,
// scaled out as §5 requires.
//
// Consumes participant records exactly as the paper's analysts did —
// session-aggregated network metrics + engagement actions + sampled MOS —
// and produces:
//   * binned engagement curves per network metric with the paper's
//     "other metrics roughly constant" confounder filter (Fig 1, Fig 3);
//   * the 2-D latency x loss compounding grid (Fig 2);
//   * engagement-vs-MOS correlations on the sampled-feedback subset
//     (Fig 4).
// It never reads the behaviour model's parameters: the planted curves
// must be recovered from data.
//
// Storage is sharded per calendar month x client platform (the natural
// partitioning of the paper's Jan-Apr corpus and Fig 3's platform
// breakdown): ingest batches are partitioned in parallel, queries fan out
// across the shards that survive date/platform pruning and reduce partial
// accumulators (core::Binner1D/Grid2D merge) in shard-key order.
// Every result is therefore deterministic and independent of the thread
// count; versus a single flat store the only difference is floating-point
// summation order (<= ~1e-12 relative). ShardingPolicy::kSingleShard keeps
// the flat layout as the sequential reference path for equivalence tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "confsim/call.h"
#include "core/date.h"
#include "core/flat_index.h"
#include "core/histogram.h"
#include "core/telemetry/metrics.h"
#include "core/thread_pool.h"
#include "netsim/conditions.h"
#include "usaas/session_columns.h"
#include "usaas/shard_summary.h"
#include "usaas/signals.h"

namespace usaas::service {

/// One point of a recovered engagement curve.
struct CurvePoint {
  double metric_value{0.0};   // bin center, natural units (ms / % / Mbps)
  double engagement{0.0};     // mean engagement in bin (percentage points)
  std::size_t sessions{0};
};

struct EngagementCurve {
  netsim::Metric network_metric{netsim::Metric::kLatency};
  EngagementMetric engagement_metric{EngagementMetric::kPresence};
  std::vector<CurvePoint> points;

  /// Engagement at the best (first) populated bin minus at the worst
  /// (last) populated bin — the paper's "drops by N%" statements, measured
  /// relative to the curve's own maximum (normalized like Fig 1's y-axis).
  [[nodiscard]] double relative_drop_percent() const;

  /// Curve normalized so its max = 100 (the paper's plotting convention).
  [[nodiscard]] EngagementCurve normalized() const;
};

/// Which session aggregate the analysis reads (§3.1: "we report results
/// using the mean but similar trends hold for P95 values as well").
enum class SessionAggregate {
  kMean,
  kP95,
};

struct SweepSpec {
  netsim::Metric metric{netsim::Metric::kLatency};
  double lo{0.0};
  double hi{300.0};
  std::size_t bins{15};
  netsim::ControlWindows control{};
  /// Apply the others-in-control confounder filter.
  bool control_others{true};
  SessionAggregate aggregate{SessionAggregate::kMean};
};

/// Optional row filter (e.g. by access network for the §5 Starlink query).
using ParticipantFilter =
    std::function<bool(const confsim::ParticipantRecord&)>;

/// How ingested sessions are partitioned.
enum class ShardingPolicy {
  /// One flat shard, scanned sequentially — the seed's layout, kept as the
  /// reference path for shard-equivalence tests.
  kSingleShard,
  /// Per-month x per-platform shards; queries prune on both axes.
  kMonthPlatform,
};

/// Shard-level pruning hints a query may carry. Dates are inclusive; any
/// unset field means "no restriction". Pruning never changes results —
/// the same predicate is re-applied per record where a shard straddles a
/// window boundary (or under kSingleShard, where no pruning happens).
/// `access` is a pure per-record predicate; carrying it structurally
/// (instead of inside an opaque ParticipantFilter) lets the summary fast
/// path answer access-filtered queries from per-access buckets.
struct ShardSelector {
  std::optional<core::Date> first;
  std::optional<core::Date> last;
  std::optional<confsim::Platform> platform;
  std::optional<netsim::AccessTechnology> access;
};

/// How many shard visits queries answered from precomputed summaries vs
/// full record scans, cumulatively. Snapshot type returned by
/// CorrelationEngine::fanout_stats().
struct QueryFanoutStats {
  std::uint64_t shards_from_summary{0};
  std::uint64_t shards_scanned{0};
};

class CorrelationEngine {
 public:
  CorrelationEngine() = default;
  explicit CorrelationEngine(ShardingPolicy sharding) : sharding_{sharding} {}

  /// Borrows a pool for parallel ingest + query fan-out; nullptr (the
  /// default) keeps everything on the calling thread. Results do not
  /// depend on the pool or its size.
  void set_thread_pool(core::ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ShardingPolicy sharding() const { return sharding_; }

  /// Registers this engine's batch-ingest phase histograms
  /// (`usaas_ingest_batch_seconds{corpus,phase}`) and per-shard access
  /// counters (`usaas_shard_touches_total{corpus,shard,source}`) in
  /// `registry`; shards created by later ingests register their counters
  /// lazily. Nullptr (or a disabled registry) detaches: ingest performs
  /// no observations and query touches stop counting.
  void set_telemetry(core::telemetry::Registry* registry,
                     std::string_view corpus = "sessions");

  /// Ingests calls (only participants passing the enterprise filter's
  /// per-call requirements are assumed; callers pre-filter calls).
  ///
  /// Batch ingest is a two-pass counted pipeline: pass 1 counts records
  /// per (chunk, shard key) in parallel over a flat dense key index;
  /// a prefix-sum over those counts pre-reserves each destination shard
  /// and assigns every chunk a contiguous slot range per shard; pass 2
  /// first writes a (source pointer, packed day) permutation in slot
  /// order, then scatters straight into the destination columns,
  /// destination-major and prefetched, in parallel. Slots are ordered by
  /// (chunk index, in-chunk position), so per-shard record order equals
  /// sequential ingest order by construction, at any thread count — and
  /// each record's fields are written to their columns exactly once.
  /// Counting and permutation scratch persists across batches (the plan
  /// phase was dominated by allocation churn before it did).
  void ingest(std::span<const confsim::CallRecord> calls);
  void ingest(const confsim::CallRecord& call);

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Cumulative ingest counters + per-phase timings (see IngestStats).
  [[nodiscard]] const IngestStats& ingest_stats() const {
    return ingest_stats_;
  }

  /// Enables per-shard mergeable summaries (the tier-2 query accelerator):
  /// from now on every shard folds each ingested record into a
  /// ShardSummary with this layout, and the query methods answer matching
  /// shapes by merging summaries instead of rescanning records. Must be
  /// called before any ingest (throws std::logic_error otherwise — a
  /// summary folded from a partial corpus would silently under-count).
  void configure_summaries(SummaryConfig config);
  [[nodiscard]] bool summaries_enabled() const {
    return summary_cfg_.has_value();
  }
  /// The configured layout; only meaningful when summaries_enabled().
  [[nodiscard]] const SummaryConfig& summary_config() const {
    return *summary_cfg_;
  }
  /// Approximate heap footprint of all shard summaries.
  [[nodiscard]] std::size_t summary_memory_bytes() const;

  /// Recomputes every shard's predicted-MOS tally sums with `predictor`
  /// (callers must hold their corpus write lock). Until the next ingest,
  /// tally() calls may answer predicted sums from summaries — but only
  /// when invoked with this same predictor; passing a different one is a
  /// caller contract violation. Null clears the sums and the fresh flag.
  void refresh_predicted_tallies(
      const std::function<double(const confsim::ParticipantRecord&)>&
          predictor);
  void clear_predicted_tallies() { refresh_predicted_tallies(nullptr); }

  /// Cumulative summary-vs-scan fan-out counters (relaxed atomics; exact
  /// under the caller's locking, advisory under concurrent queries).
  [[nodiscard]] QueryFanoutStats fanout_stats() const {
    return {fanout_.from_summary.load(std::memory_order_relaxed),
            fanout_.scanned.load(std::memory_order_relaxed)};
  }

  /// Fig 1 / Fig 3: binned engagement curve over one network metric.
  /// `fanout`, here and on mos_correlation/tally, additionally receives
  /// this one call's summary-vs-scan shard visits (the cumulative
  /// fanout_stats() counters are always bumped) — the per-query execution
  /// shape QueryService reports in Insight::execution.
  [[nodiscard]] EngagementCurve engagement_curve(
      const SweepSpec& spec, EngagementMetric engagement,
      const ParticipantFilter& filter = nullptr,
      const ShardSelector& selector = {},
      QueryFanoutStats* fanout = nullptr) const;

  /// Early-drop-off rate (fraction) binned over one network metric.
  [[nodiscard]] std::vector<CurvePoint> dropoff_curve(
      const SweepSpec& spec, const ParticipantFilter& filter = nullptr,
      const ShardSelector& selector = {}) const;

  /// Fig 2: latency x loss grid of mean engagement.
  [[nodiscard]] core::Grid2D compounding_grid(
      EngagementMetric engagement, double latency_hi_ms, std::size_t lat_bins,
      double loss_hi_pct, std::size_t loss_bins) const;

  /// Fig 4: correlation between an engagement metric and MOS over the
  /// MOS-sampled subset. Returns nullopt when fewer than `min_samples`
  /// rated sessions exist.
  struct MosCorrelation {
    double pearson{0.0};
    double spearman{0.0};
    std::size_t rated_sessions{0};
    /// Mean MOS per engagement decile (the Fig 4 plot series).
    std::vector<CurvePoint> decile_curve;
  };
  [[nodiscard]] std::optional<MosCorrelation> mos_correlation(
      EngagementMetric engagement, std::size_t min_samples = 50,
      QueryFanoutStats* fanout = nullptr) const;

  /// Per-query session tallies: counts, observed-MOS sum over rated
  /// sessions, and (when `predictor` is set) predicted-MOS sum over every
  /// matching session — the fan-out behind QueryService::run.
  struct Tally {
    std::size_t sessions{0};
    std::size_t rated{0};
    double observed_mos_sum{0.0};
    double predicted_mos_sum{0.0};
    std::size_t predicted{0};
  };
  [[nodiscard]] Tally tally(
      const ParticipantFilter& filter, const ShardSelector& selector,
      const std::function<double(const confsim::ParticipantRecord&)>&
          predictor = nullptr,
      QueryFanoutStats* fanout = nullptr) const;

  /// Materializes every stored session in shard-key order (a copy; the
  /// sharded store has no single contiguous buffer). Prefer the query
  /// methods above — this exists for offline analyses over modest corpora.
  [[nodiscard]] std::vector<confsim::ParticipantRecord> sessions() const;

  /// Rated sessions in canonical (month, platform, ingest) order — the
  /// same sequence under every ShardingPolicy, so predictor training is
  /// bit-identical across layouts.
  [[nodiscard]] std::vector<confsim::ParticipantRecord>
  rated_sessions_canonical() const;

 private:
  struct SessionShard {
    int month_key{0};  // year*12 + month-1; 0 under kSingleShard
    confsim::Platform platform{confsim::Platform::kWindowsPc};
    /// Struct-of-arrays row storage: one contiguous column per field, so
    /// scan kernels touch only the columns a query names.
    SessionColumns columns;
    /// Disabled (a no-op) unless configure_summaries() ran.
    ShardSummary summary;
    /// Per-shard query-touch counters by answer source — the access
    /// frequency signal a spill-to-disk eviction policy would rank on.
    /// Null handles (single-branch no-op bumps) when telemetry is off.
    core::telemetry::Counter summary_touches;
    core::telemetry::Counter scan_touches;
  };
  /// A shard surviving selector pruning, with the per-record checks that
  /// pruning could not discharge at the shard level.
  struct SelectedShard {
    const SessionShard* shard{nullptr};
    bool check_dates{false};
    bool check_platform{false};
  };

  /// The packed shard key pass 1 counts on: month_key * kNumPlatforms +
  /// platform under kMonthPlatform, the constant 0 under kSingleShard.
  /// Packing preserves (month_key, platform) lexicographic order.
  [[nodiscard]] int packed_key(const core::Date& date,
                               confsim::Platform platform) const;
  /// Finds or creates the shard for a packed key — shards are addressed
  /// by key alone, never re-derived from record contents.
  SessionShard& shard_for_key(int key);
  SessionShard& shard_for(const core::Date& date, confsim::Platform platform);
  void append(SessionShard& shard, const core::Date& date,
              const confsim::ParticipantRecord& rec);
  [[nodiscard]] std::vector<SelectedShard> select_shards(
      const ShardSelector& selector) const;
  /// Registers `shard`'s per-shard touch counters when telemetry is
  /// attached (label "YYYY-MM/<platform>", or "flat" under kSingleShard).
  void register_shard_touches(SessionShard& shard);
  /// Bumps each selected shard's touch counter for the source that
  /// answered it, then folds the totals into note_fanout.
  void note_shard_touches(const std::vector<SelectedShard>& selected,
                          const std::vector<char>& use_summary,
                          std::uint64_t n_summary,
                          QueryFanoutStats* out) const;
  /// Bumps the cumulative summary/scan counters and, when `out` is set,
  /// adds the same visits to the caller's per-query stats.
  void note_fanout(std::uint64_t from_summary, std::uint64_t scanned,
                   QueryFanoutStats* out) const {
    fanout_.from_summary.fetch_add(from_summary, std::memory_order_relaxed);
    fanout_.scanned.fetch_add(scanned, std::memory_order_relaxed);
    if (out != nullptr) {
      out->shards_from_summary += from_summary;
      out->shards_scanned += scanned;
    }
  }

  /// Relaxed atomic counters that survive the engine being copied by
  /// value (queries are const, so counting must be thread-safe under the
  /// shared corpus lock; raw atomics would delete the copy operations the
  /// ablation benches rely on).
  struct FanoutCounters {
    std::atomic<std::uint64_t> from_summary{0};
    std::atomic<std::uint64_t> scanned{0};
    FanoutCounters() = default;
    FanoutCounters(const FanoutCounters& o)
        : from_summary{o.from_summary.load(std::memory_order_relaxed)},
          scanned{o.scanned.load(std::memory_order_relaxed)} {}
    FanoutCounters& operator=(const FanoutCounters& o) {
      from_summary.store(o.from_summary.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      scanned.store(o.scanned.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      return *this;
    }
  };

  /// One slot of the batch-ingest permutation: where row data comes from
  /// (the participant record inside the caller's batch) plus its packed
  /// day key, precomputed so the scatter never touches CallRecord again.
  struct SourceSlot {
    const confsim::ParticipantRecord* rec{nullptr};
    std::int32_t day{0};
  };
  /// Per-batch scratch reused across ingest calls (allocation churn in
  /// the counting/permutation structures dominated the plan phase).
  /// Copying an engine copies whatever the scratch happens to hold —
  /// harmless, it is overwritten wholesale at the start of every batch.
  struct IngestScratch {
    std::vector<core::DenseKeyCounts> counts;
    PodColumn<SourceSlot> perm;
    std::vector<std::size_t> batch_offsets;  // exclusive prefix of totals
  };

  ShardingPolicy sharding_{ShardingPolicy::kMonthPlatform};
  core::ThreadPool* pool_{nullptr};
  IngestStats ingest_stats_;
  IngestScratch scratch_;
  // packed (month_key, platform) key -> index into shards_; packing is
  // order-preserving, so the map keeps shard-key order for deterministic
  // reduction.
  std::map<int, std::size_t> shard_index_;
  std::vector<SessionShard> shards_;
  /// Set once by configure_summaries(); every shard summary shares it.
  std::optional<SummaryConfig> summary_cfg_;
  /// True while summary predicted-MOS sums match the last-refreshed
  /// predictor; any ingest clears it (the sums would under-count).
  bool predicted_fresh_{false};
  mutable FanoutCounters fanout_;
  /// Batch-ingest phase histograms (null handles when telemetry is off or
  /// set_telemetry never ran — observations are single-branch no-ops).
  struct IngestTelemetry {
    core::telemetry::Histogram count;
    core::telemetry::Histogram plan;
    core::telemetry::Histogram scatter;
    core::telemetry::Histogram summarize;
    core::telemetry::Histogram total;
  };
  IngestTelemetry ingest_tel_;
  /// Borrowed registry for lazy per-shard counter registration (copied
  /// engines share it — counter handles point at the same cells, which
  /// keeps cumulative touch counts meaningful across ablation copies).
  core::telemetry::Registry* registry_{nullptr};
  std::string corpus_{"sessions"};
};

}  // namespace usaas::service
