#include "usaas/signals.h"

#include <cstdio>

#include "core/rng.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "ocr/extract.h"
#include "ocr/noisy_ocr.h"
#include "social/post.h"

namespace usaas::service {

std::string to_string(const IngestStats& stats) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%zu records in %zu batches, %.1f MB moved, %zu shard writes, "
      "%.0f records/s (count %.3fs, plan %.3fs, scatter %.3fs, "
      "summarize %.3fs)",
      stats.records, stats.batches,
      static_cast<double>(stats.bytes_moved) / (1024.0 * 1024.0),
      stats.shards_touched, stats.records_per_second(), stats.count_seconds,
      stats.plan_seconds, stats.scatter_seconds, stats.summarize_seconds);
  return buf;
}

std::vector<UserSignal> normalize_call(const confsim::CallRecord& call) {
  std::vector<UserSignal> out;
  out.reserve(call.participants.size());
  for (const auto& rec : call.participants) {
    ImplicitSignal sig;
    sig.date = call.start.date;
    sig.platform = rec.platform;
    sig.conditions = rec.network.mean_conditions();
    sig.presence_pct = rec.presence_pct;
    sig.cam_on_pct = rec.cam_on_pct;
    sig.mic_on_pct = rec.mic_on_pct;
    sig.dropped_early = rec.dropped_early;
    out.emplace_back(sig);
    if (rec.mos) {
      MosSignal mos;
      mos.date = call.start.date;
      mos.rating = *rec.mos;
      mos.conditions = rec.network.mean_conditions();
      out.emplace_back(mos);
    }
  }
  return out;
}

UserSignal normalize_post(const social::Post& post,
                          const nlp::SentimentAnalyzer& analyzer,
                          const nlp::KeywordDictionary& outage_dictionary,
                          std::uint64_t ocr_seed) {
  SocialSignal sig;
  sig.date = post.date;
  const auto scores = analyzer.score(post.full_text());
  sig.positive = scores.positive;
  sig.negative = scores.negative;
  sig.neutral = scores.neutral;
  sig.popularity = post.popularity();
  sig.mentions_outage = outage_dictionary.matches(post.full_text());
  if (post.screenshot) {
    core::Rng rng{ocr_seed ^ post.id};
    const ocr::NoisyOcr channel;
    const ocr::ReportExtractor extractor;
    if (const auto report =
            extractor.extract(channel.read(*post.screenshot, rng))) {
      sig.reported_downlink_mbps = report->download_mbps;
    }
  }
  return sig;
}

}  // namespace usaas::service
