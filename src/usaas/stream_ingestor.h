// The streaming ingest front-end of §5's live USaaS service.
//
// Batch ingest (PR 2) assumes somebody hands the service a complete,
// clean corpus. A live feed is neither: records arrive one at a time from
// millions of users, burst around exactly the outage events the service
// exists to detect, and a fraction of them are garbage. StreamIngestor
// sits between producers and QueryService:
//
//   producers ──push()──▶ bounded staging buffers ──flush()──▶ QueryService
//                 │                                   (two-pass batch path,
//                 └──▶ dead-letter quarantine          under the corpus
//                      (poison records)                write lock)
//
//   * Staging is bounded per corpus (calls / posts). A buffer flushes
//     through the existing two-pass counted batch pipeline when it
//     reaches the flush watermark, or on an explicit flush() call — the
//     feed never accumulates an unbounded batch in memory.
//   * When producers outrun the flusher (a flush keeps failing and the
//     buffer fills), the configured BackpressurePolicy decides: kBlock
//     retries the flush with exponential backoff inside push(), kDropOldest
//     evicts the oldest staged record, kReject refuses the new one.
//   * Malformed records — NaN/negative metrics, out-of-range dates, empty
//     post text — are quarantined into a capped dead-letter buffer with
//     per-reason counters instead of poisoning shard statistics.
//   * A core::FaultInjector (optional) injects flush failures, slow
//     flushes and record corruption, deterministically, so the failure
//     paths above are testable — including under TSan/ASan.
//
// Determinism: flush slicing is a pure function of the push sequence and
// the watermark, and the batch pipeline is bit-identical to one-by-one
// ingest, so a single-producer stream yields query results bit-identical
// to one-shot batch ingest of the same records — at any watermark, any
// thread count, either ShardingPolicy (test_usaas_streaming holds it to
// that). push() is thread-safe; with multiple producers the interleaving
// (not the per-producer order) is scheduler-dependent, as in any real feed.
//
// Health (accepted/staged/flushed/quarantined/dropped/rejected/failure
// counters) is published into QueryService::stats() after every push and
// flush, so operators see snapshot staleness next to throughput.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "confsim/call.h"
#include "core/fault_injector.h"
#include "social/post.h"
#include "usaas/query_service.h"

namespace usaas::service {

/// What push() does when a staging buffer is full and cannot be drained.
enum class BackpressurePolicy {
  /// Retry the flush with exponential backoff inside push() — the caller
  /// blocks until the record fits or max_block_rounds is exhausted (then
  /// the record is rejected and the stream marked degraded).
  kBlock,
  /// Evict the oldest staged record to make room; always accepts.
  kDropOldest,
  /// Refuse the new record immediately.
  kReject,
};

[[nodiscard]] constexpr const char* to_string(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "unknown";
}

/// Why a record was quarantined. Priority order: the first matching reason
/// (in declaration order) is recorded when a record is broken several ways.
enum class QuarantineReason {
  kDateOutOfRange,   // before 2000-01-01 or after 2099-12-31 (incl. the
                     // default-constructed 1970 date of an unset field)
  kNanMetric,        // any NaN network metric / engagement / MOS
  kNegativeMetric,   // any negative network metric or engagement
  kEngagementOutOfRange,  // engagement percentage above 100
  kMosOutOfRange,    // sampled MOS outside [1, 5]
  kEmptyPostText,    // post whose title+body is empty or whitespace
};

inline constexpr std::size_t kNumQuarantineReasons = 6;

[[nodiscard]] constexpr const char* to_string(QuarantineReason r) {
  switch (r) {
    case QuarantineReason::kDateOutOfRange: return "date-out-of-range";
    case QuarantineReason::kNanMetric: return "nan-metric";
    case QuarantineReason::kNegativeMetric: return "negative-metric";
    case QuarantineReason::kEngagementOutOfRange:
      return "engagement-out-of-range";
    case QuarantineReason::kMosOutOfRange: return "mos-out-of-range";
    case QuarantineReason::kEmptyPostText: return "empty-post-text";
  }
  return "unknown";
}

/// Outcome of a single push.
enum class PushOutcome {
  kAccepted,     // staged (and possibly flushed)
  kQuarantined,  // failed validation; dead-lettered, shards untouched
  kRejected,     // refused by backpressure (kReject, or kBlock exhausted)
};

struct StreamIngestorConfig {
  /// Staging bounds, in records (calls / posts).
  std::size_t call_capacity{4096};
  std::size_t post_capacity{8192};
  /// Flush when a buffer reaches this many staged records; clamped into
  /// [1, capacity]. 1 flushes every record; capacity flushes only when
  /// full.
  std::size_t call_flush_watermark{1024};
  std::size_t post_flush_watermark{2048};
  BackpressurePolicy backpressure{BackpressurePolicy::kBlock};
  /// Dead-letter bound: oldest quarantined records are evicted past this
  /// (the per-reason counters stay exact).
  std::size_t quarantine_capacity{256};
  /// Flush attempts per flush round: 1 try + (max_flush_attempts - 1)
  /// retries with exponential backoff.
  std::size_t max_flush_attempts{4};
  std::chrono::milliseconds retry_backoff{1};   // doubles per retry...
  std::chrono::milliseconds max_backoff{50};    // ...capped here
  /// kBlock only: flush rounds a full-buffer push endures before giving
  /// up and rejecting the record.
  std::size_t max_block_rounds{3};
};

class StreamIngestor {
 public:
  /// Borrows the service (must outlive the ingestor) and, optionally, a
  /// fault injector (tests / chaos runs; nullptr = no faults).
  explicit StreamIngestor(QueryService& service,
                          StreamIngestorConfig config = {},
                          core::FaultInjector* faults = nullptr);

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  /// Pushes one record. Thread-safe. May block under kBlock backpressure.
  PushOutcome push(const confsim::CallRecord& call);
  PushOutcome push(const social::Post& post);

  /// Chunk convenience: pushes records one by one, stopping early only on
  /// rejection. Returns how many were accepted (quarantined records are
  /// skipped, not counted, and do not stop the chunk).
  std::size_t push_calls(std::span<const confsim::CallRecord> calls);
  std::size_t push_posts(std::span<const social::Post> posts);

  /// Amortized span push: one lock acquisition and one health publish for
  /// the whole span, instead of one of each per record. Per-record
  /// semantics (validation, quarantine, backpressure, watermark flushes)
  /// are identical to a push() loop — flush slicing is a pure function of
  /// the push sequence, so query results are bit-identical too. Stops
  /// early on the first rejection; returns how many records were
  /// accepted.
  std::size_t push_many(std::span<const confsim::CallRecord> calls);
  std::size_t push_many(std::span<const social::Post> posts);

  /// Explicit watermark: flush both staging buffers now. True when every
  /// staged record reached the service (false = some records remain
  /// staged after a failed flush round; they are retried on the next
  /// push/flush).
  bool flush();

  /// One quarantined record, reduced to what an operator needs to triage.
  struct QuarantinedRecord {
    enum class Corpus { kCall, kPost };
    Corpus corpus{Corpus::kCall};
    QuarantineReason reason{QuarantineReason::kDateOutOfRange};
    core::Date date;       // as carried by the record (may be the bad value)
    std::uint64_t id{0};   // call_id / post id
  };

  /// Counters snapshot. All cumulative since construction.
  struct Stats {
    StreamHealth health;
    std::array<std::uint64_t, kNumQuarantineReasons> quarantined_by_reason{};
    std::uint64_t quarantine_evicted{0};  // dead-letter cap overflow
    std::uint64_t blocked_pushes{0};      // pushes that hit kBlock waiting
    std::uint64_t backoff_waits{0};       // individual backoff sleeps
    std::uint64_t staged_calls{0};
    std::uint64_t staged_posts{0};
  };
  [[nodiscard]] Stats stats() const;

  /// Copy of the dead-letter buffer, oldest first (capped; see config).
  [[nodiscard]] std::vector<QuarantinedRecord> quarantine() const;

  [[nodiscard]] const StreamIngestorConfig& config() const { return config_; }

 private:
  enum class Corpus { kCalls, kPosts };

  // All private helpers require mu_ held.
  PushOutcome push_call_locked(const confsim::CallRecord& call);
  PushOutcome push_post_locked(const social::Post& post);
  [[nodiscard]] bool make_room(Corpus corpus);
  bool flush_corpus(Corpus corpus);
  void quarantine_record(QuarantinedRecord record);
  void publish_health();
  [[nodiscard]] StreamHealth health_snapshot() const;

  QueryService& service_;
  StreamIngestorConfig config_;
  core::FaultInjector* faults_;
  /// Registered against the service's telemetry registry at construction;
  /// null no-ops when telemetry is off. Flush spans cover the successful
  /// service ingest only (staging bookkeeping is nanoseconds); backoff
  /// observations record the computed sleep, costing no extra clock read.
  core::telemetry::Histogram flush_calls_seconds_;
  core::telemetry::Histogram flush_posts_seconds_;
  core::telemetry::Histogram backoff_seconds_;

  mutable std::mutex mu_;
  std::deque<confsim::CallRecord> staged_calls_;
  std::deque<social::Post> staged_posts_;
  std::deque<QuarantinedRecord> dead_letter_;
  Stats stats_{};
  /// Per-corpus degradation (retries exhausted, records stuck staged).
  /// Kept separate so a successful calls flush cannot mask stuck posts;
  /// StreamHealth::degraded reports the OR of the two.
  bool degraded_calls_{false};
  bool degraded_posts_{false};
  /// Cycles the corruption kind applied when the fault injector asks for
  /// a corrupt record, so every poison shape gets exercised.
  std::uint64_t corruption_cursor_{0};
};

/// Validation used by the ingestor (exposed for tests): the first reason a
/// record would be quarantined for, or nullopt for a clean record.
[[nodiscard]] std::optional<QuarantineReason> validate_record(
    const confsim::CallRecord& call);
[[nodiscard]] std::optional<QuarantineReason> validate_record(
    const social::Post& post);

}  // namespace usaas::service
