// User Signals as-a-Service: the query façade of §5 / Fig 8.
//
// Network and service providers submit queries ("how do users on network X
// experience service Y?") and get aggregated, user-centric insights built
// from the ingested implicit signals (user actions), sampled MOS, and
// offline social feedback. The service deliberately exposes *aggregates* —
// never individual posts or sessions — matching the paper's privacy
// stance ("the social media user feedback insights should be aggregated").
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "social/post.h"
#include "usaas/correlation_engine.h"
#include "usaas/mos_predictor.h"
#include "usaas/signals.h"

namespace usaas::service {

/// A USaaS query: what the stakeholder wants to know.
struct Query {
  /// Date window (inclusive).
  core::Date first{2022, 1, 1};
  core::Date last{2022, 12, 31};
  /// Restrict implicit signals to a platform.
  std::optional<confsim::Platform> platform;
  /// Restrict implicit signals to an access network — the paper's §5
  /// example: "if SpaceX Starlink wants to understand how users on their
  /// network are perceiving the MS Teams experience", query with
  /// access = kLeoSatellite.
  std::optional<netsim::AccessTechnology> access;
  /// Network metric of interest for the engagement breakdown.
  netsim::Metric metric{netsim::Metric::kLatency};
  double metric_lo{0.0};
  double metric_hi{300.0};
  std::size_t bins{10};
};

/// The aggregated answer.
struct Insight {
  /// Engagement curves over the requested metric, one per action.
  std::vector<EngagementCurve> engagement;
  /// MOS correlation per engagement metric (when enough samples).
  std::vector<std::pair<EngagementMetric, double>> mos_spearman;
  /// Predicted mean MOS across *all* sessions in the window (backfilled by
  /// the predictor; this is the coverage USaaS adds over raw MOS).
  std::optional<double> predicted_mean_mos;
  /// Observed mean MOS over the sampled subset.
  std::optional<double> observed_mean_mos;
  std::size_t sessions{0};
  std::size_t rated_sessions{0};
  /// Social-side aggregates over the window.
  std::size_t posts{0};
  double strong_positive_share{0.0};  // of strong-scored posts
  std::size_t outage_mention_days{0};
  /// Days whose outage-keyword count exceeded the window mean by 3x.
  std::vector<core::Date> outage_alert_days;
};

class QueryService {
 public:
  QueryService();

  /// Ingests implicit + explicit corpora. May be called repeatedly.
  void ingest_calls(std::span<const confsim::CallRecord> calls);
  void ingest_posts(std::span<const social::Post> posts);

  /// Trains the MOS predictor on everything ingested so far. Requires at
  /// least 30 rated sessions.
  void train_predictor();

  /// Answers a query from the ingested signals.
  [[nodiscard]] Insight run(const Query& query) const;

  [[nodiscard]] std::size_t ingested_sessions() const {
    return engine_.session_count();
  }
  [[nodiscard]] std::size_t ingested_posts() const { return posts_.size(); }

 private:
  CorrelationEngine engine_;
  std::vector<social::Post> posts_;
  nlp::SentimentAnalyzer analyzer_;
  MosPredictor predictor_;
  bool predictor_trained_{false};
};

}  // namespace usaas::service
