// User Signals as-a-Service: the query façade of §5 / Fig 8.
//
// Network and service providers submit queries ("how do users on network X
// experience service Y?") and get aggregated, user-centric insights built
// from the ingested implicit signals (user actions), sampled MOS, and
// offline social feedback. The service deliberately exposes *aggregates* —
// never individual posts or sessions — matching the paper's privacy
// stance ("the social media user feedback insights should be aggregated").
//
// Scale-out (§5's ~150-200 M sessions): both corpora are partitioned into
// per-month (x per-platform, for sessions) shards at ingest; queries prune
// shards on the date window / platform filter and fan the remaining shards
// across a thread pool, merging partial accumulators in shard-key order so
// results never depend on the thread count. Social posts are sentiment- and
// outage-keyword-scored ONCE at ingest and stored pre-scored — repeated
// queries no longer re-run the analyzer over the whole corpus.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "core/fingerprint.h"
#include "core/lru_cache.h"
#include "core/rw_lock.h"
#include "core/scheduler_clock.h"
#include "core/telemetry/event_journal.h"
#include "core/telemetry/history.h"
#include "core/telemetry/metrics.h"
#include "core/telemetry/request_trace.h"
#include "core/telemetry/slow_query_log.h"
#include "core/telemetry/trace.h"
#include "core/thread_pool.h"
#include "nlp/keywords.h"
#include "nlp/post_scorer.h"
#include "nlp/sentiment.h"
#include "social/post.h"
#include "usaas/correlation_engine.h"
#include "usaas/mos_predictor.h"
#include "usaas/shard_summary.h"
#include "usaas/signals.h"

namespace usaas::service {

/// Why a query was rejected (Query::validate). Stable enum so callers can
/// branch on the reason; the message carries the offending values.
enum class QueryError {
  kNone,
  kReversedWindow,        // first > last
  kNonFiniteMetricRange,  // metric_lo / metric_hi is NaN or infinite
  kEmptyMetricRange,      // metric_lo >= metric_hi
  kZeroBins,              // bins == 0
  kDeadlineExceeded,      // the RunBudget expired mid-computation
};

[[nodiscard]] constexpr const char* to_string(QueryError e) {
  switch (e) {
    case QueryError::kNone: return "none";
    case QueryError::kReversedWindow: return "reversed-window";
    case QueryError::kNonFiniteMetricRange: return "non-finite-metric-range";
    case QueryError::kEmptyMetricRange: return "empty-metric-range";
    case QueryError::kZeroBins: return "zero-bins";
    case QueryError::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

/// Structured validation verdict: reason enum + human-readable message.
struct QueryValidation {
  QueryError error{QueryError::kNone};
  std::string message;
  [[nodiscard]] bool ok() const { return error == QueryError::kNone; }
};

/// A USaaS query: what the stakeholder wants to know.
struct Query {
  /// Date window (inclusive); applies to sessions and posts alike.
  core::Date first{2022, 1, 1};
  core::Date last{2022, 12, 31};
  /// Restrict implicit signals to a platform.
  std::optional<confsim::Platform> platform;
  /// Restrict implicit signals to an access network — the paper's §5
  /// example: "if SpaceX Starlink wants to understand how users on their
  /// network are perceiving the MS Teams experience", query with
  /// access = kLeoSatellite.
  std::optional<netsim::AccessTechnology> access;
  /// Network metric of interest for the engagement breakdown.
  netsim::Metric metric{netsim::Metric::kLatency};
  double metric_lo{0.0};
  double metric_hi{300.0};
  std::size_t bins{10};

  /// A query is answerable when the window is ordered, the metric range is
  /// finite and non-empty, and it requests at least one bin. run() returns
  /// an empty Insight (carrying the error) for anything else instead of
  /// NaN/degenerate aggregates. The first failing check wins, in the
  /// QueryError declaration order.
  [[nodiscard]] QueryValidation validate() const;
  [[nodiscard]] bool valid() const { return validate().ok(); }
};

/// How a query was ultimately served — the per-query execution shape
/// (satellite of the cumulative QueryFanoutStats / InsightCacheStats).
enum class ServedBy {
  kCache,         // insight cache hit; no shard was visited
  kSummaryMerge,  // every shard visit answered from a tier-2 summary
  kScan,          // every shard visit rescanned records
  kMixed,         // some summary merges, some scans (boundary shards)
  kInvalid,       // the query failed validation; nothing was computed
  kExpired,       // the run budget expired; the computation was abandoned
};

[[nodiscard]] constexpr const char* to_string(ServedBy s) {
  switch (s) {
    case ServedBy::kCache: return "cache";
    case ServedBy::kSummaryMerge: return "summary-merge";
    case ServedBy::kScan: return "scan";
    case ServedBy::kMixed: return "mixed";
    case ServedBy::kInvalid: return "invalid";
    case ServedBy::kExpired: return "expired";
  }
  return "unknown";
}

/// Remaining-time budget the admission layer propagates into run(): the
/// absolute clock-seconds instant after which continuing the computation
/// is pointless (the client has already timed out). compute_insight
/// checks it cooperatively at phase boundaries — between engagement
/// sweeps, before the tally, and per shard inside the social fan-out —
/// and abandons the run with QueryError::kDeadlineExceeded instead of
/// burning pool time on an answer nobody is waiting for. An abandoned
/// run returns a fresh skeleton Insight (never a torn partial) and is
/// never cached. A default RunBudget (null clock) never expires, so the
/// plain run() path pays one predictable branch per checkpoint.
struct RunBudget {
  core::SchedulerClock* clock{nullptr};
  double deadline{0.0};  ///< Absolute seconds on `clock`; ignored if null.
  /// Request trace ID riding the budget into run(): stamped into the
  /// Insight's execution report and slow-log entries so an answer links
  /// back to its TraceRecord. 0 = untraced (tracing disabled or a direct
  /// run() without admission).
  std::uint64_t trace_id{0};
  [[nodiscard]] bool expired() const {
    return clock != nullptr && clock->now() >= deadline;
  }
};

/// Per-query execution report carried on every Insight: was this answer a
/// cache hit, a summary merge or a record scan, and how wide did it fan
/// out. Shard-visit deltas cover THIS query only (the cumulative service
/// counters live in ServiceStats). `seconds` is 0 when telemetry is
/// disabled — the kill switch removes the clock reads, not just the
/// counters.
struct QueryExecution {
  ServedBy served_by{ServedBy::kScan};
  bool cache_hit{false};
  double seconds{0.0};
  /// Session-engine shard visits (engagement curves + MOS + tally).
  std::uint64_t shards_from_summary{0};
  std::uint64_t shards_scanned{0};
  /// Social-side post-shard visits.
  std::uint64_t post_shards_from_summary{0};
  std::uint64_t post_shards_scanned{0};
  /// Request trace ID (RunBudget::trace_id; 0 = untraced), linking this
  /// report to its /debug/traces TraceRecord.
  std::uint64_t trace_id{0};
  /// Per-phase laps of THIS run (all 0 for cache hits past the probe, and
  /// when telemetry is disabled — the phases share TraceSpan's clock
  /// reads, so the kill switch removes them too).
  double validate_seconds{0.0};
  double cache_probe_seconds{0.0};
  double implicit_seconds{0.0};
  double social_seconds{0.0};
};

/// The aggregated answer.
struct Insight {
  /// Engagement curves over the requested metric, one per action.
  std::vector<EngagementCurve> engagement;
  /// MOS correlation per engagement metric (when enough samples).
  std::vector<std::pair<EngagementMetric, double>> mos_spearman;
  /// Predicted mean MOS across *all* sessions in the window (backfilled by
  /// the predictor; this is the coverage USaaS adds over raw MOS).
  std::optional<double> predicted_mean_mos;
  /// Observed mean MOS over the sampled subset.
  std::optional<double> observed_mean_mos;
  std::size_t sessions{0};
  std::size_t rated_sessions{0};
  /// Social-side aggregates over the window.
  std::size_t posts{0};
  double strong_positive_share{0.0};  // of strong-scored posts
  std::size_t outage_mention_days{0};
  /// Days whose outage-keyword count exceeded the window mean by 3x.
  std::vector<core::Date> outage_alert_days;
  /// Why the query was rejected (kNone for an answered query).
  QueryError error{QueryError::kNone};
  /// Corpus version this insight was computed against: the number of
  /// successful mutating operations (ingest batches / flushes / retrains)
  /// the snapshot includes. Monotone; two insights with equal versions saw
  /// identical corpora.
  std::uint64_t corpus_version{0};
  /// How many corpus versions behind the service this answer was when it
  /// was served. 0 for every freshly computed or current-version cached
  /// answer; > 0 only on the admission scheduler's degrade path, which
  /// serves a pre-version-bump cache entry instead of shedding (see
  /// QueryService::find_stale_cached — the bound is the caller's
  /// max-versions-behind knob).
  std::uint64_t staleness{0};
  /// How this answer was produced (cache / summary merge / scan) and how
  /// wide it fanned out. Cache hits return the cached aggregates with a
  /// fresh execution report (served_by = kCache, zero shard visits).
  QueryExecution execution;
};

/// Canonical, version-independent fingerprint of a query: equal queries
/// (after cache-key normalization — packed dates, canonical zeros) share
/// it across corpus mutations. Keys the slow-query log.
[[nodiscard]] std::uint64_t query_fingerprint(const Query& query);

/// Estimated heap behind one Insight (the insight-cache byte gauge's unit
/// of account): every owned allocation — the engagement vector's own
/// buffer, each curve's points, the correlation pairs, the alert dates —
/// on top of sizeof(Insight).
[[nodiscard]] std::size_t insight_heap_bytes(const Insight& insight);

/// What a query is expected to cost before running it, assembled from the
/// fingerprint-keyed slow-query history and the summary-vs-scan fanout
/// predictor (the same whole-month / boundary-cut rule the social side
/// executes). The admission scheduler maps this to tokens; it is an
/// estimate, never a promise.
struct QueryCostEstimate {
  /// The current corpus version already has a cached entry: the query
  /// would be served in O(1) regardless of its shape.
  bool cached{false};
  /// Whole months inside the window (answerable from per-shard summaries
  /// when summaries are on) vs boundary-cut months that force rescans.
  std::uint64_t summary_months{0};
  std::uint64_t scan_months{0};
  /// Worst observed latency for this fingerprint, < 0 when the slow-query
  /// log has no history.
  double slow_log_seconds{-1.0};
  /// Sessions a scan would touch, scaled by the window's share of the
  /// ingested months.
  double window_sessions{0.0};
};

struct QueryServiceConfig {
  /// kMonthPlatform partitions both corpora; kSingleShard keeps the flat
  /// sequential layout (the shard-equivalence reference path).
  ShardingPolicy sharding{ShardingPolicy::kMonthPlatform};
  /// Worker threads for ingest partitioning and query fan-out; <= 1 runs
  /// everything on the calling thread. Results are identical either way.
  std::size_t threads{0};
  /// Tier-1 insight cache: maximum cached insights, keyed on (canonical
  /// query fingerprint, corpus version). 0 disables caching. Version is
  /// part of the key, so mutations never flush the cache — stale entries
  /// simply become unreachable and age out of the LRU.
  std::size_t insight_cache_entries{128};
  /// Tier 2: maintain mergeable per-shard summaries so matching cold
  /// queries merge O(shards) precomputed accumulators instead of
  /// rescanning O(sessions) records. Only effective under kMonthPlatform
  /// (a single flat shard has nothing to prune or merge).
  bool shard_summaries{true};
  /// Layout the summaries precompute; queries must match an axis (and the
  /// grid) exactly to be summary-answerable.
  SummaryConfig summary_layout{};
  /// Metrics/tracing sink; nullptr uses the process-wide
  /// telemetry::Registry::global(). Tests and A/B benches hand each
  /// service its own Registry for isolation. A disabled registry
  /// (USAAS_TELEMETRY=off or Registry{false}) turns every handle into a
  /// no-op and disables the slow-query log.
  core::telemetry::Registry* telemetry{nullptr};
  /// Worst-queries log capacity (distinct query fingerprints kept);
  /// 0 disables the log.
  std::size_t slow_query_log_entries{32};
  /// Request-trace retention (rings + sampling policy). Forced off — no
  /// rings allocated, no IDs minted — when the registry is disabled.
  core::telemetry::TracerConfig trace{};
  /// Telemetry time-series history (snapshot cadence + retention). Also
  /// forced off with the registry.
  core::telemetry::HistoryConfig history{};
  /// Control-plane event journal capacity (breaker transitions, bias
  /// bumps, backpressure). 0 disables; forced off with the registry.
  std::size_t event_journal_entries{256};
};

/// Thread safety: mutating operations (ingest_calls / ingest_posts /
/// train_predictor) take the corpus RW lock exclusively; run(), stats()
/// and the counters take it shared. Queries may therefore run concurrently
/// with live streaming ingest (see StreamIngestor) and always observe a
/// consistent flushed prefix of the corpus — never a torn shard. Every
/// successful mutation bumps the corpus version; run() stamps the version
/// it answered against into the Insight. Moving a QueryService transfers
/// its lock; it is only safe while no other thread is using the service.
class QueryService {
 public:
  QueryService() : QueryService(QueryServiceConfig{}) {}
  explicit QueryService(QueryServiceConfig config);

  QueryService(QueryService&&) = default;
  QueryService& operator=(QueryService&&) = default;

  /// Ingests implicit + explicit corpora. May be called repeatedly.
  /// Posts are sentiment- and outage-keyword-scored here, in parallel.
  void ingest_calls(std::span<const confsim::CallRecord> calls);
  void ingest_posts(std::span<const social::Post> posts);

  /// Trains the MOS predictor on everything ingested so far. Returns false
  /// — leaving the service in a defined untrained state, never a stale or
  /// partial one — when fewer than 30 rated sessions exist (including
  /// before any ingest). Safe to call repeatedly.
  bool train_predictor();
  [[nodiscard]] bool predictor_trained() const {
    const auto guard = sync_->lock.read();
    return predictor_trained_;
  }

  /// Answers a query from the ingested signals. Invalid queries (see
  /// Query::valid) yield an empty Insight.
  [[nodiscard]] Insight run(const Query& query) const {
    return run(query, RunBudget{});
  }

  /// run() with a cooperative deadline: when `budget` expires mid-
  /// computation the fan-out is abandoned at the next phase boundary and
  /// the returned Insight carries QueryError::kDeadlineExceeded with a
  /// ServedBy::kExpired execution report — never a torn partial answer,
  /// and never a cache entry. A cache hit is served even past the
  /// deadline (it is O(1) and strictly better than an error).
  [[nodiscard]] Insight run(const Query& query, const RunBudget& budget) const;

  /// Pre-admission cost probe (no shard is visited, the LRU order and the
  /// cache hit/miss counters are untouched): slow-query history for this
  /// fingerprint, the summary-vs-scan month split of the window, and
  /// whether the current version is already cached.
  [[nodiscard]] QueryCostEstimate estimate_query(const Query& query) const;

  /// The admission scheduler's degrade path: probe the insight cache for
  /// the NEWEST entry of this query at most `max_versions_behind`
  /// versions behind the current corpus (behind = 0 is a fresh hit). A
  /// hit comes back stamped with `staleness` = versions behind and a
  /// kCache execution report; nullopt when nothing within the bound is
  /// cached. Counts as ordinary cache traffic in stats().
  [[nodiscard]] std::optional<Insight> find_stale_cached(
      const Query& query, std::uint64_t max_versions_behind) const;

  [[nodiscard]] std::size_t ingested_sessions() const {
    const auto guard = sync_->lock.read();
    return engine_.session_count();
  }
  [[nodiscard]] std::size_t ingested_posts() const {
    const auto guard = sync_->lock.read();
    return post_count_;
  }
  [[nodiscard]] std::size_t session_shards() const {
    const auto guard = sync_->lock.read();
    return engine_.shard_count();
  }
  [[nodiscard]] std::size_t post_shards() const {
    const auto guard = sync_->lock.read();
    return post_shards_.size();
  }

  /// Number of successful mutating operations absorbed so far. Monotone;
  /// safe to poll from any thread.
  [[nodiscard]] std::uint64_t corpus_version() const {
    return sync_->version.load(std::memory_order_acquire);
  }

  /// Streaming front-end health push-down: StreamIngestor publishes its
  /// counters here after every push/flush so stats() reports staleness
  /// (records accepted but not yet queryable) alongside throughput.
  void publish_stream_health(const StreamHealth& health);

  /// Operational counters, the Insight-adjacent "how is the service
  /// doing" view: per-corpus ingest throughput/phase timings + shard
  /// fan-out + streaming health. Cheap to call; values are cumulative
  /// since construction.
  /// Tier-1 insight-cache counters (cumulative since construction).
  struct InsightCacheStats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t evictions{0};
    std::size_t entries{0};
    std::size_t capacity{0};
    /// Estimated bytes held by cached insights.
    std::size_t bytes{0};
  };

  struct ServiceStats {
    IngestStats sessions;
    IngestStats posts;
    std::size_t session_shards{0};
    std::size_t post_shards{0};
    std::uint64_t corpus_version{0};
    /// Last health published by the streaming front-end (all-zero when no
    /// StreamIngestor feeds this service).
    StreamHealth stream;
    InsightCacheStats insight_cache;
    /// Tier-2 fan-out: shard visits answered from summaries vs scanned.
    QueryFanoutStats fanout;
    /// Approximate heap held by the per-shard summaries.
    std::size_t summary_bytes{0};
    /// Records accepted by the streaming front-end but not yet visible to
    /// queries — the staleness of the snapshot queries answer from.
    [[nodiscard]] std::uint64_t staleness_records() const {
      return stream.staged;
    }
  };
  [[nodiscard]] ServiceStats stats() const;

  /// Operator exposition: every registry-native metric (query/ingest
  /// latency histograms, path counters) plus families derived from the
  /// same stats() snapshot (ingest counters, stream health, cache and
  /// fan-out stats), rendered as Prometheus text / a JSON snapshot. Both
  /// build from one stats() call, so the exposition can never disagree
  /// with stats() about a counter.
  [[nodiscard]] std::string metrics_text() const;
  [[nodiscard]] std::string metrics_json() const;

  /// The registry this service records into (never null; the config's, or
  /// the process-wide global).
  [[nodiscard]] core::telemetry::Registry& telemetry_registry() const {
    return *telemetry_;
  }

  /// The request tracer, event journal, and time-series history (never
  /// null; disabled no-op instances when the registry is off). The
  /// admission scheduler records traces and journal events here; the HTTP
  /// listener mints IDs, ticks the history, and serves /debug/*.
  [[nodiscard]] core::telemetry::RequestTracer& tracer() const {
    return *tracer_;
  }
  [[nodiscard]] core::telemetry::EventJournal& journal() const {
    return *journal_;
  }
  [[nodiscard]] core::telemetry::TelemetryHistory& history() const {
    return *history_;
  }

  /// Snapshot of the worst-queries log, slowest first.
  [[nodiscard]] std::vector<core::telemetry::SlowQueryEntry> slow_queries()
      const {
    return sync_->slow_log.worst();
  }
  /// IngestStats copies (not references: ingest may mutate them while the
  /// caller reads — snapshots are taken under the corpus read lock).
  [[nodiscard]] IngestStats session_ingest_stats() const {
    const auto guard = sync_->lock.read();
    return engine_.ingest_stats();
  }
  [[nodiscard]] IngestStats post_ingest_stats() const {
    const auto guard = sync_->lock.read();
    return post_ingest_stats_;
  }

 private:
  /// A post reduced to what queries need — scored once at ingest.
  struct ScoredPost {
    core::Date date;
    nlp::SentimentScores sentiment;
    std::uint32_t outage_hits{0};
  };
  struct PostShard {
    std::vector<ScoredPost> posts;
    /// Whole-shard pre-aggregates, folded at ingest in slot order (the
    /// social-side tier-2 summary). Only maintained when shard summaries
    /// are on; a query whose window covers this month whole reads these
    /// instead of rescanning `posts`, bit-identically.
    std::size_t strong_pos{0};
    std::size_t strong_neg{0};
    /// Outage-keyword hits summed per day of month (index day-1), over
    /// posts passing the alerting filter, accumulated in ingest order.
    std::array<double, 31> day_hits{};
    /// Per-shard access counters (registered at shard creation): how
    /// often queries answered from this shard's summary vs rescanned its
    /// posts — the spill-to-disk eviction signal (ROADMAP). Null no-ops
    /// when telemetry is disabled.
    core::telemetry::Counter summary_touches;
    core::telemetry::Counter scan_touches;
  };

  /// The canonical insight-cache key: corpus version + every query field
  /// in normalized scalar form. Packed dates y*512+m*32+d; -1 encodes an
  /// unset optional. metric_lo/hi are canonicalized (-0.0 -> 0.0) so
  /// operator== and the fingerprint hash agree.
  struct CacheKey {
    std::uint64_t version{0};
    std::int32_t first{0};
    std::int32_t last{0};
    std::int16_t platform{-1};
    std::int16_t access{-1};
    std::int16_t metric{0};
    std::uint64_t bins{0};
    double metric_lo{0.0};
    double metric_hi{0.0};
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    [[nodiscard]] std::size_t operator()(const CacheKey& k) const {
      core::Fingerprint fp;
      fp.mix(k.version);
      fp.mix_signed(k.first);
      fp.mix_signed(k.last);
      fp.mix_signed(k.platform);
      fp.mix_signed(k.access);
      fp.mix_signed(k.metric);
      fp.mix(k.bins);
      fp.mix(k.metric_lo);
      fp.mix(k.metric_hi);
      return static_cast<std::size_t>(fp.digest());
    }
  };

  /// Concurrency state, heap-held so the service stays movable (a move
  /// transfers the lock; see the class comment for when that is safe).
  /// The insight cache lives here under its own mutex: run() probes it
  /// while holding only the shared corpus lock, so concurrent readers
  /// serialize on cache_mu for the (cheap) lookup, not the computation.
  struct Sync {
    Sync(std::size_t cache_capacity, std::size_t slow_log_capacity)
        : cache{cache_capacity}, slow_log{slow_log_capacity} {}
    core::RwLock lock;
    std::atomic<std::uint64_t> version{0};
    std::mutex health_mu;
    StreamHealth health;
    std::mutex cache_mu;
    core::LruCache<CacheKey, Insight, CacheKeyHash> cache;
    /// Internally synchronized; lives here so run() (const) can record.
    core::telemetry::SlowQueryLog slow_log;
  };

  void bump_version() {
    sync_->version.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] static CacheKey make_cache_key(const Query& query,
                                               std::uint64_t version);
  friend std::uint64_t query_fingerprint(const Query& query);
  /// The uncached query evaluation (callers hold the shared corpus lock).
  /// Fills insight.execution's fan-out deltas; `span` (when live) gets
  /// the implicit/social phase laps.
  [[nodiscard]] Insight compute_insight(const Query& query,
                                        std::uint64_t version,
                                        const RunBudget& budget,
                                        core::telemetry::TraceSpan* span) const;
  /// Registers the service-level metric handles in telemetry_.
  void register_telemetry();
  /// Registry-native families + families derived from one stats()
  /// snapshot — the single source both exposition formats render.
  [[nodiscard]] std::vector<core::telemetry::MetricFamily> collect_families()
      const;
  void append_service_families(
      std::vector<core::telemetry::MetricFamily>& families,
      const ServiceStats& stats) const;

  QueryServiceConfig config_;
  std::unique_ptr<Sync> sync_;
  std::unique_ptr<core::ThreadPool> pool_;  // set iff config_.threads >= 2
  CorrelationEngine engine_;
  /// Resolved telemetry sink (config's registry or the global; never
  /// null). Handles below are null no-ops when the registry is disabled.
  core::telemetry::Registry* telemetry_{nullptr};
  /// Request traces, control-plane events, and metric history — heap-held
  /// (non-movable internals) and never null; disabled instances when the
  /// registry is off.
  std::unique_ptr<core::telemetry::RequestTracer> tracer_;
  std::unique_ptr<core::telemetry::EventJournal> journal_;
  std::unique_ptr<core::telemetry::TelemetryHistory> history_;
  core::telemetry::Histogram query_seconds_;
  core::telemetry::Histogram phase_validate_;
  core::telemetry::Histogram phase_cache_probe_;
  core::telemetry::Histogram phase_implicit_;
  core::telemetry::Histogram phase_social_;
  core::telemetry::Histogram retrain_seconds_;
  struct PostIngestTelemetry {
    core::telemetry::Histogram count;
    core::telemetry::Histogram plan;
    core::telemetry::Histogram scatter;
    core::telemetry::Histogram summarize;
    core::telemetry::Histogram total;
  };
  PostIngestTelemetry post_ingest_tel_;
  /// queries_total{path=...}, indexed by ServedBy.
  std::array<core::telemetry::Counter, 6> queries_by_path_;
  // month_key -> shard, ordered; a single key 0 under kSingleShard.
  std::map<int, PostShard> post_shards_;
  std::size_t post_count_{0};
  IngestStats post_ingest_stats_;
  /// The fused single-pass scorer (builtin lexicon + outage dictionary);
  /// immutable after construction, shared by all scatter workers.
  nlp::PostScorer scorer_;
  MosPredictor predictor_;
  bool predictor_trained_{false};
};

}  // namespace usaas::service
