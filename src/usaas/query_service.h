// User Signals as-a-Service: the query façade of §5 / Fig 8.
//
// Network and service providers submit queries ("how do users on network X
// experience service Y?") and get aggregated, user-centric insights built
// from the ingested implicit signals (user actions), sampled MOS, and
// offline social feedback. The service deliberately exposes *aggregates* —
// never individual posts or sessions — matching the paper's privacy
// stance ("the social media user feedback insights should be aggregated").
//
// Scale-out (§5's ~150-200 M sessions): both corpora are partitioned into
// per-month (x per-platform, for sessions) shards at ingest; queries prune
// shards on the date window / platform filter and fan the remaining shards
// across a thread pool, merging partial accumulators in shard-key order so
// results never depend on the thread count. Social posts are sentiment- and
// outage-keyword-scored ONCE at ingest and stored pre-scored — repeated
// queries no longer re-run the analyzer over the whole corpus.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "core/thread_pool.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "social/post.h"
#include "usaas/correlation_engine.h"
#include "usaas/mos_predictor.h"
#include "usaas/signals.h"

namespace usaas::service {

/// A USaaS query: what the stakeholder wants to know.
struct Query {
  /// Date window (inclusive); applies to sessions and posts alike.
  core::Date first{2022, 1, 1};
  core::Date last{2022, 12, 31};
  /// Restrict implicit signals to a platform.
  std::optional<confsim::Platform> platform;
  /// Restrict implicit signals to an access network — the paper's §5
  /// example: "if SpaceX Starlink wants to understand how users on their
  /// network are perceiving the MS Teams experience", query with
  /// access = kLeoSatellite.
  std::optional<netsim::AccessTechnology> access;
  /// Network metric of interest for the engagement breakdown.
  netsim::Metric metric{netsim::Metric::kLatency};
  double metric_lo{0.0};
  double metric_hi{300.0};
  std::size_t bins{10};

  /// A query is answerable when the window is ordered, the metric range is
  /// non-empty and it requests at least one bin. run() returns an empty
  /// Insight for anything else instead of NaN/degenerate aggregates.
  [[nodiscard]] bool valid() const {
    return !(first > last) && metric_lo < metric_hi && bins > 0;
  }
};

/// The aggregated answer.
struct Insight {
  /// Engagement curves over the requested metric, one per action.
  std::vector<EngagementCurve> engagement;
  /// MOS correlation per engagement metric (when enough samples).
  std::vector<std::pair<EngagementMetric, double>> mos_spearman;
  /// Predicted mean MOS across *all* sessions in the window (backfilled by
  /// the predictor; this is the coverage USaaS adds over raw MOS).
  std::optional<double> predicted_mean_mos;
  /// Observed mean MOS over the sampled subset.
  std::optional<double> observed_mean_mos;
  std::size_t sessions{0};
  std::size_t rated_sessions{0};
  /// Social-side aggregates over the window.
  std::size_t posts{0};
  double strong_positive_share{0.0};  // of strong-scored posts
  std::size_t outage_mention_days{0};
  /// Days whose outage-keyword count exceeded the window mean by 3x.
  std::vector<core::Date> outage_alert_days;
};

struct QueryServiceConfig {
  /// kMonthPlatform partitions both corpora; kSingleShard keeps the flat
  /// sequential layout (the shard-equivalence reference path).
  ShardingPolicy sharding{ShardingPolicy::kMonthPlatform};
  /// Worker threads for ingest partitioning and query fan-out; <= 1 runs
  /// everything on the calling thread. Results are identical either way.
  std::size_t threads{0};
};

class QueryService {
 public:
  QueryService() : QueryService(QueryServiceConfig{}) {}
  explicit QueryService(QueryServiceConfig config);

  /// Ingests implicit + explicit corpora. May be called repeatedly.
  /// Posts are sentiment- and outage-keyword-scored here, in parallel.
  void ingest_calls(std::span<const confsim::CallRecord> calls);
  void ingest_posts(std::span<const social::Post> posts);

  /// Trains the MOS predictor on everything ingested so far. Returns false
  /// — leaving the service in a defined untrained state, never a stale or
  /// partial one — when fewer than 30 rated sessions exist (including
  /// before any ingest). Safe to call repeatedly.
  bool train_predictor();
  [[nodiscard]] bool predictor_trained() const { return predictor_trained_; }

  /// Answers a query from the ingested signals. Invalid queries (see
  /// Query::valid) yield an empty Insight.
  [[nodiscard]] Insight run(const Query& query) const;

  [[nodiscard]] std::size_t ingested_sessions() const {
    return engine_.session_count();
  }
  [[nodiscard]] std::size_t ingested_posts() const { return post_count_; }
  [[nodiscard]] std::size_t session_shards() const {
    return engine_.shard_count();
  }
  [[nodiscard]] std::size_t post_shards() const {
    return post_shards_.size();
  }

  /// Operational counters, the Insight-adjacent "how is the service
  /// doing" view: per-corpus ingest throughput/phase timings + shard
  /// fan-out. Cheap to call; values are cumulative since construction.
  struct ServiceStats {
    IngestStats sessions;
    IngestStats posts;
    std::size_t session_shards{0};
    std::size_t post_shards{0};
  };
  [[nodiscard]] ServiceStats stats() const {
    return {engine_.ingest_stats(), post_ingest_stats_,
            engine_.shard_count(), post_shards_.size()};
  }
  [[nodiscard]] const IngestStats& session_ingest_stats() const {
    return engine_.ingest_stats();
  }
  [[nodiscard]] const IngestStats& post_ingest_stats() const {
    return post_ingest_stats_;
  }

 private:
  /// A post reduced to what queries need — scored once at ingest.
  struct ScoredPost {
    core::Date date;
    nlp::SentimentScores sentiment;
    std::uint32_t outage_hits{0};
  };
  struct PostShard {
    std::vector<ScoredPost> posts;
  };

  QueryServiceConfig config_;
  std::unique_ptr<core::ThreadPool> pool_;  // set iff config_.threads >= 2
  CorrelationEngine engine_;
  // month_key -> shard, ordered; a single key 0 under kSingleShard.
  std::map<int, PostShard> post_shards_;
  std::size_t post_count_{0};
  IngestStats post_ingest_stats_;
  nlp::SentimentAnalyzer analyzer_;
  MosPredictor predictor_;
  bool predictor_trained_{false};
};

}  // namespace usaas::service
