// Admission control in front of QueryService: per-tenant token buckets,
// cost-aware scheduling, and degrade-before-shed under saturation.
//
// The §5 USaaS front-end is multi-tenant by construction: operator
// dashboards, ad-hoc analyst queries and abusive crawlers share one
// corpus. The paper's user-centric framing cuts both ways — users need
// answers at interactive latency, AND a measurement service has to stay
// honest about what it served when it could not afford the fresh answer.
// So the scheduler:
//
//   * meters each tenant through a token bucket (rate/burst from
//     SchedulerConfig; unknown tenants get the default QoS). A query's
//     token cost is estimated BEFORE admission from the fingerprint-keyed
//     slow-query history, falling back to the summary-vs-scan fan-out
//     predictor (whole months are summary-answerable and cheap; boundary-
//     cut months force rescans and are expensive), so one tenant's cold
//     scans queue behind — not ahead of — everyone's cheap summary
//     merges;
//   * waits for tokens only while the deadline allows (max_wait_seconds),
//     through a pluggable SchedulerClock — tests inject a VirtualClock
//     and the whole admission schedule becomes deterministic;
//   * degrades before it sheds: a query that cannot be admitted in time
//     is answered from a pre-version-bump cached Insight when one exists
//     within max_versions_behind, stamped with an explicit
//     Insight::staleness (versions behind) instead of erroring. Only
//     when no degradable answer exists is the query shed.
//
// Every outcome is counted twice on purpose: in the scheduler's own
// stats() (plain integers under the scheduler mutex) and in the shared
// telemetry Registry (usaas_admission_* families, rendered by the
// service's exposition endpoint). The two views must reconcile exactly —
// admitted + degraded + shed == submitted — and scripts/check.sh fails
// the build when they do not.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/scheduler_clock.h"
#include "core/telemetry/metrics.h"
#include "core/token_bucket.h"
#include "usaas/query_service.h"

namespace usaas::service {

/// Per-tenant rate limit: `rate_per_sec` tokens accrue continuously up to
/// `burst`. One token is roughly one cached/summary-served query (see
/// SchedulerConfig cost knobs).
struct TenantQos {
  double rate_per_sec{50.0};
  double burst{100.0};
};

struct SchedulerConfig {
  /// QoS for tenants without an explicit entry in `tenant_qos`.
  TenantQos default_qos;
  std::map<std::string, TenantQos> tenant_qos;
  /// Admission deadline: the longest a submission may wait for tokens
  /// before the scheduler falls back to degrade-or-shed.
  double max_wait_seconds{0.25};
  /// Degrade bound: serve a cached Insight up to this many corpus
  /// versions behind the current one. 0 disables degraded answers
  /// entirely (saturation then sheds, and the shed_with_degradable
  /// tripwire records any answer that was available anyway).
  std::uint64_t max_versions_behind{2};
  /// Cost model: tokens per query. A current-version cache hit costs
  /// `min_cost_tokens`; slow-log history converts at
  /// seconds / `seconds_per_token`; otherwise the structural estimate
  /// charges per summary-answerable and per rescanned month.
  double min_cost_tokens{1.0};
  double summary_month_cost{0.25};
  double scan_month_cost{8.0};
  double seconds_per_token{1e-3};
  /// Clock for refills, deadlines and waiting. nullptr = real steady
  /// clock (owned by the scheduler); tests pass a core::VirtualClock and
  /// every refill/wait becomes deterministic.
  core::SchedulerClock* clock{nullptr};
  /// Metric sink. nullptr = the service's own registry, so the admission
  /// families render through the same exposition endpoint as everything
  /// else.
  core::telemetry::Registry* telemetry{nullptr};
};

enum class AdmissionOutcome {
  kAdmitted,  ///< Ran fresh through QueryService::run.
  kDegraded,  ///< Served a stale cached Insight (insight.staleness > 0
              ///< possible, always <= max_versions_behind).
  kShed,      ///< Rejected: saturated and nothing degradable was cached.
};

[[nodiscard]] constexpr const char* to_string(AdmissionOutcome o) {
  switch (o) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kDegraded: return "degraded";
    case AdmissionOutcome::kShed: return "shed";
  }
  return "unknown";
}

/// One submission's verdict. `insight` is meaningful for kAdmitted and
/// kDegraded; a shed query carries no answer.
struct ScheduledResult {
  AdmissionOutcome outcome{AdmissionOutcome::kShed};
  Insight insight;
  /// Time spent inside admission (token waits), by the scheduler clock.
  double wait_seconds{0.0};
  /// Tokens this query was estimated to cost.
  double cost_tokens{0.0};
};

struct TenantSnapshot {
  double tokens{0.0};
  std::size_t queue_depth{0};
};

struct SchedulerStats {
  std::uint64_t submitted{0};
  std::uint64_t admitted{0};
  std::uint64_t degraded{0};
  std::uint64_t shed{0};
  /// Tripwire: queries shed while a degradable cached Insight existed.
  /// Structurally zero while degraded answers are enabled; non-zero only
  /// when max_versions_behind == 0 discards an available answer.
  std::uint64_t shed_with_degradable{0};
  std::map<std::string, TenantSnapshot> tenants;

  /// The accounting identity the exposition layer is checked against.
  [[nodiscard]] bool reconciles() const {
    return admitted + degraded + shed == submitted;
  }
};

class QueryScheduler {
 public:
  /// Borrows the service (must outlive the scheduler). Metric handles are
  /// registered eagerly so the usaas_admission_* families exist (at zero)
  /// from the first exposition scrape.
  explicit QueryScheduler(QueryService& service, SchedulerConfig config = {});

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admit-or-degrade-or-shed one query for `tenant`. Thread-safe; the
  /// underlying QueryService::run executes outside the scheduler mutex,
  /// so admitted queries from different tenants still fan out in
  /// parallel.
  [[nodiscard]] ScheduledResult submit(const std::string& tenant,
                                       const Query& query);

  /// The token cost submit() would charge right now (same estimator).
  [[nodiscard]] double estimate_cost(const Query& query) const;

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  struct TenantState {
    core::TokenBucket bucket;
    std::size_t queue_depth{0};
    core::telemetry::Gauge depth_gauge;
  };

  [[nodiscard]] double cost_tokens(const QueryCostEstimate& est) const;
  /// Finds or creates the tenant's bucket (caller holds mu_). References
  /// stay valid forever: tenants are never erased and std::map nodes do
  /// not move.
  [[nodiscard]] TenantState& tenant_state_locked(const std::string& tenant);

  QueryService& service_;
  SchedulerConfig config_;
  std::unique_ptr<core::SteadyClock> owned_clock_;
  core::SchedulerClock* clock_{nullptr};
  core::telemetry::Registry* telemetry_{nullptr};

  core::telemetry::Counter submitted_total_;
  core::telemetry::Counter admitted_total_;
  core::telemetry::Counter degraded_total_;
  core::telemetry::Counter shed_total_;
  core::telemetry::Counter shed_with_degradable_total_;
  core::telemetry::Histogram wait_seconds_;

  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
  SchedulerStats totals_;  ///< The stats() mirror (tenants filled lazily).
};

}  // namespace usaas::service
