// Admission control in front of QueryService: per-tenant token buckets,
// EDF cross-tenant queueing, circuit breakers, and degrade-before-shed
// under saturation.
//
// The §5 USaaS front-end is multi-tenant by construction: operator
// dashboards, ad-hoc analyst queries and abusive crawlers share one
// corpus. The paper's user-centric framing cuts both ways — users need
// answers at interactive latency, AND a measurement service has to stay
// honest about what it served when it could not afford the fresh answer.
// So the scheduler:
//
//   * meters each tenant through a token bucket (rate/burst from
//     SchedulerConfig; unknown tenants get the default QoS). A query's
//     token cost is estimated BEFORE admission from the fingerprint-keyed
//     slow-query history, falling back to the summary-vs-scan fan-out
//     predictor, then scaled by the tenant's cost bias (see below);
//   * queues saturated submissions in ONE deadline-ordered cross-tenant
//     FairQueue (earliest admission deadline wakes first), instead of
//     PR 7's per-tenant private bucket sleeps — weighting stays in each
//     bucket's rate, ordering under contention becomes global EDF. The
//     legacy per-bucket loop survives behind `fair_queue = false` for
//     A/B benching;
//   * propagates the caller's remaining budget into QueryService::run as
//     a RunBudget, so a request that expires mid-computation is
//     abandoned at the next phase boundary (AdmissionOutcome::kExpired)
//     instead of burning pool time on an answer nobody is waiting for;
//   * trips a per-tenant circuit breaker (closed -> open -> half-open,
//     see usaas/circuit_breaker.h) on consecutive shed/expired outcomes:
//     an open tenant short-circuits straight to degrade-or-shed without
//     clogging the queue;
//   * degrades before it sheds: a query that cannot be admitted in time
//     is answered from a pre-version-bump cached Insight when one exists
//     within max_versions_behind, stamped with an explicit
//     Insight::staleness. Only when no degradable answer exists is the
//     query shed — with a Retry-After hint from the bucket's refill
//     estimate (and the breaker's cooldown, when open);
//   * feeds degraded outcomes back into the cost model: a tenant served
//     stale answers `degrade_feedback_threshold` times in a row gets its
//     cost bias multiplied up (capped), so the scheduler stops
//     over-admitting a tenant whose QoS is visibly underprovisioned;
//     each fresh admit decays the bias back toward 1.
//
// Every outcome is counted twice on purpose: in the scheduler's own
// stats() (plain integers under the scheduler mutex) and in the shared
// telemetry Registry (usaas_admission_* families, rendered by the
// service's exposition endpoint). The two views must reconcile exactly —
// admitted + degraded + shed + expired == submitted — and
// scripts/check.sh fails the build when they do not.
//
// Lock ordering: FairQueue::mu_ -> QueryScheduler::mu_ (the queue calls
// the scheduler's try-acquire closure with its own lock held). submit()
// therefore never holds mu_ while calling into the queue, and stats()
// snapshots the queue BEFORE taking mu_.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/scheduler_clock.h"
#include "core/telemetry/metrics.h"
#include "core/token_bucket.h"
#include "usaas/circuit_breaker.h"
#include "usaas/fair_queue.h"
#include "usaas/query_service.h"

namespace usaas::service {

/// Per-tenant rate limit: `rate_per_sec` tokens accrue continuously up to
/// `burst`. One token is roughly one cached/summary-served query (see
/// SchedulerConfig cost knobs).
struct TenantQos {
  double rate_per_sec{50.0};
  double burst{100.0};
};

struct SchedulerConfig {
  /// QoS for tenants without an explicit entry in `tenant_qos`.
  TenantQos default_qos;
  std::map<std::string, TenantQos> tenant_qos;
  /// Admission deadline: the longest a submission may wait for tokens
  /// before the scheduler falls back to degrade-or-shed. A per-call
  /// budget below this bounds the wait further.
  double max_wait_seconds{0.25};
  /// Degrade bound: serve a cached Insight up to this many corpus
  /// versions behind the current one. 0 disables degraded answers
  /// entirely (saturation then sheds, and the shed_with_degradable
  /// tripwire records any answer that was available anyway).
  std::uint64_t max_versions_behind{2};
  /// Cost model: tokens per query. A current-version cache hit costs
  /// `min_cost_tokens`; slow-log history converts at
  /// seconds / `seconds_per_token`; otherwise the structural estimate
  /// charges per summary-answerable and per rescanned month.
  double min_cost_tokens{1.0};
  double summary_month_cost{0.25};
  /// Recalibrated for the columnar session store: a cold month rescan
  /// touches only the columns the query names (~2x+ cheaper than the old
  /// row scan), but still dwarfs a summary merge — ordering stays
  /// cache hit < summary-answerable month < scanned month.
  double scan_month_cost{4.0};
  double seconds_per_token{1e-3};
  /// EDF cross-tenant wait queue (usaas/fair_queue.h). false reverts to
  /// PR 7's per-tenant private bucket sleeps — kept for A/B benching the
  /// queueing policy; production keeps this on.
  bool fair_queue{true};
  /// Per-tenant circuit breaker; failure_threshold 0 disables it.
  CircuitBreaker::Config breaker;
  /// Degrade feedback: after this many CONSECUTIVE stale serves, a
  /// tenant's cost bias is multiplied by `degrade_feedback_factor`
  /// (capped at `cost_bias_max`); every fresh admit decays the bias by
  /// `cost_bias_decay` back toward 1. Threshold 0 disables feedback.
  std::size_t degrade_feedback_threshold{3};
  double degrade_feedback_factor{1.5};
  double cost_bias_max{8.0};
  double cost_bias_decay{0.9};
  /// Clock for refills, deadlines and waiting. nullptr = real steady
  /// clock (owned by the scheduler); tests pass a core::VirtualClock and
  /// every refill/wait becomes deterministic.
  core::SchedulerClock* clock{nullptr};
  /// Metric sink. nullptr = the service's own registry, so the admission
  /// families render through the same exposition endpoint as everything
  /// else.
  core::telemetry::Registry* telemetry{nullptr};
};

enum class AdmissionOutcome {
  kAdmitted,  ///< Ran fresh through QueryService::run.
  kDegraded,  ///< Served a stale cached Insight (insight.staleness > 0
              ///< possible, always <= max_versions_behind).
  kShed,      ///< Rejected: saturated and nothing degradable was cached.
  kExpired,   ///< The caller's budget ran out — in the queue, or mid-
              ///< computation (the run was abandoned at a phase
              ///< boundary; insight.error == kDeadlineExceeded).
};

[[nodiscard]] constexpr const char* to_string(AdmissionOutcome o) {
  switch (o) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kDegraded: return "degraded";
    case AdmissionOutcome::kShed: return "shed";
    case AdmissionOutcome::kExpired: return "expired";
  }
  return "unknown";
}

/// One submission's verdict. `insight` is meaningful for kAdmitted and
/// kDegraded; a shed or expired query carries no answer (an expired one
/// carries the error skeleton).
struct ScheduledResult {
  AdmissionOutcome outcome{AdmissionOutcome::kShed};
  Insight insight;
  /// Request trace ID (0 when tracing is disabled): every submission —
  /// admitted, degraded, shed or expired — records exactly one
  /// TraceRecord under this ID when the tracer samples it.
  std::uint64_t trace_id{0};
  /// Time spent inside admission (token waits), by the scheduler clock.
  double wait_seconds{0.0};
  /// Tokens this query was estimated to cost (after the tenant bias).
  double cost_tokens{0.0};
  /// On kShed: when retrying could plausibly succeed — the bucket's
  /// refill estimate, stretched to the breaker's probe time when open.
  /// The HTTP listener renders this as the 429 Retry-After header.
  double retry_after_seconds{0.0};
  /// True when an open circuit breaker bypassed admission entirely.
  bool breaker_short_circuit{false};
};

struct TenantSnapshot {
  double tokens{0.0};
  std::size_t queue_depth{0};
  CircuitBreaker::State breaker{CircuitBreaker::State::kClosed};
  double cost_bias{1.0};
  std::size_t consecutive_stale{0};
};

struct SchedulerStats {
  std::uint64_t submitted{0};
  std::uint64_t admitted{0};
  std::uint64_t degraded{0};
  std::uint64_t shed{0};
  std::uint64_t expired{0};
  /// Tripwire: queries shed while a degradable cached Insight existed.
  /// Structurally zero while degraded answers are enabled; non-zero only
  /// when max_versions_behind == 0 discards an available answer.
  std::uint64_t shed_with_degradable{0};
  /// Submissions an open breaker sent straight to degrade-or-shed.
  std::uint64_t breaker_short_circuits{0};
  /// Times a tenant's cost bias was bumped by the degrade feedback loop.
  std::uint64_t degrade_feedback_bumps{0};
  /// EDF wait-queue counters (all-zero when fair_queue is off).
  FairQueue::Stats fair_queue;
  std::map<std::string, TenantSnapshot> tenants;

  /// The accounting identity the exposition layer is checked against.
  [[nodiscard]] bool reconciles() const {
    return admitted + degraded + shed + expired == submitted;
  }
};

class QueryScheduler {
 public:
  /// Borrows the service (must outlive the scheduler). Metric handles are
  /// registered eagerly so the usaas_admission_* families exist (at zero)
  /// from the first exposition scrape.
  explicit QueryScheduler(QueryService& service, SchedulerConfig config = {});

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admit-or-degrade-or-shed one query for `tenant`. `budget_seconds`
  /// is the caller's total remaining patience: it bounds the admission
  /// wait (together with max_wait_seconds) AND rides into
  /// QueryService::run as a cooperative-cancellation deadline, so a
  /// request that expires mid-scan is abandoned (kExpired) instead of
  /// finishing an answer nobody will read. The default (infinite) budget
  /// reproduces PR 7 semantics exactly: expired stays 0. Thread-safe;
  /// QueryService::run executes outside every scheduler lock, so
  /// admitted queries from different tenants still fan out in parallel.
  /// `trace_id` 0 (the default) mints a fresh ID from the service's
  /// tracer; the HTTP listener passes an adopted X-Request-Id instead so
  /// wire traces correlate with the caller's own request log.
  [[nodiscard]] ScheduledResult submit(
      const std::string& tenant, const Query& query,
      double budget_seconds = std::numeric_limits<double>::infinity(),
      std::uint64_t trace_id = 0);

  /// The raw (bias-free) token cost submit() would start from right now.
  [[nodiscard]] double estimate_cost(const Query& query) const;

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  /// The scheduler's clock (the configured one, or the owned steady
  /// clock) — the time base every trace/journal timestamp shares.
  [[nodiscard]] core::SchedulerClock& clock() const { return *clock_; }

 private:
  struct TenantState {
    core::TokenBucket bucket;
    std::size_t queue_depth{0};
    core::telemetry::Gauge depth_gauge;
    CircuitBreaker breaker;
    core::telemetry::Gauge breaker_gauge;  ///< 0 closed / 1 open / 2 half
    double cost_bias{1.0};
    std::size_t consecutive_stale{0};
    core::telemetry::Gauge bias_gauge;  ///< current cost_bias (>= 1)
  };

  [[nodiscard]] double cost_tokens(const QueryCostEstimate& est) const;
  /// Finds or creates the tenant's bucket (caller holds mu_). References
  /// stay valid forever: tenants are never erased and std::map nodes do
  /// not move.
  [[nodiscard]] TenantState& tenant_state_locked(const std::string& tenant);
  /// PR 7's private-bucket wait loop (fair_queue = false). Returns true
  /// when the tokens were consumed before `deadline`. Takes and releases
  /// mu_ internally.
  [[nodiscard]] bool legacy_bucket_wait(TenantState& state, double cost,
                                        double deadline);
  /// Tally one outcome into totals_ + telemetry and stamp the breaker /
  /// feedback state; breaker transitions and cost-bias moves are also
  /// journaled (with `trace_id` as the causal back-link). Caller holds
  /// mu_; the journal's own mutex is a leaf below it.
  void record_outcome_locked(const std::string& tenant, TenantState& state,
                             AdmissionOutcome outcome, bool short_circuit,
                             double now, std::uint64_t trace_id);
  /// submit() minus trace assembly; flags report FairQueue verdicts the
  /// ScheduledResult does not carry (parked => "queued", unpayable).
  [[nodiscard]] ScheduledResult submit_impl(const std::string& tenant,
                                            const Query& query,
                                            double budget_seconds,
                                            std::uint64_t trace_id,
                                            bool& queued, bool& unpayable);

  QueryService& service_;
  SchedulerConfig config_;
  std::unique_ptr<core::SteadyClock> owned_clock_;
  core::SchedulerClock* clock_{nullptr};
  core::telemetry::Registry* telemetry_{nullptr};
  std::unique_ptr<FairQueue> queue_;  ///< set iff config_.fair_queue

  core::telemetry::Counter submitted_total_;
  core::telemetry::Counter admitted_total_;
  core::telemetry::Counter degraded_total_;
  core::telemetry::Counter shed_total_;
  core::telemetry::Counter expired_total_;
  core::telemetry::Counter shed_with_degradable_total_;
  core::telemetry::Counter breaker_short_circuits_total_;
  core::telemetry::Counter degrade_feedback_total_;
  core::telemetry::Histogram wait_seconds_;

  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
  SchedulerStats totals_;  ///< The stats() mirror (tenants filled lazily).
};

}  // namespace usaas::service
