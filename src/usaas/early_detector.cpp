#include "usaas/early_detector.h"

namespace usaas::service {

EarlyFeatureDetector::EarlyFeatureDetector(nlp::TrendMinerConfig config)
    : config_{config} {}

std::vector<EarlyDetection> EarlyFeatureDetector::detect(
    std::span<const social::Post> posts) const {
  nlp::TrendMiner miner{config_};
  for (const social::Post& post : posts) {
    miner.add_document({post.date, post.full_text(), post.popularity()});
  }
  std::vector<EarlyDetection> out;
  for (const nlp::EmergingTopic& t : miner.detect()) {
    out.push_back({t.term, t.first_detected, t.burst_score, t.weight});
  }
  return out;
}

std::optional<EarlyFeatureDetector::LeadTime>
EarlyFeatureDetector::lead_time_for(std::span<const social::Post> posts,
                                    const std::string& term,
                                    const core::Date& announcement) const {
  const auto detections = detect(posts);
  for (const EarlyDetection& d : detections) {  // earliest first
    if (d.term.find(term) == std::string::npos) continue;
    LeadTime lt;
    lt.detection = d;
    lt.days_before_announcement = d.first_detected.days_until(announcement);
    return lt;
  }
  return std::nullopt;
}

}  // namespace usaas::service
