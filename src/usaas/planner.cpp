#include "usaas/planner.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace usaas::service {

namespace {

/// Standard normal CDF.
double phi(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

}  // namespace

DeploymentPlanner::DeploymentPlanner(leo::LaunchSchedule history,
                                     leo::SubscriberModel subscribers,
                                     core::Date horizon_start,
                                     leo::ConstellationParams constellation_params,
                                     leo::SpeedModelParams speed_params,
                                     PlannerConfig config)
    : history_{std::move(history)},
      subscribers_{std::move(subscribers)},
      horizon_start_{horizon_start},
      constellation_params_{constellation_params},
      speed_params_{speed_params},
      config_{config} {}

leo::SpeedModel DeploymentPlanner::projected_model(const PlanSpec& plan) const {
  std::vector<leo::Launch> launches(history_.launches().begin(),
                                    history_.launches().end());
  for (std::size_t m = 0; m < plan.launches_per_month.size(); ++m) {
    const core::Date month = horizon_start_.plus_months(static_cast<int>(m));
    const int count = plan.launches_per_month[m];
    const int dim = month.days_in_month();
    for (int i = 0; i < count; ++i) {
      const int day = 1 + (dim * (2 * i + 1)) / (2 * std::max(count, 1));
      launches.push_back({core::Date(month.year(), month.month(),
                                     std::min(day, dim)),
                          plan.satellites_per_launch});
    }
  }
  return leo::SpeedModel{
      leo::ConstellationModel{leo::LaunchSchedule{std::move(launches)},
                              constellation_params_},
      subscribers_, speed_params_};
}

double DeploymentPlanner::forecast_pos(double mean_polarity) const {
  // Polarity ~ Normal(mean, sigma); strong+ when > t, strong- when < -t.
  const double t = config_.strong_polarity;
  const double s = config_.polarity_sigma;
  const double p_pos = 1.0 - phi((t - mean_polarity) / s);
  const double p_neg = phi((-t - mean_polarity) / s);
  const double denom = p_pos + p_neg;
  if (denom <= 0.0) return 0.5;
  return p_pos / denom;
}

PlanEvaluation DeploymentPlanner::evaluate(const PlanSpec& plan,
                                           int months) const {
  if (months <= 0) throw std::invalid_argument("evaluate: months <= 0");
  if (static_cast<int>(plan.launches_per_month.size()) > months) {
    throw std::invalid_argument("evaluate: plan longer than horizon");
  }
  const leo::SpeedModel model = projected_model(plan);

  PlanEvaluation ev;
  ev.plan = plan;

  // Seed the expectation from the recent pre-horizon history (users enter
  // the horizon already adapted to the status quo).
  double expectation =
      model.median_downlink_mbps(horizon_start_.plus_days(-30));

  for (int m = 0; m < months; ++m) {
    const core::Date month_start = horizon_start_.plus_months(m);
    PlanMonth pm;
    pm.month_start = month_start;
    pm.expectation_mbps = expectation;

    // Walk the month at a weekly stride (the fulcrum's ~20-day timescale
    // does not need daily resolution for planning), compounding the daily
    // EWMA factor across the stride.
    constexpr int kStrideDays = 7;
    const double stride_alpha =
        1.0 - std::pow(1.0 - config_.expectation_alpha_daily, kStrideDays);
    double pos_acc = 0.0;
    int steps = 0;
    const core::Date month_end = month_start.plus_months(1).plus_days(-1);
    for (core::Date d = month_start; d <= month_end;
         d = d.plus_days(kStrideDays)) {
      const double median = model.median_downlink_mbps(d);
      const double delta =
          expectation > 0.0 ? (median - expectation) / expectation : 0.0;
      const double polarity =
          std::clamp(config_.delta_gain * delta, -1.0, 1.0);
      pos_acc += forecast_pos(polarity);
      ++steps;
      expectation =
          (1.0 - stride_alpha) * expectation + stride_alpha * median;
    }
    const int days = steps;
    pm.median_downlink_mbps = model.median_downlink_mbps(
        core::Date(month_start.year(), month_start.month(), 15));
    pm.forecast_pos = days > 0 ? pos_acc / days : 0.5;
    ev.months.push_back(pm);
  }

  double acc = 0.0;
  double mn = 1.0;
  for (const auto& pm : ev.months) {
    acc += pm.forecast_pos;
    mn = std::min(mn, pm.forecast_pos);
  }
  ev.mean_pos = acc / static_cast<double>(ev.months.size());
  ev.min_pos = mn;
  ev.final_median_mbps = ev.months.back().median_downlink_mbps;
  return ev;
}

namespace {

double objective_score(const PlanEvaluation& ev, PlanObjective objective) {
  // kMinPos scores lexicographically (min, then mean): during greedy
  // construction a single launch often cannot move the worst month, and
  // the mean tie-break steers those launches somewhere useful instead of
  // defaulting to the first slot.
  return objective == PlanObjective::kMinPos
             ? ev.min_pos * 1000.0 + ev.mean_pos
             : ev.mean_pos;
}

}  // namespace

PlanEvaluation DeploymentPlanner::best_of(std::span<const PlanSpec> plans,
                                          int months,
                                          PlanObjective objective) const {
  if (plans.empty()) throw std::invalid_argument("best_of: no plans");
  PlanEvaluation best = evaluate(plans.front(), months);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    PlanEvaluation ev = evaluate(plans[i], months);
    if (objective_score(ev, objective) > objective_score(best, objective)) {
      best = std::move(ev);
    }
  }
  return best;
}

PlanSpec DeploymentPlanner::uniform_plan(int total_launches, int months,
                                         int sats_per_launch) {
  PlanSpec plan;
  plan.name = "uniform";
  plan.satellites_per_launch = sats_per_launch;
  plan.launches_per_month.assign(static_cast<std::size_t>(months), 0);
  for (int i = 0; i < total_launches; ++i) {
    plan.launches_per_month[static_cast<std::size_t>(
        (i * months) / total_launches)] += 1;
  }
  return plan;
}

PlanSpec DeploymentPlanner::front_loaded_plan(int total_launches, int months,
                                              int sats_per_launch) {
  PlanSpec plan;
  plan.name = "front-loaded";
  plan.satellites_per_launch = sats_per_launch;
  plan.launches_per_month.assign(static_cast<std::size_t>(months), 0);
  // Everything in the first quarter of the horizon.
  const int window = std::max(months / 4, 1);
  for (int i = 0; i < total_launches; ++i) {
    plan.launches_per_month[static_cast<std::size_t>(i % window)] += 1;
  }
  return plan;
}

PlanSpec DeploymentPlanner::back_loaded_plan(int total_launches, int months,
                                             int sats_per_launch) {
  PlanSpec plan;
  plan.name = "back-loaded";
  plan.satellites_per_launch = sats_per_launch;
  plan.launches_per_month.assign(static_cast<std::size_t>(months), 0);
  const int window = std::max(months / 4, 1);
  for (int i = 0; i < total_launches; ++i) {
    plan.launches_per_month[static_cast<std::size_t>(
        months - 1 - (i % window))] += 1;
  }
  return plan;
}

PlanSpec DeploymentPlanner::sentiment_aware_plan(int total_launches,
                                                 int months,
                                                 PlanObjective objective,
                                                 int sats_per_launch) const {
  PlanSpec plan;
  plan.name = std::string{"sentiment-aware("} + to_string(objective) + ")";
  plan.satellites_per_launch = sats_per_launch;
  plan.launches_per_month.assign(static_cast<std::size_t>(months), 0);
  for (int launch = 0; launch < total_launches; ++launch) {
    double best_score = -1.0;
    std::size_t best_month = 0;
    for (std::size_t m = 0; m < plan.launches_per_month.size(); ++m) {
      PlanSpec candidate = plan;
      candidate.launches_per_month[m] += 1;
      const double score =
          objective_score(evaluate(candidate, months), objective);
      if (score > best_score) {
        best_score = score;
        best_month = m;
      }
    }
    plan.launches_per_month[best_month] += 1;
  }

  // Local-search polish: greedy placement is myopic (a single launch
  // rarely moves the worst month, so early picks can strand launches).
  // Move one launch at a time between months while the objective improves.
  double current = objective_score(evaluate(plan, months), objective);
  bool improved = true;
  int passes = 0;
  while (improved && passes < 20) {
    improved = false;
    ++passes;
    for (std::size_t src = 0; src < plan.launches_per_month.size(); ++src) {
      for (std::size_t dst = 0; dst < plan.launches_per_month.size(); ++dst) {
        if (dst == src) continue;
        if (plan.launches_per_month[src] == 0) break;  // drained by a move
        PlanSpec candidate = plan;
        candidate.launches_per_month[src] -= 1;
        candidate.launches_per_month[dst] += 1;
        const double score =
            objective_score(evaluate(candidate, months), objective);
        if (score > current + 1e-9) {
          plan = std::move(candidate);
          current = score;
          improved = true;
        }
      }
    }
  }
  return plan;
}

}  // namespace usaas::service
