#include "usaas/circuit_breaker.h"

#include <algorithm>

namespace usaas::service {

bool CircuitBreaker::allow(double now) {
  if (config_.failure_threshold == 0) return true;  // breaker disabled
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      // Cooldown served: this caller becomes the half-open probe.
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  cooldown_ = config_.cooldown_seconds;
}

void CircuitBreaker::record_failure(double now) {
  if (config_.failure_threshold == 0) return;
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen) {
    // The probe failed: reopen, and make the next probe wait longer.
    cooldown_ = std::min(cooldown_ * config_.cooldown_backoff,
                         config_.max_cooldown_seconds);
    state_ = State::kOpen;
    open_until_ = now + cooldown_;
    probe_in_flight_ = false;
    return;
  }
  if (state_ == State::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = now + cooldown_;
  }
  // kOpen: short-circuits never record, so a failure here means a
  // request that was already past allow() when the breaker tripped;
  // counting it is enough, extending the open period is not warranted.
}

double CircuitBreaker::seconds_until_probe(double now) const {
  if (state_ != State::kOpen) return 0.0;
  return std::max(0.0, open_until_ - now);
}

}  // namespace usaas::service
