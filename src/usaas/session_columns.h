// Struct-of-arrays session storage: one contiguous column per scanned
// field of a ParticipantRecord (plus its call date), replacing the
// ~180-byte AoS rows CorrelationEngine shards used to hold.
//
// Why columns: every query a summary cannot discharge falls back to a
// record scan, and a typical metric x axis sweep reads perhaps 20 of
// those 180 bytes per row. At the paper's §5 scale (150-200 M sessions a
// quarter) scan bandwidth — not algorithmic cleverness — is the
// bottleneck, so the store keeps each field in its own array and the
// scan kernels touch only the columns a query names. The layout is also
// the ROADMAP's spill-to-disk format: every column is a flat POD extent
// that can be written and mmapped back without any re-encoding.
//
// Fidelity contract: the columns jointly hold every field of the original
// (date, ParticipantRecord) row — including the median aggregates no scan
// reads — so record(i)/date(i) materialize the exact row back (needed by
// sessions(), predictor training and the opaque ParticipantFilter path).
// The std::optional<core::Mos> becomes a value column plus a validity
// byte-mask: `mos_valid[i] != 0` is exactly `rec.mos.has_value()` and
// `mos[i]` is `rec.mos->score()` wherever valid. (A packed bitmap would
// make the parallel ingest scatter race on word boundaries between
// destination ranges; one byte per row is the TSan-clean equivalent and
// still 8x smaller than the optional it replaces.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "confsim/call.h"
#include "core/date.h"
#include "netsim/conditions.h"
#include "usaas/signals.h"

namespace usaas::service {

/// A growable array of trivially-copyable values that does NOT
/// value-initialize new slots: the two-pass ingest scatter overwrites
/// every reserved slot exactly once, so the memset std::vector::resize
/// would pay (and the page-fault storm of touching a fresh multi-hundred-
/// megabyte allocation twice) is pure waste — it was the dominant share
/// of the batch-ingest "plan" phase before this store existed.
template <typename T>
class PodColumn {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodColumn holds raw POD extents only (they must be "
                "memcpy-safe for the spill-to-disk serialization)");

 public:
  PodColumn() = default;
  PodColumn(const PodColumn& other) { *this = other; }
  PodColumn(PodColumn&& other) noexcept { *this = std::move(other); }
  PodColumn& operator=(const PodColumn& other) {
    if (this == &other) return *this;
    resize_uninit(other.size_);
    if (other.size_ > 0) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    }
    return *this;
  }
  PodColumn& operator=(PodColumn&& other) noexcept {
    if (this == &other) return *this;
    delete[] data_;
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    return *this;
  }
  ~PodColumn() { delete[] data_; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    // Geometric growth so repeated batch appends stay amortized-linear.
    std::size_t cap = capacity_ < 16 ? 16 : capacity_;
    while (cap < n) cap += cap / 2;
    // new T[cap] default-initializes: for these POD element types that
    // leaves the tail uninitialized, which is the point.
    T* grown = new T[cap];
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
    delete[] data_;
    data_ = grown;
    capacity_ = cap;
  }

  /// Grows (or shrinks) to `n` elements without initializing new slots.
  /// Callers must write every slot in [old_size, n) before reading it.
  void resize_uninit(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void push_back(T v) {
    reserve(size_ + 1);
    data_[size_++] = v;
  }

 private:
  T* data_{nullptr};
  std::size_t size_{0};
  std::size_t capacity_{0};
};

/// The column store for one session shard. All columns are parallel: row
/// i of every column belongs to the same (date, ParticipantRecord).
class SessionColumns {
 public:
  /// Order-preserving packed civil-day key: year*512 + month*32 + day.
  /// month*32 + day < 512, so (year, month, day) lexicographic order —
  /// i.e. core::Date's operator<=> — is preserved exactly, and the date
  /// window residual check becomes two integer compares per row.
  [[nodiscard]] static std::int32_t pack_day_key(const core::Date& d) {
    return static_cast<std::int32_t>(d.year()) * 512 +
           static_cast<std::int32_t>(d.month()) * 32 +
           static_cast<std::int32_t>(d.day());
  }
  [[nodiscard]] static core::Date unpack_day_key(std::int32_t key) {
    const std::int32_t day = key % 32;
    const std::int32_t month = (key / 32) % 16;
    return core::Date(static_cast<int>(key / 512), static_cast<int>(month),
                      static_cast<int>(day));
  }

  [[nodiscard]] std::size_t size() const { return day_key.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Grows every column to `n` rows without initializing the new slots
  /// (the ingest scatter fills them); keeps columns in lock-step.
  void resize_uninit(std::size_t n);
  void reserve(std::size_t n);

  /// Appends one row (the per-record ingest path).
  void append(const core::Date& date, const confsim::ParticipantRecord& rec);

  /// Overwrites row `i` from a source row (the batch-scatter path).
  /// Row `i` must already exist (resize_uninit first).
  void set(std::size_t i, std::int32_t packed_day,
           const confsim::ParticipantRecord& rec);

  /// Materializes row `i` back into the exact original record / date.
  [[nodiscard]] confsim::ParticipantRecord record(std::size_t i) const;
  [[nodiscard]] core::Date date(std::size_t i) const {
    return unpack_day_key(day_key[i]);
  }

  /// The session-mean column for `m` — the array metric_value(
  /// rec.network.mean_conditions(), m) reads row-wise.
  [[nodiscard]] const double* mean_column(netsim::Metric m) const;
  /// The tail column for `m`: P95 per metric, except bandwidth where the
  /// damaging tail is the low side and the slot stores P5 — exactly the
  /// values p95_conditions() exposes (see netsim::TelemetryCollector).
  [[nodiscard]] const double* tail_column(netsim::Metric m) const;
  /// The engagement column for `m` (presence / cam-on / mic-on pct).
  [[nodiscard]] const double* engagement_column(EngagementMetric m) const;

  /// Bytes one row occupies across all columns (the bytes_moved unit the
  /// ingest counters report for this store).
  [[nodiscard]] static constexpr std::size_t bytes_per_row() {
    return sizeof(std::int32_t) + sizeof(std::uint64_t) +  // day key, user
           2 * sizeof(std::uint8_t) +                      // platform, access
           sizeof(std::int32_t) +                          // meeting size
           12 * sizeof(double) +                           // 4 x mean/med/tail
           sizeof(double) + sizeof(std::uint32_t) +        // duration, samples
           3 * sizeof(double) +                            // engagement
           2 * sizeof(std::uint8_t) +                      // dropped, mos mask
           sizeof(double);                                 // mos value
  }
  [[nodiscard]] std::size_t memory_bytes() const;

  // ---- Columns (parallel arrays; see class comment) -------------------
  PodColumn<std::int32_t> day_key;     // pack_day_key(call date)
  PodColumn<std::uint64_t> user_id;
  PodColumn<std::uint8_t> platform;    // confsim::Platform
  PodColumn<std::uint8_t> access;      // netsim::AccessTechnology
  PodColumn<std::int32_t> meeting_size;
  // Session network aggregates, one array per (metric, statistic). The
  // tail slot mirrors MetricAggregate::p95 verbatim (P5 for bandwidth).
  PodColumn<double> latency_mean, latency_median, latency_tail;
  PodColumn<double> loss_mean, loss_median, loss_tail;
  PodColumn<double> jitter_mean, jitter_median, jitter_tail;
  PodColumn<double> bandwidth_mean, bandwidth_median, bandwidth_tail;
  PodColumn<double> duration_s;
  PodColumn<std::uint32_t> sample_count;
  PodColumn<double> presence, cam_on, mic_on;
  PodColumn<std::uint8_t> dropped_early;  // 0 / 1
  PodColumn<double> mos;                  // valid iff mos_valid[i] != 0
  PodColumn<std::uint8_t> mos_valid;      // rec.mos.has_value()
};

}  // namespace usaas::service
