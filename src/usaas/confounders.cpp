#include "usaas/confounders.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/stats.h"

namespace usaas::service {

const char* to_string(Factor f) {
  switch (f) {
    case Factor::kLatencyQuartile: return "latency-quartile";
    case Factor::kLossQuartile: return "loss-quartile";
    case Factor::kPlatform: return "platform";
    case Factor::kMeetingSize: return "meeting-size";
  }
  return "unknown";
}

double ConfounderReport::effect_of(Factor f) const {
  for (const auto& e : effects) {
    if (e.factor == f) return e.eta_squared;
  }
  return 0.0;
}

namespace {

/// Precomputed quartile thresholds of a corpus metric.
struct Quartiles {
  double q1{0.0};
  double q2{0.0};
  double q3{0.0};

  static Quartiles of(const std::vector<double>& sorted) {
    return {core::quantile(sorted, 0.25), core::quantile(sorted, 0.50),
            core::quantile(sorted, 0.75)};
  }
  [[nodiscard]] int bucket(double v) const {
    if (v < q1) return 0;
    if (v < q2) return 1;
    if (v < q3) return 2;
    return 3;
  }
};

int meeting_size_bucket(int size) {
  if (size <= 4) return 0;
  if (size <= 7) return 1;
  if (size <= 11) return 2;
  return 3;
}

/// Group key of a session under a factor.
int group_of(const confsim::ParticipantRecord& rec, int meeting_size,
             Factor factor, const Quartiles& latency_q,
             const Quartiles& loss_q) {
  switch (factor) {
    case Factor::kLatencyQuartile:
      return latency_q.bucket(rec.network.latency_ms.mean);
    case Factor::kLossQuartile:
      return loss_q.bucket(rec.network.loss_pct.mean);
    case Factor::kPlatform:
      return static_cast<int>(rec.platform);
    case Factor::kMeetingSize:
      return meeting_size_bucket(meeting_size);
  }
  return 0;
}

double eta_squared(const std::map<int, std::vector<double>>& groups,
                   std::span<const double> all) {
  const double grand_mean = core::mean(all);
  double between = 0.0;
  for (const auto& [key, values] : groups) {
    if (values.empty()) continue;
    const double gm = core::mean(values);
    between += static_cast<double>(values.size()) * (gm - grand_mean) *
               (gm - grand_mean);
  }
  const double total =
      core::variance(all) * static_cast<double>(all.size());
  return total > 0.0 ? between / total : 0.0;
}

}  // namespace

ConfounderReport analyze_confounders(
    std::span<const confsim::ParticipantRecord> sessions,
    EngagementMetric metric) {
  if (sessions.size() < 100) {
    throw std::invalid_argument("analyze_confounders: need >= 100 sessions");
  }
  std::vector<double> sorted_latency;
  std::vector<double> sorted_loss;
  std::vector<double> values;
  sorted_latency.reserve(sessions.size());
  for (const auto& rec : sessions) {
    sorted_latency.push_back(rec.network.latency_ms.mean);
    sorted_loss.push_back(rec.network.loss_pct.mean);
    values.push_back(engagement_value(rec, metric));
  }
  std::sort(sorted_latency.begin(), sorted_latency.end());
  std::sort(sorted_loss.begin(), sorted_loss.end());
  const Quartiles latency_q = Quartiles::of(sorted_latency);
  const Quartiles loss_q = Quartiles::of(sorted_loss);

  ConfounderReport report;
  report.metric = metric;
  for (const Factor factor :
       {Factor::kLatencyQuartile, Factor::kLossQuartile, Factor::kPlatform,
        Factor::kMeetingSize}) {
    std::map<int, std::vector<double>> groups;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      groups[group_of(sessions[i], sessions[i].meeting_size, factor,
                      latency_q, loss_q)]
          .push_back(values[i]);
    }
    FactorEffect effect;
    effect.factor = factor;
    effect.eta_squared = eta_squared(groups, values);
    effect.groups = groups.size();
    report.effects.push_back(effect);
  }
  std::sort(report.effects.begin(), report.effects.end(),
            [](const FactorEffect& a, const FactorEffect& b) {
              return a.eta_squared > b.eta_squared;
            });
  return report;
}

StratifiedEffect latency_effect_within_meeting_size(
    std::span<const confsim::ParticipantRecord> sessions,
    EngagementMetric metric) {
  if (sessions.size() < 100) {
    throw std::invalid_argument(
        "latency_effect_within_meeting_size: need >= 100 sessions");
  }
  std::vector<double> sorted_latency;
  for (const auto& rec : sessions) {
    sorted_latency.push_back(rec.network.latency_ms.mean);
  }
  std::sort(sorted_latency.begin(), sorted_latency.end());
  const Quartiles latency_q = Quartiles::of(sorted_latency);

  // stratum -> quartile -> engagement values.
  std::map<int, std::map<int, std::vector<double>>> cells;
  std::map<int, std::vector<double>> pooled;
  for (const auto& rec : sessions) {
    const int q = latency_q.bucket(rec.network.latency_ms.mean);
    const double v = engagement_value(rec, metric);
    cells[meeting_size_bucket(rec.meeting_size)][q].push_back(v);
    pooled[q].push_back(v);
  }

  StratifiedEffect out;
  if (pooled.count(0) != 0 && pooled.count(3) != 0) {
    out.raw_drop = core::mean(pooled[0]) - core::mean(pooled[3]);
  }
  double acc = 0.0;
  for (const auto& [stratum, quartiles] : cells) {
    const auto q0 = quartiles.find(0);
    const auto q3 = quartiles.find(3);
    if (q0 == quartiles.end() || q3 == quartiles.end()) continue;
    if (q0->second.size() < 20 || q3->second.size() < 20) continue;
    acc += core::mean(q0->second) - core::mean(q3->second);
    ++out.strata_used;
  }
  if (out.strata_used > 0) {
    out.stratified_drop = acc / static_cast<double>(out.strata_used);
  }
  return out;
}

}  // namespace usaas::service
