#include "usaas/shard_summary.h"

#include <stdexcept>

namespace usaas::service {

std::vector<SummaryAxis> default_summary_axes() {
  return {
      {netsim::Metric::kLatency, 0.0, 300.0, 10},
      {netsim::Metric::kLoss, 0.0, 10.0, 10},
      {netsim::Metric::kJitter, 0.0, 80.0, 10},
      {netsim::Metric::kBandwidth, 0.0, 200.0, 10},
  };
}

ShardSummary::ShardSummary(const SummaryConfig& config)
    : enabled_{true}, axes_{config.axes}, grid_layout_{config.grid} {
  for (const SummaryAxis& axis : axes_) {
    // Binner1D validates lo < hi, bins >= 1 — a bad axis throws here, at
    // configuration time, not on the first fold.
    for (int eng = 0; eng < kNumEngagementMetrics; ++eng) {
      for (int access = 0; access < netsim::kNumAccessTechnologies; ++access) {
        binners_.emplace_back(axis.lo, axis.hi, axis.bins);
      }
    }
  }
  for (int eng = 0; eng < kNumEngagementMetrics; ++eng) {
    grids_.emplace_back(0.0, grid_layout_.latency_hi_ms, grid_layout_.lat_bins,
                        0.0, grid_layout_.loss_hi_pct, grid_layout_.loss_bins);
  }
}

void ShardSummary::fold(const confsim::ParticipantRecord& rec) {
  if (!enabled_) return;
  const auto access = static_cast<std::size_t>(rec.access);
  const netsim::NetworkConditions cond = rec.network.mean_conditions();
  const std::array<double, kNumEngagementMetrics> eng{
      rec.presence_pct, rec.cam_on_pct, rec.mic_on_pct};
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const double x = netsim::metric_value(cond, axes_[a].metric);
    for (std::size_t m = 0; m < eng.size(); ++m) {
      binners_[binner_index(a, m, access)].add(x, eng[m]);
    }
  }
  const double latency = cond.latency.ms();
  const double loss = cond.loss.percent();
  for (std::size_t m = 0; m < grids_.size(); ++m) {
    grids_[m].add(latency, loss, eng[m]);
  }
  ++all_.sessions;
  ++by_access_[access].sessions;
  if (rec.mos) {
    const double score = rec.mos->score();
    all_.observed_mos_sum += score;
    ++all_.rated;
    by_access_[access].observed_mos_sum += score;
    ++by_access_[access].rated;
    rated_.push_back({eng, score});
  }
}

void ShardSummary::fold(const SessionColumns& cols, std::size_t begin,
                        std::size_t end) {
  if (!enabled_) return;
  const std::uint8_t* access_col = cols.access.data();
  const double* pres = cols.presence.data();
  const double* cam = cols.cam_on.data();
  const double* mic = cols.mic_on.data();
  const double* lat = cols.latency_mean.data();
  const double* loss = cols.loss_mean.data();
  const std::uint8_t* valid = cols.mos_valid.data();
  const double* mos_col = cols.mos.data();
  // Hoist the per-axis mean columns: metric_value(mean_conditions(), m)
  // row-wise is exactly mean_column(m)[i], so the add sequence below is
  // value-for-value the same as fold(rec) over the same rows.
  std::vector<const double*> axis_cols(axes_.size());
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    axis_cols[a] = cols.mean_column(axes_[a].metric);
  }
  for (std::size_t i = begin; i < end; ++i) {
    const auto access = static_cast<std::size_t>(access_col[i]);
    const std::array<double, kNumEngagementMetrics> eng{pres[i], cam[i],
                                                        mic[i]};
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const double x = axis_cols[a][i];
      for (std::size_t m = 0; m < eng.size(); ++m) {
        binners_[binner_index(a, m, access)].add(x, eng[m]);
      }
    }
    for (std::size_t m = 0; m < grids_.size(); ++m) {
      grids_[m].add(lat[i], loss[i], eng[m]);
    }
    ++all_.sessions;
    ++by_access_[access].sessions;
    if (valid[i] != 0) {
      const double score = mos_col[i];
      all_.observed_mos_sum += score;
      ++all_.rated;
      by_access_[access].observed_mos_sum += score;
      ++by_access_[access].rated;
      rated_.push_back({eng, score});
    }
  }
}

void ShardSummary::merge(const ShardSummary& other) {
  if (!enabled_ && !other.enabled_) return;
  if (enabled_ != other.enabled_ || axes_ != other.axes_ ||
      !(grid_layout_ == other.grid_layout_)) {
    throw std::invalid_argument("ShardSummary::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < binners_.size(); ++i) {
    binners_[i].merge(other.binners_[i]);
  }
  for (std::size_t i = 0; i < grids_.size(); ++i) {
    grids_[i].merge(other.grids_[i]);
  }
  all_.merge(other.all_);
  for (std::size_t i = 0; i < by_access_.size(); ++i) {
    by_access_[i].merge(other.by_access_[i]);
  }
  rated_.insert(rated_.end(), other.rated_.begin(), other.rated_.end());
}

std::optional<std::size_t> ShardSummary::axis_for(netsim::Metric metric,
                                                  double lo, double hi,
                                                  std::size_t bins) const {
  const SummaryAxis wanted{metric, lo, hi, bins};
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (axes_[a] == wanted) return a;
  }
  return std::nullopt;
}

void ShardSummary::add_curve_to(
    core::Binner1D& dst, std::size_t axis, EngagementMetric engagement,
    std::optional<netsim::AccessTechnology> access) const {
  const auto eng = static_cast<std::size_t>(engagement);
  if (access) {
    dst.merge(binners_[binner_index(axis, eng,
                                    static_cast<std::size_t>(*access))]);
    return;
  }
  for (std::size_t a = 0; a < netsim::kNumAccessTechnologies; ++a) {
    dst.merge(binners_[binner_index(axis, eng, a)]);
  }
}

bool ShardSummary::add_grid_to(core::Grid2D& dst, EngagementMetric engagement,
                               const SummaryGrid& layout) const {
  if (!enabled_ || !(layout == grid_layout_)) return false;
  dst.merge(grids_[static_cast<std::size_t>(engagement)]);
  return true;
}

const SummaryTally& ShardSummary::tally(
    std::optional<netsim::AccessTechnology> access) const {
  return access ? by_access_[static_cast<std::size_t>(*access)] : all_;
}

void ShardSummary::refresh_predicted(
    const SessionColumns& cols,
    const std::function<double(const confsim::ParticipantRecord&)>&
        predictor) {
  all_.predicted_mos_sum = 0.0;
  all_.predicted = 0;
  for (SummaryTally& t : by_access_) {
    t.predicted_mos_sum = 0.0;
    t.predicted = 0;
  }
  if (!predictor) return;
  // Row order, so the per-shard sums replay exactly what the scan path
  // would accumulate for an unfiltered (or access-filtered) tally. The
  // predictor is opaque, so rows materialize back into full records.
  const std::uint8_t* access_col = cols.access.data();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const double p = predictor(cols.record(i));
    all_.predicted_mos_sum += p;
    ++all_.predicted;
    SummaryTally& bucket = by_access_[access_col[i]];
    bucket.predicted_mos_sum += p;
    ++bucket.predicted;
  }
}

std::size_t ShardSummary::memory_bytes() const {
  std::size_t bytes = sizeof(ShardSummary);
  for (const core::Binner1D& b : binners_) {
    bytes += b.bin_count() * sizeof(core::RunningStats);
  }
  for (const core::Grid2D& g : grids_) {
    bytes += g.x_bins() * g.y_bins() * sizeof(core::RunningStats);
  }
  bytes += rated_.size() * sizeof(RatedSample);
  return bytes;
}

}  // namespace usaas::service
