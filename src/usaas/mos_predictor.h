// MOS prediction from engagement + network conditions (§5).
//
// The paper's motivation: MOS is sampled (0.1-1 % of sessions) and
// delayed, while engagement signals exist for every session. If MOS is
// predictable from engagement + network metrics, USaaS can backfill call
// quality for the unsampled 99 %. MosPredictor trains a ridge-regularized
// linear model on the rated subset and evaluates on held-out raters,
// against two baselines (constant mean; network-metrics-only).
#pragma once

#include <span>
#include <vector>

#include "confsim/call.h"
#include "core/regression.h"

namespace usaas::service {

struct MosPredictorConfig {
  double ridge{1.0};
  /// Fraction of rated sessions held out for evaluation.
  double holdout_fraction{0.3};
  std::uint64_t split_seed{2023};
};

/// Evaluation of one model variant.
struct MosEvaluation {
  core::RegressionMetrics full;          // engagement + network features
  core::RegressionMetrics network_only;  // network features only
  core::RegressionMetrics engagement_only;
  core::RegressionMetrics mean_baseline; // predict the training mean
  std::size_t train_sessions{0};
  std::size_t test_sessions{0};
};

class MosPredictor {
 public:
  explicit MosPredictor(MosPredictorConfig config = {});

  /// The paper's minimum rated-subset size for a usable fit.
  static constexpr std::size_t kMinRatedSessions = 30;

  /// Trains on the rated subset of the sessions. Throws std::runtime_error
  /// when fewer than kMinRatedSessions rated sessions exist; the predictor
  /// is left untrained (never with a stale earlier model) in that case.
  /// Retraining on new data is always safe.
  void train(std::span<const confsim::ParticipantRecord> sessions);

  [[nodiscard]] bool trained() const { return trained_; }

  /// Returns to the untrained state, dropping any fitted model.
  void reset();

  /// Predicts MOS for any session (rated or not).
  [[nodiscard]] double predict(const confsim::ParticipantRecord& rec) const;

  /// Train/test evaluation with baselines.
  [[nodiscard]] MosEvaluation evaluate(
      std::span<const confsim::ParticipantRecord> sessions) const;

  /// The 7 features: presence, cam, mic, latency, loss, jitter, bandwidth.
  static constexpr std::size_t kNumFeatures = 7;
  [[nodiscard]] static std::vector<double> features(
      const confsim::ParticipantRecord& rec);

 private:
  MosPredictorConfig config_;
  core::LinearModel model_;
  bool trained_{false};
};

}  // namespace usaas::service
