#include "usaas/isp_bridge.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/correlation.h"
#include "core/stats.h"
#include "netsim/profiles.h"

namespace usaas::service {

IspCoupledCallGenerator::IspCoupledCallGenerator(leo::SpeedModel speed_model,
                                                 leo::OutageModel outage_model,
                                                 IspCallConfig config)
    : speed_model_{std::move(speed_model)},
      outage_model_{std::move(outage_model)},
      config_{config},
      behavior_model_{config_.behavior, config_.mitigation},
      mos_model_{config_.mos} {
  if (config_.last_day < config_.first_day) {
    throw std::invalid_argument("IspCallConfig: last_day < first_day");
  }
  if (config_.calls_per_day <= 0.0) {
    throw std::invalid_argument("IspCallConfig: calls_per_day <= 0");
  }
}

netsim::NetworkConditions IspCoupledCallGenerator::conditions_for(
    const core::Date& d, core::Rng& rng) const {
  const double affected = outage_model_.affected_fraction_on(d);
  const leo::SpeedSample sample = speed_model_.draw_test(d, rng, affected);

  netsim::NetworkConditions c;
  c.latency = core::Milliseconds{sample.latency_ms};
  // The call sees a slice of the subscriber's downlink.
  c.bandwidth = core::Mbps{std::clamp(
      sample.downlink_mbps * config_.call_bandwidth_share, 0.05, 4.0)};
  // LEO links are jittery (handovers); congestion makes it worse.
  const double load = 1.0 / (1.0 + speed_model_.supply_demand_ratio(d));
  c.jitter = core::Milliseconds{rng.lognormal(0.9, 0.4) * (1.0 + 2.0 * load)};
  // Loss: a clean LEO baseline, severe during an outage window.
  double loss_pct = rng.exponential(1.0 / 0.15);
  if (sample.during_outage) {
    loss_pct += rng.uniform(5.0, 40.0);
    c.latency = core::Milliseconds{c.latency.ms() + rng.uniform(100.0, 800.0)};
  }
  c.loss = core::clamp_percent(core::Percent{loss_pct});
  return c;
}

std::vector<confsim::CallRecord> IspCoupledCallGenerator::generate() const {
  std::vector<confsim::CallRecord> out;
  core::Rng root{config_.seed};
  std::uint64_t call_id = 0;

  core::for_each_day(config_.first_day, config_.last_day,
                     [&](const core::Date& d) {
    core::Rng day_rng =
        root.split(static_cast<std::uint64_t>(d.days_since_epoch()));
    const auto n_calls = day_rng.poisson(config_.calls_per_day);
    for (std::int64_t i = 0; i < n_calls; ++i) {
      confsim::CallRecord call;
      call.call_id = call_id++;
      call.start.date = d;
      call.start.time.hour = static_cast<int>(day_rng.uniform_int(9, 19));
      call.start.time.minute = static_cast<int>(day_rng.uniform_int(0, 59));
      call.scheduled_minutes = static_cast<int>(
          std::clamp(day_rng.lognormal(3.4, 0.35), 5.0, 120.0));
      const int size =
          3 + static_cast<int>(std::min<std::int64_t>(
                  day_rng.poisson(config_.mean_extra_participants),
                  config_.max_participants - 3));
      for (int p = 0; p < size; ++p) {
        confsim::ParticipantRecord rec;
        rec.user_id = call.call_id * 64 + static_cast<std::uint64_t>(p);
        rec.meeting_size = size;
        rec.platform = confsim::Platform::kWindowsPc;
        rec.access = netsim::AccessTechnology::kLeoSatellite;

        const netsim::NetworkConditions lived = conditions_for(d, day_rng);
        // Session summary: the day's conditions are the session means (a
        // fast-mode summary like confsim's, centred on the lived values).
        rec.network.latency_ms = {lived.latency.ms(), lived.latency.ms(),
                                  lived.latency.ms() * 1.9};
        rec.network.loss_pct = {lived.loss.percent(), lived.loss.percent(),
                                lived.loss.percent() * 2.6};
        rec.network.jitter_ms = {lived.jitter.ms(), lived.jitter.ms(),
                                 lived.jitter.ms() * 2.2};
        rec.network.bandwidth_mbps = {lived.bandwidth.mbps(),
                                      lived.bandwidth.mbps(),
                                      lived.bandwidth.mbps() * 0.6};
        rec.network.sample_count =
            static_cast<std::size_t>(call.scheduled_minutes * 12);
        rec.network.duration_seconds = call.scheduled_minutes * 60.0;

        confsim::BehaviorContext ctx;
        ctx.platform = rec.platform;
        ctx.meeting_size = size;
        ctx.conditioning = 1.0 + day_rng.uniform(-0.2, 0.2);
        const auto eng = behavior_model_.realize(lived, ctx, day_rng);
        rec.presence_pct = eng.presence_pct;
        rec.cam_on_pct = eng.cam_on_pct;
        rec.mic_on_pct = eng.mic_on_pct;
        rec.dropped_early = eng.dropped_early;
        const auto dmg = behavior_model_.damage(lived, ctx);
        rec.mos = mos_model_.maybe_collect(
            dmg.experience, mos_model_.draw_user_bias(day_rng), day_rng);
        call.participants.push_back(std::move(rec));
      }
      out.push_back(std::move(call));
    }
  });
  return out;
}

const char* to_string(DayClass c) {
  switch (c) {
    case DayClass::kQuiet: return "quiet";
    case DayClass::kCorroborated: return "corroborated";
    case DayClass::kSocialOnly: return "social-only";
    case DayClass::kImplicitOnly: return "implicit-only";
  }
  return "unknown";
}

CorroborationReport corroborate(std::span<const confsim::CallRecord> calls,
                                std::span<const social::Post> posts,
                                core::Date first, core::Date last,
                                const nlp::SentimentAnalyzer& analyzer,
                                const CorroborationConfig& config) {
  if (last < first) throw std::invalid_argument("corroborate: last < first");
  CorroborationReport report{first, last};

  // Implicit side: daily early-drop-off rate.
  core::DailySeries drops{first, last};
  core::DailySeries sessions{first, last};
  for (const auto& call : calls) {
    if (!sessions.contains(call.start.date)) continue;
    for (const auto& rec : call.participants) {
      sessions.add(call.start.date, 1.0);
      drops.add(call.start.date, rec.dropped_early ? 1.0 : 0.0);
    }
  }
  core::for_each_day(first, last, [&](const core::Date& d) {
    const double n = sessions.at(d);
    report.implicit_dropoff.set(d, n > 0.0 ? drops.at(d) / n : 0.0);
  });

  // Explicit side: outage keywords in negative threads.
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  for (const auto& post : posts) {
    if (!report.social_keywords.contains(post.date)) continue;
    const auto hits = dict.count_occurrences(post.full_text());
    if (hits == 0) continue;
    if (analyzer.score(post.full_text()).negative < 0.4) continue;
    report.social_keywords.add(post.date, static_cast<double>(hits));
  }

  report.correlation = core::pearson(report.implicit_dropoff.values(),
                                     report.social_keywords.values());

  // Spike thresholds from each series' own moments.
  const auto implicit_vals = report.implicit_dropoff.values();
  const auto social_vals = report.social_keywords.values();
  const double imp_thresh =
      std::max(config.implicit_min_rate,
               core::mean(implicit_vals) +
                   config.implicit_z * core::stddev(implicit_vals));
  const double soc_thresh =
      std::max(config.social_min_count,
               core::mean(social_vals) +
                   config.social_z * core::stddev(social_vals));

  core::for_each_day(first, last, [&](const core::Date& d) {
    const bool implicit_spike = report.implicit_dropoff.at(d) > imp_thresh;
    const bool social_spike = report.social_keywords.at(d) > soc_thresh;
    if (implicit_spike && social_spike) {
      report.corroborated_days.push_back(d);
    } else if (social_spike) {
      report.social_only_days.push_back(d);
    } else if (implicit_spike) {
      report.implicit_only_days.push_back(d);
    }
  });
  return report;
}

}  // namespace usaas::service
