// Sentiment-peak detection and news annotation: the Fig 5 pipeline.
//
// §4.1's method, verbatim: score every post's sentiment, count strong
// (>= 0.7) positives and negatives per day, find peaks, build the peak
// day's word cloud, and search the news for the cloud's top-3 unigrams
// around that date. Peaks whose search comes up empty are exactly the
// paper's interesting case (the 22 Apr '22 outage nobody reported).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "core/timeseries.h"
#include "leo/events.h"
#include "nlp/sentiment.h"
#include "nlp/summarizer.h"
#include "nlp/wordcloud.h"
#include "social/post.h"

namespace usaas::service {

/// Daily strong-sentiment counts (the Fig 5a series).
struct SentimentSeries {
  core::DailySeries strong_positive;
  core::DailySeries strong_negative;

  SentimentSeries(core::Date first, core::Date last)
      : strong_positive{first, last}, strong_negative{first, last} {}

  [[nodiscard]] core::DailySeries combined() const {
    return strong_positive + strong_negative;
  }
};

/// One annotated peak.
struct AnnotatedPeak {
  core::Date date;
  double strong_positive{0.0};
  double strong_negative{0.0};
  /// Net direction of the peak day.
  bool positive_dominant{false};
  /// The peak day's word cloud and the search terms derived from it.
  nlp::WordCloud cloud;
  std::vector<std::string> search_terms;
  /// The news item the search found, when any. nullopt = the paper's
  /// "no relevant news" case — the community knew something the press
  /// did not.
  std::optional<leo::NewsEvent> news;
  /// Extractive summary of the peak day's posts (§5's "summarizing
  /// contextual user feedback").
  std::string summary;
};

struct PeakAnnotatorConfig {
  std::size_t top_k_peaks{3};
  std::int64_t min_peak_separation_days{14};
  std::size_t cloud_words{30};
  std::size_t search_terms{3};
  int news_window_days{3};
};

class PeakAnnotator {
 public:
  PeakAnnotator(const nlp::SentimentAnalyzer& analyzer,
                const leo::EventTimeline& timeline,
                PeakAnnotatorConfig config = {});

  /// Scores every post and accumulates the daily strong counts.
  [[nodiscard]] SentimentSeries build_series(
      std::span<const social::Post> posts, core::Date first,
      core::Date last) const;

  /// Full pipeline: series -> top-k peaks -> per-peak word cloud -> news
  /// search. Returns peaks ordered by height (descending).
  [[nodiscard]] std::vector<AnnotatedPeak> annotate(
      std::span<const social::Post> posts, core::Date first,
      core::Date last) const;

 private:
  const nlp::SentimentAnalyzer* analyzer_;   // non-owning
  const leo::EventTimeline* timeline_;       // non-owning
  PeakAnnotatorConfig config_;
};

}  // namespace usaas::service
