#include "usaas/peak_annotator.h"

#include "core/peaks.h"

namespace usaas::service {

PeakAnnotator::PeakAnnotator(const nlp::SentimentAnalyzer& analyzer,
                             const leo::EventTimeline& timeline,
                             PeakAnnotatorConfig config)
    : analyzer_{&analyzer}, timeline_{&timeline}, config_{config} {}

SentimentSeries PeakAnnotator::build_series(
    std::span<const social::Post> posts, core::Date first,
    core::Date last) const {
  SentimentSeries series{first, last};
  for (const social::Post& post : posts) {
    if (post.date < first || last < post.date) continue;
    const nlp::SentimentScores s = analyzer_->score(post.full_text());
    if (s.strong_positive()) series.strong_positive.add(post.date, 1.0);
    if (s.strong_negative()) series.strong_negative.add(post.date, 1.0);
  }
  return series;
}

std::vector<AnnotatedPeak> PeakAnnotator::annotate(
    std::span<const social::Post> posts, core::Date first,
    core::Date last) const {
  const SentimentSeries series = build_series(posts, first, last);
  const core::DailySeries combined = series.combined();
  const auto peaks = core::top_k_peaks(combined, config_.top_k_peaks,
                                       config_.min_peak_separation_days);

  std::vector<AnnotatedPeak> out;
  out.reserve(peaks.size());
  for (const core::Peak& peak : peaks) {
    AnnotatedPeak ap;
    ap.date = peak.date;
    ap.strong_positive = series.strong_positive.at(peak.date);
    ap.strong_negative = series.strong_negative.at(peak.date);
    ap.positive_dominant = ap.strong_positive >= ap.strong_negative;

    // Word cloud over everything posted that day.
    std::vector<std::string> day_docs;
    for (const social::Post& post : posts) {
      if (post.date == peak.date) day_docs.push_back(post.full_text());
    }
    ap.cloud = nlp::WordCloud::build(day_docs, config_.cloud_words);
    ap.search_terms = ap.cloud.top_terms(config_.search_terms);
    ap.summary = nlp::Summarizer{}.summarize_to_text(day_docs);

    // "Search online" for news matching the top cloud terms near the date.
    ap.news = timeline_->search(ap.search_terms, ap.date,
                                config_.news_window_days);
    out.push_back(std::move(ap));
  }
  return out;
}

}  // namespace usaas::service
