#include "usaas/mos_predictor.h"

#include <stdexcept>

#include "core/rng.h"
#include "core/stats.h"

namespace usaas::service {

MosPredictor::MosPredictor(MosPredictorConfig config) : config_{config} {}

std::vector<double> MosPredictor::features(
    const confsim::ParticipantRecord& rec) {
  const auto c = rec.network.mean_conditions();
  return {rec.presence_pct, rec.cam_on_pct,   rec.mic_on_pct,
          c.latency.ms(),   c.loss.percent(), c.jitter.ms(),
          c.bandwidth.mbps()};
}

namespace {

struct RatedSet {
  std::vector<double> rows;  // flattened features
  std::vector<double> ys;
};

RatedSet collect_rated(std::span<const confsim::ParticipantRecord> sessions) {
  RatedSet set;
  for (const auto& rec : sessions) {
    if (!rec.mos) continue;
    for (const double f : MosPredictor::features(rec)) set.rows.push_back(f);
    set.ys.push_back(rec.mos->score());
  }
  return set;
}

core::RegressionMetrics eval_model(const core::LinearModel& model,
                                   std::span<const double> rows,
                                   std::size_t num_features,
                                   std::span<const double> ys) {
  std::vector<double> preds;
  preds.reserve(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    preds.push_back(model.predict(
        rows.subspan(i * num_features, num_features)));
  }
  return core::evaluate_predictions(preds, ys);
}

/// Extracts a feature-column subset from flattened rows.
std::vector<double> select_columns(std::span<const double> rows,
                                   std::size_t num_features,
                                   std::span<const std::size_t> cols) {
  std::vector<double> out;
  const std::size_t n = rows.size() / num_features;
  out.reserve(n * cols.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t c : cols) {
      out.push_back(rows[i * num_features + c]);
    }
  }
  return out;
}

}  // namespace

void MosPredictor::reset() {
  model_ = core::LinearModel{};
  trained_ = false;
}

void MosPredictor::train(
    std::span<const confsim::ParticipantRecord> sessions) {
  // Invalidate up front: a failed retrain must not leave the previous
  // model silently serving predictions for data it never saw.
  reset();
  const RatedSet set = collect_rated(sessions);
  if (set.ys.size() < kMinRatedSessions) {
    throw std::runtime_error("MosPredictor: fewer than 30 rated sessions");
  }
  model_ = core::LinearModel::fit(set.rows, kNumFeatures, set.ys,
                                  config_.ridge);
  trained_ = true;
}

double MosPredictor::predict(const confsim::ParticipantRecord& rec) const {
  if (!trained_) throw std::logic_error("MosPredictor: not trained");
  const auto f = features(rec);
  const double raw = model_.predict(f);
  return core::clamp_mos(core::Mos{raw}).score();
}

MosEvaluation MosPredictor::evaluate(
    std::span<const confsim::ParticipantRecord> sessions) const {
  const RatedSet set = collect_rated(sessions);
  const std::size_t n = set.ys.size();
  if (n < 30) {
    throw std::runtime_error("MosPredictor: fewer than 30 rated sessions");
  }

  // Deterministic split.
  core::Rng rng{config_.split_seed};
  std::vector<bool> in_test(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    in_test[i] = rng.bernoulli(config_.holdout_fraction);
  }

  auto partition = [&](bool test) {
    RatedSet part;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_test[i] != test) continue;
      for (std::size_t f = 0; f < kNumFeatures; ++f) {
        part.rows.push_back(set.rows[i * kNumFeatures + f]);
      }
      part.ys.push_back(set.ys[i]);
    }
    return part;
  };
  const RatedSet train = partition(false);
  const RatedSet test = partition(true);
  if (train.ys.size() < 10 || test.ys.size() < 10) {
    throw std::runtime_error("MosPredictor: split too small");
  }

  MosEvaluation ev;
  ev.train_sessions = train.ys.size();
  ev.test_sessions = test.ys.size();

  // Full model.
  const auto full = core::LinearModel::fit(train.rows, kNumFeatures, train.ys,
                                           config_.ridge);
  ev.full = eval_model(full, test.rows, kNumFeatures, test.ys);

  // Network-only (features 3..6) and engagement-only (0..2).
  const std::vector<std::size_t> net_cols{3, 4, 5, 6};
  const std::vector<std::size_t> eng_cols{0, 1, 2};
  const auto net_train = select_columns(train.rows, kNumFeatures, net_cols);
  const auto net_test = select_columns(test.rows, kNumFeatures, net_cols);
  const auto net_model = core::LinearModel::fit(net_train, net_cols.size(),
                                                train.ys, config_.ridge);
  ev.network_only = eval_model(net_model, net_test, net_cols.size(), test.ys);

  const auto eng_train = select_columns(train.rows, kNumFeatures, eng_cols);
  const auto eng_test = select_columns(test.rows, kNumFeatures, eng_cols);
  const auto eng_model = core::LinearModel::fit(eng_train, eng_cols.size(),
                                                train.ys, config_.ridge);
  ev.engagement_only =
      eval_model(eng_model, eng_test, eng_cols.size(), test.ys);

  // Constant-mean baseline.
  const double train_mean = core::mean(train.ys);
  std::vector<double> const_preds(test.ys.size(), train_mean);
  ev.mean_baseline = core::evaluate_predictions(const_preds, test.ys);
  return ev;
}

}  // namespace usaas::service
