// Mergeable per-shard summaries: the tier-2 query accelerator.
//
// Every (month x platform) session shard maintains a ShardSummary folded
// incrementally at ingest (batch pass 3, per-record append, and every
// StreamIngestor flush — all of which go through CorrelationEngine). A
// summary holds, per access technology:
//   * one core::Binner1D per (configured sweep axis x engagement metric) —
//     count / mean / M2 moments per bin, accumulated in ingest order;
//   * session / rated-MOS / predicted-MOS tallies;
// plus whole-shard equivalents, a Fig-2 latency x loss Grid2D per
// engagement metric, and the shard's rated sessions reduced to
// (engagement, MOS) samples in ingest order.
//
// Exactness contract (what lets query fast paths use summaries):
//   * Access-filtered curves and all tallies replay the scan's exact
//     floating-point add sequence (per-access accumulation in ingest
//     order), so they are bit-identical to a rescan of the same shard.
//   * Whole-population curves merge the access buckets (Welford merge);
//     bin counts stay exact, means/M2 agree with a rescan to ~1e-12
//     relative — inside the service's documented 1e-9 equivalence budget.
//   * merge() combines two summaries of the same layout exactly the way
//     the engine merges per-shard partials, so "merge of O(shards)
//     summaries" == "merge of O(shards) scan partials" structurally.
//
// A summary answers a sweep only when the query's (metric, lo, hi, bins)
// matches a configured axis, the aggregate is the session mean, the
// confounder filter is off, and shard pruning discharged the date window
// (no mid-month boundary) — anything else falls back to the scan path.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "confsim/call.h"
#include "core/histogram.h"
#include "netsim/conditions.h"
#include "netsim/profiles.h"
#include "usaas/session_columns.h"
#include "usaas/signals.h"

namespace usaas::service {

/// One sweep axis a summary precomputes: the (metric, lo, hi, bins)
/// histogram layout a query must match exactly to be summary-answerable.
struct SummaryAxis {
  netsim::Metric metric{netsim::Metric::kLatency};
  double lo{0.0};
  double hi{300.0};
  std::size_t bins{10};
  friend bool operator==(const SummaryAxis&, const SummaryAxis&) = default;
};

/// The canonical dashboard axes (they cover the operator battery the
/// bench measures): latency 0-300ms, loss 0-10%, jitter 0-80ms,
/// bandwidth 0-200Mbps, 10 bins each.
[[nodiscard]] std::vector<SummaryAxis> default_summary_axes();

/// Layout of the precomputed Fig-2 latency x loss compounding grid.
struct SummaryGrid {
  double latency_hi_ms{320.0};
  std::size_t lat_bins{8};
  double loss_hi_pct{3.4};
  std::size_t loss_bins{8};
  friend bool operator==(const SummaryGrid&, const SummaryGrid&) = default;
};

/// What CorrelationEngine maintains per shard when summaries are enabled.
struct SummaryConfig {
  std::vector<SummaryAxis> axes = default_summary_axes();
  SummaryGrid grid{};
};

/// Running per-population tallies; exact integer counts plus MOS sums
/// accumulated in ingest order (bit-identical to a rescan).
struct SummaryTally {
  std::size_t sessions{0};
  std::size_t rated{0};
  double observed_mos_sum{0.0};
  /// Predicted-MOS fields are only meaningful while the owning engine's
  /// predicted tallies are fresh (refresh_predicted_tallies after train).
  double predicted_mos_sum{0.0};
  std::size_t predicted{0};

  void merge(const SummaryTally& other) {
    sessions += other.sessions;
    rated += other.rated;
    observed_mos_sum += other.observed_mos_sum;
    predicted_mos_sum += other.predicted_mos_sum;
    predicted += other.predicted;
  }
};

/// A rated session reduced to what mos_correlation consumes, kept in
/// ingest order so the summary gather replays the scan gather exactly.
struct RatedSample {
  std::array<double, kNumEngagementMetrics> engagement{};
  double mos{0.0};
};

class ShardSummary {
 public:
  /// Default-constructed summaries are disabled (fold/merge are no-ops);
  /// the engine only builds real ones when summaries are configured.
  ShardSummary() = default;
  explicit ShardSummary(const SummaryConfig& config);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Folds one participant record (must be called in shard ingest order).
  void fold(const confsim::ParticipantRecord& rec);

  /// Folds rows [begin, end) of a column store in order. Replays exactly
  /// the per-record fold sequence (same values, same add order), reading
  /// only the columns the summary consumes.
  void fold(const SessionColumns& cols, std::size_t begin, std::size_t end);

  /// Exact combine of two summaries with identical layouts (axes + grid);
  /// throws std::invalid_argument on mismatch. Rated samples concatenate,
  /// tallies add, binners/grids merge per bucket.
  void merge(const ShardSummary& other);

  /// Index of the axis answering `(metric, lo, hi, bins)`, or nullopt.
  [[nodiscard]] std::optional<std::size_t> axis_for(netsim::Metric metric,
                                                    double lo, double hi,
                                                    std::size_t bins) const;

  /// Merges this shard's curve for (axis, engagement) into `dst` (which
  /// must share the axis layout): the access bucket alone when `access`
  /// is set (bit-exact vs rescan), else all buckets in enum order.
  void add_curve_to(core::Binner1D& dst, std::size_t axis,
                    EngagementMetric engagement,
                    std::optional<netsim::AccessTechnology> access) const;

  /// Merges the Fig-2 grid for `engagement` into `dst` when the grid
  /// layout matches; returns false (dst untouched) otherwise.
  [[nodiscard]] bool add_grid_to(core::Grid2D& dst, EngagementMetric engagement,
                                 const SummaryGrid& layout) const;

  /// Whole-shard or per-access tallies.
  [[nodiscard]] const SummaryTally& tally(
      std::optional<netsim::AccessTechnology> access) const;

  /// Rated (engagement, MOS) samples in ingest order.
  [[nodiscard]] std::span<const RatedSample> rated() const { return rated_; }

  /// Recomputes predicted-MOS sums over this shard's column store, in
  /// row order, with `predictor`; called under the corpus write lock
  /// after a retrain. Clears them when `predictor` is null.
  void refresh_predicted(const SessionColumns& cols,
                         const std::function<double(
                             const confsim::ParticipantRecord&)>& predictor);

  [[nodiscard]] std::size_t sessions() const { return all_.sessions; }

  /// Approximate heap footprint, for observability.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] std::size_t binner_index(std::size_t axis, std::size_t eng,
                                         std::size_t access) const {
    return (axis * static_cast<std::size_t>(kNumEngagementMetrics) + eng) *
               static_cast<std::size_t>(netsim::kNumAccessTechnologies) +
           access;
  }

  bool enabled_{false};
  std::vector<SummaryAxis> axes_;
  SummaryGrid grid_layout_{};
  /// [axis][engagement][access], each accumulated in shard ingest order.
  std::vector<core::Binner1D> binners_;
  /// [engagement]: whole-shard latency x loss grids (no access split —
  /// compounding_grid takes no filters).
  std::vector<core::Grid2D> grids_;
  SummaryTally all_;
  std::array<SummaryTally, netsim::kNumAccessTechnologies> by_access_{};
  std::vector<RatedSample> rated_;
};

}  // namespace usaas::service
