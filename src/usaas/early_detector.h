// Early feature/issue discovery from popular discussions.
//
// §4.1: the roaming feature was detectable on r/Starlink ~2 weeks before
// the CEO's announcement "using a systematic pipeline which mines popular
// discussions (using upvotes and comment numbers)". EarlyFeatureDetector
// wraps nlp::TrendMiner with the posts-to-documents adapter and a
// lead-time report against a known announcement date.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "nlp/trends.h"
#include "social/post.h"

namespace usaas::service {

struct EarlyDetection {
  std::string term;
  core::Date first_detected;
  double burst_score{0.0};
  double weight{0.0};
};

class EarlyFeatureDetector {
 public:
  explicit EarlyFeatureDetector(nlp::TrendMinerConfig config = {});

  /// Mines the posts and returns every emergent topic, earliest first.
  [[nodiscard]] std::vector<EarlyDetection> detect(
      std::span<const social::Post> posts) const;

  /// Finds the earliest detection containing `term` (substring match on
  /// the mined n-gram) and reports the lead time vs the announcement.
  struct LeadTime {
    EarlyDetection detection;
    std::int64_t days_before_announcement{0};
  };
  [[nodiscard]] std::optional<LeadTime> lead_time_for(
      std::span<const social::Post> posts, const std::string& term,
      const core::Date& announcement) const;

 private:
  nlp::TrendMinerConfig config_;
};

}  // namespace usaas::service
