#include "usaas/outage_detector.h"

#include <algorithm>
#include <cstdlib>

namespace usaas::service {

OutageDetector::OutageDetector(const nlp::SentimentAnalyzer& analyzer,
                               const nlp::KeywordDictionary& dictionary,
                               OutageDetectorConfig config)
    : analyzer_{&analyzer}, dictionary_{&dictionary}, config_{config} {}

core::DailySeries OutageDetector::keyword_series(
    std::span<const social::Post> posts, core::Date first,
    core::Date last) const {
  core::DailySeries series{first, last};
  for (const social::Post& post : posts) {
    if (post.date < first || last < post.date) continue;
    const std::string text = post.full_text();
    const std::size_t hits = dictionary_->count_occurrences(text);
    if (hits == 0) continue;
    if (config_.require_negative_sentiment) {
      const nlp::SentimentScores s = analyzer_->score(text);
      // "Threads with positive or neutral sentiments have been filtered
      // out" (Fig 6 caption).
      if (s.negative < config_.negative_gate) continue;
    }
    series.add(post.date, static_cast<double>(hits));
  }
  return series;
}

std::vector<DetectedOutage> OutageDetector::detect(
    std::span<const social::Post> posts, core::Date first,
    core::Date last) const {
  const core::DailySeries series = keyword_series(posts, first, last);
  const auto peaks = core::detect_peaks_robust(series, config_.peak_params);
  std::vector<DetectedOutage> out;
  out.reserve(peaks.size());
  for (const core::Peak& p : peaks) {
    const bool major = p.score >= config_.major_z &&
                       p.value >= config_.major_min_count;
    out.push_back({p.date, p.value, p.score, major});
  }
  return out;
}

DetectionQuality OutageDetector::evaluate(
    std::span<const DetectedOutage> detections,
    std::span<const core::Date> truth_days, int slack_days) {
  DetectionQuality q;
  auto near = [&](const core::Date& a, const core::Date& b) {
    return std::llabs(a.days_until(b)) <= slack_days;
  };
  std::vector<bool> truth_hit(truth_days.size(), false);
  for (const DetectedOutage& det : detections) {
    bool matched = false;
    for (std::size_t i = 0; i < truth_days.size(); ++i) {
      if (near(det.date, truth_days[i])) {
        matched = true;
        truth_hit[i] = true;
      }
    }
    if (matched) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  for (const bool hit : truth_hit) {
    if (!hit) ++q.false_negatives;
  }
  return q;
}

}  // namespace usaas::service
