#include "usaas/stream_ingestor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <thread>

#include "core/telemetry/trace.h"

namespace usaas::service {

namespace {

/// The feed's plausible civil-time envelope. Anything outside is a
/// producer bug (unset field, clock garbage), not a signal — including the
/// default-constructed 1970-01-01 of a record whose date was never set.
[[nodiscard]] bool date_in_range(const core::Date& d) {
  return d.year() >= 2000 && d.year() <= 2099;
}

[[nodiscard]] bool any_nan(const netsim::MetricAggregate& a) {
  return std::isnan(a.mean) || std::isnan(a.median) || std::isnan(a.p95);
}

[[nodiscard]] bool any_negative(const netsim::MetricAggregate& a) {
  return a.mean < 0.0 || a.median < 0.0 || a.p95 < 0.0;
}

template <typename Fn>
void for_each_aggregate(const netsim::SessionNetworkSummary& net, Fn&& fn) {
  fn(net.latency_ms);
  fn(net.loss_pct);
  fn(net.jitter_ms);
  fn(net.bandwidth_mbps);
}

[[nodiscard]] bool whitespace_only(const std::string& text) {
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

}  // namespace

std::optional<QuarantineReason> validate_record(
    const confsim::CallRecord& call) {
  if (!date_in_range(call.start.date)) {
    return QuarantineReason::kDateOutOfRange;
  }
  // Reason priority is the enum order: one full pass per reason so a
  // record broken several ways lands on the highest-priority one.
  bool nan = false;
  bool negative = false;
  bool engagement_high = false;
  bool mos_bad = false;
  for (const confsim::ParticipantRecord& rec : call.participants) {
    for_each_aggregate(rec.network, [&](const netsim::MetricAggregate& a) {
      nan = nan || any_nan(a);
      negative = negative || any_negative(a);
    });
    for (const double pct : {rec.presence_pct, rec.cam_on_pct,
                             rec.mic_on_pct}) {
      nan = nan || std::isnan(pct);
      negative = negative || pct < 0.0;
      engagement_high = engagement_high || pct > 100.0;
    }
    if (rec.mos) {
      const double score = rec.mos->score();
      nan = nan || std::isnan(score);
      mos_bad = mos_bad || score < 1.0 || score > 5.0;
    }
  }
  if (nan) return QuarantineReason::kNanMetric;
  if (negative) return QuarantineReason::kNegativeMetric;
  if (engagement_high) return QuarantineReason::kEngagementOutOfRange;
  if (mos_bad) return QuarantineReason::kMosOutOfRange;
  return std::nullopt;
}

std::optional<QuarantineReason> validate_record(const social::Post& post) {
  if (!date_in_range(post.date)) return QuarantineReason::kDateOutOfRange;
  if (whitespace_only(post.title) && whitespace_only(post.body)) {
    return QuarantineReason::kEmptyPostText;
  }
  return std::nullopt;
}

namespace {

/// Injected corruption, cycling through every poison shape the validator
/// knows so fault runs exercise each quarantine reason.
void corrupt_call(confsim::CallRecord& call, std::uint64_t kind) {
  switch (kind % 4) {
    case 0:
      if (!call.participants.empty()) {
        call.participants.front().network.latency_ms.mean =
            std::numeric_limits<double>::quiet_NaN();
      }
      return;
    case 1:
      if (!call.participants.empty()) {
        call.participants.front().network.loss_pct.mean = -5.0;
      }
      return;
    case 2:
      call.start.date = core::Date{};  // 1970: out of range
      return;
    default:
      if (!call.participants.empty()) {
        call.participants.front().presence_pct = 250.0;
      }
      return;
  }
}

void corrupt_post(social::Post& post, std::uint64_t kind) {
  if (kind % 2 == 0) {
    post.title.clear();
    post.body = "   ";
  } else {
    post.date = core::Date{};  // 1970: out of range
  }
}

}  // namespace

StreamIngestor::StreamIngestor(QueryService& service,
                               StreamIngestorConfig config,
                               core::FaultInjector* faults)
    : service_{service}, config_{config}, faults_{faults} {
  config_.call_capacity = std::max<std::size_t>(1, config_.call_capacity);
  config_.post_capacity = std::max<std::size_t>(1, config_.post_capacity);
  config_.call_flush_watermark = std::clamp<std::size_t>(
      config_.call_flush_watermark, 1, config_.call_capacity);
  config_.post_flush_watermark = std::clamp<std::size_t>(
      config_.post_flush_watermark, 1, config_.post_capacity);
  config_.max_flush_attempts =
      std::max<std::size_t>(1, config_.max_flush_attempts);
  config_.max_block_rounds = std::max<std::size_t>(1, config_.max_block_rounds);
  core::telemetry::Registry& reg = service_.telemetry_registry();
  flush_calls_seconds_ =
      reg.histogram("usaas_stream_flush_seconds",
                    "Successful staging-buffer flush latency",
                    {{"corpus", "calls"}});
  flush_posts_seconds_ =
      reg.histogram("usaas_stream_flush_seconds",
                    "Successful staging-buffer flush latency",
                    {{"corpus", "posts"}});
  backoff_seconds_ = reg.histogram(
      "usaas_stream_backoff_seconds",
      "Exponential-backoff sleeps between flush retry attempts");
}

PushOutcome StreamIngestor::push_call_locked(const confsim::CallRecord& call) {
  const confsim::CallRecord* rec = &call;
  confsim::CallRecord corrupted;
  if (faults_ != nullptr && faults_->corrupt_this_record()) {
    corrupted = call;
    corrupt_call(corrupted, corruption_cursor_++);
    rec = &corrupted;
  }
  if (const auto reason = validate_record(*rec)) {
    quarantine_record({QuarantinedRecord::Corpus::kCall, *reason,
                       rec->start.date, rec->call_id});
    return PushOutcome::kQuarantined;
  }
  if (staged_calls_.size() >= config_.call_capacity &&
      !make_room(Corpus::kCalls)) {
    ++stats_.health.rejected;
    return PushOutcome::kRejected;
  }
  staged_calls_.push_back(*rec);
  ++stats_.health.accepted;
  if (staged_calls_.size() >= config_.call_flush_watermark) {
    flush_corpus(Corpus::kCalls);  // failure leaves records staged
  }
  return PushOutcome::kAccepted;
}

PushOutcome StreamIngestor::push_post_locked(const social::Post& post) {
  const social::Post* rec = &post;
  social::Post corrupted;
  if (faults_ != nullptr && faults_->corrupt_this_record()) {
    corrupted = post;
    corrupt_post(corrupted, corruption_cursor_++);
    rec = &corrupted;
  }
  if (const auto reason = validate_record(*rec)) {
    quarantine_record(
        {QuarantinedRecord::Corpus::kPost, *reason, rec->date, rec->id});
    return PushOutcome::kQuarantined;
  }
  if (staged_posts_.size() >= config_.post_capacity &&
      !make_room(Corpus::kPosts)) {
    ++stats_.health.rejected;
    return PushOutcome::kRejected;
  }
  staged_posts_.push_back(*rec);
  ++stats_.health.accepted;
  if (staged_posts_.size() >= config_.post_flush_watermark) {
    flush_corpus(Corpus::kPosts);
  }
  return PushOutcome::kAccepted;
}

PushOutcome StreamIngestor::push(const confsim::CallRecord& call) {
  const std::lock_guard<std::mutex> lock{mu_};
  const PushOutcome outcome = push_call_locked(call);
  publish_health();
  return outcome;
}

PushOutcome StreamIngestor::push(const social::Post& post) {
  const std::lock_guard<std::mutex> lock{mu_};
  const PushOutcome outcome = push_post_locked(post);
  publish_health();
  return outcome;
}

std::size_t StreamIngestor::push_many(
    std::span<const confsim::CallRecord> calls) {
  const std::lock_guard<std::mutex> lock{mu_};
  std::size_t accepted = 0;
  for (const confsim::CallRecord& call : calls) {
    const PushOutcome outcome = push_call_locked(call);
    if (outcome == PushOutcome::kRejected) break;
    if (outcome == PushOutcome::kAccepted) ++accepted;
  }
  publish_health();
  return accepted;
}

std::size_t StreamIngestor::push_many(std::span<const social::Post> posts) {
  const std::lock_guard<std::mutex> lock{mu_};
  std::size_t accepted = 0;
  for (const social::Post& post : posts) {
    const PushOutcome outcome = push_post_locked(post);
    if (outcome == PushOutcome::kRejected) break;
    if (outcome == PushOutcome::kAccepted) ++accepted;
  }
  publish_health();
  return accepted;
}

std::size_t StreamIngestor::push_calls(
    std::span<const confsim::CallRecord> calls) {
  std::size_t accepted = 0;
  for (const confsim::CallRecord& call : calls) {
    const PushOutcome outcome = push(call);
    if (outcome == PushOutcome::kRejected) break;
    if (outcome == PushOutcome::kAccepted) ++accepted;
  }
  return accepted;
}

std::size_t StreamIngestor::push_posts(std::span<const social::Post> posts) {
  std::size_t accepted = 0;
  for (const social::Post& post : posts) {
    const PushOutcome outcome = push(post);
    if (outcome == PushOutcome::kRejected) break;
    if (outcome == PushOutcome::kAccepted) ++accepted;
  }
  return accepted;
}

bool StreamIngestor::flush() {
  const std::lock_guard<std::mutex> lock{mu_};
  const bool calls_ok = flush_corpus(Corpus::kCalls);
  const bool posts_ok = flush_corpus(Corpus::kPosts);
  publish_health();
  return calls_ok && posts_ok;
}

bool StreamIngestor::make_room(Corpus corpus) {
  switch (config_.backpressure) {
    case BackpressurePolicy::kReject:
      return false;
    case BackpressurePolicy::kDropOldest:
      if (corpus == Corpus::kCalls) {
        staged_calls_.pop_front();
      } else {
        staged_posts_.pop_front();
      }
      ++stats_.health.dropped;
      return true;
    case BackpressurePolicy::kBlock: {
      ++stats_.blocked_pushes;
      for (std::size_t round = 0; round < config_.max_block_rounds; ++round) {
        if (flush_corpus(corpus)) return true;
      }
      return false;
    }
  }
  return false;
}

bool StreamIngestor::flush_corpus(Corpus corpus) {
  const bool calls = corpus == Corpus::kCalls;
  const std::size_t staged =
      calls ? staged_calls_.size() : staged_posts_.size();
  bool& degraded = calls ? degraded_calls_ : degraded_posts_;
  if (staged == 0) {
    degraded = false;
    return true;
  }
  for (std::size_t attempt = 0; attempt < config_.max_flush_attempts;
       ++attempt) {
    if (attempt > 0) {
      // Exponential backoff between attempts, capped. Doubling with a
      // halfway guard instead of a shift: a shift by (attempt - 1) would
      // be UB past 63 attempts, and even a clamped shift overflows when
      // retry_backoff is large — overflow here produced a *negative*
      // backoff, silently skipping the sleep and the histogram sample.
      ++stats_.health.flush_retries;
      ++stats_.backoff_waits;
      auto backoff = std::min(config_.retry_backoff, config_.max_backoff);
      for (std::size_t doublings = 1;
           doublings < attempt && backoff.count() > 0 &&
           backoff < config_.max_backoff;
           ++doublings) {
        backoff = backoff <= config_.max_backoff / 2 ? backoff * 2
                                                     : config_.max_backoff;
      }
      if (backoff > std::chrono::milliseconds{0}) {
        backoff_seconds_.observe(
            std::chrono::duration<double>(backoff).count());
        std::this_thread::sleep_for(backoff);
      }
    }
    if (faults_ != nullptr) {
      const auto delay = faults_->flush_delay();
      if (delay > std::chrono::milliseconds{0}) {
        std::this_thread::sleep_for(delay);
      }
      if (faults_->fail_this_flush()) {
        ++stats_.health.flush_failures;
        continue;
      }
    }
    if (calls) {
      core::telemetry::TraceSpan span{flush_calls_seconds_};
      const std::vector<confsim::CallRecord> batch{staged_calls_.begin(),
                                                   staged_calls_.end()};
      service_.ingest_calls(batch);
      staged_calls_.clear();
    } else {
      core::telemetry::TraceSpan span{flush_posts_seconds_};
      const std::vector<social::Post> batch{staged_posts_.begin(),
                                            staged_posts_.end()};
      service_.ingest_posts(batch);
      staged_posts_.clear();
    }
    stats_.health.flushed += staged;
    ++stats_.health.flushes;
    degraded = false;
    return true;
  }
  degraded = true;
  return false;
}

void StreamIngestor::quarantine_record(QuarantinedRecord record) {
  ++stats_.health.quarantined;
  ++stats_.quarantined_by_reason[static_cast<std::size_t>(record.reason)];
  if (dead_letter_.size() >= config_.quarantine_capacity) {
    dead_letter_.pop_front();
    ++stats_.quarantine_evicted;
  }
  dead_letter_.push_back(record);
}

StreamHealth StreamIngestor::health_snapshot() const {
  StreamHealth health = stats_.health;
  health.staged = staged_calls_.size() + staged_posts_.size();
  health.degraded = degraded_calls_ || degraded_posts_;
  health.blocked_pushes = stats_.blocked_pushes;
  health.backoff_waits = stats_.backoff_waits;
  return health;
}

void StreamIngestor::publish_health() {
  service_.publish_stream_health(health_snapshot());
}

StreamIngestor::Stats StreamIngestor::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  Stats out = stats_;
  out.health = health_snapshot();
  out.staged_calls = staged_calls_.size();
  out.staged_posts = staged_posts_.size();
  return out;
}

std::vector<StreamIngestor::QuarantinedRecord> StreamIngestor::quarantine()
    const {
  const std::lock_guard<std::mutex> lock{mu_};
  return {dead_letter_.begin(), dead_letter_.end()};
}

}  // namespace usaas::service
