#include "usaas/fair_queue.h"

#include <algorithm>
#include <limits>

namespace usaas::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Forward-progress floor for dispatcher naps: after a contended consume
/// the residual need can round to ~0 seconds, and an unfloored nap would
/// spin without minting a single token. Far below anything a
/// deterministic test asserts on.
constexpr double kMinNapSeconds = 1e-6;

}  // namespace

FairQueue::Outcome FairQueue::wait(double deadline,
                                   const TryAcquire& try_acquire) {
  return wait_reported(deadline, try_acquire).outcome;
}

FairQueue::WaitReport FairQueue::wait_reported(double deadline,
                                               const TryAcquire& try_acquire) {
  std::unique_lock<std::mutex> lock{mu_};

  // Fast path: with nobody parked there is no ordering to respect, so
  // try inline. This is the only path an uncontended pool ever takes,
  // and it performs zero clock waits — bit-identical admission for the
  // deterministic single-tenant tests.
  if (waiters_.empty()) {
    const double now = clock_.now();
    const double need = try_acquire(now);
    if (need <= 0.0) {
      ++stats_.acquired_immediate;
      return {Outcome::kAcquired, false};
    }
    if (need == kInf) {
      ++stats_.unpayable;
      return {Outcome::kUnpayable, false};
    }
    if (now >= deadline) {
      ++stats_.expired;
      return {Outcome::kDeadline, false};
    }
  }

  Waiter self{deadline, next_seq_++, &try_acquire};
  waiters_.insert(&self);
  ++stats_.parked;
  stats_.depth = waiters_.size();
  stats_.max_depth = std::max(stats_.max_depth, stats_.depth);
  // A dispatcher may be mid-nap on a bound computed before we arrived;
  // kick it so the next sweep (and nap) includes our deadline — without
  // this a nearer-deadline latecomer would wait out the whole stale nap.
  if (dispatcher_active_) cv_.notify_all();

  while (self.state == Waiter::kWaiting) {
    if (!dispatcher_active_) {
      dispatcher_active_ = true;
      sweep_and_nap_locked(lock, self);
      dispatcher_active_ = false;
      // Wake followers: either their state changed during the sweep, or
      // one of them must inherit the dispatcher role.
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }

  waiters_.erase(&self);
  stats_.depth = waiters_.size();
  switch (self.state) {
    case Waiter::kAcquired:
      ++stats_.acquired_queued;
      return {Outcome::kAcquired, true};
    case Waiter::kUnpayable:
      ++stats_.unpayable;
      return {Outcome::kUnpayable, true};
    case Waiter::kDeadline:
    case Waiter::kWaiting:  // unreachable; the loop exits on a verdict
      break;
  }
  ++stats_.expired;
  return {Outcome::kDeadline, true};
}

void FairQueue::sweep_and_nap_locked(std::unique_lock<std::mutex>& lock,
                                     Waiter& self) {
  ++stats_.sweeps;
  const double now = clock_.now();
  double nap = kInf;
  bool verdicts_landed = false;
  for (Waiter* w : waiters_) {  // EDF order: most urgent claims first
    if (w->state != Waiter::kWaiting) continue;
    const double need = (*w->try_acquire)(now);
    if (need <= 0.0) {
      w->state = Waiter::kAcquired;
      verdicts_landed = true;
      continue;
    }
    if (need == kInf) {
      w->state = Waiter::kUnpayable;
      verdicts_landed = true;
      continue;
    }
    // Can't pay now. Expire only when no accrual time remains: a waiter
    // whose tokens land exactly at its deadline is still admitted, which
    // matches the pre-queue per-bucket loop's `now + need > deadline`
    // boundary.
    if (now >= w->deadline) {
      w->state = Waiter::kDeadline;
      verdicts_landed = true;
      continue;
    }
    nap = std::min({nap, need, w->deadline - now});
  }

  // Our own verdict landed: hand the dispatcher role back immediately so
  // the caller loop exits without napping on behalf of others.
  if (self.state != Waiter::kWaiting) return;

  // Someone else's verdict landed: release them before napping — their
  // wakeup must not wait out a nap they no longer participate in.
  if (verdicts_landed) cv_.notify_all();

  // `self` is still waiting and was neither expired nor unpayable, so
  // nap <= min(own need, own slack) is finite. Nap interruptibly: a new
  // arrival notifies cv_, cutting the nap short so the next sweep
  // re-derives the bound with the newcomer's deadline included. Under a
  // VirtualClock the nap *advances* time instantly instead of sleeping,
  // and the dispatcher is the only thread that ever advances the clock,
  // so virtual tests stay deterministic.
  clock_.wait_interruptible(cv_, lock, std::max(nap, kMinNapSeconds));
}

FairQueue::Stats FairQueue::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return stats_;
}

std::size_t FairQueue::depth() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return waiters_.size();
}

}  // namespace usaas::service
