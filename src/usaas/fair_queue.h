// A deadline-ordered (EDF) cross-tenant wait queue for saturated pools.
//
// PR 7's admission loop parked each tenant on its own token bucket: a
// submission slept exactly `seconds_until(cost)` and retried. That is
// fair *within* a tenant but blind *across* tenants — when three tenants
// saturate the same pool, each sleeps on its private schedule and the
// wakeup order is whatever the OS makes of it, so a dashboard query with
// 50 ms of budget can lose its slot to a batch crawl that had seconds to
// spare. FairQueue replaces the private sleeps with one queue ordered by
// absolute deadline (earliest-deadline-first): the submission that will
// time out soonest is always the next one offered tokens.
//
// The queue does not know about tenants, buckets or costs. A waiter
// brings a `try_acquire` closure that, given "now", either takes the
// resource (returns 0) or reports how many seconds of accrual it still
// needs (+infinity = never payable, e.g. cost beyond burst). Weighting
// therefore lives where it always did — in each tenant's token-bucket
// rate — while *ordering* under contention is global EDF. The caller
// maps the three verdicts to its own policy (admit / degrade-or-shed).
//
// Mechanics — the dispatcher sweep. Parked waiters sit in a set ordered
// by (deadline, seq). Exactly one waiter at a time volunteers as the
// dispatcher: it sweeps every waiter in EDF order, calling each waiter's
// try_acquire so the earliest deadline gets first claim on whatever
// tokens accrued, marks winners/expired/unpayable, then naps for
// min over still-waiting waiters of (seconds needed, deadline slack) —
// so it always wakes in time to either feed or expire the most urgent
// waiter. The nap is interruptible: a newly arriving waiter notifies the
// queue's condition variable, cutting the nap short so the next sweep
// re-derives the bound with the newcomer's (possibly nearer) deadline
// included — an urgent latecomer never waits out a stale nap. Everyone
// else blocks on the same condition variable with no timeout, which
// keeps the design correct under core::VirtualClock: virtual time only
// moves when *some* thread advances the clock, and here that thread is
// always the dispatcher, whose nap is exactly the next interesting
// instant. A single uncontended waiter is its own dispatcher, so
// deterministic single-threaded tests see the same exact waits as PR 7's
// private-sleep loop.
//
// Lock ordering: FairQueue::mu_ is held while try_acquire runs, and the
// scheduler's closure takes QueryScheduler::mu_ inside it. The safe
// order is therefore FairQueue::mu_ -> QueryScheduler::mu_; never call
// FairQueue::wait() while holding a lock that try_acquire also needs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>

#include "core/scheduler_clock.h"

namespace usaas::service {

class FairQueue {
 public:
  enum class Outcome {
    kAcquired,   ///< try_acquire returned 0: the resource was taken.
    kDeadline,   ///< The deadline passed while still unpayable.
    kUnpayable,  ///< try_acquire returned +infinity: never payable.
  };

  /// Given "now" (the queue clock's seconds), either consume the
  /// resource and return 0, or return the seconds of accrual still
  /// needed (+infinity = never). Called with FairQueue::mu_ held; must
  /// not call back into this queue.
  using TryAcquire = std::function<double(double now)>;

  struct Stats {
    std::uint64_t parked{0};              ///< Waits that had to queue.
    std::uint64_t acquired_immediate{0};  ///< Empty queue, first try won.
    std::uint64_t acquired_queued{0};     ///< Won after parking.
    std::uint64_t expired{0};             ///< Deadline passed in queue.
    std::uint64_t unpayable{0};           ///< Never-payable verdicts.
    std::uint64_t sweeps{0};              ///< Dispatcher sweep rounds.
    std::size_t depth{0};                 ///< Currently parked waiters.
    std::size_t max_depth{0};             ///< High-water parked waiters.
  };

  /// Borrows the clock (must outlive the queue).
  explicit FairQueue(core::SchedulerClock& clock) : clock_{clock} {}

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Blocks until try_acquire succeeds, `deadline` (absolute clock
  /// seconds) passes, or the resource proves unpayable. An empty queue
  /// is tried immediately without parking; a non-empty queue always
  /// parks, so a latecomer can never jump an earlier deadline.
  [[nodiscard]] Outcome wait(double deadline, const TryAcquire& try_acquire);

  /// wait() plus whether this waiter actually parked (vs the empty-queue
  /// fast path) — request traces mark parked waits as "queued".
  struct WaitReport {
    Outcome outcome{Outcome::kDeadline};
    bool parked{false};
  };
  [[nodiscard]] WaitReport wait_reported(double deadline,
                                         const TryAcquire& try_acquire);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t depth() const;

 private:
  struct Waiter {
    enum State { kWaiting, kAcquired, kDeadline, kUnpayable };
    double deadline;
    std::uint64_t seq;  ///< FIFO tie-break for equal deadlines.
    const TryAcquire* try_acquire;
    State state{kWaiting};
  };

  struct EdfOrder {
    bool operator()(const Waiter* a, const Waiter* b) const {
      if (a->deadline != b->deadline) return a->deadline < b->deadline;
      return a->seq < b->seq;
    }
  };

  /// One dispatcher round: sweep all waiters in EDF order, then (if
  /// `self` is still waiting) nap until the next interesting instant.
  /// Releases and reacquires `lock` around the nap.
  void sweep_and_nap_locked(std::unique_lock<std::mutex>& lock, Waiter& self);

  core::SchedulerClock& clock_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<Waiter*, EdfOrder> waiters_;
  bool dispatcher_active_{false};
  std::uint64_t next_seq_{0};
  Stats stats_;
};

}  // namespace usaas::service
