// Per-tenant circuit breaker for the admission path.
//
// A tenant that keeps being shed or keeps blowing its deadline is not
// helped by queueing more of its requests — every parked submission
// burns a fair-queue slot and bucket math on an outcome that is already
// known. The breaker converts a streak of such failures into an explicit
// state machine:
//
//   closed ──(failure_threshold consecutive shed/expired)──> open
//   open ──(cooldown elapses; next allow() grants ONE probe)──> half-open
//   half-open ──probe admitted──> closed   (streak and cooldown reset)
//   half-open ──probe fails────> open      (cooldown grows by the
//                                           backoff factor, capped)
//
// While open, the scheduler short-circuits the tenant straight to
// degrade-or-shed without waiting for tokens — a stale cached answer is
// still served when one exists, so an open breaker degrades service, it
// does not black-hole it. Short-circuited sheds are NOT recorded as
// failures (they are the breaker's own output; feeding them back would
// re-arm the cooldown forever and the breaker could never half-open).
// Degraded outcomes are streak-neutral: serving stale is the system
// working as designed, neither evidence of health nor of failure.
//
// Like core::TokenBucket, the breaker never reads a clock — callers pass
// "now" in — and is unsynchronized by design; QueryScheduler serializes
// access under its own mutex, and the whole machine replays exactly
// under a core::VirtualClock.
#pragma once

#include <cstddef>

namespace usaas::service {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive shed/expired outcomes that trip the breaker open.
    /// 0 disables the breaker entirely (allow() always grants).
    std::size_t failure_threshold{5};
    /// First open -> half-open probe delay, seconds.
    double cooldown_seconds{1.0};
    /// Each failed probe multiplies the next cooldown by this factor...
    double cooldown_backoff{2.0};
    /// ...capped here.
    double max_cooldown_seconds{30.0};
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Config config)
      : config_{config}, cooldown_{config.cooldown_seconds} {}

  /// May a request for this tenant proceed into admission? Closed: yes.
  /// Open: no, until the cooldown elapses — at which point the FIRST
  /// caller transitions to half-open and is granted the probe slot.
  /// Half-open: only while no probe is in flight.
  [[nodiscard]] bool allow(double now);

  /// The probe (or any admitted request) succeeded: snap closed, reset
  /// the failure streak and the cooldown ladder.
  void record_success();

  /// A shed or expired outcome that was NOT a breaker short-circuit.
  /// Closed: grows the streak, trips open at the threshold. Half-open:
  /// the probe failed — reopen with a longer cooldown.
  void record_failure(double now);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::size_t consecutive_failures() const {
    return consecutive_failures_;
  }
  /// Seconds until an open breaker grants its half-open probe (0 when
  /// not open) — the shed path's Retry-After ingredient.
  [[nodiscard]] double seconds_until_probe(double now) const;

 private:
  Config config_;
  State state_{State::kClosed};
  std::size_t consecutive_failures_{0};
  double cooldown_{1.0};     ///< Next open period; grows on failed probes.
  double open_until_{0.0};   ///< Absolute seconds the open period ends.
  bool probe_in_flight_{false};
};

[[nodiscard]] constexpr const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace usaas::service
