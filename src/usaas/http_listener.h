// The network boundary in front of the admission path: a minimal
// HTTP/1.1 server over POSIX TCP sockets.
//
// Until this PR the whole USaaS front end was process-local — the §5
// vision of an always-on operator service needs an actual wire, and the
// wire is where overload and misbehaving peers live. The listener is
// deliberately small (no keep-alive, no chunked encoding, one request
// per connection) but takes the overload problems seriously:
//
//   * accept loop + bounded worker pool: a fixed number of workers pull
//     accepted sockets from a bounded queue. When the queue is full the
//     acceptor answers 503 + Retry-After inline and closes — clients get
//     an honest "saturated" instead of a hung connect;
//   * per-socket read/write timeouts (SO_RCVTIMEO/SO_SNDTIMEO) PLUS an
//     overall request-read deadline, so a slow-loris peer trickling one
//     byte per timeout window still gets cut off — the read deadline,
//     not a wedged worker, ends the connection;
//   * bounded request size: oversized headers/bodies are a 400, never an
//     unbounded buffer;
//   * admission mapping: QueryScheduler outcomes become status codes —
//     admitted/degraded 200, shed 429 with Retry-After from the
//     token-bucket refill estimate (stretched to the circuit breaker's
//     probe time when open), expired 504, saturated 503;
//   * /metrics and /metrics.json reuse the PR 5 exposition, so the
//     service stays measurable THROUGH the same boundary it serves on
//     (the crowdsourced-QoE white paper's point: a measurement service
//     must itself stay measurable under load).
//
// Wire form (both spellings parse into the same WireRequest; see
// parse_query_string / parse_json_body, unit-tested directly):
//
//   GET /query?tenant=dashboards&first=2022-01-01&last=2022-03-31
//             &metric=latency&lo=0&hi=300&bins=10
//             [&platform=ios][&access=leo-satellite][&budget_ms=250]
//
//   POST /query
//   {"tenant":"dashboards","first":"2022-01-01","last":"2022-03-31",
//    "metric":"latency","lo":0,"hi":300,"bins":10,
//    "platform":"ios","access":"leo-satellite","budget_ms":250}
//
// Fault injection: the listener consumes core::FaultInjector's
// fail_this_accept() (a just-accepted connection is dropped as if
// accept() failed transiently); the client-side socket faults
// (slow-loris, truncation, early disconnect) are applied by the chaos
// test's client, and the listener's job is to survive them with an
// exactly-reconciling ledger and a clean shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "usaas/query_scheduler.h"

namespace usaas::service {

struct HttpListenerConfig {
  /// Loopback by default: this is a demo/test boundary, not a hardened
  /// public endpoint.
  std::string bind_address{"127.0.0.1"};
  std::uint16_t port{0};  ///< 0 = ephemeral; see HttpListener::port().
  std::size_t worker_threads{4};
  /// Accepted-but-unprocessed connection cap (the bounded request
  /// queue). Beyond it the acceptor sheds with an inline 503.
  std::size_t max_pending_connections{64};
  std::size_t max_request_bytes{16 * 1024};
  /// Overall budget to read one full request, and per-write timeout.
  std::chrono::milliseconds read_timeout{1000};
  std::chrono::milliseconds write_timeout{1000};
  /// Budget handed to the scheduler when the request names none.
  double default_budget_seconds{1.0};
  /// Server-side fault injection (accept failures). nullptr = no faults.
  core::FaultInjector* fault{nullptr};
};

/// A parsed /query request: who is asking, what they ask, how long they
/// are willing to wait.
struct WireRequest {
  std::string tenant{"anonymous"};
  Query query;
  double budget_seconds{0.0};  ///< 0 = caller named none; use the default.
};

/// Parses the query-string spelling (everything after `?`). Returns
/// nullopt and fills `error` on any unknown key or malformed value —
/// the listener maps that straight to a 400.
[[nodiscard]] std::optional<WireRequest> parse_query_string(
    std::string_view qs, std::string& error);

/// Parses the flat-JSON spelling (string/number values only, no
/// nesting). Same strictness as parse_query_string.
[[nodiscard]] std::optional<WireRequest> parse_json_body(
    std::string_view body, std::string& error);

struct HttpListenerStats {
  std::uint64_t accepted{0};        ///< accept() handed us a socket.
  std::uint64_t accept_failures{0}; ///< injected transient accept faults
  std::uint64_t saturated{0};       ///< queue full: inline 503, closed
  std::uint64_t drained{0};         ///< landed during shutdown: closed
                                    ///< unanswered, never reached a worker
  std::uint64_t handled{0};         ///< dequeued and processed by a worker
  std::uint64_t read_failures{0};   ///< timeout/EOF/oversize before a
                                    ///< full request (no response owed)
  std::uint64_t responses_sent{0};  ///< full response written
  std::uint64_t write_failures{0};  ///< peer vanished mid-response
  // Responses by status (worker-written ones; saturated 503s are counted
  // in `saturated`, not here — they never reach a worker).
  std::uint64_t status_200{0};
  std::uint64_t status_400{0};
  std::uint64_t status_404{0};
  std::uint64_t status_429{0};
  std::uint64_t status_504{0};
  /// Wall seconds stop() spent waiting for workers to exit.
  double shutdown_seconds{0.0};

  /// Every accepted socket is accounted exactly once, and every handled
  /// one resolves to exactly one of read-failure / response / broken
  /// write. The chaos harness asserts this under fault storms.
  [[nodiscard]] bool reconciles() const {
    return accepted == accept_failures + saturated + drained + handled &&
           handled == read_failures + responses_sent + write_failures &&
           responses_sent == status_200 + status_400 + status_404 +
                                 status_429 + status_504;
  }
};

/// Borrows the scheduler and its service (both must outlive the
/// listener). start() binds and spawns threads; stop() (or the
/// destructor) shuts down; `stop(timeout)` reports whether every worker
/// exited in time — the chaos harness's no-wedged-worker gate.
class HttpListener {
 public:
  HttpListener(QueryScheduler& scheduler, QueryService& service,
               HttpListenerConfig config = {});
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds, listens, and spawns the acceptor + workers. Returns false
  /// (with no threads running) when the socket setup fails.
  [[nodiscard]] bool start();

  /// Idempotent shutdown: closes the listen socket, drains the pending
  /// queue (each drained connection is closed unanswered), and waits up
  /// to `timeout` for every thread to exit. Returns false when a thread
  /// failed to exit in time (it is then detached — the process is
  /// expected to be failing its test at that point).
  bool stop(std::chrono::milliseconds timeout = std::chrono::seconds{5});

  /// The bound port (resolves config port 0 to the ephemeral choice).
  /// Valid after a successful start().
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] HttpListenerStats stats() const;

 private:
  void accept_loop();
  void worker_loop();
  /// Reads, parses, dispatches and answers one connection. Owns `fd`.
  void handle_connection(int fd);
  /// Reads one full request (headers + content-length body) within the
  /// read deadline and size bound. Returns false on timeout/EOF/overrun.
  [[nodiscard]] bool read_request(int fd, std::string& raw);
  /// Writes the whole buffer with SO_SNDTIMEO armed; false on any short
  /// or failed write (peer vanished / stalled).
  [[nodiscard]] bool write_all(int fd, std::string_view data);
  void bump_status_locked(int status);

  QueryScheduler& scheduler_;
  QueryService& service_;
  HttpListenerConfig config_;
  std::uint16_t port_{0};
  /// Owned listen socket. Atomic because stop() retires it while the
  /// acceptor thread is still running; the fd itself is closed only
  /// after the threads are joined (shutdown() is what wakes a blocked
  /// accept()), so the acceptor never touches a reused descriptor.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> threads_exited_{0};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted sockets awaiting a worker.
  HttpListenerStats stats_;
};

}  // namespace usaas::service
