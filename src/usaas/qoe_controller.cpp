#include "usaas/qoe_controller.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace usaas::service {

netsim::NetworkConditions BoostAction::apply(
    const netsim::NetworkConditions& c) const {
  netsim::NetworkConditions out;
  out.latency = core::Milliseconds{c.latency.ms() * latency_mult};
  out.loss = core::Percent{c.loss.percent() * loss_mult};
  out.jitter = core::Milliseconds{c.jitter.ms() * jitter_mult};
  out.bandwidth = core::Mbps{c.bandwidth.mbps() + bandwidth_add_mbps};
  return out;
}

const char* to_string(BoostPolicy p) {
  switch (p) {
    case BoostPolicy::kRandom: return "random";
    case BoostPolicy::kWorstNetworkFirst: return "worst-network-first";
    case BoostPolicy::kPredictedGain: return "predicted-gain (USaaS)";
  }
  return "unknown";
}

QoeExperiment::QoeExperiment(QoeExperimentConfig config)
    : config_{config}, model_{config_.behavior, config_.mitigation} {
  if (config_.budget_fraction < 0.0 || config_.budget_fraction > 1.0) {
    throw std::invalid_argument("QoeExperiment: budget fraction in [0,1]");
  }
}

AllocationOutcome QoeExperiment::summarize(
    std::span<const netsim::NetworkConditions> sessions,
    std::span<const char> boosted, BoostPolicy policy) const {
  AllocationOutcome out;
  out.policy = policy;
  out.sessions = sessions.size();
  const confsim::BehaviorContext ctx;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const netsim::NetworkConditions c =
        boosted[i] != 0 ? config_.boost.apply(sessions[i]) : sessions[i];
    const auto damage = model_.damage(c, ctx);
    const auto eng = model_.expected_engagement(c, ctx);
    out.mean_experience_impairment += damage.experience;
    out.mean_presence_pct += eng.presence_pct;
    out.mean_drop_off += damage.drop_off;
    out.boosted += boosted[i] != 0 ? 1 : 0;
  }
  const auto n = static_cast<double>(sessions.size());
  if (n > 0) {
    out.mean_experience_impairment /= n;
    out.mean_presence_pct /= n;
    out.mean_drop_off /= n;
  }
  return out;
}

AllocationOutcome QoeExperiment::run_unboosted(
    std::span<const netsim::NetworkConditions> sessions) const {
  const std::vector<char> none(sessions.size(), 0);
  auto out = summarize(sessions, none, BoostPolicy::kRandom);
  out.boosted = 0;
  return out;
}

AllocationOutcome QoeExperiment::run(
    std::span<const netsim::NetworkConditions> sessions, BoostPolicy policy,
    core::Rng& rng) const {
  const auto budget = static_cast<std::size_t>(
      config_.budget_fraction * static_cast<double>(sessions.size()));
  std::vector<char> boosted(sessions.size(), 0);
  const confsim::BehaviorContext ctx;

  std::vector<std::size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  switch (policy) {
    case BoostPolicy::kRandom:
      rng.shuffle(order);
      break;
    case BoostPolicy::kWorstNetworkFirst: {
      // Rank by raw experienced impairment (worst first) — what a
      // network-metrics-only controller can see.
      std::vector<double> badness(sessions.size());
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        badness[i] = model_.damage(sessions[i], ctx).experience;
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return badness[a] > badness[b];
      });
      break;
    }
    case BoostPolicy::kPredictedGain: {
      // Rank by predicted improvement — what USaaS's user-experience
      // model adds: the *marginal* benefit of the boost.
      std::vector<double> gain(sessions.size());
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        const double before = model_.damage(sessions[i], ctx).experience;
        const double after =
            model_.damage(config_.boost.apply(sessions[i]), ctx).experience;
        gain[i] = before - after;
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return gain[a] > gain[b];
      });
      break;
    }
  }
  for (std::size_t i = 0; i < budget && i < order.size(); ++i) {
    boosted[order[i]] = 1;
  }
  return summarize(sessions, boosted, policy);
}

}  // namespace usaas::service
