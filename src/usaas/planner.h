// Deployment planning against forecast user sentiment (§6).
//
// "Could SpaceX change Starlink deployment plans (which LEO satellite
// shell to deploy next) given the current deployment, footprint, and user
// sentiment?" — the paper's traffic-engineering / network-planning
// opportunity. DeploymentPlanner evaluates candidate launch allocations
// over a horizon by projecting the speed model forward and forecasting
// the Pos sentiment score through the same adaptation (fulcrum) dynamics
// the social study measured: because users judge *changes* rather than
// levels, a plan that smooths the capacity/demand ratio beats one that
// front-loads the same satellites and then lets speeds sag.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "leo/speed.h"

namespace usaas::service {

/// A candidate plan: how many launches to fly in each month of the
/// horizon (all with the same batch size).
struct PlanSpec {
  std::string name;
  std::vector<int> launches_per_month;
  int satellites_per_launch{52};

  [[nodiscard]] int total_launches() const {
    int total = 0;
    for (const int n : launches_per_month) total += n;
    return total;
  }
};

/// Forecast for one month of a plan.
struct PlanMonth {
  core::Date month_start;
  double median_downlink_mbps{0.0};
  /// Adapted community expectation entering the month.
  double expectation_mbps{0.0};
  /// Forecast Pos = strong+/(strong+ + strong-) under the fulcrum model.
  double forecast_pos{0.5};
};

struct PlanEvaluation {
  PlanSpec plan;
  std::vector<PlanMonth> months;
  double mean_pos{0.0};
  double min_pos{0.0};
  double final_median_mbps{0.0};
};

/// What the sentiment-aware planner optimizes.
enum class PlanObjective {
  kMeanPos,  // best average sentiment over the horizon
  kMinPos,   // best worst-month sentiment (stability)
};

[[nodiscard]] constexpr const char* to_string(PlanObjective o) {
  switch (o) {
    case PlanObjective::kMeanPos: return "mean-pos";
    case PlanObjective::kMinPos: return "min-pos";
  }
  return "unknown";
}

struct PlannerConfig {
  /// Fulcrum dynamics (must mirror the social model for the forecast to
  /// predict the simulated Pos; the integration test checks this).
  double expectation_alpha_daily{0.035};
  double delta_gain{3.5};
  /// Combined dispersion of per-post polarity around gain*delta (mood
  /// noise + the lognormal spread of individual speed tests).
  double polarity_sigma{0.85};
  /// Strong-sentiment threshold in polarity space (the +-0.6 text-bucket
  /// boundary of the generator).
  double strong_polarity{0.6};
};

class DeploymentPlanner {
 public:
  /// `history` is the schedule already flown; `subscribers` forecasts
  /// demand. Planning starts at `horizon_start`.
  DeploymentPlanner(leo::LaunchSchedule history,
                    leo::SubscriberModel subscribers,
                    core::Date horizon_start,
                    leo::ConstellationParams constellation_params = {},
                    leo::SpeedModelParams speed_params = {},
                    PlannerConfig config = {});

  /// Projects one plan over `months` months.
  [[nodiscard]] PlanEvaluation evaluate(const PlanSpec& plan,
                                        int months) const;

  /// Ranks plans by the objective.
  [[nodiscard]] PlanEvaluation best_of(
      std::span<const PlanSpec> plans, int months,
      PlanObjective objective = PlanObjective::kMeanPos) const;

  /// Canned strategies for a budget of `total_launches` over `months`.
  [[nodiscard]] static PlanSpec uniform_plan(int total_launches, int months,
                                             int sats_per_launch = 52);
  [[nodiscard]] static PlanSpec front_loaded_plan(int total_launches,
                                                  int months,
                                                  int sats_per_launch = 52);
  [[nodiscard]] static PlanSpec back_loaded_plan(int total_launches,
                                                 int months,
                                                 int sats_per_launch = 52);
  /// Greedy: assigns each launch to the month whose assignment maximizes
  /// the chosen objective (the USaaS-in-the-loop strategy).
  [[nodiscard]] PlanSpec sentiment_aware_plan(
      int total_launches, int months,
      PlanObjective objective = PlanObjective::kMeanPos,
      int sats_per_launch = 52) const;

  [[nodiscard]] const core::Date& horizon_start() const {
    return horizon_start_;
  }

 private:
  [[nodiscard]] leo::SpeedModel projected_model(const PlanSpec& plan) const;
  /// Pos forecast for a polarity mean under the noise model.
  [[nodiscard]] double forecast_pos(double mean_polarity) const;

  leo::LaunchSchedule history_;
  leo::SubscriberModel subscribers_;
  core::Date horizon_start_;
  leo::ConstellationParams constellation_params_;
  leo::SpeedModelParams speed_params_;
  PlannerConfig config_;
};

}  // namespace usaas::service
