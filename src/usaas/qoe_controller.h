// QoE-aware online resource allocation (§6).
//
// "If call latency, for example, is the discerning factor affecting user
// experience on MS Teams, could network resource allocation be tuned
// online to cater to the demand?" — the paper's traffic-engineering
// opportunity. QoeExperiment simulates a boost budget (a better route /
// priority queue that improves a session's conditions) allocated by three
// policies over the same session population:
//   kRandom              — spray the budget blindly;
//   kWorstNetworkFirst   — classic QoS: boost the worst raw conditions;
//   kPredictedGain       — USaaS: boost where the *predicted experience
//                          gain* is largest (uses the behaviour model's
//                          nonlinearity: a session at the mic-knee or
//                          loss cliff gains more than a hopeless one).
#pragma once

#include <span>
#include <vector>

#include "confsim/behavior.h"
#include "core/rng.h"
#include "netsim/conditions.h"

namespace usaas::service {

/// What a boost does to a session's conditions (a premium route / FEC
/// budget / priority marking).
struct BoostAction {
  double latency_mult{0.55};
  double loss_mult{0.35};
  double jitter_mult{0.5};
  double bandwidth_add_mbps{1.0};

  [[nodiscard]] netsim::NetworkConditions apply(
      const netsim::NetworkConditions& c) const;
};

enum class BoostPolicy {
  kRandom,
  kWorstNetworkFirst,
  kPredictedGain,
};

[[nodiscard]] const char* to_string(BoostPolicy p);

/// Aggregate outcome of one allocation run.
struct AllocationOutcome {
  BoostPolicy policy{BoostPolicy::kRandom};
  std::size_t sessions{0};
  std::size_t boosted{0};
  /// Mean experienced impairment (lower is better) and engagement.
  double mean_experience_impairment{0.0};
  double mean_presence_pct{0.0};
  double mean_drop_off{0.0};
};

struct QoeExperimentConfig {
  /// Fraction of sessions the budget can boost.
  double budget_fraction{0.10};
  BoostAction boost{};
  confsim::BehaviorParams behavior{confsim::default_behavior_params()};
  netsim::MitigationConfig mitigation{};
};

class QoeExperiment {
 public:
  explicit QoeExperiment(QoeExperimentConfig config = {});

  /// Allocates the budget over `sessions` with the given policy and
  /// reports the population outcome (expected engagement, deterministic;
  /// rng is used only by the random policy's choice of targets).
  [[nodiscard]] AllocationOutcome run(
      std::span<const netsim::NetworkConditions> sessions, BoostPolicy policy,
      core::Rng& rng) const;

  /// Baseline outcome with no boosts at all.
  [[nodiscard]] AllocationOutcome run_unboosted(
      std::span<const netsim::NetworkConditions> sessions) const;

  [[nodiscard]] const QoeExperimentConfig& config() const { return config_; }

 private:
  [[nodiscard]] AllocationOutcome summarize(
      std::span<const netsim::NetworkConditions> sessions,
      std::span<const char> boosted, BoostPolicy policy) const;

  QoeExperimentConfig config_;
  confsim::UserBehaviorModel model_;
};

}  // namespace usaas::service
