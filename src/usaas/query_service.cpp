#include "usaas/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/flat_index.h"
#include "core/timeseries.h"

namespace usaas::service {

namespace {

using core::month_key;

[[nodiscard]] double seconds_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

QueryValidation Query::validate() const {
  if (first > last) {
    return {QueryError::kReversedWindow,
            "window is reversed: first " + first.to_string() + " > last " +
                last.to_string()};
  }
  if (!std::isfinite(metric_lo) || !std::isfinite(metric_hi)) {
    return {QueryError::kNonFiniteMetricRange,
            "metric range bound is NaN or infinite"};
  }
  if (metric_lo >= metric_hi) {
    return {QueryError::kEmptyMetricRange,
            "metric range is empty: lo " + std::to_string(metric_lo) +
                " >= hi " + std::to_string(metric_hi)};
  }
  if (bins == 0) {
    return {QueryError::kZeroBins, "query requests zero bins"};
  }
  return {};
}

QueryService::QueryService(QueryServiceConfig config)
    : config_{config},
      pool_{config.threads >= 2
                ? std::make_unique<core::ThreadPool>(config.threads)
                : nullptr},
      engine_{config.sharding} {
  engine_.set_thread_pool(pool_.get());
}

void QueryService::ingest_calls(std::span<const confsim::CallRecord> calls) {
  const auto guard = sync_->lock.write();
  engine_.ingest(calls);
  predictor_trained_ = false;  // stale
  if (!calls.empty()) bump_version();
}

void QueryService::ingest_posts(std::span<const social::Post> posts) {
  if (posts.empty()) return;
  const auto guard = sync_->lock.write();
  const auto t0 = std::chrono::steady_clock::now();
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  const auto score_into = [&](const social::Post& post, ScoredPost& scored) {
    scored.date = post.date;
    const std::string text = post.full_text();
    scored.sentiment = analyzer_.score(text);
    scored.outage_hits =
        static_cast<std::uint32_t>(dict.count_occurrences(text));
  };
  const auto key_for = [&](const core::Date& d) {
    return config_.sharding == ShardingPolicy::kSingleShard ? 0 : month_key(d);
  };

  // Two-pass counted ingest, like CorrelationEngine::ingest: count per
  // (chunk, month key), prefix-sum into pre-reserved per-shard slices,
  // then score posts in parallel straight into their final slots (the
  // scoring — sentiment + keyword scan — dominates, so pass 2 is where
  // the threads pay off). Slot order == sequential ingest order.
  constexpr std::size_t kGrainPosts = 32;
  const std::size_t chunks =
      std::min({posts.size(), core::effective_parallelism(pool_.get()) * 4,
                std::max<std::size_t>(1, posts.size() / kGrainPosts)});
  const auto chunk_begin = [&](std::size_t c) {
    return c * posts.size() / chunks;
  };

  std::vector<core::DenseKeyCounts> counts(chunks);
  core::parallel_for(
      pool_.get(), chunks, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
            counts[c].add(key_for(posts[i].date));
          }
        }
      });
  const auto t1 = std::chrono::steady_clock::now();

  const core::ScatterPlan plan = core::build_scatter_plan(counts);
  std::vector<ScoredPost*> slices(plan.num_keys, nullptr);
  IngestStats batch;
  batch.batches = 1;
  batch.records = posts.size();
  batch.bytes_moved = posts.size() * sizeof(ScoredPost);
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    if (plan.totals[k] == 0) continue;
    auto& dst = post_shards_[plan.min_key + static_cast<int>(k)].posts;
    const std::size_t base = dst.size();
    dst.resize(base + plan.totals[k]);
    slices[k] = dst.data() + base;
    ++batch.shards_touched;
  }
  const auto t2 = std::chrono::steady_clock::now();

  core::parallel_for(
      pool_.get(), chunks, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          std::vector<std::size_t> cursor = plan.chunk_cursor(c);
          for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
            const auto k = static_cast<std::size_t>(key_for(posts[i].date) -
                                                    plan.min_key);
            score_into(posts[i], slices[k][cursor[k]++]);
          }
        }
      });
  const auto t3 = std::chrono::steady_clock::now();

  post_count_ += posts.size();
  batch.count_seconds = seconds_between(t0, t1);
  batch.plan_seconds = seconds_between(t1, t2);
  batch.scatter_seconds = seconds_between(t2, t3);
  batch.total_seconds = seconds_between(t0, t3);
  post_ingest_stats_.merge(batch);
  bump_version();
}

void QueryService::publish_stream_health(const StreamHealth& health) {
  const std::lock_guard<std::mutex> lock{sync_->health_mu};
  sync_->health = health;
}

QueryService::ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    const auto guard = sync_->lock.read();
    out.sessions = engine_.ingest_stats();
    out.posts = post_ingest_stats_;
    out.session_shards = engine_.shard_count();
    out.post_shards = post_shards_.size();
    out.corpus_version = sync_->version.load(std::memory_order_acquire);
  }
  {
    const std::lock_guard<std::mutex> lock{sync_->health_mu};
    out.stream = sync_->health;
  }
  return out;
}

bool QueryService::train_predictor() {
  const auto guard = sync_->lock.write();
  predictor_trained_ = false;
  // Canonical (month, platform, ingest) collection order: the fitted model
  // is bit-identical whichever ShardingPolicy stores the sessions.
  const auto rated = engine_.rated_sessions_canonical();
  if (rated.size() < MosPredictor::kMinRatedSessions) {
    predictor_.reset();
    bump_version();
    return false;
  }
  predictor_.train(rated);
  predictor_trained_ = true;
  bump_version();
  return true;
}

Insight QueryService::run(const Query& query) const {
  Insight insight;
  const QueryValidation verdict = query.validate();
  insight.error = verdict.error;
  if (!verdict.ok()) return insight;

  // One shared guard across the whole fan-out: the insight is a consistent
  // snapshot of a flushed corpus prefix, stamped with its version.
  const auto guard = sync_->lock.read();
  insight.corpus_version = sync_->version.load(std::memory_order_acquire);

  const ShardSelector selector{query.first, query.last, query.platform};
  ParticipantFilter filter;
  if (query.access) {
    filter = [access = *query.access](const confsim::ParticipantRecord& rec) {
      return rec.access == access;
    };
  }

  // ---- Implicit side: fan the binning + tallies across shards ----
  SweepSpec spec;
  spec.metric = query.metric;
  spec.lo = query.metric_lo;
  spec.hi = query.metric_hi;
  spec.bins = query.bins;
  spec.control_others = false;  // queries want the full population view
  for (const EngagementMetric m :
       {EngagementMetric::kPresence, EngagementMetric::kCamOn,
        EngagementMetric::kMicOn}) {
    insight.engagement.push_back(
        engine_.engagement_curve(spec, m, filter, selector));
    if (const auto corr = engine_.mos_correlation(m)) {
      insight.mos_spearman.emplace_back(m, corr->spearman);
    }
  }

  std::function<double(const confsim::ParticipantRecord&)> predict;
  if (predictor_trained_) {
    predict = [this](const confsim::ParticipantRecord& rec) {
      return predictor_.predict(rec);
    };
  }
  const CorrelationEngine::Tally tally =
      engine_.tally(filter, selector, predict);
  insight.sessions = tally.sessions;
  insight.rated_sessions = tally.rated;
  if (tally.rated > 0) {
    insight.observed_mean_mos =
        tally.observed_mos_sum / static_cast<double>(tally.rated);
  }
  if (tally.predicted > 0) {
    insight.predicted_mean_mos =
        tally.predicted_mos_sum / static_cast<double>(tally.predicted);
  }

  // ---- Explicit (social) side: pre-scored shards, pruned by month ----
  struct SelectedPosts {
    const PostShard* shard{nullptr};
    bool check_dates{false};
  };
  std::vector<SelectedPosts> selected;
  const int mk_first = month_key(query.first);
  const int mk_last = month_key(query.last);
  for (const auto& [mk, shard] : post_shards_) {
    if (config_.sharding == ShardingPolicy::kSingleShard) {
      selected.push_back({&shard, true});
      continue;
    }
    if (mk < mk_first || mk > mk_last) continue;
    selected.push_back({&shard, mk == mk_first || mk == mk_last});
  }

  struct SocialPartial {
    std::size_t posts{0};
    std::size_t strong_pos{0};
    std::size_t strong_neg{0};
    std::vector<std::pair<core::Date, double>> keyword_adds;
  };
  std::vector<SocialPartial> partials(selected.size());
  core::parallel_for(
      pool_.get(), selected.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const SelectedPosts& sel = selected[i];
          SocialPartial& part = partials[i];
          for (const ScoredPost& post : sel.shard->posts) {
            if (sel.check_dates &&
                (post.date < query.first || query.last < post.date)) {
              continue;
            }
            ++part.posts;
            if (post.sentiment.strong_positive()) ++part.strong_pos;
            if (post.sentiment.strong_negative()) ++part.strong_neg;
            if (post.outage_hits > 0 && post.sentiment.negative >= 0.4) {
              part.keyword_adds.emplace_back(
                  post.date, static_cast<double>(post.outage_hits));
            }
          }
        }
      });

  core::DailySeries keyword_days{query.first, query.last};
  std::size_t strong_pos = 0;
  std::size_t strong_neg = 0;
  for (const SocialPartial& part : partials) {
    insight.posts += part.posts;
    strong_pos += part.strong_pos;
    strong_neg += part.strong_neg;
    for (const auto& [date, hits] : part.keyword_adds) {
      keyword_days.add(date, hits);
    }
  }
  if (strong_pos + strong_neg > 0) {
    insight.strong_positive_share =
        static_cast<double>(strong_pos) /
        static_cast<double>(strong_pos + strong_neg);
  }
  double day_total = 0.0;
  std::size_t mention_days = 0;
  for (const double v : keyword_days.values()) {
    day_total += v;
    if (v > 0.0) ++mention_days;
  }
  insight.outage_mention_days = mention_days;
  const double day_mean =
      keyword_days.size() == 0
          ? 0.0
          : day_total / static_cast<double>(keyword_days.size());
  for (const auto& [date, value] : keyword_days.entries()) {
    if (day_mean > 0.0 && value > 3.0 * day_mean && value >= 5.0) {
      insight.outage_alert_days.push_back(date);
    }
  }
  return insight;
}

}  // namespace usaas::service
