#include "usaas/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/flat_index.h"
#include "core/telemetry/exposition.h"
#include "core/timeseries.h"

namespace usaas::service {

namespace {

using core::month_key;

[[nodiscard]] double seconds_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

QueryValidation Query::validate() const {
  if (first > last) {
    return {QueryError::kReversedWindow,
            "window is reversed: first " + first.to_string() + " > last " +
                last.to_string()};
  }
  if (!std::isfinite(metric_lo) || !std::isfinite(metric_hi)) {
    return {QueryError::kNonFiniteMetricRange,
            "metric range bound is NaN or infinite"};
  }
  if (metric_lo >= metric_hi) {
    return {QueryError::kEmptyMetricRange,
            "metric range is empty: lo " + std::to_string(metric_lo) +
                " >= hi " + std::to_string(metric_hi)};
  }
  if (bins == 0) {
    return {QueryError::kZeroBins, "query requests zero bins"};
  }
  return {};
}

QueryService::QueryService(QueryServiceConfig config)
    : config_{config},
      sync_{std::make_unique<Sync>(
          config.insight_cache_entries,
          // The kill switch silences the slow-query log too: without
          // telemetry there are no timings worth ranking.
          (config.telemetry != nullptr ? config.telemetry->enabled()
                                       : core::telemetry::Registry::global()
                                             .enabled())
              ? config.slow_query_log_entries
              : 0)},
      pool_{config.threads >= 2
                ? std::make_unique<core::ThreadPool>(config.threads)
                : nullptr},
      engine_{config.sharding},
      telemetry_{config.telemetry != nullptr
                     ? config.telemetry
                     : &core::telemetry::Registry::global()} {
  engine_.set_thread_pool(pool_.get());
  if (config_.shard_summaries &&
      config_.sharding == ShardingPolicy::kMonthPlatform) {
    engine_.configure_summaries(config_.summary_layout);
  }
  register_telemetry();
  // The kill switch silences the whole observability plane: a disabled
  // registry forces the tracer, journal and history into their no-op
  // states (no rings, no IDs, no clock reads) regardless of config.
  const bool observability_on = telemetry_->enabled();
  tracer_ = std::make_unique<core::telemetry::RequestTracer>(
      config_.trace, observability_on);
  journal_ = std::make_unique<core::telemetry::EventJournal>(
      config_.event_journal_entries, observability_on);
  history_ = std::make_unique<core::telemetry::TelemetryHistory>(
      telemetry_, config_.history, observability_on);
}

void QueryService::register_telemetry() {
  engine_.set_telemetry(telemetry_, "sessions");
  core::telemetry::Registry& reg = *telemetry_;
  query_seconds_ = reg.histogram("usaas_query_seconds",
                                 "End-to-end QueryService::run latency");
  const auto phase = [&](const char* name) {
    return reg.histogram("usaas_query_phase_seconds",
                         "Per-phase query latency (validate, cache probe, "
                         "implicit fan-out, social fan-out)",
                         {{"phase", name}});
  };
  phase_validate_ = phase("validate");
  phase_cache_probe_ = phase("cache-probe");
  phase_implicit_ = phase("implicit");
  phase_social_ = phase("social");
  retrain_seconds_ = reg.histogram(
      "usaas_retrain_seconds",
      "MOS predictor retrain latency (train + summary tally refresh)");
  const auto post_phase = [&](const char* name) {
    return reg.histogram(
        "usaas_ingest_batch_seconds",
        "Per-batch ingest phase durations (two-pass counted pipeline)",
        {{"corpus", "posts"}, {"phase", name}});
  };
  post_ingest_tel_ = {post_phase("count"), post_phase("plan"),
                      post_phase("scatter"), post_phase("summarize"),
                      post_phase("total")};
  const auto path_counter = [&](ServedBy path) {
    return reg.counter("usaas_queries_total",
                       "Queries answered, by serving path",
                       {{"path", to_string(path)}});
  };
  queries_by_path_ = {path_counter(ServedBy::kCache),
                      path_counter(ServedBy::kSummaryMerge),
                      path_counter(ServedBy::kScan),
                      path_counter(ServedBy::kMixed),
                      path_counter(ServedBy::kInvalid),
                      path_counter(ServedBy::kExpired)};
}

void QueryService::ingest_calls(std::span<const confsim::CallRecord> calls) {
  const auto guard = sync_->lock.write();
  engine_.ingest(calls);
  predictor_trained_ = false;  // stale
  if (!calls.empty()) bump_version();
}

void QueryService::ingest_posts(std::span<const social::Post> posts) {
  if (posts.empty()) return;
  const auto guard = sync_->lock.write();
  const auto t0 = std::chrono::steady_clock::now();
  const auto key_for = [&](const core::Date& d) {
    return config_.sharding == ShardingPolicy::kSingleShard ? 0 : month_key(d);
  };

  // Two-pass counted ingest, like CorrelationEngine::ingest — but the
  // scatter is destination-major: pass 1 counts per (chunk, month key);
  // the plan phase prefix-sums into pre-reserved per-shard slices, builds
  // the slot -> input permutation, and splits the per-shard slot ranges
  // into tasks (a hot shard holding most of the batch fans out across
  // workers instead of serializing); the scatter phase then runs the
  // fused single-pass scorer straight into the final slots, folding each
  // task's summary partial as it writes. Slot order == sequential ingest
  // order, and the summary sums are exact (integer counts / integral
  // doubles), so any task partition reproduces the 1-thread output
  // bit-identically.
  constexpr std::size_t kGrainPosts = 32;
  const std::size_t parallelism = core::effective_parallelism(pool_.get());
  const std::size_t chunks =
      std::min({posts.size(), parallelism * 4,
                std::max<std::size_t>(1, posts.size() / kGrainPosts)});
  const auto chunk_begin = [&](std::size_t c) {
    return c * posts.size() / chunks;
  };

  std::vector<core::DenseKeyCounts> counts(chunks);
  core::parallel_for(
      pool_.get(), chunks, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
            counts[c].add(key_for(posts[i].date));
          }
        }
      });
  const auto t1 = std::chrono::steady_clock::now();

  const core::ScatterPlan plan = core::build_scatter_plan(counts);
  struct Slice {
    ScoredPost* posts{nullptr};
    PostShard* shard{nullptr};  // map nodes are stable
  };
  std::vector<Slice> slices(plan.num_keys);
  IngestStats batch;
  batch.batches = 1;
  batch.records = posts.size();
  batch.bytes_moved = posts.size() * sizeof(ScoredPost);
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    if (plan.totals[k] == 0) continue;
    const int mk = plan.min_key + static_cast<int>(k);
    PostShard& shard = post_shards_[mk];
    if (!shard.summary_touches && telemetry_->enabled()) {
      // First sighting of this shard: register its access counters (the
      // spill-to-disk eviction signal). Null handles stay null under the
      // kill switch, so a disabled registry registers nothing.
      char label[16];
      if (config_.sharding == ShardingPolicy::kSingleShard) {
        std::snprintf(label, sizeof label, "flat");
      } else {
        std::snprintf(label, sizeof label, "%04d-%02d", mk / 12,
                      mk % 12 + 1);
      }
      const auto touch = [&](const char* source) {
        return telemetry_->counter(
            "usaas_shard_touches_total",
            "Per-shard query touches by answer source (summary merge vs "
            "record scan) — the eviction signal for spill-to-disk",
            {{"corpus", "posts"}, {"shard", label}, {"source", source}});
      };
      shard.summary_touches = touch("summary");
      shard.scan_touches = touch("scan");
    }
    const std::size_t base = shard.posts.size();
    shard.posts.resize(base + plan.totals[k]);
    slices[k] = {shard.posts.data() + base, &shard};
    ++batch.shards_touched;
  }

  // Global slot numbering: key k's slice covers slots [key_base[k],
  // key_base[k+1]). The permutation maps each slot back to its input
  // index; chunks write disjoint slot sets (their cursor rows), so the
  // fill parallelizes without synchronization.
  std::vector<std::size_t> key_base(plan.num_keys + 1, 0);
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    key_base[k + 1] = key_base[k] + plan.totals[k];
  }
  std::vector<std::size_t> order(posts.size());
  core::parallel_for(
      pool_.get(), chunks, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          std::vector<std::size_t> cursor = plan.chunk_cursor(c);
          for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
            const auto k = static_cast<std::size_t>(key_for(posts[i].date) -
                                                    plan.min_key);
            order[key_base[k] + cursor[k]++] = i;
          }
        }
      });
  const bool fold = config_.shard_summaries &&
                    config_.sharding == ShardingPolicy::kMonthPlatform;
  const std::vector<core::ShardRange> tasks =
      core::plan_shard_ranges(plan.totals, parallelism, kGrainPosts);
  struct SummaryPartial {
    std::size_t strong_pos{0};
    std::size_t strong_neg{0};
    std::array<double, 31> day_hits{};
  };
  std::vector<SummaryPartial> partials(fold ? tasks.size() : 0);
  const auto t2 = std::chrono::steady_clock::now();

  // Fused scatter: one scan per post (tokenize + sentiment + keywords in
  // a single pass; see nlp::PostScorer), writing straight into the final
  // slot. Each worker reuses one TokenScratch, so the steady state
  // allocates nothing per post.
  core::parallel_for(
      pool_.get(), tasks.size(), 1, [&](std::size_t tb, std::size_t te) {
        nlp::TokenScratch scratch;
        for (std::size_t t = tb; t < te; ++t) {
          const core::ShardRange& range = tasks[t];
          ScoredPost* const dst = slices[range.key].posts;
          SummaryPartial* const part = fold ? &partials[t] : nullptr;
          const std::size_t* const slot = order.data() + key_base[range.key];
          for (std::size_t s = range.begin; s < range.end; ++s) {
            // The permutation gather is cache-hostile (the Post structs
            // land in random order, and the text lives behind another
            // pointer), so stage the struct a couple dozen slots ahead
            // and its string buffers a few slots ahead — by then the
            // struct line is resident and the data pointers are free to
            // read. Recovers ~2x on batches larger than LLC.
            if (s + 24 < range.end) __builtin_prefetch(&posts[slot[s + 24]]);
            if (s + 8 < range.end) {
              const social::Post& ahead = posts[slot[s + 8]];
              __builtin_prefetch(ahead.title.data());
              __builtin_prefetch(ahead.body.data());
              __builtin_prefetch(ahead.body.data() + 64);
            }
            const social::Post& post = posts[slot[s]];
            ScoredPost& scored = dst[s];
            scored.date = post.date;
            scratch.text.assign(post.title);
            scratch.text.push_back(' ');
            scratch.text.append(post.body);
            const nlp::PostScorer::Result res =
                scorer_.score(scratch.text, scratch);
            scored.sentiment = res.sentiment;
            scored.outage_hits = res.keyword_hits;
            if (part != nullptr) {
              if (scored.sentiment.strong_positive()) ++part->strong_pos;
              if (scored.sentiment.strong_negative()) ++part->strong_neg;
              if (scored.outage_hits > 0 &&
                  scored.sentiment.negative >= 0.4) {
                part->day_hits[static_cast<std::size_t>(scored.date.day() -
                                                        1)] +=
                    static_cast<double>(scored.outage_hits);
              }
            }
          }
        }
      });
  const auto t3 = std::chrono::steady_clock::now();

  // Stitch the per-task summary partials into the shard pre-aggregates
  // in task order == slot order == sequential ingest order. Counts are
  // integers and day_hits sums integral doubles, so the stitched result
  // is bit-identical to the 1-thread fold regardless of the split.
  if (fold) {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      PostShard& shard = *slices[tasks[t].key].shard;
      shard.strong_pos += partials[t].strong_pos;
      shard.strong_neg += partials[t].strong_neg;
      for (std::size_t d = 0; d < partials[t].day_hits.size(); ++d) {
        shard.day_hits[d] += partials[t].day_hits[d];
      }
    }
  }
  const auto t4 = std::chrono::steady_clock::now();

  post_count_ += posts.size();
  batch.count_seconds = seconds_between(t0, t1);
  batch.plan_seconds = seconds_between(t1, t2);
  batch.scatter_seconds = seconds_between(t2, t3);
  batch.summarize_seconds = seconds_between(t3, t4);
  batch.total_seconds = seconds_between(t0, t4);
  post_ingest_stats_.merge(batch);
  // Reuses the timestamps already taken for IngestStats — no extra clock
  // reads on the instrumented path.
  post_ingest_tel_.count.observe(batch.count_seconds);
  post_ingest_tel_.plan.observe(batch.plan_seconds);
  post_ingest_tel_.scatter.observe(batch.scatter_seconds);
  post_ingest_tel_.summarize.observe(batch.summarize_seconds);
  post_ingest_tel_.total.observe(batch.total_seconds);
  bump_version();
}

void QueryService::publish_stream_health(const StreamHealth& health) {
  const std::lock_guard<std::mutex> lock{sync_->health_mu};
  sync_->health = health;
}

QueryService::ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    const auto guard = sync_->lock.read();
    out.sessions = engine_.ingest_stats();
    out.posts = post_ingest_stats_;
    out.session_shards = engine_.shard_count();
    out.post_shards = post_shards_.size();
    out.corpus_version = sync_->version.load(std::memory_order_acquire);
    out.fanout = engine_.fanout_stats();
    out.summary_bytes = engine_.summary_memory_bytes();
  }
  {
    const std::lock_guard<std::mutex> lock{sync_->health_mu};
    out.stream = sync_->health;
  }
  {
    const std::lock_guard<std::mutex> lock{sync_->cache_mu};
    out.insight_cache = {sync_->cache.hits(),     sync_->cache.misses(),
                         sync_->cache.evictions(), sync_->cache.size(),
                         sync_->cache.capacity(),  sync_->cache.bytes()};
  }
  return out;
}

bool QueryService::train_predictor() {
  core::telemetry::TraceSpan span{retrain_seconds_};
  const auto guard = sync_->lock.write();
  predictor_trained_ = false;
  // Canonical (month, platform, ingest) collection order: the fitted model
  // is bit-identical whichever ShardingPolicy stores the sessions.
  const auto rated = engine_.rated_sessions_canonical();
  if (rated.size() < MosPredictor::kMinRatedSessions) {
    predictor_.reset();
    engine_.clear_predicted_tallies();
    bump_version();
    return false;
  }
  predictor_.train(rated);
  predictor_trained_ = true;
  // Refresh the summaries' predicted-MOS sums under the same write lock,
  // so tally() can answer predicted aggregates without re-running the
  // predictor over every session on each query.
  engine_.refresh_predicted_tallies(
      [this](const confsim::ParticipantRecord& rec) {
        return predictor_.predict(rec);
      });
  bump_version();
  return true;
}

QueryService::CacheKey QueryService::make_cache_key(const Query& query,
                                                    std::uint64_t version) {
  const auto pack = [](const core::Date& d) {
    return static_cast<std::int32_t>(d.year() * 512 + d.month() * 32 +
                                     d.day());
  };
  CacheKey key;
  key.version = version;
  key.first = pack(query.first);
  key.last = pack(query.last);
  key.platform = query.platform
                     ? static_cast<std::int16_t>(*query.platform)
                     : std::int16_t{-1};
  key.access = query.access ? static_cast<std::int16_t>(*query.access)
                            : std::int16_t{-1};
  key.metric = static_cast<std::int16_t>(query.metric);
  key.bins = query.bins;
  // Canonicalize signed zeros so operator== and the hash agree.
  key.metric_lo = query.metric_lo == 0.0 ? 0.0 : query.metric_lo;
  key.metric_hi = query.metric_hi == 0.0 ? 0.0 : query.metric_hi;
  return key;
}

std::uint64_t query_fingerprint(const Query& query) {
  // Version 0 pins the version field: the fingerprint identifies the
  // query shape alone, stable across corpus mutations (unlike the insight
  // cache key, which is deliberately version-scoped).
  const QueryService::CacheKey key = QueryService::make_cache_key(query, 0);
  return static_cast<std::uint64_t>(QueryService::CacheKeyHash{}(key));
}

std::size_t insight_heap_bytes(const Insight& insight) {
  std::size_t bytes = sizeof(Insight);
  // The engagement vector's own buffer holds the EngagementCurve structs;
  // each curve then owns its points buffer. Counting only the inner
  // buffers (as an earlier revision did) undercounts by
  // capacity * sizeof(EngagementCurve) per cached insight, so the cache
  // byte gauge drifted below the real footprint as entries accumulated.
  bytes += insight.engagement.capacity() * sizeof(EngagementCurve);
  for (const EngagementCurve& c : insight.engagement) {
    bytes += c.points.capacity() * sizeof(CurvePoint);
  }
  bytes += insight.mos_spearman.capacity() *
           sizeof(std::pair<EngagementMetric, double>);
  bytes += insight.outage_alert_days.capacity() * sizeof(core::Date);
  return bytes;
}

Insight QueryService::run(const Query& query,
                          const RunBudget& budget) const {
  core::telemetry::TraceSpan span{query_seconds_};
  Insight insight;
  const QueryValidation verdict = query.validate();
  insight.error = verdict.error;
  const double validate_lap = span.lap(phase_validate_);
  insight.execution.trace_id = budget.trace_id;
  insight.execution.validate_seconds = validate_lap;
  if (!verdict.ok()) {
    insight.execution.served_by = ServedBy::kInvalid;
    insight.execution.seconds = span.finish();
    queries_by_path_[static_cast<std::size_t>(ServedBy::kInvalid)].add();
    return insight;
  }

  // One shared guard across the whole fan-out: the insight is a consistent
  // snapshot of a flushed corpus prefix, stamped with its version. The
  // cache probe happens under the same guard, so the version we key on is
  // the version we'd compute against — a concurrent mutation bumps the
  // version first (under the write lock), making every older entry
  // unreachable rather than momentarily stale.
  const auto guard = sync_->lock.read();
  const std::uint64_t version =
      sync_->version.load(std::memory_order_acquire);
  const bool cache_on = sync_->cache.capacity() > 0;
  bool cache_hit = false;
  CacheKey key;
  if (cache_on) {
    key = make_cache_key(query, version);
    const std::lock_guard<std::mutex> cache_lock{sync_->cache_mu};
    if (const Insight* hit = sync_->cache.find(key)) {
      insight = *hit;
      cache_hit = true;
    }
  }
  const double probe_lap = span.lap(phase_cache_probe_);
  if (cache_hit) {
    // The cached aggregates, but THIS run's execution report: nothing was
    // recomputed, so the fan-out deltas are zero.
    insight.execution = {};
    insight.execution.served_by = ServedBy::kCache;
    insight.execution.cache_hit = true;
    insight.execution.trace_id = budget.trace_id;
    insight.execution.validate_seconds = validate_lap;
    insight.execution.cache_probe_seconds = probe_lap;
    insight.execution.seconds = span.finish();
    queries_by_path_[static_cast<std::size_t>(ServedBy::kCache)].add();
    core::telemetry::SlowQueryEntry slow{
        query_fingerprint(query), insight.execution.seconds,
        to_string(ServedBy::kCache), 0, 0, insight.sessions, version, 1};
    slow.trace_id = budget.trace_id;
    sync_->slow_log.record(slow);
    return insight;
  }
  insight = compute_insight(query, version, budget, &span);
  insight.execution.trace_id = budget.trace_id;
  insight.execution.validate_seconds = validate_lap;
  insight.execution.cache_probe_seconds = probe_lap;
  if (insight.error == QueryError::kDeadlineExceeded) {
    // Abandoned mid-fan-out: an explicit error skeleton, never cached
    // (the aggregates were never finished) and never slow-logged (a
    // truncated run is not a cost observation — recording its short
    // runtime would teach the admission estimator that expensive scans
    // are cheap).
    insight.execution.served_by = ServedBy::kExpired;
    insight.execution.seconds = span.finish();
    queries_by_path_[static_cast<std::size_t>(ServedBy::kExpired)].add();
    return insight;
  }
  // Classify over session + post shard visits combined: summary-merge
  // only when no shard anywhere was rescanned.
  const QueryExecution& exec = insight.execution;
  const std::uint64_t merged =
      exec.shards_from_summary + exec.post_shards_from_summary;
  const std::uint64_t scanned =
      exec.shards_scanned + exec.post_shards_scanned;
  ServedBy path = ServedBy::kScan;
  if (merged > 0) {
    path = scanned > 0 ? ServedBy::kMixed : ServedBy::kSummaryMerge;
  }
  insight.execution.served_by = path;
  if (cache_on) {
    const std::lock_guard<std::mutex> cache_lock{sync_->cache_mu};
    sync_->cache.insert(key, insight, insight_heap_bytes(insight));
  }
  insight.execution.seconds = span.finish();
  queries_by_path_[static_cast<std::size_t>(path)].add();
  core::telemetry::SlowQueryEntry slow{
      query_fingerprint(query), insight.execution.seconds, to_string(path),
      merged, scanned, insight.sessions, version, 1};
  slow.trace_id = budget.trace_id;
  sync_->slow_log.record(slow);
  return insight;
}

QueryCostEstimate QueryService::estimate_query(const Query& query) const {
  QueryCostEstimate est;
  if (const auto history = sync_->slow_log.find(query_fingerprint(query))) {
    est.slow_log_seconds = history->seconds;
  }
  if (!query.validate().ok()) return est;  // rejected in O(1) by run()

  const auto guard = sync_->lock.read();
  const std::uint64_t version =
      sync_->version.load(std::memory_order_acquire);
  if (sync_->cache.capacity() > 0) {
    const std::lock_guard<std::mutex> cache_lock{sync_->cache_mu};
    // contains() leaves the LRU order and hit/miss counters alone: an
    // admission probe must not look like query traffic.
    est.cached = sync_->cache.contains(make_cache_key(query, version));
  }

  // Mirror compute_insight's month rule without visiting any shard: only
  // the window's first and last months can be boundary-cut, and only a
  // cut month forces a rescan when summaries are on.
  const int mk_first = month_key(query.first);
  const int mk_last = month_key(query.last);
  const auto window_months =
      static_cast<std::uint64_t>(mk_last - mk_first + 1);
  const bool summaries = config_.shard_summaries &&
                         config_.sharding == ShardingPolicy::kMonthPlatform;
  if (summaries) {
    const bool first_cuts = query.first.day() > 1;
    const bool last_cuts =
        query.last.day() <
        core::Date::days_in_month(query.last.year(), query.last.month());
    if (mk_first == mk_last) {
      est.scan_months = (first_cuts || last_cuts) ? 1 : 0;
    } else {
      est.scan_months = static_cast<std::uint64_t>(first_cuts) +
                        static_cast<std::uint64_t>(last_cuts);
    }
    est.summary_months = window_months - est.scan_months;
  } else {
    est.scan_months = window_months;
  }

  // Sessions the window plausibly covers: total ingested records scaled
  // by the window's share of the ingested months (posts shard one-per-
  // month, so post_shards_ counts distinct corpus months).
  const auto corpus_months = static_cast<double>(
      std::max<std::size_t>(post_shards_.size(),
                            static_cast<std::size_t>(window_months)));
  est.window_sessions = static_cast<double>(engine_.ingest_stats().records) *
                        static_cast<double>(window_months) / corpus_months;
  return est;
}

std::optional<Insight> QueryService::find_stale_cached(
    const Query& query, std::uint64_t max_versions_behind) const {
  if (!query.validate().ok()) return std::nullopt;
  const auto guard = sync_->lock.read();
  if (sync_->cache.capacity() == 0) return std::nullopt;
  const std::uint64_t version =
      sync_->version.load(std::memory_order_acquire);
  const std::lock_guard<std::mutex> cache_lock{sync_->cache_mu};
  // Freshest-first: a behind=0 hit is just a regular cache hit with
  // staleness 0, so degrading never serves older data than run() would.
  for (std::uint64_t behind = 0; behind <= max_versions_behind; ++behind) {
    if (behind > version) break;
    if (const Insight* hit =
            sync_->cache.find(make_cache_key(query, version - behind))) {
      Insight out = *hit;
      out.staleness = behind;
      out.execution = {};
      out.execution.served_by = ServedBy::kCache;
      out.execution.cache_hit = true;
      return out;
    }
  }
  return std::nullopt;
}

Insight QueryService::compute_insight(const Query& query,
                                      std::uint64_t version,
                                      const RunBudget& budget,
                                      core::telemetry::TraceSpan* span) const {
  // The cooperative-cancellation exit: a deadline-exceeded run hands
  // back a *fresh* skeleton, never the partially-filled `insight` below
  // — callers must never see half an answer.
  const auto expired_skeleton = [version] {
    Insight out;
    out.corpus_version = version;
    out.error = QueryError::kDeadlineExceeded;
    return out;
  };
  Insight insight;
  insight.corpus_version = version;
  // This query's session-engine fan-out, accumulated by the engine calls
  // below (the engine's cumulative counters are bumped as before).
  QueryFanoutStats fanout;

  // The access restriction rides in the selector (a structural per-record
  // predicate), not an opaque ParticipantFilter — that keeps access
  // queries summary-answerable from the per-access buckets.
  const ShardSelector selector{query.first, query.last, query.platform,
                               query.access};
  const ParticipantFilter filter;  // none: every restriction is structural

  // ---- Implicit side: fan the binning + tallies across shards ----
  SweepSpec spec;
  spec.metric = query.metric;
  spec.lo = query.metric_lo;
  spec.hi = query.metric_hi;
  spec.bins = query.bins;
  spec.control_others = false;  // queries want the full population view
  for (const EngagementMetric m :
       {EngagementMetric::kPresence, EngagementMetric::kCamOn,
        EngagementMetric::kMicOn}) {
    // Phase boundary: each engagement sweep fans out across every
    // selected session shard, so this is the natural grain to abandon
    // an expired run at without tearing a sweep in half.
    if (budget.expired()) return expired_skeleton();
    insight.engagement.push_back(
        engine_.engagement_curve(spec, m, filter, selector, &fanout));
    if (const auto corr = engine_.mos_correlation(m, 50, &fanout)) {
      insight.mos_spearman.emplace_back(m, corr->spearman);
    }
  }
  if (budget.expired()) return expired_skeleton();

  std::function<double(const confsim::ParticipantRecord&)> predict;
  if (predictor_trained_) {
    predict = [this](const confsim::ParticipantRecord& rec) {
      return predictor_.predict(rec);
    };
  }
  const CorrelationEngine::Tally tally =
      engine_.tally(filter, selector, predict, &fanout);
  insight.sessions = tally.sessions;
  insight.rated_sessions = tally.rated;
  if (tally.rated > 0) {
    insight.observed_mean_mos =
        tally.observed_mos_sum / static_cast<double>(tally.rated);
  }
  if (tally.predicted > 0) {
    insight.predicted_mean_mos =
        tally.predicted_mos_sum / static_cast<double>(tally.predicted);
  }
  insight.execution.shards_from_summary = fanout.shards_from_summary;
  insight.execution.shards_scanned = fanout.shards_scanned;
  if (span != nullptr) {
    insight.execution.implicit_seconds = span->lap(phase_implicit_);
  }
  if (budget.expired()) return expired_skeleton();

  // ---- Explicit (social) side: pre-scored shards, pruned by month ----
  struct SelectedPosts {
    const PostShard* shard{nullptr};
    int month_key{0};
    bool check_dates{false};
    bool use_summary{false};
  };
  const bool post_summaries = config_.shard_summaries &&
                              config_.sharding == ShardingPolicy::kMonthPlatform;
  std::vector<SelectedPosts> selected;
  const int mk_first = month_key(query.first);
  const int mk_last = month_key(query.last);
  for (const auto& [mk, shard] : post_shards_) {
    if (config_.sharding == ShardingPolicy::kSingleShard) {
      selected.push_back({&shard, mk, true, false});
      continue;
    }
    if (mk < mk_first || mk > mk_last) continue;
    // A boundary month only needs per-post date checks when the window
    // boundary actually cuts into it; a whole-covered month can answer
    // from its pre-aggregates instead of rescanning.
    const bool first_cuts = mk == mk_first && query.first.day() > 1;
    const bool last_cuts =
        mk == mk_last &&
        query.last.day() <
            core::Date::days_in_month(query.last.year(), query.last.month());
    const bool check_dates = first_cuts || last_cuts;
    selected.push_back({&shard, mk, check_dates,
                        post_summaries && !check_dates});
  }
  for (const SelectedPosts& sel : selected) {
    if (sel.use_summary) {
      ++insight.execution.post_shards_from_summary;
      sel.shard->summary_touches.add();
    } else {
      ++insight.execution.post_shards_scanned;
      sel.shard->scan_touches.add();
    }
  }

  struct SocialPartial {
    std::size_t posts{0};
    std::size_t strong_pos{0};
    std::size_t strong_neg{0};
    std::vector<std::pair<core::Date, double>> keyword_adds;
  };
  std::vector<SocialPartial> partials(selected.size());
  // Cooperative cancellation inside the scan fan-out: each worker checks
  // the budget per shard and, once anyone sees it expired, the remaining
  // shards are skipped (relaxed is enough — the flag only widens, and
  // the partials of a flagged run are discarded wholesale below).
  std::atomic<bool> out_of_time{false};
  core::parallel_for(
      pool_.get(), selected.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          if (out_of_time.load(std::memory_order_relaxed)) break;
          if (budget.expired()) {
            out_of_time.store(true, std::memory_order_relaxed);
            break;
          }
          const SelectedPosts& sel = selected[i];
          SocialPartial& part = partials[i];
          if (sel.use_summary) {
            // Whole-shard pre-aggregates; per-day keyword sums replay the
            // scan's in-order accumulation (each date receives adds from
            // exactly one month shard), so the reduction is bit-identical.
            part.posts += sel.shard->posts.size();
            part.strong_pos += sel.shard->strong_pos;
            part.strong_neg += sel.shard->strong_neg;
            const int year = sel.month_key / 12;
            const int month = sel.month_key % 12 + 1;
            for (int d = 0; d < 31; ++d) {
              const double hits = sel.shard->day_hits[static_cast<std::size_t>(d)];
              if (hits > 0.0) {
                part.keyword_adds.emplace_back(core::Date{year, month, d + 1},
                                               hits);
              }
            }
            continue;
          }
          for (const ScoredPost& post : sel.shard->posts) {
            if (sel.check_dates &&
                (post.date < query.first || query.last < post.date)) {
              continue;
            }
            ++part.posts;
            if (post.sentiment.strong_positive()) ++part.strong_pos;
            if (post.sentiment.strong_negative()) ++part.strong_neg;
            if (post.outage_hits > 0 && post.sentiment.negative >= 0.4) {
              part.keyword_adds.emplace_back(
                  post.date, static_cast<double>(post.outage_hits));
            }
          }
        }
      });

  if (out_of_time.load(std::memory_order_relaxed)) {
    return expired_skeleton();
  }

  core::DailySeries keyword_days{query.first, query.last};
  std::size_t strong_pos = 0;
  std::size_t strong_neg = 0;
  for (const SocialPartial& part : partials) {
    insight.posts += part.posts;
    strong_pos += part.strong_pos;
    strong_neg += part.strong_neg;
    for (const auto& [date, hits] : part.keyword_adds) {
      keyword_days.add(date, hits);
    }
  }
  if (strong_pos + strong_neg > 0) {
    insight.strong_positive_share =
        static_cast<double>(strong_pos) /
        static_cast<double>(strong_pos + strong_neg);
  }
  double day_total = 0.0;
  std::size_t mention_days = 0;
  for (const double v : keyword_days.values()) {
    day_total += v;
    if (v > 0.0) ++mention_days;
  }
  insight.outage_mention_days = mention_days;
  const double day_mean =
      keyword_days.size() == 0
          ? 0.0
          : day_total / static_cast<double>(keyword_days.size());
  for (const auto& [date, value] : keyword_days.entries()) {
    if (day_mean > 0.0 && value > 3.0 * day_mean && value >= 5.0) {
      insight.outage_alert_days.push_back(date);
    }
  }
  if (span != nullptr) {
    insight.execution.social_seconds = span->lap(phase_social_);
  }
  return insight;
}

std::vector<core::telemetry::MetricFamily> QueryService::collect_families()
    const {
  std::vector<core::telemetry::MetricFamily> families =
      telemetry_->collect();
  // Service-derived families are built from ONE stats() snapshot and
  // rendered through the same formatting path as registry metrics: the
  // exposition endpoint and stats() cannot disagree about a counter.
  append_service_families(families, stats());
  return families;
}

void QueryService::append_service_families(
    std::vector<core::telemetry::MetricFamily>& families,
    const ServiceStats& stats) const {
  using core::telemetry::MetricFamily;
  using core::telemetry::MetricKind;
  using core::telemetry::Sample;
  const auto counter_sample = [](std::string labels, std::uint64_t v) {
    Sample s;
    s.labels = std::move(labels);
    s.value_u = v;
    return s;
  };
  const auto seconds_sample = [](std::string labels, double v) {
    Sample s;
    s.labels = std::move(labels);
    s.floating = true;
    s.value_d = v;
    return s;
  };
  const auto gauge_sample = [](std::string labels, double v) {
    Sample s;
    s.labels = std::move(labels);
    s.value_d = v;
    return s;
  };
  const auto add = [&](const char* name, const char* help, MetricKind kind,
                       std::vector<Sample> samples) {
    families.push_back({name, help, kind, std::move(samples)});
  };
  const auto per_corpus = [&](const char* name, const char* help,
                              std::uint64_t sessions, std::uint64_t posts) {
    add(name, help, MetricKind::kCounter,
        {counter_sample("corpus=\"sessions\"", sessions),
         counter_sample("corpus=\"posts\"", posts)});
  };

  per_corpus("usaas_ingest_batches_total", "Batch ingests absorbed",
             stats.sessions.batches, stats.posts.batches);
  per_corpus("usaas_ingest_records_total", "Records ingested",
             stats.sessions.records, stats.posts.records);
  per_corpus("usaas_ingest_bytes_moved_total",
             "Bytes copied into shard storage", stats.sessions.bytes_moved,
             stats.posts.bytes_moved);
  per_corpus("usaas_ingest_shards_touched_total",
             "Destination shards written, summed over batches",
             stats.sessions.shards_touched, stats.posts.shards_touched);
  {
    std::vector<Sample> samples;
    const auto phases = [&](const char* corpus, const IngestStats& is) {
      const std::pair<const char*, double> rows[] = {
          {"count", is.count_seconds},
          {"plan", is.plan_seconds},
          {"scatter", is.scatter_seconds},
          {"summarize", is.summarize_seconds},
          {"total", is.total_seconds}};
      for (const auto& [name, v] : rows) {
        samples.push_back(seconds_sample(std::string{"corpus=\""} + corpus +
                                             "\",phase=\"" + name + "\"",
                                         v));
      }
    };
    phases("sessions", stats.sessions);
    phases("posts", stats.posts);
    add("usaas_ingest_phase_seconds_total",
        "Cumulative batch-ingest time per pipeline phase",
        MetricKind::kCounter, std::move(samples));
  }
  add("usaas_shards", "Live shard count", MetricKind::kGauge,
      {gauge_sample("corpus=\"sessions\"",
                    static_cast<double>(stats.session_shards)),
       gauge_sample("corpus=\"posts\"",
                    static_cast<double>(stats.post_shards))});
  add("usaas_corpus_version",
      "Successful mutating operations absorbed (monotone)",
      MetricKind::kCounter, {counter_sample("", stats.corpus_version)});

  add("usaas_stream_records_total",
      "Streaming front-end record outcomes", MetricKind::kCounter,
      {counter_sample("outcome=\"accepted\"", stats.stream.accepted),
       counter_sample("outcome=\"flushed\"", stats.stream.flushed),
       counter_sample("outcome=\"quarantined\"", stats.stream.quarantined),
       counter_sample("outcome=\"dropped\"", stats.stream.dropped),
       counter_sample("outcome=\"rejected\"", stats.stream.rejected)});
  add("usaas_stream_flushes_total", "Flush rounds, by result",
      MetricKind::kCounter,
      {counter_sample("result=\"ok\"", stats.stream.flushes),
       counter_sample("result=\"failed\"", stats.stream.flush_failures),
       counter_sample("result=\"retried\"", stats.stream.flush_retries)});
  add("usaas_stream_backpressure_total",
      "Backpressure events at the streaming front-end (blocked-push: a "
      "push waited on a full kBlock buffer; backoff-wait: a flush retry "
      "slept)",
      MetricKind::kCounter,
      {counter_sample("kind=\"blocked_push\"", stats.stream.blocked_pushes),
       counter_sample("kind=\"backoff_wait\"", stats.stream.backoff_waits)});
  add("usaas_stream_staged_records",
      "Records accepted but not yet queryable (snapshot staleness)",
      MetricKind::kGauge,
      {gauge_sample("", static_cast<double>(stats.stream.staged))});
  add("usaas_stream_degraded",
      "1 while the last flush round failed outright", MetricKind::kGauge,
      {gauge_sample("", stats.stream.degraded ? 1.0 : 0.0)});

  add("usaas_insight_cache_lookups_total",
      "Insight cache probes, by outcome", MetricKind::kCounter,
      {counter_sample("outcome=\"hit\"", stats.insight_cache.hits),
       counter_sample("outcome=\"miss\"", stats.insight_cache.misses)});
  add("usaas_insight_cache_evictions_total", "LRU evictions",
      MetricKind::kCounter,
      {counter_sample("", stats.insight_cache.evictions)});
  add("usaas_insight_cache_entries", "Cached insights", MetricKind::kGauge,
      {gauge_sample("", static_cast<double>(stats.insight_cache.entries))});
  add("usaas_insight_cache_capacity", "Cache capacity", MetricKind::kGauge,
      {gauge_sample("", static_cast<double>(stats.insight_cache.capacity))});
  add("usaas_insight_cache_bytes", "Estimated cached-insight bytes",
      MetricKind::kGauge,
      {gauge_sample("", static_cast<double>(stats.insight_cache.bytes))});

  add("usaas_query_fanout_shards_total",
      "Shard visits answered from summaries vs record scans",
      MetricKind::kCounter,
      {counter_sample("source=\"summary\"", stats.fanout.shards_from_summary),
       counter_sample("source=\"scan\"", stats.fanout.shards_scanned)});
  add("usaas_summary_bytes", "Heap held by per-shard summaries",
      MetricKind::kGauge,
      {gauge_sample("", static_cast<double>(stats.summary_bytes))});

  const std::vector<core::telemetry::SlowQueryEntry> slow =
      sync_->slow_log.worst();
  if (!slow.empty()) {
    std::vector<Sample> samples;
    samples.reserve(slow.size());
    for (const core::telemetry::SlowQueryEntry& e : slow) {
      char fp[24];
      std::snprintf(fp, sizeof fp, "%016llx",
                    static_cast<unsigned long long>(e.fingerprint));
      samples.push_back(gauge_sample(std::string{"fingerprint=\""} + fp +
                                         "\",path=\"" + e.path + "\"",
                                     e.seconds));
    }
    add("usaas_slow_query_seconds",
        "Worst observed latency per slow-logged query fingerprint",
        MetricKind::kGauge, std::move(samples));
  }
}

std::string QueryService::metrics_text() const {
  return core::telemetry::to_prometheus(collect_families());
}

std::string QueryService::metrics_json() const {
  return core::telemetry::to_json(collect_families(),
                                  sync_->slow_log.worst());
}

}  // namespace usaas::service
