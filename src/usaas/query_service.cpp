#include "usaas/query_service.h"

#include <algorithm>

#include "core/stats.h"
#include "core/timeseries.h"

namespace usaas::service {

QueryService::QueryService() = default;

void QueryService::ingest_calls(std::span<const confsim::CallRecord> calls) {
  engine_.ingest(calls);
  predictor_trained_ = false;  // stale
}

void QueryService::ingest_posts(std::span<const social::Post> posts) {
  posts_.insert(posts_.end(), posts.begin(), posts.end());
}

void QueryService::train_predictor() {
  predictor_.train(engine_.sessions());
  predictor_trained_ = true;
}

Insight QueryService::run(const Query& query) const {
  Insight insight;

  const ParticipantFilter filter =
      [&](const confsim::ParticipantRecord& rec) {
        if (query.platform && rec.platform != *query.platform) return false;
        if (query.access && rec.access != *query.access) return false;
        return true;
      };

  // ---- Implicit side ----
  SweepSpec spec;
  spec.metric = query.metric;
  spec.lo = query.metric_lo;
  spec.hi = query.metric_hi;
  spec.bins = query.bins;
  spec.control_others = false;  // queries want the full population view
  for (const EngagementMetric m :
       {EngagementMetric::kPresence, EngagementMetric::kCamOn,
        EngagementMetric::kMicOn}) {
    insight.engagement.push_back(engine_.engagement_curve(spec, m, filter));
    if (const auto corr = engine_.mos_correlation(m)) {
      insight.mos_spearman.emplace_back(m, corr->spearman);
    }
  }

  // Session tallies + MOS coverage.
  std::vector<double> observed;
  double predicted_acc = 0.0;
  std::size_t predicted_n = 0;
  for (const auto& rec : engine_.sessions()) {
    if (!filter(rec)) continue;
    ++insight.sessions;
    if (rec.mos) {
      observed.push_back(rec.mos->score());
      ++insight.rated_sessions;
    }
    if (predictor_trained_) {
      predicted_acc += predictor_.predict(rec);
      ++predicted_n;
    }
  }
  if (!observed.empty()) insight.observed_mean_mos = core::mean(observed);
  if (predicted_n > 0) {
    insight.predicted_mean_mos = predicted_acc / static_cast<double>(predicted_n);
  }

  // ---- Explicit (social) side ----
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  core::DailySeries keyword_days{query.first, query.last};
  std::size_t strong_pos = 0;
  std::size_t strong_neg = 0;
  for (const social::Post& post : posts_) {
    if (post.date < query.first || query.last < post.date) continue;
    ++insight.posts;
    const auto s = analyzer_.score(post.full_text());
    if (s.strong_positive()) ++strong_pos;
    if (s.strong_negative()) ++strong_neg;
    const auto hits = dict.count_occurrences(post.full_text());
    if (hits > 0 && s.negative >= 0.4) {
      keyword_days.add(post.date, static_cast<double>(hits));
    }
  }
  if (strong_pos + strong_neg > 0) {
    insight.strong_positive_share =
        static_cast<double>(strong_pos) /
        static_cast<double>(strong_pos + strong_neg);
  }
  double day_total = 0.0;
  std::size_t mention_days = 0;
  for (const double v : keyword_days.values()) {
    day_total += v;
    if (v > 0.0) ++mention_days;
  }
  insight.outage_mention_days = mention_days;
  const double day_mean =
      keyword_days.size() == 0
          ? 0.0
          : day_total / static_cast<double>(keyword_days.size());
  for (const auto& [date, value] : keyword_days.entries()) {
    if (day_mean > 0.0 && value > 3.0 * day_mean && value >= 5.0) {
      insight.outage_alert_days.push_back(date);
    }
  }
  return insight;
}

}  // namespace usaas::service
