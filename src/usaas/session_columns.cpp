#include "usaas/session_columns.h"

namespace usaas::service {

namespace {

/// Applies `fn` to every column, keeping the per-column operations in one
/// place so a new column cannot be added to the struct without showing up
/// in resize/reserve/memory accounting.
template <typename Columns, typename Fn>
void for_each_column(Columns& c, Fn&& fn) {
  fn(c.day_key);
  fn(c.user_id);
  fn(c.platform);
  fn(c.access);
  fn(c.meeting_size);
  fn(c.latency_mean);
  fn(c.latency_median);
  fn(c.latency_tail);
  fn(c.loss_mean);
  fn(c.loss_median);
  fn(c.loss_tail);
  fn(c.jitter_mean);
  fn(c.jitter_median);
  fn(c.jitter_tail);
  fn(c.bandwidth_mean);
  fn(c.bandwidth_median);
  fn(c.bandwidth_tail);
  fn(c.duration_s);
  fn(c.sample_count);
  fn(c.presence);
  fn(c.cam_on);
  fn(c.mic_on);
  fn(c.dropped_early);
  fn(c.mos);
  fn(c.mos_valid);
}

}  // namespace

void SessionColumns::resize_uninit(std::size_t n) {
  for_each_column(*this, [n](auto& col) { col.resize_uninit(n); });
}

void SessionColumns::reserve(std::size_t n) {
  for_each_column(*this, [n](auto& col) { col.reserve(n); });
}

void SessionColumns::append(const core::Date& date,
                            const confsim::ParticipantRecord& rec) {
  const std::size_t i = size();
  resize_uninit(i + 1);
  set(i, pack_day_key(date), rec);
}

void SessionColumns::set(std::size_t i, std::int32_t packed_day,
                         const confsim::ParticipantRecord& rec) {
  day_key[i] = packed_day;
  user_id[i] = rec.user_id;
  platform[i] = static_cast<std::uint8_t>(rec.platform);
  access[i] = static_cast<std::uint8_t>(rec.access);
  meeting_size[i] = static_cast<std::int32_t>(rec.meeting_size);
  const netsim::SessionNetworkSummary& net = rec.network;
  latency_mean[i] = net.latency_ms.mean;
  latency_median[i] = net.latency_ms.median;
  latency_tail[i] = net.latency_ms.p95;
  loss_mean[i] = net.loss_pct.mean;
  loss_median[i] = net.loss_pct.median;
  loss_tail[i] = net.loss_pct.p95;
  jitter_mean[i] = net.jitter_ms.mean;
  jitter_median[i] = net.jitter_ms.median;
  jitter_tail[i] = net.jitter_ms.p95;
  bandwidth_mean[i] = net.bandwidth_mbps.mean;
  bandwidth_median[i] = net.bandwidth_mbps.median;
  bandwidth_tail[i] = net.bandwidth_mbps.p95;
  duration_s[i] = net.duration_seconds;
  sample_count[i] = static_cast<std::uint32_t>(net.sample_count);
  presence[i] = rec.presence_pct;
  cam_on[i] = rec.cam_on_pct;
  mic_on[i] = rec.mic_on_pct;
  dropped_early[i] = rec.dropped_early ? 1 : 0;
  mos_valid[i] = rec.mos.has_value() ? 1 : 0;
  mos[i] = rec.mos ? rec.mos->score() : 0.0;
}

confsim::ParticipantRecord SessionColumns::record(std::size_t i) const {
  confsim::ParticipantRecord rec;
  rec.user_id = user_id[i];
  rec.platform = static_cast<confsim::Platform>(platform[i]);
  rec.meeting_size = static_cast<int>(meeting_size[i]);
  rec.access = static_cast<netsim::AccessTechnology>(access[i]);
  rec.network.latency_ms = {latency_mean[i], latency_median[i],
                            latency_tail[i]};
  rec.network.loss_pct = {loss_mean[i], loss_median[i], loss_tail[i]};
  rec.network.jitter_ms = {jitter_mean[i], jitter_median[i], jitter_tail[i]};
  rec.network.bandwidth_mbps = {bandwidth_mean[i], bandwidth_median[i],
                                bandwidth_tail[i]};
  rec.network.duration_seconds = duration_s[i];
  rec.network.sample_count = sample_count[i];
  rec.presence_pct = presence[i];
  rec.cam_on_pct = cam_on[i];
  rec.mic_on_pct = mic_on[i];
  rec.dropped_early = dropped_early[i] != 0;
  if (mos_valid[i] != 0) rec.mos = core::Mos{mos[i]};
  return rec;
}

const double* SessionColumns::mean_column(netsim::Metric m) const {
  switch (m) {
    case netsim::Metric::kLatency: return latency_mean.data();
    case netsim::Metric::kLoss: return loss_mean.data();
    case netsim::Metric::kJitter: return jitter_mean.data();
    case netsim::Metric::kBandwidth: return bandwidth_mean.data();
  }
  return latency_mean.data();
}

const double* SessionColumns::tail_column(netsim::Metric m) const {
  switch (m) {
    case netsim::Metric::kLatency: return latency_tail.data();
    case netsim::Metric::kLoss: return loss_tail.data();
    case netsim::Metric::kJitter: return jitter_tail.data();
    case netsim::Metric::kBandwidth: return bandwidth_tail.data();
  }
  return latency_tail.data();
}

const double* SessionColumns::engagement_column(EngagementMetric m) const {
  switch (m) {
    case EngagementMetric::kPresence: return presence.data();
    case EngagementMetric::kCamOn: return cam_on.data();
    case EngagementMetric::kMicOn: return mic_on.data();
  }
  return presence.data();
}

std::size_t SessionColumns::memory_bytes() const {
  std::size_t bytes = 0;
  for_each_column(*this, [&bytes](const auto& col) {
    using T = std::remove_pointer_t<decltype(col.data())>;
    bytes += col.capacity() * sizeof(T);
  });
  return bytes;
}

}  // namespace usaas::service
