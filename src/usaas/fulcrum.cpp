#include "usaas/fulcrum.h"

#include <algorithm>
#include <map>

#include "core/stats.h"

namespace usaas::service {

FulcrumTracker::FulcrumTracker(const nlp::SentimentAnalyzer& analyzer,
                               FulcrumConfig config)
    : analyzer_{&analyzer}, config_{config} {}

std::vector<FulcrumMonth> FulcrumTracker::analyze(
    std::span<const social::Post> posts) const {
  stats_ = {};
  core::Rng ocr_rng{config_.ocr_seed};
  const ocr::NoisyOcr channel{config_.ocr_noise};
  const ocr::ReportExtractor extractor;

  core::MonthlyAggregator speeds;
  core::MonthlyAggregator uplinks;
  core::MonthlyAggregator latencies;
  // month key -> (strong_pos, strong_neg) among speed-test posts.
  std::map<int, std::pair<std::size_t, std::size_t>> sentiments;

  for (const social::Post& post : posts) {
    if (!post.screenshot) continue;

    // OCR the screenshot and try to extract the report.
    const std::string ocr_text = channel.read(*post.screenshot, ocr_rng);
    const auto report = extractor.extract(ocr_text, &stats_);
    if (report) {
      speeds.add(post.date, report->download_mbps);
      if (report->upload_mbps) uplinks.add(post.date, *report->upload_mbps);
      if (report->latency_ms) latencies.add(post.date, *report->latency_ms);
    }

    // Sentiment of the sharing post (the caption text, not the numbers).
    const nlp::SentimentScores s = analyzer_->score(post.full_text());
    const int key = post.date.year() * 12 + (post.date.month() - 1);
    if (s.strong_positive()) ++sentiments[key].first;
    if (s.strong_negative()) ++sentiments[key].second;
  }

  const auto med = speeds.medians();
  const auto med95 = speeds.subsampled_medians(0.95, config_.subsample_seed);
  const auto med90 =
      speeds.subsampled_medians(0.90, config_.subsample_seed + 1);

  std::vector<FulcrumMonth> out;
  out.reserve(med.size());
  for (std::size_t i = 0; i < med.size(); ++i) {
    FulcrumMonth m;
    m.year = med[i].year;
    m.month = med[i].month;
    m.reports = med[i].count;
    m.median_downlink_mbps = med[i].value;
    m.median_95pct_sample = med95[i].value;
    m.median_90pct_sample = med90[i].value;
    for (const auto& up : uplinks.medians()) {
      if (up.year == m.year && up.month == m.month) m.median_uplink_mbps = up.value;
    }
    for (const auto& lat : latencies.medians()) {
      if (lat.year == m.year && lat.month == m.month) m.median_latency_ms = lat.value;
    }
    const auto it = sentiments.find(m.year * 12 + (m.month - 1));
    if (it != sentiments.end()) {
      m.strong_positive = it->second.first;
      m.strong_negative = it->second.second;
      const auto total = m.strong_positive + m.strong_negative;
      if (total > 0) {
        m.pos_score = static_cast<double>(m.strong_positive) /
                      static_cast<double>(total);
      }
    }
    out.push_back(m);
  }
  return out;
}

core::DailySeries FulcrumTracker::expectation_series(
    std::span<const social::Post> posts, core::Date first,
    core::Date last) const {
  // Per-day median of extracted speeds.
  core::Rng ocr_rng{config_.ocr_seed};
  const ocr::NoisyOcr channel{config_.ocr_noise};
  const ocr::ReportExtractor extractor;
  std::map<std::int64_t, std::vector<double>> by_day;
  for (const social::Post& post : posts) {
    if (!post.screenshot) continue;
    if (post.date < first || last < post.date) continue;
    const auto report =
        extractor.extract(channel.read(*post.screenshot, ocr_rng), nullptr);
    if (report) by_day[post.date.days_since_epoch()].push_back(report->download_mbps);
  }

  core::DailySeries daily{first, last};
  double carry = 0.0;
  bool have_carry = false;
  core::for_each_day(first, last, [&](const core::Date& d) {
    const auto it = by_day.find(d.days_since_epoch());
    if (it != by_day.end() && !it->second.empty()) {
      carry = core::median(it->second);
      have_carry = true;
    }
    daily.set(d, have_carry ? carry : 0.0);
  });
  return daily.ewma(config_.adaptation_alpha);
}

}  // namespace usaas::service
