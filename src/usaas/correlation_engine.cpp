#include "usaas/correlation_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/correlation.h"
#include "core/stats.h"

namespace usaas::service {

namespace {

[[nodiscard]] int month_key(const core::Date& d) {
  return d.year() * 12 + (d.month() - 1);
}

netsim::NetworkConditions aggregate_conditions(
    const confsim::ParticipantRecord& rec, SessionAggregate agg) {
  return agg == SessionAggregate::kP95 ? rec.network.p95_conditions()
                                       : rec.network.mean_conditions();
}

}  // namespace

double EngagementCurve::relative_drop_percent() const {
  if (points.size() < 2) return 0.0;
  double best = 0.0;
  for (const CurvePoint& p : points) best = std::max(best, p.engagement);
  if (best <= 0.0) return 0.0;
  return 100.0 * (best - points.back().engagement) / best;
}

EngagementCurve EngagementCurve::normalized() const {
  EngagementCurve out = *this;
  double best = 0.0;
  for (const CurvePoint& p : out.points) best = std::max(best, p.engagement);
  if (best <= 0.0) return out;
  for (CurvePoint& p : out.points) p.engagement = 100.0 * p.engagement / best;
  return out;
}

CorrelationEngine::SessionShard& CorrelationEngine::shard_for(
    const core::Date& date, confsim::Platform platform) {
  const std::pair<int, int> key =
      sharding_ == ShardingPolicy::kSingleShard
          ? std::pair<int, int>{0, 0}
          : std::pair<int, int>{month_key(date), static_cast<int>(platform)};
  const auto [it, inserted] = shard_index_.try_emplace(key, shards_.size());
  if (inserted) {
    SessionShard shard;
    shard.month_key = key.first;
    shard.platform = platform;
    shards_.push_back(std::move(shard));
  }
  return shards_[it->second];
}

void CorrelationEngine::append(SessionShard& shard, const core::Date& date,
                               const confsim::ParticipantRecord& rec) {
  shard.dates.push_back(date);
  shard.records.push_back(rec);
}

void CorrelationEngine::ingest(const confsim::CallRecord& call) {
  for (const auto& p : call.participants) {
    append(shard_for(call.start.date, p.platform), call.start.date, p);
  }
}

void CorrelationEngine::ingest(std::span<const confsim::CallRecord> calls) {
  const std::size_t workers = pool_ == nullptr ? 1 : pool_->size();
  if (workers <= 1 || calls.size() < 2) {
    for (const auto& call : calls) ingest(call);
    return;
  }

  // Partition the batch in parallel: each chunk of the (contiguous,
  // in-order) call range builds private shards, which are then appended in
  // chunk order — so per-shard record order equals sequential ingest order
  // no matter how many threads ran.
  const std::size_t chunks = std::min(calls.size(), workers * 4);
  std::vector<std::map<std::pair<int, int>, SessionShard>> locals(chunks);
  core::parallel_for(pool_, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t begin = c * calls.size() / chunks;
      const std::size_t end = (c + 1) * calls.size() / chunks;
      auto& local = locals[c];
      for (std::size_t i = begin; i < end; ++i) {
        const auto& call = calls[i];
        for (const auto& p : call.participants) {
          const std::pair<int, int> key =
              sharding_ == ShardingPolicy::kSingleShard
                  ? std::pair<int, int>{0, 0}
                  : std::pair<int, int>{month_key(call.start.date),
                                        static_cast<int>(p.platform)};
          SessionShard& shard = local[key];
          shard.month_key = key.first;
          shard.platform = p.platform;
          shard.dates.push_back(call.start.date);
          shard.records.push_back(p);
        }
      }
    }
  });
  for (auto& local : locals) {
    for (auto& [key, partial] : local) {
      SessionShard& shard = shard_for(
          partial.dates.empty() ? core::Date{} : partial.dates.front(),
          partial.platform);
      shard.dates.insert(shard.dates.end(), partial.dates.begin(),
                         partial.dates.end());
      shard.records.insert(shard.records.end(),
                           std::make_move_iterator(partial.records.begin()),
                           std::make_move_iterator(partial.records.end()));
    }
  }
}

std::size_t CorrelationEngine::session_count() const {
  std::size_t n = 0;
  for (const SessionShard& s : shards_) n += s.records.size();
  return n;
}

std::vector<CorrelationEngine::SelectedShard> CorrelationEngine::select_shards(
    const ShardSelector& selector) const {
  std::vector<SelectedShard> out;
  out.reserve(shards_.size());
  for (const auto& [key, idx] : shard_index_) {
    const SessionShard& shard = shards_[idx];
    SelectedShard sel;
    sel.shard = &shard;
    if (sharding_ == ShardingPolicy::kSingleShard) {
      sel.check_dates = selector.first.has_value() || selector.last.has_value();
      sel.check_platform = selector.platform.has_value();
    } else {
      if (selector.platform && shard.platform != *selector.platform) continue;
      if (selector.first && shard.month_key < month_key(*selector.first)) {
        continue;
      }
      if (selector.last && shard.month_key > month_key(*selector.last)) {
        continue;
      }
      // Only window-boundary months still need per-record date checks.
      sel.check_dates =
          (selector.first && month_key(*selector.first) == shard.month_key) ||
          (selector.last && month_key(*selector.last) == shard.month_key);
    }
    out.push_back(sel);
  }
  return out;
}

bool CorrelationEngine::record_matches(const SelectedShard& sel,
                                       const core::Date& date,
                                       const confsim::ParticipantRecord& rec,
                                       const ShardSelector& selector) {
  if (sel.check_dates) {
    if (selector.first && date < *selector.first) return false;
    if (selector.last && *selector.last < date) return false;
  }
  if (sel.check_platform && rec.platform != *selector.platform) return false;
  return true;
}

EngagementCurve CorrelationEngine::engagement_curve(
    const SweepSpec& spec, EngagementMetric engagement,
    const ParticipantFilter& filter, const ShardSelector& selector) const {
  const auto selected = select_shards(selector);
  std::vector<core::Binner1D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(spec.lo, spec.hi, spec.bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      core::Binner1D& binner = partials[i];
      const auto& records = sel.shard->records;
      for (std::size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        if (!record_matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        const netsim::NetworkConditions c =
            aggregate_conditions(rec, spec.aggregate);
        if (spec.control_others &&
            !netsim::others_in_control(c, spec.metric, spec.control)) {
          continue;
        }
        binner.add(netsim::metric_value(c, spec.metric),
                   engagement_value(rec, engagement));
      }
    }
  });
  core::Binner1D total{spec.lo, spec.hi, spec.bins};
  for (const core::Binner1D& p : partials) total.merge(p);

  EngagementCurve curve;
  curve.network_metric = spec.metric;
  curve.engagement_metric = engagement;
  for (const core::Bin& b : total.bins()) {
    curve.points.push_back({b.center(), b.mean_y, b.count});
  }
  return curve;
}

std::vector<CurvePoint> CorrelationEngine::dropoff_curve(
    const SweepSpec& spec, const ParticipantFilter& filter,
    const ShardSelector& selector) const {
  const auto selected = select_shards(selector);
  std::vector<core::Binner1D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(spec.lo, spec.hi, spec.bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      core::Binner1D& binner = partials[i];
      const auto& records = sel.shard->records;
      for (std::size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        if (!record_matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        const netsim::NetworkConditions c =
            aggregate_conditions(rec, spec.aggregate);
        if (spec.control_others &&
            !netsim::others_in_control(c, spec.metric, spec.control)) {
          continue;
        }
        binner.add(netsim::metric_value(c, spec.metric),
                   rec.dropped_early ? 1.0 : 0.0);
      }
    }
  });
  core::Binner1D total{spec.lo, spec.hi, spec.bins};
  for (const core::Binner1D& p : partials) total.merge(p);

  std::vector<CurvePoint> out;
  for (const core::Bin& b : total.bins()) {
    out.push_back({b.center(), b.mean_y, b.count});
  }
  return out;
}

core::Grid2D CorrelationEngine::compounding_grid(EngagementMetric engagement,
                                                 double latency_hi_ms,
                                                 std::size_t lat_bins,
                                                 double loss_hi_pct,
                                                 std::size_t loss_bins) const {
  const auto selected = select_shards({});
  std::vector<core::Grid2D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct,
                          loss_bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      core::Grid2D& grid = partials[i];
      for (const auto& rec : selected[i].shard->records) {
        const netsim::NetworkConditions c = rec.network.mean_conditions();
        grid.add(c.latency.ms(), c.loss.percent(),
                 engagement_value(rec, engagement));
      }
    }
  });
  core::Grid2D total{0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct,
                     loss_bins};
  for (const core::Grid2D& p : partials) total.merge(p);
  return total;
}

std::optional<CorrelationEngine::MosCorrelation>
CorrelationEngine::mos_correlation(EngagementMetric engagement,
                                   std::size_t min_samples) const {
  const auto selected = select_shards({});
  struct Rated {
    std::vector<double> eng;
    std::vector<double> mos;
  };
  std::vector<Rated> partials(selected.size());
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Rated& part = partials[i];
      for (const auto& rec : selected[i].shard->records) {
        if (!rec.mos) continue;
        part.eng.push_back(engagement_value(rec, engagement));
        part.mos.push_back(rec.mos->score());
      }
    }
  });
  std::vector<double> eng;
  std::vector<double> mos;
  for (const Rated& part : partials) {
    eng.insert(eng.end(), part.eng.begin(), part.eng.end());
    mos.insert(mos.end(), part.mos.begin(), part.mos.end());
  }
  if (eng.size() < min_samples) return std::nullopt;

  MosCorrelation out;
  out.rated_sessions = eng.size();
  out.pearson = core::pearson(eng, mos);
  out.spearman = core::spearman(eng, mos);

  // Decile curve: mean MOS per engagement decile. Ties are broken on the
  // (engagement, MOS) value pair so the sorted sequence — and hence every
  // decile sum — is a function of the sample multiset alone, identical
  // across shard layouts and thread counts.
  std::vector<std::size_t> order(eng.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (eng[a] != eng[b]) return eng[a] < eng[b];
    return mos[a] < mos[b];
  });
  const std::size_t deciles = 10;
  for (std::size_t dec = 0; dec < deciles; ++dec) {
    const std::size_t lo = dec * order.size() / deciles;
    const std::size_t hi = (dec + 1) * order.size() / deciles;
    if (hi <= lo) continue;
    double eng_acc = 0.0;
    double mos_acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      eng_acc += eng[order[i]];
      mos_acc += mos[order[i]];
    }
    const auto n = static_cast<double>(hi - lo);
    out.decile_curve.push_back({eng_acc / n, mos_acc / n, hi - lo});
  }
  return out;
}

CorrelationEngine::Tally CorrelationEngine::tally(
    const ParticipantFilter& filter, const ShardSelector& selector,
    const std::function<double(const confsim::ParticipantRecord&)>& predictor)
    const {
  const auto selected = select_shards(selector);
  std::vector<Tally> partials(selected.size());
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      Tally& part = partials[i];
      const auto& records = sel.shard->records;
      for (std::size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        if (!record_matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        ++part.sessions;
        if (rec.mos) {
          part.observed_mos_sum += rec.mos->score();
          ++part.rated;
        }
        if (predictor) {
          part.predicted_mos_sum += predictor(rec);
          ++part.predicted;
        }
      }
    }
  });
  Tally total;
  for (const Tally& part : partials) {
    total.sessions += part.sessions;
    total.rated += part.rated;
    total.observed_mos_sum += part.observed_mos_sum;
    total.predicted_mos_sum += part.predicted_mos_sum;
    total.predicted += part.predicted;
  }
  return total;
}

std::vector<confsim::ParticipantRecord> CorrelationEngine::sessions() const {
  std::vector<confsim::ParticipantRecord> out;
  out.reserve(session_count());
  for (const auto& [key, idx] : shard_index_) {
    const SessionShard& shard = shards_[idx];
    out.insert(out.end(), shard.records.begin(), shard.records.end());
  }
  return out;
}

std::vector<confsim::ParticipantRecord>
CorrelationEngine::rated_sessions_canonical() const {
  std::vector<confsim::ParticipantRecord> out;
  if (sharding_ == ShardingPolicy::kMonthPlatform) {
    for (const auto& [key, idx] : shard_index_) {
      for (const auto& rec : shards_[idx].records) {
        if (rec.mos) out.push_back(rec);
      }
    }
    return out;
  }
  // Flat layout: stable-sort rated records into the same (month, platform,
  // ingest) order the sharded layout yields naturally.
  struct Keyed {
    int month_key;
    int platform;
    std::size_t seq;
  };
  std::vector<Keyed> keys;
  for (const SessionShard& shard : shards_) {
    for (std::size_t r = 0; r < shard.records.size(); ++r) {
      if (!shard.records[r].mos) continue;
      keys.push_back({month_key(shard.dates[r]),
                      static_cast<int>(shard.records[r].platform), r});
    }
  }
  std::stable_sort(keys.begin(), keys.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.month_key != b.month_key) {
                       return a.month_key < b.month_key;
                     }
                     return a.platform < b.platform;
                   });
  out.reserve(keys.size());
  for (const Keyed& k : keys) {
    // All rated records live in the single flat shard under this policy.
    out.push_back(shards_.front().records[k.seq]);
  }
  return out;
}

}  // namespace usaas::service
