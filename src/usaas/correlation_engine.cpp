#include "usaas/correlation_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/correlation.h"
#include "core/flat_index.h"
#include "core/stats.h"

namespace usaas::service {

namespace {

using core::month_key;

[[nodiscard]] double seconds_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// ---------------------------------------------------------------------------
// Two-phase columnar scan kernels.
//
// Phase 1 (selection) compiles the residual predicates shard pruning could
// not discharge — date window, platform, access — into branchless compares
// over the day-key / platform / access columns and emits the matching row
// indices. Optional refines preserve the row scan's predicate order: the
// opaque ParticipantFilter runs on materialized rows *after* the structural
// predicates and *before* the confounder control check, exactly as
// record_matches -> filter -> others_in_control used to.
//
// Phase 2 (aggregation) is a tight add-only loop over the selected indices
// touching just the columns the query names. Because the selected row set,
// its order, and every value fed to Binner1D/Grid2D/sum are identical to
// the row scan's, results are bit-identical, not merely close.
// ---------------------------------------------------------------------------

constexpr std::int32_t kDayMin = std::numeric_limits<std::int32_t>::min();
constexpr std::int32_t kDayMax = std::numeric_limits<std::int32_t>::max();

/// Residual per-row predicates, wildcarded so the selection loop runs all
/// four compares unconditionally: an unchecked bound widens to +-inf and an
/// unchecked equality OR-s with its `*_any` flag.
struct Residual {
  std::int32_t day_lo{kDayMin};
  std::int32_t day_hi{kDayMax};
  std::uint8_t platform{0};
  std::uint8_t platform_any{1};
  std::uint8_t access{0};
  std::uint8_t access_any{1};

  [[nodiscard]] bool none() const {
    return day_lo == kDayMin && day_hi == kDayMax && platform_any != 0 &&
           access_any != 0;
  }
};

[[nodiscard]] Residual make_residual(bool check_dates, bool check_platform,
                                     const ShardSelector& selector) {
  Residual p;
  if (check_dates) {
    // pack_day_key preserves Date ordering, so the inclusive window check
    // becomes two integer compares.
    if (selector.first) p.day_lo = SessionColumns::pack_day_key(*selector.first);
    if (selector.last) p.day_hi = SessionColumns::pack_day_key(*selector.last);
  }
  if (check_platform) {
    p.platform = static_cast<std::uint8_t>(*selector.platform);
    p.platform_any = 0;
  }
  if (selector.access) {
    p.access = static_cast<std::uint8_t>(*selector.access);
    p.access_any = 0;
  }
  return p;
}

/// The selected row set a scan aggregates over. idx == nullptr means the
/// identity [0, n) — no residual predicate survived, no index vector is
/// materialized, and the aggregation loop runs dense.
struct ScanSet {
  const std::uint32_t* idx{nullptr};
  std::size_t n{0};
};

/// Phase-1 structural selection: branchless compare-and-append over the
/// filter columns only.
[[nodiscard]] ScanSet select_structural(const SessionColumns& cols,
                                        const Residual& p,
                                        std::vector<std::uint32_t>& scratch) {
  const std::size_t n = cols.size();
  scratch.resize(n);
  const std::int32_t* day = cols.day_key.data();
  const std::uint8_t* plat = cols.platform.data();
  const std::uint8_t* acc = cols.access.data();
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned keep =
        static_cast<unsigned>(day[i] >= p.day_lo) &
        static_cast<unsigned>(day[i] <= p.day_hi) &
        (static_cast<unsigned>(plat[i] == p.platform) | p.platform_any) &
        (static_cast<unsigned>(acc[i] == p.access) | p.access_any);
    scratch[m] = static_cast<std::uint32_t>(i);
    m += keep;
  }
  scratch.resize(m);
  return {scratch.data(), m};
}

/// Compacts `in` down to the rows where `keep(row)` holds. `in.idx` may
/// alias `scratch.data()` (the write cursor never passes the read cursor);
/// an identity input materializes into `scratch`.
template <typename Keep>
[[nodiscard]] ScanSet refine(ScanSet in, std::vector<std::uint32_t>& scratch,
                             Keep&& keep) {
  std::size_t m = 0;
  if (in.idx == nullptr) {
    scratch.resize(in.n);
    for (std::size_t i = 0; i < in.n; ++i) {
      scratch[m] = static_cast<std::uint32_t>(i);
      m += static_cast<std::size_t>(keep(i) ? 1 : 0);
    }
  } else {
    for (std::size_t j = 0; j < in.n; ++j) {
      const std::uint32_t r = in.idx[j];
      scratch[m] = r;
      m += static_cast<std::size_t>(keep(r) ? 1 : 0);
    }
  }
  scratch.resize(m);
  return {scratch.data(), m};
}

/// The three non-swept metric columns + their control windows, resolved
/// once per shard so the confounder refine is three compare pairs per row.
struct ControlColumns {
  const double* col[3] = {nullptr, nullptr, nullptr};
  double lo[3] = {0.0, 0.0, 0.0};
  double hi[3] = {0.0, 0.0, 0.0};
};

[[nodiscard]] ControlColumns make_control_columns(
    const SessionColumns& cols, netsim::Metric swept,
    const netsim::ControlWindows& w, SessionAggregate agg) {
  const double los[4] = {w.latency_lo_ms, w.loss_lo_pct, w.jitter_lo_ms,
                         w.bandwidth_lo_mbps};
  const double his[4] = {w.latency_hi_ms, w.loss_hi_pct, w.jitter_hi_ms,
                         w.bandwidth_hi_mbps};
  ControlColumns out;
  std::size_t j = 0;
  for (int m = 0; m < 4; ++m) {
    if (m == static_cast<int>(swept)) continue;
    const auto metric = static_cast<netsim::Metric>(m);
    out.col[j] = agg == SessionAggregate::kP95 ? cols.tail_column(metric)
                                               : cols.mean_column(metric);
    out.lo[j] = los[m];
    out.hi[j] = his[m];
    ++j;
  }
  return out;
}

/// Resolves the swept-metric value column for the requested aggregate —
/// the array netsim::metric_value(aggregate_conditions(rec), m) reads
/// row-wise (the tail column mirrors p95_conditions verbatim, including
/// bandwidth's low-tail P5 slot).
[[nodiscard]] const double* sweep_column(const SessionColumns& cols,
                                         netsim::Metric metric,
                                         SessionAggregate agg) {
  return agg == SessionAggregate::kP95 ? cols.tail_column(metric)
                                       : cols.mean_column(metric);
}

/// Runs selection + the optional filter/control refines for one shard:
/// the shared phase-1 front half of every sweep-shaped scan.
[[nodiscard]] ScanSet select_sweep_rows(const SessionColumns& cols,
                                        const Residual& res,
                                        const ParticipantFilter& filter,
                                        const SweepSpec& spec,
                                        std::vector<std::uint32_t>& scratch) {
  ScanSet set{nullptr, cols.size()};
  if (!res.none()) set = select_structural(cols, res, scratch);
  if (filter) {
    // Materialize rows for the opaque predicate — same call set, same
    // order as the row scan (which also ran it after record_matches).
    set = refine(set, scratch,
                 [&](std::size_t r) { return filter(cols.record(r)); });
  }
  if (spec.control_others) {
    const ControlColumns cc =
        make_control_columns(cols, spec.metric, spec.control, spec.aggregate);
    set = refine(set, scratch, [&](std::size_t r) {
      unsigned ok = 1;
      for (std::size_t j = 0; j < 3; ++j) {
        ok &= static_cast<unsigned>(cc.col[j][r] >= cc.lo[j]) &
              static_cast<unsigned>(cc.col[j][r] <= cc.hi[j]);
      }
      return ok != 0;
    });
  }
  return set;
}

/// Phase-2 sweep aggregation: add-only loop over the selected rows,
/// touching exactly two columns.
void accumulate_sweep(core::Binner1D& binner, const double* x, const double* y,
                      ScanSet set) {
  if (set.idx == nullptr) {
    for (std::size_t i = 0; i < set.n; ++i) binner.add(x[i], y[i]);
    return;
  }
  for (std::size_t j = 0; j < set.n; ++j) {
    const std::uint32_t r = set.idx[j];
    binner.add(x[r], y[r]);
  }
}

}  // namespace

double EngagementCurve::relative_drop_percent() const {
  if (points.size() < 2) return 0.0;
  double best = 0.0;
  for (const CurvePoint& p : points) best = std::max(best, p.engagement);
  if (best <= 0.0) return 0.0;
  return 100.0 * (best - points.back().engagement) / best;
}

EngagementCurve EngagementCurve::normalized() const {
  EngagementCurve out = *this;
  double best = 0.0;
  for (const CurvePoint& p : out.points) best = std::max(best, p.engagement);
  if (best <= 0.0) return out;
  for (CurvePoint& p : out.points) p.engagement = 100.0 * p.engagement / best;
  return out;
}

int CorrelationEngine::packed_key(const core::Date& date,
                                  confsim::Platform platform) const {
  if (sharding_ == ShardingPolicy::kSingleShard) return 0;
  return month_key(date) * confsim::kNumPlatforms + static_cast<int>(platform);
}

void CorrelationEngine::set_telemetry(core::telemetry::Registry* registry,
                                      std::string_view corpus) {
  registry_ = registry;
  corpus_ = std::string{corpus};
  if (registry == nullptr) {
    ingest_tel_ = {};
    for (SessionShard& shard : shards_) {
      shard.summary_touches = {};
      shard.scan_touches = {};
    }
    return;
  }
  const auto phase = [&](const char* name) {
    return registry->histogram(
        "usaas_ingest_batch_seconds",
        "Per-batch ingest phase durations (two-pass counted pipeline)",
        {{"corpus", corpus_}, {"phase", name}});
  };
  ingest_tel_ = {phase("count"), phase("plan"), phase("scatter"),
                 phase("summarize"), phase("total")};
  // Shards ingested before telemetry was attached get counters now;
  // shards created later register in shard_for_key.
  for (SessionShard& shard : shards_) register_shard_touches(shard);
}

void CorrelationEngine::register_shard_touches(SessionShard& shard) {
  if (registry_ == nullptr || !registry_->enabled()) return;
  std::string label;
  if (sharding_ == ShardingPolicy::kSingleShard) {
    label = "flat";
  } else {
    // Floored decode so pre-epoch (negative) month keys render sanely.
    const int mk = shard.month_key;
    const int year = (mk >= 0 ? mk : mk - 11) / 12;
    const int month = mk - year * 12 + 1;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%04d-%02d/", year, month);
    label = buf;
    label += confsim::to_string(shard.platform);
  }
  const auto touch = [&](const char* source) {
    return registry_->counter(
        "usaas_shard_touches_total",
        "Per-shard query touches by answer source (summary merge vs "
        "record scan) — the access-frequency signal for spill-to-disk "
        "eviction",
        {{"corpus", corpus_}, {"shard", label}, {"source", source}});
  };
  shard.summary_touches = touch("summary");
  shard.scan_touches = touch("scan");
}

void CorrelationEngine::note_shard_touches(
    const std::vector<SelectedShard>& selected,
    const std::vector<char>& use_summary, std::uint64_t n_summary,
    QueryFanoutStats* out) const {
  for (std::size_t i = 0; i < selected.size(); ++i) {
    (use_summary[i] ? selected[i].shard->summary_touches
                    : selected[i].shard->scan_touches)
        .add();
  }
  note_fanout(n_summary, selected.size() - n_summary, out);
}

CorrelationEngine::SessionShard& CorrelationEngine::shard_for_key(int key) {
  const auto [it, inserted] = shard_index_.try_emplace(key, shards_.size());
  if (inserted) {
    // Unpack with floored semantics so pre-epoch month keys (negative)
    // still round-trip; under kSingleShard the key is the constant 0.
    const int platform_idx =
        ((key % confsim::kNumPlatforms) + confsim::kNumPlatforms) %
        confsim::kNumPlatforms;
    SessionShard shard;
    shard.month_key = (key - platform_idx) / confsim::kNumPlatforms;
    shard.platform = static_cast<confsim::Platform>(platform_idx);
    if (summary_cfg_) shard.summary = ShardSummary{*summary_cfg_};
    register_shard_touches(shard);
    shards_.push_back(std::move(shard));
  }
  return shards_[it->second];
}

CorrelationEngine::SessionShard& CorrelationEngine::shard_for(
    const core::Date& date, confsim::Platform platform) {
  return shard_for_key(packed_key(date, platform));
}

void CorrelationEngine::append(SessionShard& shard, const core::Date& date,
                               const confsim::ParticipantRecord& rec) {
  shard.columns.append(date, rec);
  shard.summary.fold(rec);
}

void CorrelationEngine::ingest(const confsim::CallRecord& call) {
  predicted_fresh_ = false;
  for (const auto& p : call.participants) {
    append(shard_for(call.start.date, p.platform), call.start.date, p);
  }
  ingest_stats_.records += call.participants.size();
  ingest_stats_.bytes_moved +=
      call.participants.size() * SessionColumns::bytes_per_row();
}

void CorrelationEngine::ingest(std::span<const confsim::CallRecord> calls) {
  if (calls.empty()) return;
  if (calls.size() == 1) {  // the two-pass machinery isn't worth one call
    ingest(calls.front());
    return;
  }
  predicted_fresh_ = false;
  const auto t0 = std::chrono::steady_clock::now();

  // Contiguous in-order call chunks. Fan-out is capped by the pool's
  // *effective* parallelism (1 on a single-core host, where both passes
  // then run inline with a single chunk) and floored by a grain so chunks
  // stay large enough to amortize their counting structures.
  constexpr std::size_t kGrainCalls = 64;
  const std::size_t parallelism = core::effective_parallelism(pool_);
  const std::size_t chunks =
      std::min({calls.size(), parallelism * 4,
                std::max<std::size_t>(1, calls.size() / kGrainCalls)});
  const auto chunk_begin = [&](std::size_t c) {
    return c * calls.size() / chunks;
  };

  // ---- Pass 1: per-chunk x per-shard-key record counts, in parallel,
  // over a flat dense key index (no node-based map in the inner loop).
  // The count arrays persist across batches; clear() keeps their range.
  scratch_.counts.resize(chunks);
  for (core::DenseKeyCounts& c : scratch_.counts) c.clear();
  std::vector<core::DenseKeyCounts>& counts = scratch_.counts;
  core::parallel_for(pool_, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      core::DenseKeyCounts& local = counts[c];
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const core::Date date = calls[i].start.date;
        for (const auto& p : calls[i].participants) {
          local.add(packed_key(date, p.platform));
        }
      }
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  // ---- Prefix-sum the counts into a scatter plan, pre-size every
  // destination shard's columns for this batch (resize_uninit: no memset,
  // the scatter writes every new slot exactly once), and lay out the
  // batch-wide permutation space: key-major, slot order inside each key.
  const core::ScatterPlan plan = core::build_scatter_plan(counts);
  IngestStats batch;
  batch.batches = 1;
  if (plan.num_keys == 0) {  // every call in the batch was empty
    batch.total_seconds = seconds_between(t0, t1);
    batch.count_seconds = batch.total_seconds;
    ingest_stats_.merge(batch);
    return;
  }
  // Create shards first (growing shards_ may move SessionShard objects),
  // then size them and capture stable pointers.
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    if (plan.totals[k] > 0) shard_for_key(plan.min_key + static_cast<int>(k));
  }
  struct Slice {
    SessionShard* shard{nullptr};  // stable: shards_ stops growing above
    std::size_t base{0};           // first new row in the shard's columns
  };
  std::vector<Slice> slices(plan.num_keys);
  scratch_.batch_offsets.assign(plan.num_keys, 0);
  std::size_t batch_rows = 0;
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    scratch_.batch_offsets[k] = batch_rows;
    if (plan.totals[k] == 0) continue;
    SessionShard& shard = shard_for_key(plan.min_key + static_cast<int>(k));
    slices[k] = {&shard, shard.columns.size()};
    shard.columns.resize_uninit(slices[k].base + plan.totals[k]);
    batch_rows += plan.totals[k];
    ++batch.shards_touched;
  }
  batch.records = batch_rows;
  const std::vector<std::size_t>& batch_offsets = scratch_.batch_offsets;
  scratch_.perm.resize_uninit(batch_rows);
  SourceSlot* perm = scratch_.perm.data();
  const auto t2 = std::chrono::steady_clock::now();

  // ---- Pass 2a: build the permutation, in parallel over chunks. A
  // chunk's cursor row starts at the prefix-sum offsets, so slot order is
  // (chunk index, in-chunk order) == sequential ingest order, and chunks
  // write disjoint slots (no synchronization, no merge step).
  core::parallel_for(pool_, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      std::vector<std::size_t> cursor = plan.chunk_cursor(c);
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const core::Date date = calls[i].start.date;
        const std::int32_t day = SessionColumns::pack_day_key(date);
        for (const auto& p : calls[i].participants) {
          const auto k = static_cast<std::size_t>(
              packed_key(date, p.platform) - plan.min_key);
          perm[batch_offsets[k] + cursor[k]++] = {&p, day};
        }
      }
    }
  });

  // ---- Pass 2b: destination-major scatter. Tasks are contiguous slot
  // sub-ranges within one shard's slice (hot shards split across
  // workers), so every column write is sequential per task and tasks
  // touch disjoint rows. Writing all ~25 columns per slot would cycle
  // through 25 interleaved store streams — more than the store buffers
  // can combine — so the scatter runs in small blocks with a handful of
  // fused per-column passes: each pass writes <= 6 sequential streams,
  // and the block's source records (pulled into cache by the first pass,
  // prefetched a few slots ahead) are re-read from L1/L2 by the rest.
  const std::vector<core::ShardRange> tasks =
      core::plan_shard_ranges(plan.totals, parallelism, /*min_grain=*/4096);
  core::parallel_for(pool_, tasks.size(), [&](std::size_t tb, std::size_t te) {
    constexpr std::size_t kBlock = 256;  // ~47 KB of records per block
    for (std::size_t t = tb; t < te; ++t) {
      const core::ShardRange& range = tasks[t];
      const Slice& slice = slices[range.key];
      SessionColumns& cols = slice.shard->columns;
      const SourceSlot* src = perm + batch_offsets[range.key];
      // Hoisted raw destination pointers: the uint8 column stores could
      // otherwise alias the PodColumn pointer members themselves, forcing
      // the compiler to reload every column base after every store.
      std::int32_t* const day_out = cols.day_key.data() + slice.base;
      std::uint64_t* const user_out = cols.user_id.data() + slice.base;
      std::uint8_t* const plat_out = cols.platform.data() + slice.base;
      std::uint8_t* const acc_out = cols.access.data() + slice.base;
      std::int32_t* const size_out = cols.meeting_size.data() + slice.base;
      double* const lat_mean = cols.latency_mean.data() + slice.base;
      double* const lat_med = cols.latency_median.data() + slice.base;
      double* const lat_tail = cols.latency_tail.data() + slice.base;
      double* const loss_mean = cols.loss_mean.data() + slice.base;
      double* const loss_med = cols.loss_median.data() + slice.base;
      double* const loss_tail = cols.loss_tail.data() + slice.base;
      double* const jit_mean = cols.jitter_mean.data() + slice.base;
      double* const jit_med = cols.jitter_median.data() + slice.base;
      double* const jit_tail = cols.jitter_tail.data() + slice.base;
      double* const bw_mean = cols.bandwidth_mean.data() + slice.base;
      double* const bw_med = cols.bandwidth_median.data() + slice.base;
      double* const bw_tail = cols.bandwidth_tail.data() + slice.base;
      double* const dur_out = cols.duration_s.data() + slice.base;
      std::uint32_t* const samp_out = cols.sample_count.data() + slice.base;
      double* const pres_out = cols.presence.data() + slice.base;
      double* const cam_out = cols.cam_on.data() + slice.base;
      double* const mic_out = cols.mic_on.data() + slice.base;
      std::uint8_t* const drop_out = cols.dropped_early.data() + slice.base;
      double* const mos_out = cols.mos.data() + slice.base;
      std::uint8_t* const valid_out = cols.mos_valid.data() + slice.base;
      for (std::size_t s = range.begin; s < range.end; s += kBlock) {
        const std::size_t n = std::min(kBlock, range.end - s);
        const SourceSlot* blk = src + s;
        for (std::size_t i = 0; i < n; ++i) {  // header + record warm-up
          if (i + 8 < n) {
            const auto* next = reinterpret_cast<const char*>(blk[i + 8].rec);
            __builtin_prefetch(next);
            __builtin_prefetch(next + 64);
            __builtin_prefetch(next + 128);
          }
          const confsim::ParticipantRecord& r = *blk[i].rec;
          day_out[s + i] = blk[i].day;
          user_out[s + i] = r.user_id;
          plat_out[s + i] = static_cast<std::uint8_t>(r.platform);
          acc_out[s + i] = static_cast<std::uint8_t>(r.access);
          size_out[s + i] = static_cast<std::int32_t>(r.meeting_size);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const netsim::SessionNetworkSummary& net = blk[i].rec->network;
          lat_mean[s + i] = net.latency_ms.mean;
          lat_med[s + i] = net.latency_ms.median;
          lat_tail[s + i] = net.latency_ms.p95;
          loss_mean[s + i] = net.loss_pct.mean;
          loss_med[s + i] = net.loss_pct.median;
          loss_tail[s + i] = net.loss_pct.p95;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const netsim::SessionNetworkSummary& net = blk[i].rec->network;
          jit_mean[s + i] = net.jitter_ms.mean;
          jit_med[s + i] = net.jitter_ms.median;
          jit_tail[s + i] = net.jitter_ms.p95;
          bw_mean[s + i] = net.bandwidth_mbps.mean;
          bw_med[s + i] = net.bandwidth_mbps.median;
          bw_tail[s + i] = net.bandwidth_mbps.p95;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const confsim::ParticipantRecord& r = *blk[i].rec;
          dur_out[s + i] = r.network.duration_seconds;
          samp_out[s + i] = static_cast<std::uint32_t>(r.network.sample_count);
          pres_out[s + i] = r.presence_pct;
          cam_out[s + i] = r.cam_on_pct;
          mic_out[s + i] = r.mic_on_pct;
          drop_out[s + i] = r.dropped_early ? 1 : 0;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const std::optional<core::Mos>& m = blk[i].rec->mos;
          valid_out[s + i] = m.has_value() ? 1 : 0;
          mos_out[s + i] = m ? m->score() : 0.0;
        }
      }
    }
  });
  const auto t3 = std::chrono::steady_clock::now();

  // ---- Pass 3 (summaries on): fold each shard's new rows into its
  // summary, straight from the columns, in slot order == sequential
  // ingest order. Shards are disjoint, so the fold parallelizes over
  // keys with no synchronization.
  if (summary_cfg_) {
    core::parallel_for(
        pool_, plan.num_keys, [&](std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) {
            if (plan.totals[k] == 0) continue;
            slices[k].shard->summary.fold(slices[k].shard->columns,
                                          slices[k].base,
                                          slices[k].base + plan.totals[k]);
          }
        });
  }
  const auto t4 = std::chrono::steady_clock::now();

  batch.bytes_moved = batch.records * SessionColumns::bytes_per_row();
  batch.count_seconds = seconds_between(t0, t1);
  batch.plan_seconds = seconds_between(t1, t2);
  batch.scatter_seconds = seconds_between(t2, t3);
  batch.summarize_seconds = seconds_between(t3, t4);
  batch.total_seconds = seconds_between(t0, t4);
  ingest_stats_.merge(batch);
  // Telemetry reuses the timestamps already taken for IngestStats — the
  // instrumented path adds atomic observes, not extra clock reads.
  ingest_tel_.count.observe(batch.count_seconds);
  ingest_tel_.plan.observe(batch.plan_seconds);
  ingest_tel_.scatter.observe(batch.scatter_seconds);
  ingest_tel_.summarize.observe(batch.summarize_seconds);
  ingest_tel_.total.observe(batch.total_seconds);
}

std::size_t CorrelationEngine::session_count() const {
  std::size_t n = 0;
  for (const SessionShard& s : shards_) n += s.columns.size();
  return n;
}

void CorrelationEngine::configure_summaries(SummaryConfig config) {
  if (session_count() != 0) {
    throw std::logic_error(
        "CorrelationEngine::configure_summaries: corpus is not empty; "
        "summaries folded from a partial corpus would under-count");
  }
  // Validates the layout eagerly (Binner1D/Grid2D reject bad extents).
  [[maybe_unused]] const ShardSummary probe{config};
  summary_cfg_ = std::move(config);
  for (SessionShard& shard : shards_) shard.summary = ShardSummary{*summary_cfg_};
}

std::size_t CorrelationEngine::summary_memory_bytes() const {
  std::size_t bytes = 0;
  for (const SessionShard& s : shards_) bytes += s.summary.memory_bytes();
  return bytes;
}

void CorrelationEngine::refresh_predicted_tallies(
    const std::function<double(const confsim::ParticipantRecord&)>&
        predictor) {
  if (!summary_cfg_) return;
  core::parallel_for(pool_, shards_.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      shards_[i].summary.refresh_predicted(shards_[i].columns, predictor);
    }
  });
  predicted_fresh_ = static_cast<bool>(predictor);
}

std::vector<CorrelationEngine::SelectedShard> CorrelationEngine::select_shards(
    const ShardSelector& selector) const {
  std::vector<SelectedShard> out;
  out.reserve(shards_.size());
  for (const auto& [key, idx] : shard_index_) {
    const SessionShard& shard = shards_[idx];
    SelectedShard sel;
    sel.shard = &shard;
    if (sharding_ == ShardingPolicy::kSingleShard) {
      sel.check_dates = selector.first.has_value() || selector.last.has_value();
      sel.check_platform = selector.platform.has_value();
    } else {
      if (selector.platform && shard.platform != *selector.platform) continue;
      if (selector.first && shard.month_key < month_key(*selector.first)) {
        continue;
      }
      if (selector.last && shard.month_key > month_key(*selector.last)) {
        continue;
      }
      // Only window-boundary months whose boundary actually cuts into the
      // month still need per-record date checks: a window starting on the
      // 1st (or ending on the last day) covers its boundary month whole,
      // so the shard stays summary-answerable.
      const bool first_cuts =
          selector.first && month_key(*selector.first) == shard.month_key &&
          selector.first->day() > 1;
      const bool last_cuts =
          selector.last && month_key(*selector.last) == shard.month_key &&
          selector.last->day() <
              core::Date::days_in_month(selector.last->year(),
                                        selector.last->month());
      sel.check_dates = first_cuts || last_cuts;
    }
    out.push_back(sel);
  }
  return out;
}

EngagementCurve CorrelationEngine::engagement_curve(
    const SweepSpec& spec, EngagementMetric engagement,
    const ParticipantFilter& filter, const ShardSelector& selector,
    QueryFanoutStats* fanout) const {
  const auto selected = select_shards(selector);
  // Summary fast path: the query shape must match a precomputed axis
  // exactly (metric/lo/hi/bins, mean aggregate, no confounder filter, no
  // opaque row filter) — then each shard whose pruning is fully
  // discharged at the shard level merges its summary binner instead of
  // rescanning records. Boundary shards still scan.
  std::optional<std::size_t> axis;
  if (summary_cfg_ && !filter && !spec.control_others &&
      spec.aggregate == SessionAggregate::kMean) {
    const SummaryAxis wanted{spec.metric, spec.lo, spec.hi, spec.bins};
    for (std::size_t a = 0; a < summary_cfg_->axes.size(); ++a) {
      if (summary_cfg_->axes[a] == wanted) {
        axis = a;
        break;
      }
    }
  }
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const SelectedShard& sel = selected[i];
    use_summary[i] = axis && !sel.check_dates && !sel.check_platform &&
                     sel.shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_shard_touches(selected, use_summary, n_summary, fanout);

  std::vector<core::Binner1D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(spec.lo, spec.hi, spec.bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    std::vector<std::uint32_t> scratch;
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      core::Binner1D& binner = partials[i];
      if (use_summary[i]) {
        sel.shard->summary.add_curve_to(binner, *axis, engagement,
                                        selector.access);
        continue;
      }
      const SessionColumns& cols = sel.shard->columns;
      const Residual res =
          make_residual(sel.check_dates, sel.check_platform, selector);
      const ScanSet set =
          select_sweep_rows(cols, res, filter, spec, scratch);
      accumulate_sweep(binner, sweep_column(cols, spec.metric, spec.aggregate),
                       cols.engagement_column(engagement), set);
    }
  });
  core::Binner1D total{spec.lo, spec.hi, spec.bins};
  for (const core::Binner1D& p : partials) total.merge(p);

  EngagementCurve curve;
  curve.network_metric = spec.metric;
  curve.engagement_metric = engagement;
  for (const core::Bin& b : total.bins()) {
    curve.points.push_back({b.center(), b.mean_y, b.count});
  }
  return curve;
}

std::vector<CurvePoint> CorrelationEngine::dropoff_curve(
    const SweepSpec& spec, const ParticipantFilter& filter,
    const ShardSelector& selector) const {
  const auto selected = select_shards(selector);
  std::vector<core::Binner1D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(spec.lo, spec.hi, spec.bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    std::vector<std::uint32_t> scratch;
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      core::Binner1D& binner = partials[i];
      const SessionColumns& cols = sel.shard->columns;
      const Residual res =
          make_residual(sel.check_dates, sel.check_platform, selector);
      const ScanSet set =
          select_sweep_rows(cols, res, filter, spec, scratch);
      // y is the 0/1 early-drop byte widened to double — exactly the
      // `dropped_early ? 1.0 : 0.0` the row scan fed the binner.
      const double* x = sweep_column(cols, spec.metric, spec.aggregate);
      const std::uint8_t* dropped = cols.dropped_early.data();
      if (set.idx == nullptr) {
        for (std::size_t r = 0; r < set.n; ++r) {
          binner.add(x[r], static_cast<double>(dropped[r]));
        }
      } else {
        for (std::size_t j = 0; j < set.n; ++j) {
          const std::uint32_t r = set.idx[j];
          binner.add(x[r], static_cast<double>(dropped[r]));
        }
      }
    }
  });
  core::Binner1D total{spec.lo, spec.hi, spec.bins};
  for (const core::Binner1D& p : partials) total.merge(p);

  std::vector<CurvePoint> out;
  for (const core::Bin& b : total.bins()) {
    out.push_back({b.center(), b.mean_y, b.count});
  }
  return out;
}

core::Grid2D CorrelationEngine::compounding_grid(EngagementMetric engagement,
                                                 double latency_hi_ms,
                                                 std::size_t lat_bins,
                                                 double loss_hi_pct,
                                                 std::size_t loss_bins) const {
  const auto selected = select_shards({});
  // Summary fast path: when the requested grid layout matches the
  // configured one, merge each shard's precomputed grid (same per-record
  // add sequence as the scan — bit-identical).
  const SummaryGrid wanted{latency_hi_ms, lat_bins, loss_hi_pct, loss_bins};
  const bool summary_capable =
      summary_cfg_.has_value() && wanted == summary_cfg_->grid;
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    use_summary[i] = summary_capable && selected[i].shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_shard_touches(selected, use_summary, n_summary, nullptr);
  std::vector<core::Grid2D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct,
                          loss_bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      core::Grid2D& grid = partials[i];
      if (use_summary[i] &&
          selected[i].shard->summary.add_grid_to(grid, engagement, wanted)) {
        continue;
      }
      // Dense three-column kernel: compounding_grid takes no selector or
      // filter, so there is no selection phase at all.
      const SessionColumns& cols = selected[i].shard->columns;
      const double* lat = cols.latency_mean.data();
      const double* loss = cols.loss_mean.data();
      const double* eng = cols.engagement_column(engagement);
      for (std::size_t r = 0; r < cols.size(); ++r) {
        grid.add(lat[r], loss[r], eng[r]);
      }
    }
  });
  core::Grid2D total{0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct,
                     loss_bins};
  for (const core::Grid2D& p : partials) total.merge(p);
  return total;
}

std::optional<CorrelationEngine::MosCorrelation>
CorrelationEngine::mos_correlation(EngagementMetric engagement,
                                   std::size_t min_samples,
                                   QueryFanoutStats* fanout) const {
  const auto selected = select_shards({});
  struct Rated {
    std::vector<double> eng;
    std::vector<double> mos;
  };
  std::vector<Rated> partials(selected.size());
  // Summary fast path: each summary keeps its shard's rated sessions as
  // (engagement, MOS) samples in ingest order — the gather below replays
  // the scan's exact sequence, so downstream stats are bit-identical.
  const auto eng_idx = static_cast<std::size_t>(engagement);
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    use_summary[i] = summary_cfg_.has_value() &&
                     selected[i].shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_shard_touches(selected, use_summary, n_summary, fanout);
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Rated& part = partials[i];
      if (use_summary[i]) {
        for (const RatedSample& s : selected[i].shard->summary.rated()) {
          part.eng.push_back(s.engagement[eng_idx]);
          part.mos.push_back(s.mos);
        }
        continue;
      }
      // Columnar gather over the validity mask: three columns touched
      // (~17 bytes/row) instead of the full record.
      const SessionColumns& cols = selected[i].shard->columns;
      const std::uint8_t* valid = cols.mos_valid.data();
      const double* eng = cols.engagement_column(engagement);
      const double* mos = cols.mos.data();
      for (std::size_t r = 0; r < cols.size(); ++r) {
        if (valid[r] == 0) continue;
        part.eng.push_back(eng[r]);
        part.mos.push_back(mos[r]);
      }
    }
  });
  std::vector<double> eng;
  std::vector<double> mos;
  for (const Rated& part : partials) {
    eng.insert(eng.end(), part.eng.begin(), part.eng.end());
    mos.insert(mos.end(), part.mos.begin(), part.mos.end());
  }
  if (eng.size() < min_samples) return std::nullopt;

  MosCorrelation out;
  out.rated_sessions = eng.size();
  out.pearson = core::pearson(eng, mos);
  out.spearman = core::spearman(eng, mos);

  // Decile curve: mean MOS per engagement decile. Ties are broken on the
  // (engagement, MOS) value pair so the sorted sequence — and hence every
  // decile sum — is a function of the sample multiset alone, identical
  // across shard layouts and thread counts.
  std::vector<std::size_t> order(eng.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (eng[a] != eng[b]) return eng[a] < eng[b];
    return mos[a] < mos[b];
  });
  const std::size_t deciles = 10;
  for (std::size_t dec = 0; dec < deciles; ++dec) {
    const std::size_t lo = dec * order.size() / deciles;
    const std::size_t hi = (dec + 1) * order.size() / deciles;
    if (hi <= lo) continue;
    double eng_acc = 0.0;
    double mos_acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      eng_acc += eng[order[i]];
      mos_acc += mos[order[i]];
    }
    const auto n = static_cast<double>(hi - lo);
    out.decile_curve.push_back({eng_acc / n, mos_acc / n, hi - lo});
  }
  return out;
}

CorrelationEngine::Tally CorrelationEngine::tally(
    const ParticipantFilter& filter, const ShardSelector& selector,
    const std::function<double(const confsim::ParticipantRecord&)>& predictor,
    QueryFanoutStats* fanout) const {
  const auto selected = select_shards(selector);
  // Summary fast path: counts and MOS sums live pre-accumulated per shard
  // (whole-shard and per-access buckets, both in ingest order — identical
  // add sequence to the scan). Predicted sums are only usable while
  // they're fresh for the caller's predictor (refresh_predicted_tallies).
  const bool summary_capable =
      summary_cfg_.has_value() && !filter && (!predictor || predicted_fresh_);
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const SelectedShard& sel = selected[i];
    use_summary[i] = summary_capable && !sel.check_dates &&
                     !sel.check_platform && sel.shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_shard_touches(selected, use_summary, n_summary, fanout);
  std::vector<Tally> partials(selected.size());
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    std::vector<std::uint32_t> scratch;
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      Tally& part = partials[i];
      if (use_summary[i]) {
        const SummaryTally& st = sel.shard->summary.tally(selector.access);
        part.sessions += st.sessions;
        part.rated += st.rated;
        part.observed_mos_sum += st.observed_mos_sum;
        if (predictor) {
          part.predicted_mos_sum += st.predicted_mos_sum;
          part.predicted += st.predicted;
        }
        continue;
      }
      const SessionColumns& cols = sel.shard->columns;
      const Residual res =
          make_residual(sel.check_dates, sel.check_platform, selector);
      ScanSet set{nullptr, cols.size()};
      if (!res.none()) set = select_structural(cols, res, scratch);
      if (filter) {
        set = refine(set, scratch,
                     [&](std::size_t r) { return filter(cols.record(r)); });
      }
      const std::uint8_t* valid = cols.mos_valid.data();
      const double* mos = cols.mos.data();
      // The row scan's per-record accumulators are independent, so the
      // split over selected rows below replays each one's add sequence
      // exactly (same rows, same order).
      const auto tally_row = [&](std::size_t r) {
        ++part.sessions;
        if (valid[r] != 0) {
          part.observed_mos_sum += mos[r];
          ++part.rated;
        }
        if (predictor) {
          part.predicted_mos_sum += predictor(cols.record(r));
          ++part.predicted;
        }
      };
      if (set.idx == nullptr) {
        for (std::size_t r = 0; r < set.n; ++r) tally_row(r);
      } else {
        for (std::size_t j = 0; j < set.n; ++j) tally_row(set.idx[j]);
      }
    }
  });
  Tally total;
  for (const Tally& part : partials) {
    total.sessions += part.sessions;
    total.rated += part.rated;
    total.observed_mos_sum += part.observed_mos_sum;
    total.predicted_mos_sum += part.predicted_mos_sum;
    total.predicted += part.predicted;
  }
  return total;
}

std::vector<confsim::ParticipantRecord> CorrelationEngine::sessions() const {
  std::vector<confsim::ParticipantRecord> out;
  out.reserve(session_count());
  for (const auto& [key, idx] : shard_index_) {
    const SessionColumns& cols = shards_[idx].columns;
    for (std::size_t r = 0; r < cols.size(); ++r) {
      out.push_back(cols.record(r));
    }
  }
  return out;
}

std::vector<confsim::ParticipantRecord>
CorrelationEngine::rated_sessions_canonical() const {
  std::vector<confsim::ParticipantRecord> out;
  if (sharding_ == ShardingPolicy::kMonthPlatform) {
    for (const auto& [key, idx] : shard_index_) {
      const SessionColumns& cols = shards_[idx].columns;
      const std::uint8_t* valid = cols.mos_valid.data();
      for (std::size_t r = 0; r < cols.size(); ++r) {
        if (valid[r] != 0) out.push_back(cols.record(r));
      }
    }
    return out;
  }
  // Flat layout: stable-sort rated rows into the same (month, platform,
  // ingest) order the sharded layout yields naturally. month_key falls
  // straight out of the packed day key: year*12 + month - 1.
  struct Keyed {
    int month_key;
    int platform;
    std::size_t seq;
  };
  std::vector<Keyed> keys;
  for (const SessionShard& shard : shards_) {
    const SessionColumns& cols = shard.columns;
    const std::uint8_t* valid = cols.mos_valid.data();
    for (std::size_t r = 0; r < cols.size(); ++r) {
      if (valid[r] == 0) continue;
      const std::int32_t day = cols.day_key[r];
      keys.push_back({(day / 512) * 12 + ((day / 32) % 16) - 1,
                      static_cast<int>(cols.platform[r]), r});
    }
  }
  std::stable_sort(keys.begin(), keys.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.month_key != b.month_key) {
                       return a.month_key < b.month_key;
                     }
                     return a.platform < b.platform;
                   });
  out.reserve(keys.size());
  for (const Keyed& k : keys) {
    // All rated rows live in the single flat shard under this policy.
    out.push_back(shards_.front().columns.record(k.seq));
  }
  return out;
}

}  // namespace usaas::service
