#include "usaas/correlation_engine.h"

#include <algorithm>
#include <cmath>

#include "core/correlation.h"
#include "core/stats.h"

namespace usaas::service {

double EngagementCurve::relative_drop_percent() const {
  if (points.size() < 2) return 0.0;
  double best = 0.0;
  for (const CurvePoint& p : points) best = std::max(best, p.engagement);
  if (best <= 0.0) return 0.0;
  return 100.0 * (best - points.back().engagement) / best;
}

EngagementCurve EngagementCurve::normalized() const {
  EngagementCurve out = *this;
  double best = 0.0;
  for (const CurvePoint& p : out.points) best = std::max(best, p.engagement);
  if (best <= 0.0) return out;
  for (CurvePoint& p : out.points) p.engagement = 100.0 * p.engagement / best;
  return out;
}

void CorrelationEngine::ingest(std::span<const confsim::CallRecord> calls) {
  for (const auto& call : calls) ingest(call);
}

void CorrelationEngine::ingest(const confsim::CallRecord& call) {
  for (const auto& p : call.participants) sessions_.push_back(p);
}

namespace {

netsim::NetworkConditions aggregate_conditions(
    const confsim::ParticipantRecord& rec, SessionAggregate agg) {
  return agg == SessionAggregate::kP95 ? rec.network.p95_conditions()
                                       : rec.network.mean_conditions();
}

}  // namespace

EngagementCurve CorrelationEngine::engagement_curve(
    const SweepSpec& spec, EngagementMetric engagement,
    const ParticipantFilter& filter) const {
  core::Binner1D binner{spec.lo, spec.hi, spec.bins};
  for (const auto& rec : sessions_) {
    if (filter && !filter(rec)) continue;
    const netsim::NetworkConditions c =
        aggregate_conditions(rec, spec.aggregate);
    if (spec.control_others &&
        !netsim::others_in_control(c, spec.metric, spec.control)) {
      continue;
    }
    binner.add(netsim::metric_value(c, spec.metric),
               engagement_value(rec, engagement));
  }
  EngagementCurve curve;
  curve.network_metric = spec.metric;
  curve.engagement_metric = engagement;
  for (const core::Bin& b : binner.bins()) {
    curve.points.push_back({b.center(), b.mean_y, b.count});
  }
  return curve;
}

std::vector<CurvePoint> CorrelationEngine::dropoff_curve(
    const SweepSpec& spec, const ParticipantFilter& filter) const {
  core::Binner1D binner{spec.lo, spec.hi, spec.bins};
  for (const auto& rec : sessions_) {
    if (filter && !filter(rec)) continue;
    const netsim::NetworkConditions c =
        aggregate_conditions(rec, spec.aggregate);
    if (spec.control_others &&
        !netsim::others_in_control(c, spec.metric, spec.control)) {
      continue;
    }
    binner.add(netsim::metric_value(c, spec.metric),
               rec.dropped_early ? 1.0 : 0.0);
  }
  std::vector<CurvePoint> out;
  for (const core::Bin& b : binner.bins()) {
    out.push_back({b.center(), b.mean_y, b.count});
  }
  return out;
}

core::Grid2D CorrelationEngine::compounding_grid(EngagementMetric engagement,
                                                 double latency_hi_ms,
                                                 std::size_t lat_bins,
                                                 double loss_hi_pct,
                                                 std::size_t loss_bins) const {
  core::Grid2D grid{0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct, loss_bins};
  for (const auto& rec : sessions_) {
    const netsim::NetworkConditions c = rec.network.mean_conditions();
    grid.add(c.latency.ms(), c.loss.percent(),
             engagement_value(rec, engagement));
  }
  return grid;
}

std::optional<CorrelationEngine::MosCorrelation>
CorrelationEngine::mos_correlation(EngagementMetric engagement,
                                   std::size_t min_samples) const {
  std::vector<double> eng;
  std::vector<double> mos;
  for (const auto& rec : sessions_) {
    if (!rec.mos) continue;
    eng.push_back(engagement_value(rec, engagement));
    mos.push_back(rec.mos->score());
  }
  if (eng.size() < min_samples) return std::nullopt;

  MosCorrelation out;
  out.rated_sessions = eng.size();
  out.pearson = core::pearson(eng, mos);
  out.spearman = core::spearman(eng, mos);

  // Decile curve: mean MOS per engagement decile.
  std::vector<std::size_t> order(eng.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return eng[a] < eng[b]; });
  const std::size_t deciles = 10;
  for (std::size_t dec = 0; dec < deciles; ++dec) {
    const std::size_t lo = dec * order.size() / deciles;
    const std::size_t hi = (dec + 1) * order.size() / deciles;
    if (hi <= lo) continue;
    double eng_acc = 0.0;
    double mos_acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      eng_acc += eng[order[i]];
      mos_acc += mos[order[i]];
    }
    const auto n = static_cast<double>(hi - lo);
    out.decile_curve.push_back({eng_acc / n, mos_acc / n, hi - lo});
  }
  return out;
}

}  // namespace usaas::service
