#include "usaas/correlation_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/correlation.h"
#include "core/flat_index.h"
#include "core/stats.h"

namespace usaas::service {

namespace {

using core::month_key;

[[nodiscard]] double seconds_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

netsim::NetworkConditions aggregate_conditions(
    const confsim::ParticipantRecord& rec, SessionAggregate agg) {
  return agg == SessionAggregate::kP95 ? rec.network.p95_conditions()
                                       : rec.network.mean_conditions();
}

}  // namespace

double EngagementCurve::relative_drop_percent() const {
  if (points.size() < 2) return 0.0;
  double best = 0.0;
  for (const CurvePoint& p : points) best = std::max(best, p.engagement);
  if (best <= 0.0) return 0.0;
  return 100.0 * (best - points.back().engagement) / best;
}

EngagementCurve EngagementCurve::normalized() const {
  EngagementCurve out = *this;
  double best = 0.0;
  for (const CurvePoint& p : out.points) best = std::max(best, p.engagement);
  if (best <= 0.0) return out;
  for (CurvePoint& p : out.points) p.engagement = 100.0 * p.engagement / best;
  return out;
}

int CorrelationEngine::packed_key(const core::Date& date,
                                  confsim::Platform platform) const {
  if (sharding_ == ShardingPolicy::kSingleShard) return 0;
  return month_key(date) * confsim::kNumPlatforms + static_cast<int>(platform);
}

void CorrelationEngine::set_telemetry(core::telemetry::Registry* registry,
                                      std::string_view corpus) {
  if (registry == nullptr) {
    ingest_tel_ = {};
    return;
  }
  const std::string corpus_label{corpus};
  const auto phase = [&](const char* name) {
    return registry->histogram(
        "usaas_ingest_batch_seconds",
        "Per-batch ingest phase durations (two-pass counted pipeline)",
        {{"corpus", corpus_label}, {"phase", name}});
  };
  ingest_tel_ = {phase("count"), phase("plan"), phase("scatter"),
                 phase("summarize"), phase("total")};
}

CorrelationEngine::SessionShard& CorrelationEngine::shard_for_key(int key) {
  const auto [it, inserted] = shard_index_.try_emplace(key, shards_.size());
  if (inserted) {
    // Unpack with floored semantics so pre-epoch month keys (negative)
    // still round-trip; under kSingleShard the key is the constant 0.
    const int platform_idx =
        ((key % confsim::kNumPlatforms) + confsim::kNumPlatforms) %
        confsim::kNumPlatforms;
    SessionShard shard;
    shard.month_key = (key - platform_idx) / confsim::kNumPlatforms;
    shard.platform = static_cast<confsim::Platform>(platform_idx);
    if (summary_cfg_) shard.summary = ShardSummary{*summary_cfg_};
    shards_.push_back(std::move(shard));
  }
  return shards_[it->second];
}

CorrelationEngine::SessionShard& CorrelationEngine::shard_for(
    const core::Date& date, confsim::Platform platform) {
  return shard_for_key(packed_key(date, platform));
}

void CorrelationEngine::append(SessionShard& shard, const core::Date& date,
                               const confsim::ParticipantRecord& rec) {
  shard.dates.push_back(date);
  shard.records.push_back(rec);
  shard.summary.fold(rec);
}

void CorrelationEngine::ingest(const confsim::CallRecord& call) {
  predicted_fresh_ = false;
  for (const auto& p : call.participants) {
    append(shard_for(call.start.date, p.platform), call.start.date, p);
  }
  ingest_stats_.records += call.participants.size();
  ingest_stats_.bytes_moved +=
      call.participants.size() *
      (sizeof(confsim::ParticipantRecord) + sizeof(core::Date));
}

void CorrelationEngine::ingest(std::span<const confsim::CallRecord> calls) {
  if (calls.empty()) return;
  if (calls.size() == 1) {  // the two-pass machinery isn't worth one call
    ingest(calls.front());
    return;
  }
  predicted_fresh_ = false;
  const auto t0 = std::chrono::steady_clock::now();

  // Contiguous in-order call chunks. Fan-out is capped by the pool's
  // *effective* parallelism (1 on a single-core host, where both passes
  // then run inline with a single chunk) and floored by a grain so chunks
  // stay large enough to amortize their counting structures.
  constexpr std::size_t kGrainCalls = 64;
  const std::size_t chunks =
      std::min({calls.size(), core::effective_parallelism(pool_) * 4,
                std::max<std::size_t>(1, calls.size() / kGrainCalls)});
  const auto chunk_begin = [&](std::size_t c) {
    return c * calls.size() / chunks;
  };

  // ---- Pass 1: per-chunk x per-shard-key record counts, in parallel,
  // over a flat dense key index (no node-based map in the inner loop).
  std::vector<core::DenseKeyCounts> counts(chunks);
  core::parallel_for(pool_, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      core::DenseKeyCounts& local = counts[c];
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const core::Date date = calls[i].start.date;
        for (const auto& p : calls[i].participants) {
          local.add(packed_key(date, p.platform));
        }
      }
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  // ---- Prefix-sum the counts into a scatter plan and pre-reserve every
  // destination shard's contiguous slice for this batch.
  const core::ScatterPlan plan = core::build_scatter_plan(counts);
  IngestStats batch;
  batch.batches = 1;
  if (plan.num_keys == 0) {  // every call in the batch was empty
    batch.total_seconds = seconds_between(t0, t1);
    batch.count_seconds = batch.total_seconds;
    ingest_stats_.merge(batch);
    return;
  }
  // Create shards first (growing shards_ may move SessionShard objects),
  // then size them and capture stable slice pointers into their buffers.
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    if (plan.totals[k] > 0) shard_for_key(plan.min_key + static_cast<int>(k));
  }
  struct Slice {
    confsim::ParticipantRecord* records{nullptr};
    core::Date* dates{nullptr};
    SessionShard* shard{nullptr};  // stable: shards_ stops growing above
  };
  std::vector<Slice> slices(plan.num_keys);
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    if (plan.totals[k] == 0) continue;
    SessionShard& shard = shard_for_key(plan.min_key + static_cast<int>(k));
    const std::size_t base = shard.records.size();
    shard.records.resize(base + plan.totals[k]);
    shard.dates.resize(base + plan.totals[k]);
    slices[k] = {shard.records.data() + base, shard.dates.data() + base,
                 &shard};
    batch.records += plan.totals[k];
    ++batch.shards_touched;
  }
  const auto t2 = std::chrono::steady_clock::now();

  // ---- Pass 2: copy each record into its final slot, in parallel. A
  // chunk's cursor row starts at the prefix-sum offsets, so slot order is
  // (chunk index, in-chunk order) == sequential ingest order, and chunks
  // write disjoint slot ranges (no synchronization, no merge step).
  core::parallel_for(pool_, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      std::vector<std::size_t> cursor = plan.chunk_cursor(c);
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const core::Date date = calls[i].start.date;
        for (const auto& p : calls[i].participants) {
          const auto k = static_cast<std::size_t>(
              packed_key(date, p.platform) - plan.min_key);
          const std::size_t slot = cursor[k]++;
          slices[k].records[slot] = p;
          slices[k].dates[slot] = date;
        }
      }
    }
  });
  const auto t3 = std::chrono::steady_clock::now();

  // ---- Pass 3 (summaries on): fold each shard's new slice into its
  // summary, in slot order == sequential ingest order. Shards are
  // disjoint, so the fold parallelizes over keys with no synchronization.
  if (summary_cfg_) {
    core::parallel_for(
        pool_, plan.num_keys, [&](std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) {
            if (plan.totals[k] == 0) continue;
            ShardSummary& summary = slices[k].shard->summary;
            for (std::size_t i = 0; i < plan.totals[k]; ++i) {
              summary.fold(slices[k].records[i]);
            }
          }
        });
  }
  const auto t4 = std::chrono::steady_clock::now();

  batch.bytes_moved =
      batch.records *
      (sizeof(confsim::ParticipantRecord) + sizeof(core::Date));
  batch.count_seconds = seconds_between(t0, t1);
  batch.plan_seconds = seconds_between(t1, t2);
  batch.scatter_seconds = seconds_between(t2, t3);
  batch.summarize_seconds = seconds_between(t3, t4);
  batch.total_seconds = seconds_between(t0, t4);
  ingest_stats_.merge(batch);
  // Telemetry reuses the timestamps already taken for IngestStats — the
  // instrumented path adds atomic observes, not extra clock reads.
  ingest_tel_.count.observe(batch.count_seconds);
  ingest_tel_.plan.observe(batch.plan_seconds);
  ingest_tel_.scatter.observe(batch.scatter_seconds);
  ingest_tel_.summarize.observe(batch.summarize_seconds);
  ingest_tel_.total.observe(batch.total_seconds);
}

std::size_t CorrelationEngine::session_count() const {
  std::size_t n = 0;
  for (const SessionShard& s : shards_) n += s.records.size();
  return n;
}

void CorrelationEngine::configure_summaries(SummaryConfig config) {
  if (session_count() != 0) {
    throw std::logic_error(
        "CorrelationEngine::configure_summaries: corpus is not empty; "
        "summaries folded from a partial corpus would under-count");
  }
  // Validates the layout eagerly (Binner1D/Grid2D reject bad extents).
  [[maybe_unused]] const ShardSummary probe{config};
  summary_cfg_ = std::move(config);
  for (SessionShard& shard : shards_) shard.summary = ShardSummary{*summary_cfg_};
}

std::size_t CorrelationEngine::summary_memory_bytes() const {
  std::size_t bytes = 0;
  for (const SessionShard& s : shards_) bytes += s.summary.memory_bytes();
  return bytes;
}

void CorrelationEngine::refresh_predicted_tallies(
    const std::function<double(const confsim::ParticipantRecord&)>&
        predictor) {
  if (!summary_cfg_) return;
  core::parallel_for(pool_, shards_.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      shards_[i].summary.refresh_predicted(shards_[i].records, predictor);
    }
  });
  predicted_fresh_ = static_cast<bool>(predictor);
}

std::vector<CorrelationEngine::SelectedShard> CorrelationEngine::select_shards(
    const ShardSelector& selector) const {
  std::vector<SelectedShard> out;
  out.reserve(shards_.size());
  for (const auto& [key, idx] : shard_index_) {
    const SessionShard& shard = shards_[idx];
    SelectedShard sel;
    sel.shard = &shard;
    if (sharding_ == ShardingPolicy::kSingleShard) {
      sel.check_dates = selector.first.has_value() || selector.last.has_value();
      sel.check_platform = selector.platform.has_value();
    } else {
      if (selector.platform && shard.platform != *selector.platform) continue;
      if (selector.first && shard.month_key < month_key(*selector.first)) {
        continue;
      }
      if (selector.last && shard.month_key > month_key(*selector.last)) {
        continue;
      }
      // Only window-boundary months whose boundary actually cuts into the
      // month still need per-record date checks: a window starting on the
      // 1st (or ending on the last day) covers its boundary month whole,
      // so the shard stays summary-answerable.
      const bool first_cuts =
          selector.first && month_key(*selector.first) == shard.month_key &&
          selector.first->day() > 1;
      const bool last_cuts =
          selector.last && month_key(*selector.last) == shard.month_key &&
          selector.last->day() <
              core::Date::days_in_month(selector.last->year(),
                                        selector.last->month());
      sel.check_dates = first_cuts || last_cuts;
    }
    out.push_back(sel);
  }
  return out;
}

bool CorrelationEngine::record_matches(const SelectedShard& sel,
                                       const core::Date& date,
                                       const confsim::ParticipantRecord& rec,
                                       const ShardSelector& selector) {
  if (sel.check_dates) {
    if (selector.first && date < *selector.first) return false;
    if (selector.last && *selector.last < date) return false;
  }
  if (sel.check_platform && rec.platform != *selector.platform) return false;
  if (selector.access && rec.access != *selector.access) return false;
  return true;
}

EngagementCurve CorrelationEngine::engagement_curve(
    const SweepSpec& spec, EngagementMetric engagement,
    const ParticipantFilter& filter, const ShardSelector& selector,
    QueryFanoutStats* fanout) const {
  const auto selected = select_shards(selector);
  // Summary fast path: the query shape must match a precomputed axis
  // exactly (metric/lo/hi/bins, mean aggregate, no confounder filter, no
  // opaque row filter) — then each shard whose pruning is fully
  // discharged at the shard level merges its summary binner instead of
  // rescanning records. Boundary shards still scan.
  std::optional<std::size_t> axis;
  if (summary_cfg_ && !filter && !spec.control_others &&
      spec.aggregate == SessionAggregate::kMean) {
    const SummaryAxis wanted{spec.metric, spec.lo, spec.hi, spec.bins};
    for (std::size_t a = 0; a < summary_cfg_->axes.size(); ++a) {
      if (summary_cfg_->axes[a] == wanted) {
        axis = a;
        break;
      }
    }
  }
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const SelectedShard& sel = selected[i];
    use_summary[i] = axis && !sel.check_dates && !sel.check_platform &&
                     sel.shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_fanout(n_summary, selected.size() - n_summary, fanout);

  std::vector<core::Binner1D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(spec.lo, spec.hi, spec.bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      core::Binner1D& binner = partials[i];
      if (use_summary[i]) {
        sel.shard->summary.add_curve_to(binner, *axis, engagement,
                                        selector.access);
        continue;
      }
      const auto& records = sel.shard->records;
      for (std::size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        if (!record_matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        const netsim::NetworkConditions c =
            aggregate_conditions(rec, spec.aggregate);
        if (spec.control_others &&
            !netsim::others_in_control(c, spec.metric, spec.control)) {
          continue;
        }
        binner.add(netsim::metric_value(c, spec.metric),
                   engagement_value(rec, engagement));
      }
    }
  });
  core::Binner1D total{spec.lo, spec.hi, spec.bins};
  for (const core::Binner1D& p : partials) total.merge(p);

  EngagementCurve curve;
  curve.network_metric = spec.metric;
  curve.engagement_metric = engagement;
  for (const core::Bin& b : total.bins()) {
    curve.points.push_back({b.center(), b.mean_y, b.count});
  }
  return curve;
}

std::vector<CurvePoint> CorrelationEngine::dropoff_curve(
    const SweepSpec& spec, const ParticipantFilter& filter,
    const ShardSelector& selector) const {
  const auto selected = select_shards(selector);
  std::vector<core::Binner1D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(spec.lo, spec.hi, spec.bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      core::Binner1D& binner = partials[i];
      const auto& records = sel.shard->records;
      for (std::size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        if (!record_matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        const netsim::NetworkConditions c =
            aggregate_conditions(rec, spec.aggregate);
        if (spec.control_others &&
            !netsim::others_in_control(c, spec.metric, spec.control)) {
          continue;
        }
        binner.add(netsim::metric_value(c, spec.metric),
                   rec.dropped_early ? 1.0 : 0.0);
      }
    }
  });
  core::Binner1D total{spec.lo, spec.hi, spec.bins};
  for (const core::Binner1D& p : partials) total.merge(p);

  std::vector<CurvePoint> out;
  for (const core::Bin& b : total.bins()) {
    out.push_back({b.center(), b.mean_y, b.count});
  }
  return out;
}

core::Grid2D CorrelationEngine::compounding_grid(EngagementMetric engagement,
                                                 double latency_hi_ms,
                                                 std::size_t lat_bins,
                                                 double loss_hi_pct,
                                                 std::size_t loss_bins) const {
  const auto selected = select_shards({});
  // Summary fast path: when the requested grid layout matches the
  // configured one, merge each shard's precomputed grid (same per-record
  // add sequence as the scan — bit-identical).
  const SummaryGrid wanted{latency_hi_ms, lat_bins, loss_hi_pct, loss_bins};
  const bool summary_capable =
      summary_cfg_.has_value() && wanted == summary_cfg_->grid;
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    use_summary[i] = summary_capable && selected[i].shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_fanout(n_summary, selected.size() - n_summary, nullptr);
  std::vector<core::Grid2D> partials;
  partials.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    partials.emplace_back(0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct,
                          loss_bins);
  }
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      core::Grid2D& grid = partials[i];
      if (use_summary[i] &&
          selected[i].shard->summary.add_grid_to(grid, engagement, wanted)) {
        continue;
      }
      for (const auto& rec : selected[i].shard->records) {
        const netsim::NetworkConditions c = rec.network.mean_conditions();
        grid.add(c.latency.ms(), c.loss.percent(),
                 engagement_value(rec, engagement));
      }
    }
  });
  core::Grid2D total{0.0, latency_hi_ms, lat_bins, 0.0, loss_hi_pct,
                     loss_bins};
  for (const core::Grid2D& p : partials) total.merge(p);
  return total;
}

std::optional<CorrelationEngine::MosCorrelation>
CorrelationEngine::mos_correlation(EngagementMetric engagement,
                                   std::size_t min_samples,
                                   QueryFanoutStats* fanout) const {
  const auto selected = select_shards({});
  struct Rated {
    std::vector<double> eng;
    std::vector<double> mos;
  };
  std::vector<Rated> partials(selected.size());
  // Summary fast path: each summary keeps its shard's rated sessions as
  // (engagement, MOS) samples in ingest order — the gather below replays
  // the scan's exact sequence, so downstream stats are bit-identical.
  const auto eng_idx = static_cast<std::size_t>(engagement);
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    use_summary[i] = summary_cfg_.has_value() &&
                     selected[i].shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_fanout(n_summary, selected.size() - n_summary, fanout);
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Rated& part = partials[i];
      if (use_summary[i]) {
        for (const RatedSample& s : selected[i].shard->summary.rated()) {
          part.eng.push_back(s.engagement[eng_idx]);
          part.mos.push_back(s.mos);
        }
        continue;
      }
      for (const auto& rec : selected[i].shard->records) {
        if (!rec.mos) continue;
        part.eng.push_back(engagement_value(rec, engagement));
        part.mos.push_back(rec.mos->score());
      }
    }
  });
  std::vector<double> eng;
  std::vector<double> mos;
  for (const Rated& part : partials) {
    eng.insert(eng.end(), part.eng.begin(), part.eng.end());
    mos.insert(mos.end(), part.mos.begin(), part.mos.end());
  }
  if (eng.size() < min_samples) return std::nullopt;

  MosCorrelation out;
  out.rated_sessions = eng.size();
  out.pearson = core::pearson(eng, mos);
  out.spearman = core::spearman(eng, mos);

  // Decile curve: mean MOS per engagement decile. Ties are broken on the
  // (engagement, MOS) value pair so the sorted sequence — and hence every
  // decile sum — is a function of the sample multiset alone, identical
  // across shard layouts and thread counts.
  std::vector<std::size_t> order(eng.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (eng[a] != eng[b]) return eng[a] < eng[b];
    return mos[a] < mos[b];
  });
  const std::size_t deciles = 10;
  for (std::size_t dec = 0; dec < deciles; ++dec) {
    const std::size_t lo = dec * order.size() / deciles;
    const std::size_t hi = (dec + 1) * order.size() / deciles;
    if (hi <= lo) continue;
    double eng_acc = 0.0;
    double mos_acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      eng_acc += eng[order[i]];
      mos_acc += mos[order[i]];
    }
    const auto n = static_cast<double>(hi - lo);
    out.decile_curve.push_back({eng_acc / n, mos_acc / n, hi - lo});
  }
  return out;
}

CorrelationEngine::Tally CorrelationEngine::tally(
    const ParticipantFilter& filter, const ShardSelector& selector,
    const std::function<double(const confsim::ParticipantRecord&)>& predictor,
    QueryFanoutStats* fanout) const {
  const auto selected = select_shards(selector);
  // Summary fast path: counts and MOS sums live pre-accumulated per shard
  // (whole-shard and per-access buckets, both in ingest order — identical
  // add sequence to the scan). Predicted sums are only usable while
  // they're fresh for the caller's predictor (refresh_predicted_tallies).
  const bool summary_capable =
      summary_cfg_.has_value() && !filter && (!predictor || predicted_fresh_);
  std::vector<char> use_summary(selected.size(), 0);
  std::uint64_t n_summary = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const SelectedShard& sel = selected[i];
    use_summary[i] = summary_capable && !sel.check_dates &&
                     !sel.check_platform && sel.shard->summary.enabled();
    n_summary += use_summary[i] ? 1 : 0;
  }
  note_fanout(n_summary, selected.size() - n_summary, fanout);
  std::vector<Tally> partials(selected.size());
  core::parallel_for(pool_, selected.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SelectedShard& sel = selected[i];
      Tally& part = partials[i];
      if (use_summary[i]) {
        const SummaryTally& st = sel.shard->summary.tally(selector.access);
        part.sessions += st.sessions;
        part.rated += st.rated;
        part.observed_mos_sum += st.observed_mos_sum;
        if (predictor) {
          part.predicted_mos_sum += st.predicted_mos_sum;
          part.predicted += st.predicted;
        }
        continue;
      }
      const auto& records = sel.shard->records;
      for (std::size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        if (!record_matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        ++part.sessions;
        if (rec.mos) {
          part.observed_mos_sum += rec.mos->score();
          ++part.rated;
        }
        if (predictor) {
          part.predicted_mos_sum += predictor(rec);
          ++part.predicted;
        }
      }
    }
  });
  Tally total;
  for (const Tally& part : partials) {
    total.sessions += part.sessions;
    total.rated += part.rated;
    total.observed_mos_sum += part.observed_mos_sum;
    total.predicted_mos_sum += part.predicted_mos_sum;
    total.predicted += part.predicted;
  }
  return total;
}

std::vector<confsim::ParticipantRecord> CorrelationEngine::sessions() const {
  std::vector<confsim::ParticipantRecord> out;
  out.reserve(session_count());
  for (const auto& [key, idx] : shard_index_) {
    const SessionShard& shard = shards_[idx];
    out.insert(out.end(), shard.records.begin(), shard.records.end());
  }
  return out;
}

std::vector<confsim::ParticipantRecord>
CorrelationEngine::rated_sessions_canonical() const {
  std::vector<confsim::ParticipantRecord> out;
  if (sharding_ == ShardingPolicy::kMonthPlatform) {
    for (const auto& [key, idx] : shard_index_) {
      for (const auto& rec : shards_[idx].records) {
        if (rec.mos) out.push_back(rec);
      }
    }
    return out;
  }
  // Flat layout: stable-sort rated records into the same (month, platform,
  // ingest) order the sharded layout yields naturally.
  struct Keyed {
    int month_key;
    int platform;
    std::size_t seq;
  };
  std::vector<Keyed> keys;
  for (const SessionShard& shard : shards_) {
    for (std::size_t r = 0; r < shard.records.size(); ++r) {
      if (!shard.records[r].mos) continue;
      keys.push_back({month_key(shard.dates[r]),
                      static_cast<int>(shard.records[r].platform), r});
    }
  }
  std::stable_sort(keys.begin(), keys.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.month_key != b.month_key) {
                       return a.month_key < b.month_key;
                     }
                     return a.platform < b.platform;
                   });
  out.reserve(keys.size());
  for (const Keyed& k : keys) {
    // All rated records live in the single flat shard under this policy.
    out.push_back(shards_.front().records[k.seq]);
  }
  return out;
}

}  // namespace usaas::service
