// Outage detection from keyword-gated negative threads: the Fig 6 pipeline.
//
// §4.1: filter threads containing outage-dictionary keywords, count daily
// keyword occurrences, and "these occurrences are only counted if the user
// sentiment attached to them was negative to avoid false positives."
// Spikes above a robust baseline are flagged; large spikes correspond to
// the publicly reported outages, the numerous short ones to unreported
// transients — the coverage gap USaaS exists to close.
#pragma once

#include <span>
#include <vector>

#include "core/date.h"
#include "core/peaks.h"
#include "core/timeseries.h"
#include "leo/outages.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "social/post.h"

namespace usaas::service {

struct OutageDetectorConfig {
  /// Gate keyword counting on negative sentiment (the paper's false-
  /// positive control; the ablation bench turns this off).
  bool require_negative_sentiment{true};
  /// A thread is "negative" when negative score exceeds this (the strong
  /// threshold is deliberately not required — grumbling counts).
  double negative_gate{0.4};
  /// Spike classification.
  core::RobustPeakParams peak_params{.window = 31, .z_threshold = 3.0,
                                     .min_value = 6.0};
  /// A spike is "major" (reported-outage scale) when BOTH its robust
  /// z-score and its absolute keyword count are large; the count floor
  /// keeps quiet-baseline transients from being promoted on z alone.
  double major_z{12.0};
  double major_min_count{60.0};
};

struct DetectedOutage {
  core::Date date;
  double keyword_count{0.0};
  double z_score{0.0};
  bool major{false};
};

/// Precision/recall of detection against the simulator's ground truth.
struct DetectionQuality {
  std::size_t true_positives{0};
  std::size_t false_positives{0};
  std::size_t false_negatives{0};

  [[nodiscard]] double precision() const {
    const auto d = true_positives + false_positives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
  [[nodiscard]] double recall() const {
    const auto d = true_positives + false_negatives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
};

class OutageDetector {
 public:
  OutageDetector(const nlp::SentimentAnalyzer& analyzer,
                 const nlp::KeywordDictionary& dictionary,
                 OutageDetectorConfig config = {});

  /// The Fig 6 series: day-wise outage-keyword occurrences in (negative)
  /// threads.
  [[nodiscard]] core::DailySeries keyword_series(
      std::span<const social::Post> posts, core::Date first,
      core::Date last) const;

  /// Full detection: series -> robust spikes -> major/transient split.
  [[nodiscard]] std::vector<DetectedOutage> detect(
      std::span<const social::Post> posts, core::Date first,
      core::Date last) const;

  /// Scores detections against ground-truth outage days (severity above
  /// `severity_threshold`). A detection within `slack_days` of a true
  /// outage day counts as hit.
  [[nodiscard]] static DetectionQuality evaluate(
      std::span<const DetectedOutage> detections,
      std::span<const core::Date> truth_days, int slack_days = 1);

 private:
  const nlp::SentimentAnalyzer* analyzer_;     // non-owning
  const nlp::KeywordDictionary* dictionary_;   // non-owning
  OutageDetectorConfig config_;
};

}  // namespace usaas::service
