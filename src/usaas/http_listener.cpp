#include "usaas/http_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/date.h"
#include "core/telemetry/debug_exposition.h"

namespace usaas::service {

namespace {

/// Matches `value` against to_string() over an enum's value range;
/// nullopt when nothing matches. Keeps the wire names and the telemetry
/// label names the same strings by construction.
template <typename Enum>
[[nodiscard]] std::optional<Enum> parse_enum(std::string_view value,
                                             int count) {
  for (int i = 0; i < count; ++i) {
    const Enum e = static_cast<Enum>(i);
    if (value == to_string(e)) return e;
  }
  return std::nullopt;
}

[[nodiscard]] bool parse_date(const std::string& value, core::Date& out,
                              std::string& error) {
  int y = 0;
  int m = 0;
  int d = 0;
  char tail = '\0';
  if (std::sscanf(value.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail) != 3 ||
      m < 1 || m > 12 || d < 1 || d > core::Date::days_in_month(y, m)) {
    error = "bad date (want YYYY-MM-DD): " + value;
    return false;
  }
  out = core::Date{y, m, d};
  return true;
}

[[nodiscard]] bool parse_double(const std::string& value, double& out,
                                std::string& error) {
  char* end = nullptr;
  out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(out)) {
    error = "bad number: " + value;
    return false;
  }
  return true;
}

/// One key=value of either wire spelling, applied to the WireRequest.
/// Strict: unknown keys are an error, so a client typo'ing "buget_ms"
/// gets a 400 instead of a silently unbounded wait.
[[nodiscard]] bool apply_field(WireRequest& wr, std::string_view key,
                               const std::string& value,
                               std::string& error) {
  if (key == "tenant") {
    if (value.empty()) {
      error = "tenant must be non-empty";
      return false;
    }
    // Tenant names become telemetry label values and journal keys:
    // reject control bytes / non-ASCII / oversized names at the boundary
    // (a 400 beats a sanitized-but-colliding metric series).
    if (value.size() > core::telemetry::kMaxLabelValueBytes) {
      error = "tenant too long (max " +
              std::to_string(core::telemetry::kMaxLabelValueBytes) +
              " bytes)";
      return false;
    }
    for (const char c : value) {
      const auto u = static_cast<unsigned char>(c);
      if (u < 0x20 || u > 0x7e) {
        error = "tenant must be printable ASCII";
        return false;
      }
    }
    wr.tenant = value;
    return true;
  }
  if (key == "first") return parse_date(value, wr.query.first, error);
  if (key == "last") return parse_date(value, wr.query.last, error);
  if (key == "metric") {
    if (const auto m = parse_enum<netsim::Metric>(value, 4)) {
      wr.query.metric = *m;
      return true;
    }
    error = "unknown metric: " + value;
    return false;
  }
  if (key == "platform") {
    if (const auto p =
            parse_enum<confsim::Platform>(value, confsim::kNumPlatforms)) {
      wr.query.platform = *p;
      return true;
    }
    error = "unknown platform: " + value;
    return false;
  }
  if (key == "access") {
    if (const auto a = parse_enum<netsim::AccessTechnology>(
            value, netsim::kNumAccessTechnologies)) {
      wr.query.access = *a;
      return true;
    }
    error = "unknown access technology: " + value;
    return false;
  }
  if (key == "lo") return parse_double(value, wr.query.metric_lo, error);
  if (key == "hi") return parse_double(value, wr.query.metric_hi, error);
  if (key == "bins") {
    char* end = nullptr;
    const unsigned long bins = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      error = "bad bins: " + value;
      return false;
    }
    wr.query.bins = static_cast<std::size_t>(bins);
    return true;
  }
  if (key == "budget_ms") {
    double ms = 0.0;
    if (!parse_double(value, ms, error)) return false;
    if (ms <= 0.0) {
      error = "budget_ms must be positive";
      return false;
    }
    wr.budget_seconds = ms / 1000.0;
    return true;
  }
  error = "unknown key: " + std::string{key};
  return false;
}

/// Escapes `"`, `\` and control bytes so client-controlled strings
/// (tenant names, parser error text echoing the request) cannot break
/// the JSON framing of a response body.
[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Decodes %xx escapes and '+' (the form spelling of space) in one
/// query-string token. False (with a reason) on a malformed escape.
[[nodiscard]] bool url_decode(std::string_view in, std::string& out,
                              std::string& error) {
  const auto hex = [](char h) -> int {
    if (h >= '0' && h <= '9') return h - '0';
    if (h >= 'a' && h <= 'f') return h - 'a' + 10;
    if (h >= 'A' && h <= 'F') return h - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= in.size()) {
        error = "truncated %-escape in: " + std::string{in};
        return false;
      }
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi < 0 || lo < 0) {
        error = "bad %-escape in: " + std::string{in};
        return false;
      }
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return true;
}

[[nodiscard]] std::string_view skip_ws(std::string_view s) {
  while (!s.empty() &&
         (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' ||
          s.front() == '\r')) {
    s.remove_prefix(1);
  }
  return s;
}

constexpr const char* kStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
  }
  return "Unknown";
}

[[nodiscard]] std::string build_response(int status,
                                         std::string_view content_type,
                                         std::string_view body,
                                         int retry_after_seconds = 0,
                                         std::string_view extra_header = {}) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    kStatusText(status) + "\r\n";
  out += "Content-Type: " + std::string{content_type} + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (retry_after_seconds > 0) {
    out += "Retry-After: " + std::to_string(retry_after_seconds) + "\r\n";
  }
  if (!extra_header.empty()) {
    out += extra_header;
    out += "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// Adopts the client's X-Request-Id as this request's trace ID: 1-16 hex
/// digits parse verbatim (so a caller can grep its own ID in
/// /debug/traces), anything else non-empty is FNV-1a-hashed to a stable
/// 64-bit ID. 0 = header absent/empty; the scheduler mints one.
[[nodiscard]] std::uint64_t extract_request_id(std::string_view raw) {
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string_view::npos) return 0;
  const std::string_view headers = raw.substr(0, header_end);
  constexpr std::string_view kName = "x-request-id:";
  std::size_t line = headers.find("\r\n");
  std::string_view value;
  while (line != std::string_view::npos && line + 2 < headers.size()) {
    const std::size_t start = line + 2;
    const std::size_t end = headers.find("\r\n", start);
    const std::string_view hl = headers.substr(
        start,
        end == std::string_view::npos ? headers.size() - start : end - start);
    if (hl.size() > kName.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kName.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(hl[i])) != kName[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        value = hl.substr(kName.size());
        break;
      }
    }
    line = end;
  }
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  if (value.empty()) return 0;
  if (value.size() <= 16) {
    std::uint64_t id = 0;
    bool all_hex = true;
    for (const char c : value) {
      int digit = -1;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else { all_hex = false; break; }
      id = (id << 4) | static_cast<std::uint64_t>(digit);
    }
    if (all_hex && id != 0) return id;
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : value) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

/// Renders the /query answer. Deliberately flat and small: the tenant's
/// dashboard wants the aggregates and the honesty stamps (staleness,
/// served_by, wait), not the full curve payload — that stays in-process.
[[nodiscard]] std::string insight_json(const ScheduledResult& result,
                                       const std::string& tenant) {
  char buf[512];
  std::string out = "{";
  const auto add = [&out](const std::string& piece) {
    if (out.size() > 1) out += ',';
    out += piece;
  };
  add("\"outcome\":\"" + std::string{to_string(result.outcome)} + "\"");
  add("\"tenant\":\"" + json_escape(tenant) + "\"");
  const Insight& in = result.insight;
  std::snprintf(buf, sizeof buf,
                "\"staleness\":%llu,\"corpus_version\":%llu,"
                "\"sessions\":%zu,\"rated_sessions\":%zu,\"posts\":%zu",
                static_cast<unsigned long long>(in.staleness),
                static_cast<unsigned long long>(in.corpus_version),
                in.sessions, in.rated_sessions, in.posts);
  add(buf);
  std::snprintf(buf, sizeof buf, "\"strong_positive_share\":%.6g",
                in.strong_positive_share);
  add(buf);
  if (in.predicted_mean_mos) {
    std::snprintf(buf, sizeof buf, "\"predicted_mean_mos\":%.6g",
                  *in.predicted_mean_mos);
    add(buf);
  }
  if (in.observed_mean_mos) {
    std::snprintf(buf, sizeof buf, "\"observed_mean_mos\":%.6g",
                  *in.observed_mean_mos);
    add(buf);
  }
  add("\"served_by\":\"" + std::string{to_string(in.execution.served_by)} +
      "\"");
  std::snprintf(buf, sizeof buf, "\"wait_ms\":%.6g,\"cost_tokens\":%.6g",
                result.wait_seconds * 1e3, result.cost_tokens);
  add(buf);
  if (result.trace_id != 0) {
    std::snprintf(buf, sizeof buf, "\"trace_id\":\"%016llx\"",
                  static_cast<unsigned long long>(result.trace_id));
    add(buf);
  }
  out += '}';
  return out;
}

void set_socket_timeout(int fd, int option, std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

}  // namespace

std::optional<WireRequest> parse_query_string(std::string_view qs,
                                              std::string& error) {
  WireRequest wr;
  std::size_t pos = 0;
  while (pos < qs.size()) {
    const std::size_t amp = qs.find('&', pos);
    const std::string_view item = qs.substr(
        pos, amp == std::string_view::npos ? qs.size() - pos : amp - pos);
    pos = amp == std::string_view::npos ? qs.size() : amp + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      error = "missing '=' in: " + std::string{item};
      return std::nullopt;
    }
    // Standard clients URL-encode (tenant=a%20b, '+' for space): decode
    // both halves so the GET spelling accepts the same strings as the
    // JSON POST spelling.
    std::string key;
    std::string value;
    if (!url_decode(item.substr(0, eq), key, error) ||
        !url_decode(item.substr(eq + 1), value, error)) {
      return std::nullopt;
    }
    if (!apply_field(wr, key, value, error)) {
      return std::nullopt;
    }
  }
  return wr;
}

std::optional<WireRequest> parse_json_body(std::string_view body,
                                           std::string& error) {
  WireRequest wr;
  std::string_view s = skip_ws(body);
  if (s.empty() || s.front() != '{') {
    error = "body is not a JSON object";
    return std::nullopt;
  }
  s.remove_prefix(1);
  s = skip_ws(s);
  if (!s.empty() && s.front() == '}') s.remove_prefix(1);  // empty object
  else {
    for (;;) {
      s = skip_ws(s);
      if (s.empty() || s.front() != '"') {
        error = "expected a quoted key";
        return std::nullopt;
      }
      s.remove_prefix(1);
      const std::size_t key_end = s.find('"');
      if (key_end == std::string_view::npos) {
        error = "unterminated key";
        return std::nullopt;
      }
      const std::string_view key = s.substr(0, key_end);
      s.remove_prefix(key_end + 1);
      s = skip_ws(s);
      if (s.empty() || s.front() != ':') {
        error = "expected ':' after key";
        return std::nullopt;
      }
      s.remove_prefix(1);
      s = skip_ws(s);
      std::string value;
      if (!s.empty() && s.front() == '"') {
        s.remove_prefix(1);
        const std::size_t val_end = s.find('"');
        if (val_end == std::string_view::npos) {
          error = "unterminated string value";
          return std::nullopt;
        }
        value = std::string{s.substr(0, val_end)};
        s.remove_prefix(val_end + 1);
      } else {
        std::size_t val_end = 0;
        while (val_end < s.size() && s[val_end] != ',' &&
               s[val_end] != '}' && s[val_end] != ' ' &&
               s[val_end] != '\t' && s[val_end] != '\n' &&
               s[val_end] != '\r') {
          ++val_end;
        }
        if (val_end == 0) {
          error = "empty value";
          return std::nullopt;
        }
        value = std::string{s.substr(0, val_end)};
        s.remove_prefix(val_end);
      }
      if (!apply_field(wr, key, value, error)) return std::nullopt;
      s = skip_ws(s);
      if (!s.empty() && s.front() == ',') {
        s.remove_prefix(1);
        continue;
      }
      if (!s.empty() && s.front() == '}') {
        s.remove_prefix(1);
        break;
      }
      error = "expected ',' or '}'";
      return std::nullopt;
    }
  }
  if (!skip_ws(s).empty()) {
    error = "trailing garbage after the object";
    return std::nullopt;
  }
  return wr;
}

HttpListener::HttpListener(QueryScheduler& scheduler, QueryService& service,
                           HttpListenerConfig config)
    : scheduler_{scheduler}, service_{service}, config_{std::move(config)} {}

HttpListener::~HttpListener() { stop(); }

bool HttpListener::start() {
  if (running_.load()) return true;
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) return false;
  const int one = 1;
  (void)::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
          1 ||
      ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(lfd, 128) < 0) {
    ::close(lfd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(lfd, std::memory_order_release);
  running_.store(true);
  threads_exited_.store(0);
  acceptor_ = std::thread{[this] { accept_loop(); }};
  workers_.reserve(std::max<std::size_t>(1, config_.worker_threads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.worker_threads);
       ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

bool HttpListener::stop(std::chrono::milliseconds timeout) {
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd < 0 && workers_.empty()) return true;
  const auto t0 = std::chrono::steady_clock::now();
  running_.store(false);
  if (lfd >= 0) {
    // shutdown() kicks the acceptor out of a blocking accept(); the fd
    // is closed only after the threads are down, so the acceptor can
    // never race a reused descriptor.
    (void)::shutdown(lfd, SHUT_RDWR);
  }
  queue_cv_.notify_all();

  // The no-wedged-worker gate: every thread must reach its exit marker
  // within the timeout. Workers drain the pending queue before exiting
  // (each drained connection is handled normally, bounded by the read
  // timeout), so a clean shutdown leaves the ledger reconciling.
  const std::size_t total = workers_.size() + (acceptor_.joinable() ? 1 : 0);
  const auto deadline = t0 + timeout;
  bool clean = true;
  while (threads_exited_.load(std::memory_order_acquire) < total) {
    if (std::chrono::steady_clock::now() >= deadline) {
      clean = false;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
    queue_cv_.notify_all();
  }
  if (clean) {
    if (acceptor_.joinable()) acceptor_.join();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  } else {
    // A wedged thread: detach rather than hang the caller forever. The
    // harness treats a false return as a hard failure.
    if (acceptor_.joinable()) acceptor_.detach();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.detach();
    }
  }
  workers_.clear();
  if (lfd >= 0) (void)::close(lfd);
  {
    const std::lock_guard<std::mutex> lock{mu_};
    // Clean shutdowns leave nothing here (workers drain before exiting,
    // and the acceptor stops enqueueing once running_ is false); on an
    // unclean one, count the leftovers so the ledger still reconciles.
    for (const int fd : pending_) {
      ::close(fd);
      ++stats_.drained;
    }
    pending_.clear();
    stats_.shutdown_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return clean;
}

void HttpListener::accept_loop() {
  // The fd is fixed for the acceptor's whole lifetime; stop() retires
  // the member and shuts the socket down, which is what breaks accept().
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket gone
    }
    if (config_.fault != nullptr && config_.fault->fail_this_accept()) {
      // Injected transient accept failure: the connection existed just
      // long enough to be counted, then vanished — exactly what a
      // flaky accept() looks like to the peer.
      ::close(fd);
      const std::lock_guard<std::mutex> lock{mu_};
      ++stats_.accepted;
      ++stats_.accept_failures;
      continue;
    }
    bool saturated = false;
    bool drained = false;
    {
      const std::lock_guard<std::mutex> lock{mu_};
      ++stats_.accepted;
      if (!running_.load(std::memory_order_acquire)) {
        // stop() already flipped running_: the workers may have seen an
        // empty queue and exited, so enqueueing now could strand the fd
        // forever. Close it unanswered and account it as drained so the
        // ledger still reconciles exactly.
        ++stats_.drained;
        drained = true;
      } else if (pending_.size() >= config_.max_pending_connections) {
        ++stats_.saturated;
        saturated = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (drained) {
      ::close(fd);
      continue;
    }
    if (saturated) {
      // A backpressure episode is journal-worthy: operators replaying an
      // incident want "when did the queue fill" next to the breaker
      // flips it usually causes. No tenant is known at accept time.
      if (service_.journal().enabled()) {
        service_.journal().record(
            core::telemetry::JournalEventKind::kBackpressure, "", 0,
            scheduler_.clock().now(),
            static_cast<double>(config_.max_pending_connections),
            static_cast<double>(config_.max_pending_connections));
      }
      // Inline 503: honest and cheap. Don't let a stalled peer wedge
      // the acceptor — arm the write timeout first.
      set_socket_timeout(fd, SO_SNDTIMEO, config_.write_timeout);
      const std::string resp = build_response(
          503, "application/json",
          "{\"error\":\"saturated: request queue is full\"}", 1);
      (void)write_all(fd, resp);
      ::close(fd);
      continue;
    }
    queue_cv_.notify_one();
  }
  threads_exited_.fetch_add(1, std::memory_order_release);
}

void HttpListener::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock{mu_};
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) break;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
      ++stats_.handled;
    }
    handle_connection(fd);
  }
  threads_exited_.fetch_add(1, std::memory_order_release);
}

bool HttpListener::read_request(int fd, std::string& raw) {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.read_timeout;
  std::size_t header_end = std::string::npos;
  std::size_t needed = std::string::npos;
  char buf[4096];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    // The OVERALL deadline is what defeats slow-loris: a peer trickling
    // one byte per recv never resets it.
    if (remaining.count() <= 0) return false;
    set_socket_timeout(fd, SO_RCVTIMEO, remaining);
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return false;  // EOF before a complete request (partial)
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout or error
    }
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > config_.max_request_bytes) return false;
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
      std::size_t body_len = 0;
      // Case-insensitive Content-Length scan over the header block.
      std::string lower = raw.substr(0, header_end);
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      const std::size_t cl = lower.find("content-length:");
      if (cl != std::string::npos) {
        const char* p = lower.c_str() + cl + 15;
        while (*p == ' ' || *p == '\t') ++p;
        // Digits only: strtoull would happily wrap "-1" to 2^64-1.
        if (*p < '0' || *p > '9') return false;
        errno = 0;
        const unsigned long long v = std::strtoull(p, nullptr, 10);
        // Bound the length BEFORE any arithmetic: with both terms below
        // capped at max_request_bytes, `needed` cannot wrap, so a crafted
        // huge Content-Length can never truncate the request buffer.
        if (errno == ERANGE || v > config_.max_request_bytes) return false;
        body_len = static_cast<std::size_t>(v);
      }
      needed = header_end + 4 + body_len;
      if (needed > config_.max_request_bytes) return false;
    }
    if (needed != std::string::npos && raw.size() >= needed) {
      raw.resize(needed);
      return true;
    }
  }
}

bool HttpListener::write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer vanished (EPIPE/ECONNRESET) or send timeout
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void HttpListener::bump_status_locked(int status) {
  switch (status) {
    case 200: ++stats_.status_200; break;
    case 400: ++stats_.status_400; break;
    case 404: ++stats_.status_404; break;
    case 429: ++stats_.status_429; break;
    case 504: ++stats_.status_504; break;
    default: break;
  }
}

void HttpListener::handle_connection(int fd) {
  set_socket_timeout(fd, SO_SNDTIMEO, config_.write_timeout);
  std::string raw;
  if (!read_request(fd, raw)) {
    ::close(fd);
    const std::lock_guard<std::mutex> lock{mu_};
    ++stats_.read_failures;
    return;
  }

  // Request line: METHOD SP TARGET SP VERSION. read_request() only
  // returns true once "\r\n\r\n" is buffered, but never build a view
  // from npos — an empty line falls through to the 400 below.
  const std::size_t line_end = raw.find("\r\n");
  const std::string_view line =
      line_end == std::string::npos
          ? std::string_view{}
          : std::string_view{raw.data(), line_end};
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  std::string response;
  int status = 400;
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    response = build_response(400, "application/json",
                              "{\"error\":\"malformed request line\"}");
  } else {
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qmark = target.find('?');
    const std::string_view path = target.substr(0, qmark);
    const std::string_view query_string =
        qmark == std::string_view::npos ? std::string_view{}
                                        : target.substr(qmark + 1);
    // Fixed-interval telemetry history rides on request traffic: the
    // due-check is one relaxed atomic load, and a disabled history
    // performs no clock read at all.
    if (service_.history().enabled()) {
      service_.history().tick(scheduler_.clock().now());
    }
    if (path == "/metrics") {
      status = 200;
      response = build_response(200, "text/plain; version=0.0.4",
                                service_.metrics_text());
    } else if (path == "/metrics.json") {
      status = 200;
      response = build_response(200, "application/json",
                                service_.metrics_json());
    } else if (path == "/debug/traces") {
      status = 200;
      response = build_response(
          200, "application/json",
          core::telemetry::debug_traces_json(service_.tracer()));
    } else if (path == "/debug/events") {
      status = 200;
      response = build_response(
          200, "application/json",
          core::telemetry::debug_events_json(service_.journal()));
    } else if (path == "/debug/timeseries") {
      status = 200;
      response = build_response(
          200, "application/json",
          core::telemetry::debug_timeseries_json(service_.history()));
    } else if (path == "/query") {
      std::string error;
      std::optional<WireRequest> wire;
      if (method == "POST") {
        const std::size_t header_end = raw.find("\r\n\r\n");
        wire = parse_json_body(
            std::string_view{raw}.substr(header_end + 4), error);
      } else {
        wire = parse_query_string(query_string, error);
      }
      if (!wire) {
        status = 400;
        response = build_response(
            400, "application/json",
            "{\"error\":\"" + json_escape(error) + "\"}");
      } else {
        const double budget = wire->budget_seconds > 0.0
                                  ? wire->budget_seconds
                                  : config_.default_budget_seconds;
        // Adopt the caller's X-Request-Id as the trace ID (0 = absent:
        // the scheduler mints one). Gated on the tracer so the kill
        // switch also skips the header scan.
        const std::uint64_t wire_trace_id =
            service_.tracer().enabled() ? extract_request_id(raw) : 0;
        const ScheduledResult result = scheduler_.submit(
            wire->tenant, wire->query, budget, wire_trace_id);
        // Echo the request's trace ID so clients can correlate their
        // logs with /debug/traces without parsing the body.
        std::string trace_header;
        if (result.trace_id != 0) {
          char hex[40];
          std::snprintf(hex, sizeof hex, "X-Request-Id: %016llx",
                        static_cast<unsigned long long>(result.trace_id));
          trace_header = hex;
        }
        if ((result.outcome == AdmissionOutcome::kAdmitted ||
             result.outcome == AdmissionOutcome::kDegraded) &&
            result.insight.error != QueryError::kNone) {
          // The scheduler admitted it but the query itself was invalid
          // (reversed window, empty range, ...): the client's fault.
          status = 400;
          response = build_response(
              400, "application/json",
              std::string{"{\"error\":\"invalid query: "} +
                  to_string(result.insight.error) + "\"}",
              0, trace_header);
        } else {
          switch (result.outcome) {
            case AdmissionOutcome::kAdmitted:
            case AdmissionOutcome::kDegraded:
              status = 200;
              response = build_response(200, "application/json",
                                        insight_json(result, wire->tenant),
                                        0, trace_header);
              break;
            case AdmissionOutcome::kShed: {
              status = 429;
              // Retry-After is integral seconds; round up, floor at 1 —
              // "come back immediately" defeats the point of shedding.
              const int retry = std::max(
                  1, static_cast<int>(
                         std::ceil(result.retry_after_seconds)));
              response = build_response(
                  429, "application/json",
                  insight_json(result, wire->tenant), retry, trace_header);
              break;
            }
            case AdmissionOutcome::kExpired:
              status = 504;
              response = build_response(504, "application/json",
                                        insight_json(result, wire->tenant),
                                        0, trace_header);
              break;
          }
        }
      }
    } else {
      status = 404;
      response = build_response(404, "application/json",
                                "{\"error\":\"no such route\"}");
    }
  }

  const bool ok = write_all(fd, response);
  ::close(fd);
  const std::lock_guard<std::mutex> lock{mu_};
  if (ok) {
    ++stats_.responses_sent;
    bump_status_locked(status);
  } else {
    ++stats_.write_failures;
  }
}

HttpListenerStats HttpListener::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return stats_;
}

}  // namespace usaas::service
