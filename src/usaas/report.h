// The USaaS periodic report: what a subscribed operator actually receives.
//
// §5's service "collects user feedback, both online and offline, finds
// correlations, and shares useful user-centric insights back". This module
// composes the pipelines into one dated artifact per reporting window:
// sentiment balance and its week-over-week change, outage chatter and
// alert days, extracted speed-test medians, emerging topics, and an
// extractive summary of the loudest day — structured for machines,
// rendered for humans.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "leo/events.h"
#include "nlp/sentiment.h"
#include "nlp/trends.h"
#include "social/post.h"

namespace usaas::service {

struct WeeklyReport {
  core::Date week_start;   // inclusive
  core::Date week_end;     // inclusive
  std::size_t posts{0};
  // Sentiment balance.
  std::size_t strong_positive{0};
  std::size_t strong_negative{0};
  /// Pos share of strong posts; nullopt when no strong posts this week.
  std::optional<double> pos_share;
  /// Change vs the previous week's pos_share (when both exist).
  std::optional<double> pos_share_delta;
  // Outage chatter.
  double outage_keyword_count{0.0};
  std::vector<core::Date> alert_days;  // keyword spikes inside the week
  // Speed tests shared this week.
  std::size_t speedtest_reports{0};
  std::optional<double> median_downlink_mbps;
  // Topics that emerged this week (trend miner, scoped to the corpus).
  std::vector<std::string> emerging_topics;
  /// Extractive summary of the loudest (most-posted) day.
  std::string loudest_day_summary;
  core::Date loudest_day;

  /// Human-readable rendering (plain text, terminal friendly).
  [[nodiscard]] std::string render_text() const;
};

struct ReportConfig {
  /// A day inside the week is an alert day when its keyword count exceeds
  /// this multiple of the week's daily mean (and a minimum count).
  double alert_multiple{3.0};
  double alert_min_count{8.0};
  std::size_t max_emerging_topics{3};
  std::uint64_t ocr_seed{4242};
  /// Trend-miner settings; note its history_days warm-up — topics cannot
  /// emerge before the corpus has that much history.
  nlp::TrendMinerConfig trend{};
};

/// Generates the report for the week starting at `week_start` (7 days).
/// `corpus` must cover at least [week_start - 7, week_start + 6] for the
/// week-over-week delta and the trend baseline to make sense; posts
/// outside the window are used as history only.
[[nodiscard]] WeeklyReport generate_weekly_report(
    std::span<const social::Post> corpus, core::Date week_start,
    const nlp::SentimentAnalyzer& analyzer, const ReportConfig& config = {});

}  // namespace usaas::service
