// The unified user-signal model of USaaS (§5, Fig 8).
//
// Network changes produce implicit signals (in-session user actions),
// sampled explicit feedback (MOS), and offline explicit feedback (social
// posts). USaaS normalizes all three into UserSignal records that the
// query service can filter, correlate and aggregate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "confsim/call.h"
#include "core/date.h"
#include "core/units.h"

namespace usaas::service {

/// Which engagement action an implicit signal describes.
enum class EngagementMetric {
  kPresence,
  kCamOn,
  kMicOn,
};

inline constexpr int kNumEngagementMetrics = 3;

[[nodiscard]] constexpr const char* to_string(EngagementMetric m) {
  switch (m) {
    case EngagementMetric::kPresence: return "presence";
    case EngagementMetric::kCamOn: return "cam-on";
    case EngagementMetric::kMicOn: return "mic-on";
  }
  return "unknown";
}

/// Reads the engagement metric out of a participant record.
[[nodiscard]] constexpr double engagement_value(
    const confsim::ParticipantRecord& rec, EngagementMetric m) {
  switch (m) {
    case EngagementMetric::kPresence: return rec.presence_pct;
    case EngagementMetric::kCamOn: return rec.cam_on_pct;
    case EngagementMetric::kMicOn: return rec.mic_on_pct;
  }
  return 0.0;
}

/// An implicit signal: one user's in-session actions plus the network
/// context they happened under.
struct ImplicitSignal {
  core::Date date;
  confsim::Platform platform{confsim::Platform::kWindowsPc};
  netsim::NetworkConditions conditions;  // session means
  double presence_pct{0.0};
  double cam_on_pct{0.0};
  double mic_on_pct{0.0};
  bool dropped_early{false};
};

/// Sampled explicit in-app feedback.
struct MosSignal {
  core::Date date;
  core::Mos rating{core::Mos{3.0}};
  netsim::NetworkConditions conditions;
};

/// Offline explicit feedback (one social post, already sentiment-scored).
struct SocialSignal {
  core::Date date;
  double positive{0.0};
  double negative{0.0};
  double neutral{1.0};
  double popularity{0.0};
  bool mentions_outage{false};
  std::optional<double> reported_downlink_mbps;  // from an OCR'd screenshot
};

/// The normalized union USaaS stores.
using UserSignal = std::variant<ImplicitSignal, MosSignal, SocialSignal>;

/// Cumulative ingest-side counters for one corpus (sessions or posts),
/// maintained by the two-pass counted ingest pipeline. Phase timings
/// cover batch ingest only; the per-record convenience path adds to the
/// record/byte counters but not the phase clocks.
struct IngestStats {
  std::size_t batches{0};
  std::size_t records{0};
  /// Bytes copied into shard storage (records + per-record side arrays).
  std::size_t bytes_moved{0};
  /// Destination shards written to, summed over batches.
  std::size_t shards_touched{0};
  /// Pass 1: per-chunk x per-shard-key counting.
  double count_seconds{0.0};
  /// Prefix-sum over counts + pre-reserving the destination slices.
  double plan_seconds{0.0};
  /// Pass 2: scoring/partitioning records into their final slots (for
  /// posts this includes sentiment + keyword scoring, the dominant cost).
  double scatter_seconds{0.0};
  /// Pass 3 (when summaries are enabled): folding the batch's new records
  /// into their shards' mergeable summaries.
  double summarize_seconds{0.0};
  double total_seconds{0.0};

  [[nodiscard]] double records_per_second() const {
    return total_seconds > 0.0
               ? static_cast<double>(records) / total_seconds
               : 0.0;
  }
  void merge(const IngestStats& other) {
    batches += other.batches;
    records += other.records;
    bytes_moved += other.bytes_moved;
    shards_touched += other.shards_touched;
    count_seconds += other.count_seconds;
    plan_seconds += other.plan_seconds;
    scatter_seconds += other.scatter_seconds;
    summarize_seconds += other.summarize_seconds;
    total_seconds += other.total_seconds;
  }
};

/// One-line human-readable summary ("1.2M records, 240 MB moved, ...").
[[nodiscard]] std::string to_string(const IngestStats& stats);

/// Health of the streaming front-end, published by StreamIngestor into
/// QueryService::stats() so operators see staleness and degradation next
/// to the throughput counters. Units are *pushed records* (one CallRecord
/// or one Post; a call's participants flush together). `staged` is the
/// staleness figure: records accepted by the stream but not yet visible
/// to queries — queries keep answering from the last flushed snapshot.
struct StreamHealth {
  std::uint64_t accepted{0};        // pushed past validation into staging
  std::uint64_t staged{0};          // currently buffered, not yet flushed
  std::uint64_t flushed{0};         // reached the shard stores
  std::uint64_t quarantined{0};     // poison records dead-lettered
  std::uint64_t dropped{0};         // evicted by BackpressurePolicy::kDropOldest
  std::uint64_t rejected{0};        // refused by kReject / exhausted kBlock
  std::uint64_t flushes{0};         // successful flushes
  std::uint64_t flush_failures{0};  // failed flush attempts (injected/real)
  std::uint64_t flush_retries{0};   // re-attempts after a failed attempt
  std::uint64_t blocked_pushes{0};  // pushes that waited on kBlock
  std::uint64_t backoff_waits{0};   // individual flush-retry backoff sleeps
  /// True while the last flush round failed outright (retries exhausted):
  /// staged records are stuck and queries serve an increasingly stale
  /// snapshot until a later flush succeeds.
  bool degraded{false};
};

[[nodiscard]] inline core::Date signal_date(const UserSignal& s) {
  return std::visit([](const auto& v) { return v.date; }, s);
}

}  // namespace usaas::service

// Normalization: raw corpora -> UserSignal records (implemented in
// signals.cpp; declared outside the inline section to keep this header
// light).
namespace usaas::nlp {
class SentimentAnalyzer;
class KeywordDictionary;
}  // namespace usaas::nlp
namespace usaas::social {
struct Post;
}  // namespace usaas::social

namespace usaas::service {

/// Normalizes one call into its per-participant implicit signals, plus a
/// MosSignal for each rated session.
[[nodiscard]] std::vector<UserSignal> normalize_call(
    const confsim::CallRecord& call);

/// Normalizes one social post: sentiment-scores the text, flags outage
/// vocabulary, and OCR-extracts an attached speed-test screenshot when
/// present (deterministic for a given ocr_seed).
[[nodiscard]] UserSignal normalize_post(
    const social::Post& post, const nlp::SentimentAnalyzer& analyzer,
    const nlp::KeywordDictionary& outage_dictionary,
    std::uint64_t ocr_seed = 4242);

}  // namespace usaas::service
