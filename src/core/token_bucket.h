// A token bucket over an explicit seconds clock.
//
// The admission scheduler (usaas::service::QueryScheduler) keeps one per
// tenant: tokens accrue at `rate` per second up to `burst`, and each
// admitted query consumes its estimated cost. The bucket never reads a
// clock itself — callers pass "now" into refill() — so its behaviour is a
// pure function of the (now, consume) sequence and replays exactly under
// a virtual clock. Unsynchronized by design; the scheduler serializes
// access under its own mutex.
#pragma once

#include <algorithm>
#include <limits>

namespace usaas::core {

class TokenBucket {
 public:
  TokenBucket() = default;
  /// Starts full (a fresh tenant gets its whole burst).
  TokenBucket(double rate_per_sec, double burst, double now = 0.0)
      : rate_{rate_per_sec}, burst_{burst}, tokens_{burst}, last_{now} {}

  /// Accrues tokens for the time elapsed since the last refill. Monotone:
  /// an older timestamp (clock skew across callers) is ignored rather
  /// than minting negative time.
  void refill(double now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
    last_ = now;
  }

  /// Consumes `cost` tokens if available. No partial debits.
  [[nodiscard]] bool try_consume(double cost) {
    if (cost > tokens_) return false;
    tokens_ -= cost;
    return true;
  }

  /// Seconds of accrual until `cost` is affordable: 0 when it already is,
  /// +infinity when it never will be (cost beyond burst, or zero rate).
  [[nodiscard]] double seconds_until(double cost) const {
    if (cost <= tokens_) return 0.0;
    if (cost > burst_ || rate_ <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    return (cost - tokens_) / rate_;
  }

  [[nodiscard]] double tokens() const { return tokens_; }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  double rate_{1.0};
  double burst_{1.0};
  double tokens_{1.0};
  double last_{0.0};
};

}  // namespace usaas::core
