// Correlation measures for signal-vs-signal analysis.
//
// §3 of the paper rests entirely on correlations: network metrics against
// engagement metrics, and engagement against MOS ("Presence shows the
// strongest correlation with MOS", Fig 4). We provide Pearson (linear),
// Spearman (rank/monotone) and Kendall tau-b, since the engagement response
// curves are monotone but decidedly non-linear (the Mic On plateau).
#pragma once

#include <span>

namespace usaas::core {

/// Pearson product-moment correlation in [-1, 1].
/// Requires xs.size() == ys.size() and size >= 2; returns 0 when either
/// variable has zero variance (a constant signal carries no correlation).
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Spearman rank correlation (Pearson over average-tie ranks).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

/// Kendall tau-b (tie-corrected). O(n^2); fine for the binned-curve sizes
/// we feed it.
[[nodiscard]] double kendall_tau(std::span<const double> xs,
                                 std::span<const double> ys);

/// Covariance (population).
[[nodiscard]] double covariance(std::span<const double> xs,
                                std::span<const double> ys);

}  // namespace usaas::core
