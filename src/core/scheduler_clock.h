// The time source the admission path reads and waits on.
//
// Token-bucket refill and deadline math are pure functions of "seconds
// now"; the only reason admission behaviour could be nondeterministic is
// the clock itself. SchedulerClock narrows that dependency to two calls —
// now() and wait() — so the production scheduler runs on steady_clock
// while tests swap in VirtualClock, where wait() *advances* time instead
// of sleeping and every refill/deadline decision replays bit-identically.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace usaas::core {

/// Monotone seconds since an arbitrary epoch, plus the ability to wait.
class SchedulerClock {
 public:
  virtual ~SchedulerClock() = default;
  [[nodiscard]] virtual double now() = 0;
  /// Blocks the caller for `seconds` (a virtual clock advances instead).
  virtual void wait(double seconds) = 0;
  /// Interruptible wait for dispatchers parked on `cv`: blocks for up to
  /// `seconds` or until notified, whichever comes first. `lock` must be
  /// held on entry and is released while blocked. A virtual clock
  /// advances time and returns immediately — when the wait is
  /// instantaneous there is nothing to interrupt.
  virtual void wait_interruptible(std::condition_variable& cv,
                                  std::unique_lock<std::mutex>& lock,
                                  double seconds) {
    if (seconds > 0.0) {
      (void)cv.wait_for(lock, std::chrono::duration<double>(seconds));
    }
  }
};

/// Production clock: steady_clock reads, sleep_for waits.
class SteadyClock final : public SchedulerClock {
 public:
  [[nodiscard]] double now() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void wait(double seconds) override {
    if (seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }

 private:
  std::chrono::steady_clock::time_point start_{
      std::chrono::steady_clock::now()};
};

/// Deterministic test clock: time moves only when advanced. wait() is an
/// advance, so a scheduler blocking "for 0.25 s" completes instantly and
/// every subsequent refill sees exactly now + 0.25. Thread-safe.
class VirtualClock final : public SchedulerClock {
 public:
  [[nodiscard]] double now() override {
    const std::lock_guard<std::mutex> lock{mu_};
    return now_;
  }
  void wait(double seconds) override { advance(seconds); }
  void wait_interruptible(std::condition_variable& /*cv*/,
                          std::unique_lock<std::mutex>& lock,
                          double seconds) override {
    // Advancing is instantaneous, but release the caller's lock like a
    // real wait would so peers (new arrivals, depth() readers) can make
    // progress between dispatcher sweeps.
    lock.unlock();
    advance(seconds);
    lock.lock();
  }
  void advance(double seconds) {
    const std::lock_guard<std::mutex> lock{mu_};
    now_ += std::max(0.0, seconds);
  }

 private:
  mutable std::mutex mu_;
  double now_{0.0};
};

}  // namespace usaas::core
