#include "core/rng.h"

#include <cmath>
#include <numbers>

namespace usaas::core {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the current state with the salt through SplitMix64 so that children
  // with different salts are decorrelated, without advancing the parent.
  SplitMix64 sm{s_[0] ^ rotl(s_[2], 17) ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                0xd1b54a32d192ed03ULL};
  return Rng{sm.next()};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::int64_t n = 0;
    while (product > limit) {
      product *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("pareto: xm and alpha must be positive");
  }
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: weights sum to zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

}  // namespace usaas::core
