// Civil-date arithmetic for the simulation timeline.
//
// Both studies in the paper are organized around calendar time: the Teams
// dataset is filtered to weekday business hours (§3.1) and the Starlink
// analysis walks day-by-day from Jan 2021 to Dec 2022 (§4.1). Everything
// here is proleptic-Gregorian; the day-count algorithms follow Howard
// Hinnant's "chrono-compatible low-level date algorithms".
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace usaas::core {

/// Day of week, ISO numbering style but starting at Monday = 0 so that
/// `dow < 5` means "weekday".
enum class Weekday : int {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

[[nodiscard]] const char* to_string(Weekday d);

/// A calendar date (proleptic Gregorian). Value type, totally ordered.
class Date {
 public:
  /// Constructs 1970-01-01.
  constexpr Date() = default;

  /// Constructs a specific civil date. Throws std::invalid_argument for an
  /// impossible date such as 2022-02-30.
  Date(int year, int month, int day);

  [[nodiscard]] int year() const { return year_; }
  [[nodiscard]] int month() const { return month_; }
  [[nodiscard]] int day() const { return day_; }

  /// Days since the civil epoch 1970-01-01 (negative before it).
  [[nodiscard]] std::int64_t days_since_epoch() const;

  /// Inverse of days_since_epoch().
  [[nodiscard]] static Date from_days_since_epoch(std::int64_t days);

  [[nodiscard]] Weekday weekday() const;
  [[nodiscard]] bool is_weekday() const;

  /// Calendar arithmetic.
  [[nodiscard]] Date plus_days(std::int64_t n) const;
  [[nodiscard]] Date plus_months(int n) const;  // clamps day (Jan 31 + 1mo = Feb 28/29)

  /// First day of this date's month.
  [[nodiscard]] Date month_start() const;
  /// Number of days in this date's month.
  [[nodiscard]] int days_in_month() const;

  /// Whole days from *this to other (other - this).
  [[nodiscard]] std::int64_t days_until(const Date& other) const;

  /// Zero-based month index counted from a reference month; used to bucket a
  /// two-year timeline into 24 monthly bins.
  [[nodiscard]] int month_index_from(const Date& reference) const;

  /// "YYYY-MM-DD".
  [[nodiscard]] std::string to_string() const;
  /// "YYYY-MM" (monthly bucket label).
  [[nodiscard]] std::string month_string() const;

  friend constexpr auto operator<=>(const Date&, const Date&) = default;

  [[nodiscard]] static bool is_leap_year(int year);
  [[nodiscard]] static int days_in_month(int year, int month);

 private:
  std::int16_t year_{1970};
  std::int8_t month_{1};
  std::int8_t day_{1};
};

/// Canonical calendar-month shard key: months since year 0 (year*12 +
/// month-1). The single definition shared by session and post sharding so
/// the two corpora can never bucket the same date differently.
[[nodiscard]] inline int month_key(const Date& d) {
  return d.year() * 12 + (d.month() - 1);
}

/// Iterates [first, last] inclusive, calling fn(Date) once per day.
template <typename Fn>
void for_each_day(const Date& first, const Date& last, Fn&& fn) {
  for (Date d = first; d <= last; d = d.plus_days(1)) fn(d);
}

/// A time of day with minute resolution; the Teams filter keeps sessions in
/// 9 AM - 8 PM EST (§3.1).
struct TimeOfDay {
  int hour{0};
  int minute{0};

  friend constexpr auto operator<=>(const TimeOfDay&, const TimeOfDay&) = default;
};

/// A full civil timestamp (date + time of day) used for call start times.
struct DateTime {
  Date date;
  TimeOfDay time;

  friend constexpr auto operator<=>(const DateTime&, const DateTime&) = default;
};

/// True when `t` falls in enterprise business hours as defined by the paper:
/// 9 AM (inclusive) to 8 PM (exclusive).
[[nodiscard]] bool in_business_hours(const TimeOfDay& t);

}  // namespace usaas::core
