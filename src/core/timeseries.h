// Daily time series keyed by civil date.
//
// The Starlink study (§4) is a pair of two-year daily series: strong
// positive/negative post counts per day (Fig 5a), outage-keyword counts per
// day (Fig 6), and a monthly-median downlink series (Fig 7). DailySeries is
// a dense date-indexed container with resampling, rolling statistics and
// exponentially weighted smoothing (the latter also models user
// "conditioning" — the shifting fulcrum of §4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"

namespace usaas::core {

/// A single dated observation.
struct DatedValue {
  Date date;
  double value{0.0};
};

/// Dense daily series over an inclusive [first, last] date range.
class DailySeries {
 public:
  /// All days initialized to `fill`.
  DailySeries(Date first, Date last, double fill = 0.0);

  [[nodiscard]] Date first_date() const { return first_; }
  [[nodiscard]] Date last_date() const { return last_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Whether `d` falls inside the series range.
  [[nodiscard]] bool contains(const Date& d) const;

  /// Element access; throws std::out_of_range outside the range.
  [[nodiscard]] double at(const Date& d) const;
  void set(const Date& d, double v);
  void add(const Date& d, double v);  // accumulate (daily counters)

  /// Underlying contiguous values, day 0 == first_date().
  [[nodiscard]] std::span<const double> values() const { return values_; }

  /// (date, value) pairs — convenient for printing.
  [[nodiscard]] std::vector<DatedValue> entries() const;

  /// Centered rolling mean with the given odd window (edges use the
  /// available partial window).
  [[nodiscard]] DailySeries rolling_mean(std::size_t window) const;

  /// Exponentially weighted moving average, alpha in (0, 1].
  [[nodiscard]] DailySeries ewma(double alpha) const;

  /// Per-element transform into a new series.
  [[nodiscard]] DailySeries map(const std::function<double(double)>& fn) const;

  /// Element-wise sum; ranges must match exactly.
  [[nodiscard]] DailySeries operator+(const DailySeries& other) const;

  [[nodiscard]] double total() const;
  [[nodiscard]] double max() const;

 private:
  [[nodiscard]] std::size_t index(const Date& d) const;

  Date first_;
  Date last_;
  std::vector<double> values_;
};

/// One month's aggregate in a MonthlySeries.
struct MonthlyValue {
  int year{0};
  int month{0};
  std::size_t count{0};
  double value{0.0};
  [[nodiscard]] std::string label() const;  // "YYYY-MM"
};

/// Sparse per-month aggregation of dated samples, used for Fig 7's
/// monthly-median downlink speeds. Samples are buffered so that median /
/// arbitrary-quantile aggregation (not just mean) is possible.
class MonthlyAggregator {
 public:
  void add(const Date& d, double value);

  [[nodiscard]] std::size_t month_count() const { return buckets_.size(); }

  /// Per-month medians in chronological order.
  [[nodiscard]] std::vector<MonthlyValue> medians() const;
  /// Per-month means in chronological order.
  [[nodiscard]] std::vector<MonthlyValue> means() const;

  /// Per-month medians over a uniformly random subsample keeping
  /// `keep_fraction` of each month's points; reproduces Fig 7's 90%/95%
  /// stability check. Seeded for determinism.
  [[nodiscard]] std::vector<MonthlyValue> subsampled_medians(
      double keep_fraction, std::uint64_t seed) const;

  /// Raw samples of one month (year*12+month key must exist).
  [[nodiscard]] std::span<const double> month_samples(int year,
                                                      int month) const;

 private:
  // key = year * 12 + (month - 1); std::map keeps chronological order.
  std::map<int, std::vector<double>> buckets_;
};

}  // namespace usaas::core
