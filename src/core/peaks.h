// Peak / spike detection over daily series.
//
// §4.1 ranks "the top three sentiment peaks" and Fig 6 separates "the
// largest spikes" (Jan 7 / Aug 30 '22 outages) from "numerous shorter
// peaks" (transient local outages). We implement two detectors:
//   - a robust z-score detector against a rolling median/MAD baseline, so
//     that one giant spike does not mask its neighbours, and
//   - simple top-k local maxima with a minimum separation, used for the
//     "top three peaks" ranking.
#pragma once

#include <cstddef>
#include <vector>

#include "core/date.h"
#include "core/timeseries.h"

namespace usaas::core {

/// A detected peak.
struct Peak {
  Date date;
  double value{0.0};
  /// Robust z-score against the local baseline (0 for TopK detector).
  double score{0.0};
};

struct RobustPeakParams {
  /// Rolling window (days, odd) for the median/MAD baseline.
  std::size_t window{31};
  /// Minimum robust z-score to qualify as a peak.
  double z_threshold{3.0};
  /// Minimum absolute value (filters z-significant wiggles on quiet days).
  double min_value{1.0};
};

/// Robust (median/MAD) peak detection. Returns peaks sorted by date.
[[nodiscard]] std::vector<Peak> detect_peaks_robust(const DailySeries& s,
                                                    const RobustPeakParams& p);

/// Top-k local maxima, greedily picked by height with at least
/// `min_separation_days` between any two picks. Sorted by height descending.
[[nodiscard]] std::vector<Peak> top_k_peaks(const DailySeries& s, std::size_t k,
                                            std::int64_t min_separation_days);

/// Median absolute deviation (scaled by 1.4826 to be sigma-consistent).
[[nodiscard]] double mad(std::vector<double> xs);

}  // namespace usaas::core
