// Dense small-int key counting + the prefix-sum scatter plan behind the
// two-pass counted ingest pipeline.
//
// The sharded USaaS ingest path partitions a record batch by a packed
// shard key — (month_key, platform) folded into one small int. Pass 1
// counts records per (chunk, key) with DenseKeyCounts (a flat array over
// the key range; no node-based map in the hot loop). A ScatterPlan then
// prefix-sums those counts so every chunk knows, for every destination
// key, the exact slot range it owns inside a pre-reserved contiguous
// slice — pass 2 writes records straight into their final positions in
// parallel, with no merge step and no second copy. Slot order is (chunk
// index, in-chunk order), i.e. exactly sequential ingest order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace usaas::core {

/// Counts occurrences of small integer keys in a flat array that rebases
/// itself on first use and grows to span [min_key, max_key]. Intended for
/// key ranges that are tiny relative to the record count (e.g. a few
/// dozen (month, platform) pairs per million sessions); memory is
/// O(max_key - min_key), so do not feed it arbitrary 32-bit hashes.
class DenseKeyCounts {
 public:
  void add(int key, std::size_t n = 1);

  /// Zeroes every count while keeping the key range and its allocation —
  /// per-batch scratch reuse without reallocating the flat array. Stale
  /// range is harmless: zero-count keys produce no scatter work.
  void clear();

  /// Count for `key`; 0 for keys never added (including out of range).
  [[nodiscard]] std::size_t count(int key) const;

  [[nodiscard]] bool empty() const { return counts_.empty(); }
  /// Smallest / largest key ever added. Only valid when !empty().
  [[nodiscard]] int min_key() const { return base_; }
  [[nodiscard]] int max_key() const {
    return base_ + static_cast<int>(counts_.size()) - 1;
  }

 private:
  int base_{0};
  std::vector<std::size_t> counts_;
};

/// The prefix-sum output of pass 1: for each destination key, the total
/// record count (how much to reserve) and, per chunk, the offset of that
/// chunk's first record within the key's contiguous slice.
struct ScatterPlan {
  int min_key{0};          // smallest key across all chunks
  std::size_t num_keys{0};  // dense span; 0 when every chunk was empty
  std::size_t num_chunks{0};
  /// Per-key record totals, indexed by (key - min_key).
  std::vector<std::size_t> totals;
  /// Chunk-major exclusive prefix sums: offsets[chunk * num_keys + k] is
  /// where chunk's first record for key (min_key + k) lands inside that
  /// key's slice.
  std::vector<std::size_t> offsets;

  [[nodiscard]] std::size_t total(std::size_t dense_key) const {
    return totals[dense_key];
  }
  /// Copy of one chunk's offset row — a mutable cursor array for pass 2.
  [[nodiscard]] std::vector<std::size_t> chunk_cursor(
      std::size_t chunk) const {
    const auto* row = offsets.data() + chunk * num_keys;
    return {row, row + num_keys};
  }
};

/// Builds the scatter plan from per-chunk counts. Chunks may have counted
/// disjoint key sub-ranges (each DenseKeyCounts rebases independently);
/// the plan spans the union.
[[nodiscard]] ScatterPlan build_scatter_plan(
    std::span<const DenseKeyCounts> per_chunk);

/// One unit of destination-major scatter work: the slot sub-range
/// [begin, end) *within* dense key `key`'s contiguous slice. Produced by
/// plan_shard_ranges in (key, begin) order, so iterating tasks in index
/// order walks every slot of every key exactly once, in slot order —
/// any per-task partials stitched in task order reproduce the
/// sequential accumulation.
struct ShardRange {
  std::size_t key{0};    // dense key (plan.min_key + key is the real key)
  std::size_t begin{0};  // first slot within the key's slice
  std::size_t end{0};    // one past the last slot
};

/// Splits per-key totals into parallel tasks: each key becomes
/// ceil(total / grain) contiguous sub-ranges, where grain is
/// max(min_grain, sum(totals) / (parallelism * 4)) — so a hot key
/// (one shard holding most of the batch) fans out across workers
/// instead of serializing the scatter, while cold keys stay whole.
/// Returns tasks sorted by (key, begin); empty keys produce no task.
[[nodiscard]] std::vector<ShardRange> plan_shard_ranges(
    std::span<const std::size_t> totals, std::size_t parallelism,
    std::size_t min_grain);

}  // namespace usaas::core
