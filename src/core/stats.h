// Descriptive statistics used throughout the analysis pipelines.
//
// The Teams client aggregates its 5-second samples to per-session mean,
// median and P95 (§3.1); Fig 7 plots monthly medians and checks their
// stability under 90%/95% subsampling. These helpers implement exactly
// those aggregations plus the usual moments.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace usaas::core {

/// Arithmetic mean. Requires a non-empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance / standard deviation. Requires non-empty input.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (linear-interpolated for even sizes). Requires non-empty input.
[[nodiscard]] double median(std::span<const double> xs);

/// Quantile q in [0, 1] with linear interpolation between order statistics
/// (type-7, the numpy default). Requires non-empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// P95, the paper's session-aggregation tail statistic.
[[nodiscard]] double p95(std::span<const double> xs);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Streaming accumulator (Welford) for mean/variance plus min/max; used by
/// the telemetry clients that cannot buffer every sample.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// All of these require count() > 0 and throw std::logic_error otherwise.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Five-number-style summary of a sample, the unit the session aggregator
/// reports per network metric.
struct Summary {
  std::size_t count{0};
  double mean{0.0};
  double median{0.0};
  double p95{0.0};
  double min{0.0};
  double max{0.0};
  double stddev{0.0};
};

/// Computes a Summary; returns nullopt for an empty sample.
[[nodiscard]] std::optional<Summary> summarize(std::span<const double> xs);

/// Normalizes values to [0, 100] relative to the sample maximum, which is
/// how the paper plots engagement ("% of best achievable"). A zero max
/// yields all zeros.
[[nodiscard]] std::vector<double> normalize_to_percent_of_max(
    std::span<const double> xs);

/// Ranks with average tie-handling (1-based), the building block for
/// Spearman correlation.
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

}  // namespace usaas::core
