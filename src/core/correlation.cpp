#include "core/correlation.h"

#include <cmath>
#include <stdexcept>

#include "core/stats.h"

namespace usaas::core {

namespace {

void require_paired(std::span<const double> xs, std::span<const double> ys,
                    const char* what) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument(std::string{what} + ": size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument(std::string{what} + ": need >= 2 points");
  }
}

}  // namespace

double covariance(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys, "covariance");
  const double mx = mean(xs);
  const double my = mean(ys);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += (xs[i] - mx) * (ys[i] - my);
  }
  return acc / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys, "pearson");
  const double sx = stddev(xs);
  const double sy = stddev(ys);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(xs, ys) / (sx * sy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys, "spearman");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double kendall_tau(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys, "kendall_tau");
  const std::size_t n = xs.size();
  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  std::int64_t ties_x = 0;
  std::int64_t ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx == 0.0 && dy == 0.0) continue;  // tied in both: excluded by tau-b
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double denom =
      std::sqrt(static_cast<double>(concordant + discordant + ties_x)) *
      std::sqrt(static_cast<double>(concordant + discordant + ties_y));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace usaas::core
