// Strong unit types for network quantities.
//
// The paper's analyses mix latency (ms), loss (%), jitter (ms) and
// bandwidth (Mbps); passing those around as bare doubles invites the classic
// transposed-argument bug (Core Guidelines I.4, I.24). Each quantity gets a
// tiny value type with an explicit constructor and a named accessor, so a
// call site reads `Milliseconds{150.0}` rather than `150.0`.
#pragma once

#include <compare>
#include <stdexcept>
#include <string>

namespace usaas::core {

namespace detail {

// CRTP base providing ordering and arithmetic for a unit wrapper.
template <typename Derived>
struct UnitBase {
  double raw{0.0};

  constexpr UnitBase() = default;
  constexpr explicit UnitBase(double v) : raw{v} {}

  [[nodiscard]] constexpr double value() const { return raw; }

  friend constexpr auto operator<=>(const Derived& a, const Derived& b) {
    return a.raw <=> b.raw;
  }
  friend constexpr bool operator==(const Derived& a, const Derived& b) {
    return a.raw == b.raw;
  }
  friend constexpr Derived operator+(const Derived& a, const Derived& b) {
    return Derived{a.raw + b.raw};
  }
  friend constexpr Derived operator-(const Derived& a, const Derived& b) {
    return Derived{a.raw - b.raw};
  }
  friend constexpr Derived operator*(const Derived& a, double s) {
    return Derived{a.raw * s};
  }
  friend constexpr Derived operator*(double s, const Derived& a) {
    return Derived{a.raw * s};
  }
  friend constexpr Derived operator/(const Derived& a, double s) {
    return Derived{a.raw / s};
  }
};

}  // namespace detail

/// Network latency / jitter / durations, in milliseconds.
struct Milliseconds : detail::UnitBase<Milliseconds> {
  using UnitBase::UnitBase;
  [[nodiscard]] constexpr double ms() const { return raw; }
  [[nodiscard]] constexpr double seconds() const { return raw / 1000.0; }
};

/// Throughput in megabits per second.
struct Mbps : detail::UnitBase<Mbps> {
  using UnitBase::UnitBase;
  [[nodiscard]] constexpr double mbps() const { return raw; }
  [[nodiscard]] constexpr double kbps() const { return raw * 1000.0; }
};

/// A percentage in [0, 100]. Used for loss rate and engagement fractions.
struct Percent : detail::UnitBase<Percent> {
  using UnitBase::UnitBase;
  [[nodiscard]] constexpr double percent() const { return raw; }
  [[nodiscard]] constexpr double fraction() const { return raw / 100.0; }
  /// Build from a fraction in [0, 1].
  [[nodiscard]] static constexpr Percent from_fraction(double f) {
    return Percent{f * 100.0};
  }
};

/// Clamp helper shared by models that saturate a percentage.
[[nodiscard]] constexpr Percent clamp_percent(Percent p) {
  if (p.raw < 0.0) return Percent{0.0};
  if (p.raw > 100.0) return Percent{100.0};
  return p;
}

/// A Mean Opinion Score in [1, 5], as collected by the paper's call-quality
/// splash screen (1 = worst, 5 = best).
struct Mos : detail::UnitBase<Mos> {
  using UnitBase::UnitBase;
  [[nodiscard]] constexpr double score() const { return raw; }
};

[[nodiscard]] constexpr Mos clamp_mos(Mos m) {
  if (m.raw < 1.0) return Mos{1.0};
  if (m.raw > 5.0) return Mos{5.0};
  return m;
}

/// Throws std::invalid_argument when a caller-supplied unit is out of its
/// documented domain; used at API boundaries (Core Guidelines I.5/P.7).
inline void expect_in_range(double v, double lo, double hi, const char* what) {
  if (v < lo || v > hi) {
    throw std::invalid_argument(std::string{what} + " out of range");
  }
}

}  // namespace usaas::core
