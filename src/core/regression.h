// Linear models for the MOS-prediction pipeline (§5: "we are currently
// also using AI/ML techniques to predict MOS scores from user engagement
// and network conditions").
//
// Ordinary least squares via normal equations with ridge damping; small
// feature counts (engagement + network metrics ~ 7 features) make a dense
// Gaussian-elimination solve entirely adequate.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace usaas::core {

/// Simple y = a + b*x least-squares fit.
struct SimpleFit {
  double intercept{0.0};
  double slope{0.0};
  double r2{0.0};
  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

[[nodiscard]] SimpleFit fit_simple(std::span<const double> xs,
                                   std::span<const double> ys);

/// Multivariate OLS with optional ridge regularization.
class LinearModel {
 public:
  /// Fits y ~ 1 + X. `rows` is a flattened row-major feature matrix with
  /// `num_features` columns. Throws on shape mismatch or a singular system
  /// (use ridge > 0 to damp collinearity).
  static LinearModel fit(std::span<const double> rows, std::size_t num_features,
                         std::span<const double> ys, double ridge = 0.0);

  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] double intercept() const { return intercept_; }
  [[nodiscard]] std::span<const double> coefficients() const { return coef_; }
  [[nodiscard]] std::size_t num_features() const { return coef_.size(); }

 private:
  double intercept_{0.0};
  std::vector<double> coef_;
};

/// Regression quality metrics.
struct RegressionMetrics {
  double mae{0.0};
  double rmse{0.0};
  double r2{0.0};
};

[[nodiscard]] RegressionMetrics evaluate_predictions(
    std::span<const double> predicted, std::span<const double> actual);

/// Solves the dense linear system A x = b by Gaussian elimination with
/// partial pivoting. `a` is row-major n x n. Throws on a singular matrix.
[[nodiscard]] std::vector<double> solve_linear_system(std::vector<double> a,
                                                      std::vector<double> b);

}  // namespace usaas::core
