#include "core/trend.h"

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/stats.h"

namespace usaas::core {

MannKendallResult mann_kendall(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 3) throw std::invalid_argument("mann_kendall: need >= 3 points");

  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = xs[j] - xs[i];
      if (d > 0.0) {
        s += 1.0;
      } else if (d < 0.0) {
        s -= 1.0;
      }
    }
  }

  // Tie-corrected variance.
  std::map<double, std::size_t> ties;
  for (const double x : xs) ++ties[x];
  const auto dn = static_cast<double>(n);
  double var = dn * (dn - 1.0) * (2.0 * dn + 5.0);
  for (const auto& [value, count] : ties) {
    if (count < 2) continue;
    const auto t = static_cast<double>(count);
    var -= t * (t - 1.0) * (2.0 * t + 5.0);
  }
  var /= 18.0;

  MannKendallResult r;
  r.s = s;
  r.tau = s / (0.5 * dn * (dn - 1.0));
  if (var <= 0.0) {
    r.z = 0.0;
  } else if (s > 0.0) {
    r.z = (s - 1.0) / std::sqrt(var);
  } else if (s < 0.0) {
    r.z = (s + 1.0) / std::sqrt(var);
  } else {
    r.z = 0.0;
  }
  return r;
}

double theil_sen_slope(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) throw std::invalid_argument("theil_sen_slope: need >= 2 points");
  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      slopes.push_back((xs[j] - xs[i]) / static_cast<double>(j - i));
    }
  }
  return median(slopes);
}

}  // namespace usaas::core
