// Deterministic fault injection for the streaming ingest path.
//
// Real user-signal feeds fail in undramatic, constant ways: a flush to the
// store times out, a backend has a slow minute, a producer ships a garbage
// record. The streaming front-end must degrade gracefully through all of
// them, and the only way to *test* that is to make the faults themselves
// reproducible. FaultInjector is a seeded decision stream: given the same
// seed and the same sequence of questions ("does this flush fail?", "is
// this record corrupt?"), it returns the same answers on every run — so a
// fault-injection test failure replays exactly, including under TSan/ASan.
//
// The injector is configured programmatically (tests) or from the
// environment (whole-binary chaos runs, e.g. driving a bench or example
// through a lossy ingest path without recompiling):
//
//   USAAS_FAULT_SEED                decision-stream seed (default 1)
//   USAAS_FAULT_FAIL_FIRST_FLUSHES  fail the first N flush attempts
//   USAAS_FAULT_FLUSH_FAIL_P        then fail each attempt with prob. p
//   USAAS_FAULT_CORRUPT_P           corrupt each record with prob. p
//   USAAS_FAULT_SLOW_FLUSH_P        delay a flush with prob. p
//   USAAS_FAULT_SLOW_FLUSH_MS       the injected delay, milliseconds
//
// config_from_env() returns nullopt unless at least one fault knob is set,
// so production paths pay nothing when the variables are absent.
//
// The injector only *decides*; it never touches domain records (core does
// not know what a call or a post is). The streaming layer applies the
// corruption it asks for.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "core/rng.h"

namespace usaas::core {

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed{1};
    /// Deterministically fail this many flush attempts before consulting
    /// the probabilistic knob — the workhorse for retry/backoff tests.
    std::size_t fail_first_flushes{0};
    /// After the first `fail_first_flushes`, fail each flush attempt with
    /// this probability.
    double flush_failure_p{0.0};
    /// Corrupt each record offered to corrupt_this_record() with this
    /// probability.
    double corrupt_record_p{0.0};
    /// Delay each flush with this probability, by `slow_flush_delay`.
    double slow_flush_p{0.0};
    std::chrono::milliseconds slow_flush_delay{0};
  };

  explicit FaultInjector(Config config);

  /// Reads the USAAS_FAULT_* environment; nullopt when no fault knob is
  /// set (seed alone does not arm the injector).
  [[nodiscard]] static std::optional<Config> config_from_env();

  /// One call per flush attempt, in attempt order. True = the attempt
  /// must be treated as failed without touching the store.
  [[nodiscard]] bool fail_this_flush();

  /// One call per flush attempt: the delay to impose before the flush
  /// body (zero most of the time).
  [[nodiscard]] std::chrono::milliseconds flush_delay();

  /// One call per record offered to the staging buffer. True = the caller
  /// should corrupt its copy of the record before validation sees it.
  [[nodiscard]] bool corrupt_this_record();

  // Cumulative injection counters (thread-safe snapshots).
  [[nodiscard]] std::size_t flush_failures_injected() const;
  [[nodiscard]] std::size_t slow_flushes_injected() const;
  [[nodiscard]] std::size_t corruptions_injected() const;

 private:
  Config config_;
  mutable std::mutex mu_;
  Rng rng_;
  std::size_t flush_attempts_seen_{0};
  std::size_t flush_failures_{0};
  std::size_t slow_flushes_{0};
  std::size_t corruptions_{0};
};

}  // namespace usaas::core
