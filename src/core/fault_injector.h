// Deterministic fault injection for the streaming ingest path.
//
// Real user-signal feeds fail in undramatic, constant ways: a flush to the
// store times out, a backend has a slow minute, a producer ships a garbage
// record. The streaming front-end must degrade gracefully through all of
// them, and the only way to *test* that is to make the faults themselves
// reproducible. FaultInjector is a seeded decision stream: given the same
// seed and the same sequence of questions ("does this flush fail?", "is
// this record corrupt?"), it returns the same answers on every run — so a
// fault-injection test failure replays exactly, including under TSan/ASan.
//
// The injector is configured programmatically (tests) or from the
// environment (whole-binary chaos runs, e.g. driving a bench or example
// through a lossy ingest path without recompiling):
//
//   USAAS_FAULT_SEED                decision-stream seed (default 1)
//   USAAS_FAULT_FAIL_FIRST_FLUSHES  fail the first N flush attempts
//   USAAS_FAULT_FLUSH_FAIL_P        then fail each attempt with prob. p
//   USAAS_FAULT_CORRUPT_P           corrupt each record with prob. p
//   USAAS_FAULT_SLOW_FLUSH_P        delay a flush with prob. p
//   USAAS_FAULT_SLOW_FLUSH_MS       the injected delay, milliseconds
//
// Socket-level faults (the HTTP listener chaos harness) ride one compact
// spec so a whole fault storm fits in a single variable:
//
//   USAAS_FAULT_SOCKET=accept_fail=0.1,slow_read=0.05,slow_read_ms=200,
//                      partial=0.1,disconnect=0.1
//
//   accept_fail   drop a just-accepted connection (transient accept error)
//   slow_read     the peer trickles its request (slow-loris); the stall
//                 per read chunk is slow_read_ms
//   partial       the peer sends only a prefix of its request, then stops
//   disconnect    the peer closes before reading the response, so the
//                 server's write hits a vanished socket
//
// config_from_env() returns nullopt unless at least one fault knob is set,
// so production paths pay nothing when the variables are absent.
//
// The injector only *decides*; it never touches domain records or sockets
// (core does not know what a call, a post or a connection is). The
// streaming layer applies the corruption, and the listener / chaos client
// apply the socket misbehaviour, that it asks for.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "core/rng.h"

namespace usaas::core {

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed{1};
    /// Deterministically fail this many flush attempts before consulting
    /// the probabilistic knob — the workhorse for retry/backoff tests.
    std::size_t fail_first_flushes{0};
    /// After the first `fail_first_flushes`, fail each flush attempt with
    /// this probability.
    double flush_failure_p{0.0};
    /// Corrupt each record offered to corrupt_this_record() with this
    /// probability.
    double corrupt_record_p{0.0};
    /// Delay each flush with this probability, by `slow_flush_delay`.
    double slow_flush_p{0.0};
    std::chrono::milliseconds slow_flush_delay{0};
    // ---- Socket-level faults (USAAS_FAULT_SOCKET) ----
    /// Drop a just-accepted connection with this probability (the listener
    /// treats it as a transient accept() failure and keeps serving).
    double accept_failure_p{0.0};
    /// The peer trickles its request bytes (slow-loris): stall this often,
    /// by `slow_read_delay` per chunk, so the server's read timeout — not
    /// a wedged worker — must end the connection.
    double slow_read_p{0.0};
    std::chrono::milliseconds slow_read_delay{0};
    /// The peer sends only a prefix of its request and then goes silent.
    double partial_request_p{0.0};
    /// The peer closes before reading the response; the server's write
    /// lands on a vanished socket (EPIPE/ECONNRESET, never a crash).
    double disconnect_p{0.0};
  };

  explicit FaultInjector(Config config);

  /// Reads the USAAS_FAULT_* environment; nullopt when no fault knob is
  /// set (seed alone does not arm the injector).
  [[nodiscard]] static std::optional<Config> config_from_env();

  /// One call per flush attempt, in attempt order. True = the attempt
  /// must be treated as failed without touching the store.
  [[nodiscard]] bool fail_this_flush();

  /// One call per flush attempt: the delay to impose before the flush
  /// body (zero most of the time).
  [[nodiscard]] std::chrono::milliseconds flush_delay();

  /// One call per record offered to the staging buffer. True = the caller
  /// should corrupt its copy of the record before validation sees it.
  [[nodiscard]] bool corrupt_this_record();

  // ---- Socket-level decisions (see USAAS_FAULT_SOCKET above) ----
  /// One call per accepted connection. True = the listener must treat the
  /// accept as failed (close immediately, count, keep accepting).
  [[nodiscard]] bool fail_this_accept();
  /// One call per client request: the stall to insert between request
  /// chunks (zero = send normally). Non-zero marks a slow-loris peer.
  [[nodiscard]] std::chrono::milliseconds slow_read_stall();
  /// One call per client request. True = send only a prefix, then stop.
  [[nodiscard]] bool truncate_this_request();
  /// One call per client request. True = close the socket before reading
  /// the response.
  [[nodiscard]] bool disconnect_before_response();

  // Cumulative injection counters (thread-safe snapshots).
  [[nodiscard]] std::size_t flush_failures_injected() const;
  [[nodiscard]] std::size_t slow_flushes_injected() const;
  [[nodiscard]] std::size_t corruptions_injected() const;
  [[nodiscard]] std::size_t accept_failures_injected() const;
  [[nodiscard]] std::size_t slow_reads_injected() const;
  [[nodiscard]] std::size_t truncated_requests_injected() const;
  [[nodiscard]] std::size_t disconnects_injected() const;

 private:
  Config config_;
  mutable std::mutex mu_;
  Rng rng_;
  std::size_t flush_attempts_seen_{0};
  std::size_t flush_failures_{0};
  std::size_t slow_flushes_{0};
  std::size_t corruptions_{0};
  std::size_t accept_failures_{0};
  std::size_t slow_reads_{0};
  std::size_t truncated_requests_{0};
  std::size_t disconnects_{0};
};

}  // namespace usaas::core
