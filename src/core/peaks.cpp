#include "core/peaks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/stats.h"

namespace usaas::core {

double mad(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("mad: empty");
  const double med = median(xs);
  for (double& x : xs) x = std::fabs(x - med);
  return 1.4826 * median(xs);
}

std::vector<Peak> detect_peaks_robust(const DailySeries& s,
                                      const RobustPeakParams& p) {
  if (p.window == 0 || p.window % 2 == 0) {
    throw std::invalid_argument("detect_peaks_robust: window must be odd");
  }
  const auto vals = s.values();
  const auto n = static_cast<std::int64_t>(vals.size());
  const auto half = static_cast<std::int64_t>(p.window / 2);
  std::vector<Peak> out;
  for (std::int64_t i = 0; i < n; ++i) {
    const double v = vals[static_cast<std::size_t>(i)];
    if (v < p.min_value) continue;
    const std::int64_t lo = std::max<std::int64_t>(0, i - half);
    const std::int64_t hi = std::min(n - 1, i + half);
    std::vector<double> window;
    window.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int64_t j = lo; j <= hi; ++j) {
      if (j == i) continue;  // leave-one-out baseline
      window.push_back(vals[static_cast<std::size_t>(j)]);
    }
    if (window.empty()) continue;
    const double baseline = median(window);
    double spread = mad(window);
    if (spread <= 0.0) spread = 1.0;  // flat quiet window: count units
    const double z = (v - baseline) / spread;
    if (z >= p.z_threshold) {
      out.push_back({s.first_date().plus_days(i), v, z});
    }
  }
  return out;
}

std::vector<Peak> top_k_peaks(const DailySeries& s, std::size_t k,
                              std::int64_t min_separation_days) {
  const auto vals = s.values();
  const auto n = static_cast<std::int64_t>(vals.size());
  // Candidates: strictly positive local maxima (ties resolved to the left
  // edge of a plateau). Zero-activity days are never peaks.
  std::vector<std::int64_t> candidates;
  for (std::int64_t i = 0; i < n; ++i) {
    const double v = vals[static_cast<std::size_t>(i)];
    if (v <= 0.0) continue;
    const double prev = i > 0 ? vals[static_cast<std::size_t>(i - 1)] : -1.0;
    const double next = i + 1 < n ? vals[static_cast<std::size_t>(i + 1)] : -1.0;
    if (v > prev && v >= next) candidates.push_back(i);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::int64_t a, std::int64_t b) {
              const double va = vals[static_cast<std::size_t>(a)];
              const double vb = vals[static_cast<std::size_t>(b)];
              if (va != vb) return va > vb;
              return a < b;
            });
  std::vector<Peak> out;
  std::vector<std::int64_t> picked;
  for (const std::int64_t i : candidates) {
    if (out.size() >= k) break;
    const bool too_close = std::any_of(
        picked.begin(), picked.end(), [&](std::int64_t j) {
          return std::llabs(i - j) < min_separation_days;
        });
    if (too_close) continue;
    picked.push_back(i);
    out.push_back({s.first_date().plus_days(i),
                   vals[static_cast<std::size_t>(i)], 0.0});
  }
  return out;
}

}  // namespace usaas::core
