#include "core/bootstrap.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "core/stats.h"

namespace usaas::core {

ConfidenceInterval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    double level, std::size_t resamples, std::uint64_t seed) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("bootstrap_ci: level must be in (0, 1)");
  }
  if (resamples == 0) throw std::invalid_argument("bootstrap_ci: resamples == 0");

  Rng rng{seed};
  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> resample(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& v : resample) {
      v = xs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = (1.0 - level) / 2.0;
  ConfidenceInterval ci;
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(stats, 1.0 - alpha);
  ci.point = statistic(xs);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs, double level,
                                     std::size_t resamples,
                                     std::uint64_t seed) {
  return bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, level, resamples,
      seed);
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> xs, double level,
                                       std::size_t resamples,
                                       std::uint64_t seed) {
  return bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, level, resamples,
      seed);
}

}  // namespace usaas::core
