// Minimal CSV table writer.
//
// The figure benches print human-readable tables; downstream users often
// want the same series machine-readable (to re-plot the paper's figures).
// CsvTable accumulates typed rows and serializes RFC-4180-style (quotes
// doubled, fields with commas/quotes/newlines quoted).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace usaas::core {

class CsvTable {
 public:
  /// Column headers fix the arity of every subsequent row.
  explicit CsvTable(std::vector<std::string> headers);

  /// Appends a row; throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows (formatted with %.6g).
  void add_numeric_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Serializes the whole table, header first, '\n' line endings.
  [[nodiscard]] std::string to_string() const;

  /// Writes to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  /// Escapes one cell per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace usaas::core
