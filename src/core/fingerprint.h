// Deterministic 64-bit fingerprinting for cache keys.
//
// The insight cache keys on a canonical encoding of a query plus the
// corpus version; the hash must be stable across runs (no seeding, no
// std::hash implementation-defined behavior) and must agree with the
// key's operator== — in particular -0.0 and +0.0 compare equal, so they
// must fingerprint equal too.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace usaas::core {

/// Accumulates words into a 64-bit digest with splitmix64-style mixing.
/// Order-sensitive: mix(a).mix(b) != mix(b).mix(a) in general.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) {
    state_ = mix64(state_ ^ mix64(v));
    return *this;
  }
  Fingerprint& mix_signed(std::int64_t v) {
    return mix(static_cast<std::uint64_t>(v));
  }
  /// Canonicalizes -0.0 to +0.0 so values that compare equal hash equal.
  /// (NaNs are the caller's problem: a NaN key never equals itself.)
  Fingerprint& mix(double v) {
    if (v == 0.0) v = 0.0;  // collapses -0.0
    return mix(std::bit_cast<std::uint64_t>(v));
  }
  Fingerprint& mix(std::string_view s);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  [[nodiscard]] static std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t state_{0x9e3779b97f4a7c15ull};
};

}  // namespace usaas::core
