#include "core/flat_index.h"

#include <algorithm>

namespace usaas::core {

void DenseKeyCounts::add(int key, std::size_t n) {
  if (counts_.empty()) {
    base_ = key;
    counts_.assign(1, 0);
  } else if (key < base_) {
    counts_.insert(counts_.begin(), static_cast<std::size_t>(base_ - key), 0);
    base_ = key;
  } else if (key >= base_ + static_cast<int>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(key - base_) + 1, 0);
  }
  counts_[static_cast<std::size_t>(key - base_)] += n;
}

void DenseKeyCounts::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

std::size_t DenseKeyCounts::count(int key) const {
  if (counts_.empty() || key < base_ ||
      key >= base_ + static_cast<int>(counts_.size())) {
    return 0;
  }
  return counts_[static_cast<std::size_t>(key - base_)];
}

ScatterPlan build_scatter_plan(std::span<const DenseKeyCounts> per_chunk) {
  ScatterPlan plan;
  plan.num_chunks = per_chunk.size();
  bool any = false;
  int lo = 0;
  int hi = 0;
  for (const DenseKeyCounts& counts : per_chunk) {
    if (counts.empty()) continue;
    if (!any) {
      lo = counts.min_key();
      hi = counts.max_key();
      any = true;
    } else {
      lo = std::min(lo, counts.min_key());
      hi = std::max(hi, counts.max_key());
    }
  }
  if (!any) return plan;  // num_keys == 0: nothing to scatter

  plan.min_key = lo;
  plan.num_keys = static_cast<std::size_t>(hi - lo) + 1;
  plan.totals.assign(plan.num_keys, 0);
  plan.offsets.assign(plan.num_chunks * plan.num_keys, 0);
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    const int key = lo + static_cast<int>(k);
    std::size_t running = 0;
    for (std::size_t c = 0; c < plan.num_chunks; ++c) {
      plan.offsets[c * plan.num_keys + k] = running;
      running += per_chunk[c].count(key);
    }
    plan.totals[k] = running;
  }
  return plan;
}

std::vector<ShardRange> plan_shard_ranges(
    std::span<const std::size_t> totals, std::size_t parallelism,
    std::size_t min_grain) {
  std::size_t sum = 0;
  for (const std::size_t t : totals) sum += t;
  const std::size_t par = std::max<std::size_t>(1, parallelism);
  const std::size_t grain =
      std::max<std::size_t>(std::max<std::size_t>(1, min_grain),
                            sum / (par * 4));

  std::vector<ShardRange> tasks;
  for (std::size_t k = 0; k < totals.size(); ++k) {
    const std::size_t total = totals[k];
    if (total == 0) continue;
    const std::size_t pieces = (total + grain - 1) / grain;
    for (std::size_t p = 0; p < pieces; ++p) {
      // Balanced split: ranges differ in size by at most one slot.
      tasks.push_back({k, p * total / pieces, (p + 1) * total / pieces});
    }
  }
  return tasks;
}

}  // namespace usaas::core
