#include "core/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/rng.h"
#include "core/stats.h"

namespace usaas::core {

DailySeries::DailySeries(Date first, Date last, double fill)
    : first_{first}, last_{last} {
  if (last < first) throw std::invalid_argument("DailySeries: last < first");
  const auto n = first.days_until(last) + 1;
  values_.assign(static_cast<std::size_t>(n), fill);
}

bool DailySeries::contains(const Date& d) const {
  return first_ <= d && d <= last_;
}

std::size_t DailySeries::index(const Date& d) const {
  if (!contains(d)) {
    throw std::out_of_range("DailySeries: date outside range: " + d.to_string());
  }
  return static_cast<std::size_t>(first_.days_until(d));
}

double DailySeries::at(const Date& d) const { return values_[index(d)]; }

void DailySeries::set(const Date& d, double v) { values_[index(d)] = v; }

void DailySeries::add(const Date& d, double v) { values_[index(d)] += v; }

std::vector<DatedValue> DailySeries::entries() const {
  std::vector<DatedValue> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.push_back({first_.plus_days(static_cast<std::int64_t>(i)), values_[i]});
  }
  return out;
}

DailySeries DailySeries::rolling_mean(std::size_t window) const {
  if (window == 0 || window % 2 == 0) {
    throw std::invalid_argument("rolling_mean: window must be odd and >= 1");
  }
  DailySeries out{first_, last_};
  const auto n = static_cast<std::int64_t>(values_.size());
  const auto half = static_cast<std::int64_t>(window / 2);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - half);
    const std::int64_t hi = std::min(n - 1, i + half);
    double acc = 0.0;
    for (std::int64_t j = lo; j <= hi; ++j) {
      acc += values_[static_cast<std::size_t>(j)];
    }
    out.values_[static_cast<std::size_t>(i)] =
        acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

DailySeries DailySeries::ewma(double alpha) const {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("ewma: alpha must be in (0, 1]");
  }
  DailySeries out{first_, last_};
  double state = values_.empty() ? 0.0 : values_.front();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    state = alpha * values_[i] + (1.0 - alpha) * state;
    out.values_[i] = state;
  }
  return out;
}

DailySeries DailySeries::map(const std::function<double(double)>& fn) const {
  DailySeries out{first_, last_};
  for (std::size_t i = 0; i < values_.size(); ++i) out.values_[i] = fn(values_[i]);
  return out;
}

DailySeries DailySeries::operator+(const DailySeries& other) const {
  if (first_ != other.first_ || last_ != other.last_) {
    throw std::invalid_argument("DailySeries::operator+: range mismatch");
  }
  DailySeries out{first_, last_};
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.values_[i] = values_[i] + other.values_[i];
  }
  return out;
}

double DailySeries::total() const {
  double acc = 0.0;
  for (const double v : values_) acc += v;
  return acc;
}

double DailySeries::max() const {
  if (values_.empty()) throw std::logic_error("DailySeries::max on empty");
  return *std::max_element(values_.begin(), values_.end());
}

std::string MonthlyValue::label() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d", year, month);
  return buf;
}

void MonthlyAggregator::add(const Date& d, double value) {
  buckets_[d.year() * 12 + (d.month() - 1)].push_back(value);
}

namespace {

MonthlyValue make_monthly(int key, std::size_t count, double value) {
  MonthlyValue mv;
  mv.year = key / 12;
  mv.month = key % 12 + 1;
  mv.count = count;
  mv.value = value;
  return mv;
}

}  // namespace

std::vector<MonthlyValue> MonthlyAggregator::medians() const {
  std::vector<MonthlyValue> out;
  out.reserve(buckets_.size());
  for (const auto& [key, samples] : buckets_) {
    out.push_back(make_monthly(key, samples.size(), median(samples)));
  }
  return out;
}

std::vector<MonthlyValue> MonthlyAggregator::means() const {
  std::vector<MonthlyValue> out;
  out.reserve(buckets_.size());
  for (const auto& [key, samples] : buckets_) {
    out.push_back(make_monthly(key, samples.size(), mean(samples)));
  }
  return out;
}

std::vector<MonthlyValue> MonthlyAggregator::subsampled_medians(
    double keep_fraction, std::uint64_t seed) const {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("subsampled_medians: fraction not in (0, 1]");
  }
  Rng rng{seed};
  std::vector<MonthlyValue> out;
  out.reserve(buckets_.size());
  for (const auto& [key, samples] : buckets_) {
    std::vector<double> kept;
    kept.reserve(samples.size());
    for (const double s : samples) {
      if (rng.bernoulli(keep_fraction)) kept.push_back(s);
    }
    if (kept.empty()) kept.push_back(median(samples));  // degenerate month
    out.push_back(make_monthly(key, kept.size(), median(kept)));
  }
  return out;
}

std::span<const double> MonthlyAggregator::month_samples(int year,
                                                         int month) const {
  const auto it = buckets_.find(year * 12 + (month - 1));
  if (it == buckets_.end()) {
    throw std::out_of_range("MonthlyAggregator: no samples for month");
  }
  return it->second;
}

}  // namespace usaas::core
