#include "core/date.h"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace usaas::core {

namespace {

constexpr std::array<const char*, 7> kWeekdayNames = {
    "Monday", "Tuesday", "Wednesday", "Thursday",
    "Friday", "Saturday", "Sunday"};

}  // namespace

const char* to_string(Weekday d) {
  return kWeekdayNames.at(static_cast<std::size_t>(d));
}

bool Date::is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int Date::days_in_month(int year, int month) {
  static constexpr std::array<int, 13> kDays = {0,  31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) {
    throw std::invalid_argument("month out of range");
  }
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays.at(static_cast<std::size_t>(month));
}

Date::Date(int year, int month, int day)
    : year_{static_cast<std::int16_t>(year)},
      month_{static_cast<std::int8_t>(month)},
      day_{static_cast<std::int8_t>(day)} {
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    throw std::invalid_argument("invalid civil date");
  }
}

std::int64_t Date::days_since_epoch() const {
  // Howard Hinnant's days_from_civil.
  std::int64_t y = year_;
  const int m = month_;
  const int d = day_;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;                                    // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;        // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date Date::from_days_since_epoch(std::int64_t days) {
  // Howard Hinnant's civil_from_days.
  std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);         // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;            // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                              // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                      // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                           // [1, 12]
  return Date(static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(d));
}

Weekday Date::weekday() const {
  // 1970-01-01 was a Thursday (= 3 in Monday-based numbering).
  const std::int64_t days = days_since_epoch();
  const std::int64_t dow = ((days % 7) + 7 + 3) % 7;
  return static_cast<Weekday>(dow);
}

bool Date::is_weekday() const {
  return static_cast<int>(weekday()) < 5;
}

Date Date::plus_days(std::int64_t n) const {
  return from_days_since_epoch(days_since_epoch() + n);
}

Date Date::plus_months(int n) const {
  const int total = (year_ * 12 + (month_ - 1)) + n;
  const int y = total / 12;
  const int m = total % 12 + 1;
  const int dim = days_in_month(y, m);
  const int d = day_ <= dim ? day_ : dim;
  return Date(y, m, d);
}

Date Date::month_start() const { return Date(year_, month_, 1); }

int Date::days_in_month() const { return days_in_month(year_, month_); }

std::int64_t Date::days_until(const Date& other) const {
  return other.days_since_epoch() - days_since_epoch();
}

int Date::month_index_from(const Date& reference) const {
  return (year_ - reference.year()) * 12 + (month_ - reference.month());
}

std::string Date::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", year_, int{month_},
                int{day_});
  return buf;
}

std::string Date::month_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d", year_, int{month_});
  return buf;
}

bool in_business_hours(const TimeOfDay& t) {
  return t.hour >= 9 && t.hour < 20;
}

}  // namespace usaas::core
