// Nonparametric trend statistics.
//
// Fig 7's prose claims are trend claims — "median downlink speeds
// increased in general", "almost steady decrease" — which deserve a
// statistic rather than eyeballing: Mann-Kendall tests the monotone
// trend's direction/significance, Theil-Sen estimates its slope robustly
// (both standard in network measurement time-series work).
#pragma once

#include <span>

namespace usaas::core {

struct MannKendallResult {
  /// Kendall's S statistic (sum of pairwise sign agreements).
  double s{0.0};
  /// Normalized Z score (normal approximation with tie correction).
  double z{0.0};
  /// tau in [-1, 1].
  double tau{0.0};
  /// Direction at the given z threshold.
  [[nodiscard]] bool increasing(double z_threshold = 1.96) const {
    return z > z_threshold;
  }
  [[nodiscard]] bool decreasing(double z_threshold = 1.96) const {
    return z < -z_threshold;
  }
};

/// Mann-Kendall trend test over an equally spaced series.
/// Requires >= 3 points.
[[nodiscard]] MannKendallResult mann_kendall(std::span<const double> xs);

/// Theil-Sen slope estimator: the median of all pairwise slopes.
/// Robust to ~29 % outliers. Requires >= 2 points; x spacing = 1.
[[nodiscard]] double theil_sen_slope(std::span<const double> xs);

}  // namespace usaas::core
