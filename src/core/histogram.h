// Binned aggregation: the workhorse behind every panel of Fig 1-3.
//
// The paper plots "engagement metric (mean over sessions) vs network
// metric, binned": Binner1D collects (x, y) pairs into fixed-width x-bins
// and reports the per-bin mean/count. Grid2D does the same over a 2-D
// (latency x loss) grid for Fig 2's compounding heat map.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/stats.h"

namespace usaas::core {

/// One populated bin of a Binner1D.
struct Bin {
  double lo{0.0};
  double hi{0.0};
  std::size_t count{0};
  double mean_y{0.0};
  /// Bin center, the x used when plotting the curve.
  [[nodiscard]] double center() const { return (lo + hi) / 2.0; }
};

/// Fixed-width 1-D binner over [lo, hi) accumulating a y-statistic per bin.
class Binner1D {
 public:
  /// Throws std::invalid_argument unless lo < hi and bins >= 1.
  Binner1D(double lo, double hi, std::size_t bins);

  /// Adds an (x, y) observation; x outside [lo, hi) is ignored (the paper's
  /// methodology clamps each sweep to a fixed metric window).
  void add(double x, double y);

  [[nodiscard]] std::size_t bin_count() const { return stats_.size(); }
  [[nodiscard]] std::size_t total_added() const { return total_; }

  /// Per-bin results; empty bins are omitted.
  [[nodiscard]] std::vector<Bin> bins() const;

  /// The curve as (bin center, mean y) for non-empty bins — ready to print.
  [[nodiscard]] std::vector<std::pair<double, double>> curve() const;

  /// Per-bin full accumulator, for callers that need stddev/count too.
  [[nodiscard]] const RunningStats& bin_stats(std::size_t i) const;

  /// Merges another binner with the same [lo, hi) x bins layout (parallel
  /// shard reduction); throws std::invalid_argument on layout mismatch.
  void merge(const Binner1D& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::size_t total_{0};
  std::vector<RunningStats> stats_;
};

/// One cell of a Grid2D.
struct GridCell {
  double x_center{0.0};
  double y_center{0.0};
  std::size_t count{0};
  double mean_value{0.0};
};

/// Fixed 2-D grid accumulating a value statistic per (x, y) cell.
class Grid2D {
 public:
  Grid2D(double x_lo, double x_hi, std::size_t x_bins,
         double y_lo, double y_hi, std::size_t y_bins);

  /// Adds an observation; coordinates outside the grid are ignored.
  void add(double x, double y, double value);

  [[nodiscard]] std::size_t x_bins() const { return x_bins_; }
  [[nodiscard]] std::size_t y_bins() const { return y_bins_; }

  /// Mean value in cell (xi, yi); nullopt when the cell is empty.
  [[nodiscard]] std::optional<double> cell_mean(std::size_t xi,
                                                std::size_t yi) const;
  [[nodiscard]] std::size_t cell_count(std::size_t xi, std::size_t yi) const;

  /// All populated cells (row-major), for rendering the heat map.
  [[nodiscard]] std::vector<GridCell> cells() const;

  /// Max and min of the populated cell means; nullopt when the grid is
  /// entirely empty. Fig 2 reports the dip "relative to the best value
  /// across all combinations", i.e. 100 * min / max.
  [[nodiscard]] std::optional<double> max_cell_mean() const;
  [[nodiscard]] std::optional<double> min_cell_mean() const;

  /// Merges another grid with identical extents and bin counts (parallel
  /// shard reduction); throws std::invalid_argument on layout mismatch.
  void merge(const Grid2D& other);

 private:
  [[nodiscard]] std::size_t index(std::size_t xi, std::size_t yi) const {
    return yi * x_bins_ + xi;
  }

  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::size_t x_bins_, y_bins_;
  std::vector<RunningStats> stats_;
};

}  // namespace usaas::core
