#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace usaas::core {

namespace {

void require_non_empty(std::span<const double> xs, const char* what) {
  if (xs.empty()) throw std::invalid_argument(std::string{what} + ": empty");
}

}  // namespace

double mean(std::span<const double> xs) {
  require_non_empty(xs, "mean");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require_non_empty(xs, "variance");
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  require_non_empty(xs, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double p95(std::span<const double> xs) { return quantile(xs, 0.95); }

double min_value(std::span<const double> xs) {
  require_non_empty(xs, "min_value");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require_non_empty(xs, "max_value");
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean on empty");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ == 0) throw std::logic_error("RunningStats::variance on empty");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min on empty");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max on empty");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

std::optional<Summary> summarize(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.median = median(xs);
  s.p95 = p95(xs);
  s.min = min_value(xs);
  s.max = max_value(xs);
  s.stddev = stddev(xs);
  return s;
}

std::vector<double> normalize_to_percent_of_max(std::span<const double> xs) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  const double mx = max_value(xs);
  if (mx <= 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = 100.0 * xs[i] / mx;
  return out;
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie block [i, j] (ranks are 1-based).
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
    i = j + 1;
  }
  return out;
}

}  // namespace usaas::core
