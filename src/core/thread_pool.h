// A fixed-size worker pool + blocking parallel_for.
//
// The USaaS ingest/query engine fans work across per-month x per-platform
// shards (§5: operator queries over ~150-200 M sessions). Shard processing
// is embarrassingly parallel, so the only machinery needed is a task queue
// with deterministic completion semantics:
//   * submit() enqueues fire-and-forget tasks;
//   * parallel_for() splits an index range into contiguous chunks, runs
//     them on the pool, BLOCKS until every chunk finished, and rethrows the
//     first exception a chunk raised;
//   * the destructor drains the queue — every task submitted before
//     destruction runs to completion (no silently dropped work).
// Determinism note: parallel_for guarantees nothing about execution order;
// callers that need thread-count-independent results must give each chunk
// its own output slot and merge slots in index order (see
// CorrelationEngine).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usaas::core {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1). A 1-thread pool still runs tasks on its worker, so
  /// submit() never executes inline.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction began (callers
  /// own the pool, so this is a lifetime bug, not a runtime condition).
  void submit(std::function<void()> task);

  /// Queued-but-not-started tasks (for tests / introspection).
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

/// Runs body(begin, end) over contiguous chunks of [0, n) on the pool and
/// blocks until all chunks completed. With a null pool, a pool of size <= 1,
/// or n <= 1 the body runs inline as body(0, n). If one or more chunks
/// throw, the first exception (in completion order) is rethrown after every
/// chunk has finished — no chunk is abandoned mid-flight.
///
/// Must not be called from inside a task running on the same pool (the
/// caller would block a worker the chunks may need).
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace usaas::core
