// A fixed-size worker pool + blocking parallel_for.
//
// The USaaS ingest/query engine fans work across per-month x per-platform
// shards (§5: operator queries over ~150-200 M sessions). Shard processing
// is embarrassingly parallel, so the only machinery needed is a task queue
// with deterministic completion semantics:
//   * submit() enqueues fire-and-forget tasks;
//   * parallel_for() splits an index range into contiguous chunks, runs
//     them on the pool, BLOCKS until every chunk finished, and rethrows the
//     first exception a chunk raised;
//   * the destructor drains the queue — every task submitted before
//     destruction runs to completion (no silently dropped work).
// Determinism note: parallel_for guarantees nothing about execution order;
// callers that need thread-count-independent results must give each chunk
// its own output slot and merge slots in index order (see
// CorrelationEngine).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usaas::core {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1). A 1-thread pool still runs tasks on its worker, so
  /// submit() never executes inline.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction began (callers
  /// own the pool, so this is a lifetime bug, not a runtime condition).
  void submit(std::function<void()> task);

  /// Queued-but-not-started tasks (for tests / introspection).
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

/// std::thread::hardware_concurrency() clamped to >= 1 (it may report 0
/// when unknown, which we treat as "one core").
[[nodiscard]] std::size_t hardware_parallelism();

/// How many chunks parallel_for can usefully run concurrently on `pool`:
/// min(pool size, hardware cores), 1 for a null pool. A pool larger than
/// the machine (e.g. 8 workers on a 1-core host) is oversubscribed — its
/// extra workers only add queueing overhead, so fan-out is capped at the
/// core count and a 1-core host runs everything inline. Setting the
/// environment variable USAAS_PARALLEL_FORCE=1 (read once, at first use)
/// disables the cap and trusts the pool size — the sanitizer test suite
/// uses this so races are still exercised on single-core CI hosts.
[[nodiscard]] std::size_t effective_parallelism(const ThreadPool* pool);

/// Runs body(begin, end) over contiguous chunks of [0, n) on the pool and
/// blocks until all chunks completed. With a null pool, an effective
/// parallelism <= 1 (see above — including any pool on a single-core
/// host), or n <= 1 the body runs inline as body(0, n). If one or more
/// chunks throw, the first exception (in completion order) is rethrown
/// after every chunk has finished — no chunk is abandoned mid-flight.
///
/// Must not be called from inside a task running on the same pool (the
/// caller would block a worker the chunks may need).
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Grain-size overload: chunks carry at least `grain` items each (the
/// last may carry more), so per-chunk fixed costs (task dispatch, local
/// accumulators) stay amortized for small n. grain == 1 is the plain
/// overload; when n <= grain the body runs inline.
void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace usaas::core
