#include "core/histogram.h"

#include <algorithm>
#include <stdexcept>

namespace usaas::core {

Binner1D::Binner1D(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(bins)} {
  if (!(lo < hi)) throw std::invalid_argument("Binner1D: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Binner1D: bins must be >= 1");
  stats_.resize(bins);
}

void Binner1D::add(double x, double y) {
  if (x < lo_ || x >= hi_) return;
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, stats_.size() - 1);  // guard float rounding at hi edge
  stats_[idx].add(y);
  ++total_;
}

std::vector<Bin> Binner1D::bins() const {
  std::vector<Bin> out;
  out.reserve(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (stats_[i].empty()) continue;
    Bin b;
    b.lo = lo_ + width_ * static_cast<double>(i);
    b.hi = b.lo + width_;
    b.count = stats_[i].count();
    b.mean_y = stats_[i].mean();
    out.push_back(b);
  }
  return out;
}

std::vector<std::pair<double, double>> Binner1D::curve() const {
  std::vector<std::pair<double, double>> out;
  for (const Bin& b : bins()) out.emplace_back(b.center(), b.mean_y);
  return out;
}

const RunningStats& Binner1D::bin_stats(std::size_t i) const {
  return stats_.at(i);
}

void Binner1D::merge(const Binner1D& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.stats_.size() != stats_.size()) {
    throw std::invalid_argument("Binner1D::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].merge(other.stats_[i]);
  }
  total_ += other.total_;
}

Grid2D::Grid2D(double x_lo, double x_hi, std::size_t x_bins,
               double y_lo, double y_hi, std::size_t y_bins)
    : x_lo_{x_lo}, x_hi_{x_hi}, y_lo_{y_lo}, y_hi_{y_hi},
      x_bins_{x_bins}, y_bins_{y_bins} {
  if (!(x_lo < x_hi) || !(y_lo < y_hi)) {
    throw std::invalid_argument("Grid2D: lo must be < hi");
  }
  if (x_bins == 0 || y_bins == 0) {
    throw std::invalid_argument("Grid2D: bins must be >= 1");
  }
  stats_.resize(x_bins * y_bins);
}

void Grid2D::add(double x, double y, double value) {
  if (x < x_lo_ || x >= x_hi_ || y < y_lo_ || y >= y_hi_) return;
  const double xw = (x_hi_ - x_lo_) / static_cast<double>(x_bins_);
  const double yw = (y_hi_ - y_lo_) / static_cast<double>(y_bins_);
  auto xi = std::min(static_cast<std::size_t>((x - x_lo_) / xw), x_bins_ - 1);
  auto yi = std::min(static_cast<std::size_t>((y - y_lo_) / yw), y_bins_ - 1);
  stats_[index(xi, yi)].add(value);
}

std::optional<double> Grid2D::cell_mean(std::size_t xi, std::size_t yi) const {
  const auto& s = stats_.at(index(xi, yi));
  if (s.empty()) return std::nullopt;
  return s.mean();
}

std::size_t Grid2D::cell_count(std::size_t xi, std::size_t yi) const {
  return stats_.at(index(xi, yi)).count();
}

std::vector<GridCell> Grid2D::cells() const {
  std::vector<GridCell> out;
  const double xw = (x_hi_ - x_lo_) / static_cast<double>(x_bins_);
  const double yw = (y_hi_ - y_lo_) / static_cast<double>(y_bins_);
  for (std::size_t yi = 0; yi < y_bins_; ++yi) {
    for (std::size_t xi = 0; xi < x_bins_; ++xi) {
      const auto& s = stats_[index(xi, yi)];
      if (s.empty()) continue;
      GridCell c;
      c.x_center = x_lo_ + xw * (static_cast<double>(xi) + 0.5);
      c.y_center = y_lo_ + yw * (static_cast<double>(yi) + 0.5);
      c.count = s.count();
      c.mean_value = s.mean();
      out.push_back(c);
    }
  }
  return out;
}

std::optional<double> Grid2D::max_cell_mean() const {
  std::optional<double> best;
  for (const auto& s : stats_) {
    if (s.empty()) continue;
    if (!best || s.mean() > *best) best = s.mean();
  }
  return best;
}

void Grid2D::merge(const Grid2D& other) {
  if (other.x_lo_ != x_lo_ || other.x_hi_ != x_hi_ || other.y_lo_ != y_lo_ ||
      other.y_hi_ != y_hi_ || other.x_bins_ != x_bins_ ||
      other.y_bins_ != y_bins_) {
    throw std::invalid_argument("Grid2D::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].merge(other.stats_[i]);
  }
}

std::optional<double> Grid2D::min_cell_mean() const {
  std::optional<double> worst;
  for (const auto& s : stats_) {
    if (s.empty()) continue;
    if (!worst || s.mean() < *worst) worst = s.mean();
  }
  return worst;
}

}  // namespace usaas::core
