#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

namespace usaas::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mu_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock{mu_};
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock{mu_};
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mu_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-destruction: keep taking tasks until the queue is empty,
      // even after stopping_ flipped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t hardware_parallelism() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

namespace {

[[nodiscard]] bool force_parallel() {
  static const bool force = [] {
    const char* v = std::getenv("USAAS_PARALLEL_FORCE");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return force;
}

}  // namespace

std::size_t effective_parallelism(const ThreadPool* pool) {
  if (pool == nullptr) return 1;
  if (force_parallel()) return pool->size();
  return std::min(pool->size(), hardware_parallelism());
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(pool, n, 1, body);
}

void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = effective_parallelism(pool);
  if (workers <= 1 || n == 1 || n <= grain) {
    body(0, n);
    return;
  }

  // A few chunks per worker smooths uneven per-chunk cost without making
  // the scheduling overhead visible; the grain floor keeps chunks from
  // shrinking below the point where dispatch dominates.
  std::size_t chunks = std::min(n, workers * 4);
  if (grain > 1) chunks = std::min(chunks, std::max<std::size_t>(1, n / grain));
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining{0};
    std::exception_ptr error;
  } done;
  done.remaining = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    pool->submit([&body, &done, begin, end] {
      std::exception_ptr error;
      try {
        body(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock{done.mu};
      if (error && !done.error) done.error = error;
      if (--done.remaining == 0) done.cv.notify_all();
    });
  }

  std::unique_lock lock{done.mu};
  done.cv.wait(lock, [&done] { return done.remaining == 0; });
  if (done.error) std::rethrow_exception(done.error);
}

}  // namespace usaas::core
