#include "core/telemetry/history.h"

#include <cmath>

namespace usaas::core::telemetry {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string series_key(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

TelemetryHistory::TelemetryHistory(Registry* registry,
                                   const HistoryConfig& cfg, bool enabled)
    : registry_{registry},
      cfg_{cfg},
      enabled_{enabled && registry != nullptr && cfg.slots > 0} {}

bool TelemetryHistory::tick(double now_seconds) {
  if (!enabled_) return false;
  if (now_seconds < next_due_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock{mu_};
  // Re-check under the lock: another thread may have folded this tick.
  if (now_seconds < next_due_.load(std::memory_order_relaxed)) return false;
  fold_locked(now_seconds);
  next_due_.store(now_seconds + cfg_.interval_seconds,
                  std::memory_order_relaxed);
  return true;
}

void TelemetryHistory::force_tick(double now_seconds) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock{mu_};
  fold_locked(now_seconds);
  next_due_.store(now_seconds + cfg_.interval_seconds,
                  std::memory_order_relaxed);
}

void TelemetryHistory::append_point_locked(const std::string& key,
                                           MetricKind kind,
                                           double cumulative_or_value,
                                           bool is_delta) {
  auto [it, created] = series_.try_emplace(key);
  SeriesData& data = it->second;
  if (created) {
    data.kind = kind;
    // Back-fill the ticks this series missed (times_ already holds the
    // current tick's stamp, so pad to size - 1).
    data.values.assign(times_.size() - 1, kNaN);
  }
  if (is_delta) {
    // First observation of a delta series reports the full cumulative
    // value: the series was born this interval, so the lifetime total IS
    // this interval's delta.
    data.values.push_back(cumulative_or_value - data.prev);
    data.prev = cumulative_or_value;
  } else {
    data.values.push_back(cumulative_or_value);
  }
}

void TelemetryHistory::fold_locked(double now_seconds) {
  times_.push_back(now_seconds);
  ++ticks_;
  const std::vector<MetricFamily> families = registry_->collect();
  for (const MetricFamily& family : families) {
    for (const Sample& sample : family.samples) {
      const std::string key = series_key(family.name, sample.labels);
      switch (family.kind) {
        case MetricKind::kCounter:
          append_point_locked(
              key, family.kind,
              sample.floating ? sample.value_d
                              : static_cast<double>(sample.value_u),
              /*is_delta=*/true);
          break;
        case MetricKind::kGauge:
          append_point_locked(key, family.kind, sample.value_d,
                              /*is_delta=*/false);
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot& h = sample.histogram;
          append_point_locked(key + ":count", family.kind,
                              static_cast<double>(h.count),
                              /*is_delta=*/true);
          append_point_locked(key + ":p50", family.kind, h.p50,
                              /*is_delta=*/false);
          append_point_locked(key + ":p95", family.kind, h.p95,
                              /*is_delta=*/false);
          append_point_locked(key + ":p99", family.kind, h.p99,
                              /*is_delta=*/false);
          break;
        }
      }
    }
  }
  // A series whose metric vanished from collect() cannot happen today
  // (registries never unregister), but stay aligned anyway: pad any
  // series that missed this tick.
  for (auto& [key, data] : series_) {
    if (data.values.size() < times_.size()) data.values.push_back(kNaN);
  }
  // Bound the rings.
  if (times_.size() > cfg_.slots) {
    const std::size_t drop = times_.size() - cfg_.slots;
    times_.erase(times_.begin(),
                 times_.begin() + static_cast<std::ptrdiff_t>(drop));
    for (auto& [key, data] : series_) {
      data.values.erase(
          data.values.begin(),
          data.values.begin() + static_cast<std::ptrdiff_t>(drop));
    }
  }
}

TelemetryHistory::Snapshot TelemetryHistory::snapshot() const {
  Snapshot snap;
  snap.interval_seconds = cfg_.interval_seconds;
  snap.slots = cfg_.slots;
  if (!enabled_) return snap;
  std::lock_guard<std::mutex> lock{mu_};
  snap.at_seconds = times_;
  snap.series.reserve(series_.size());
  for (const auto& [key, data] : series_) {
    snap.series.push_back(Series{key, data.kind, data.values});
  }
  return snap;
}

std::uint64_t TelemetryHistory::ticks() const {
  if (!enabled_) return 0;
  std::lock_guard<std::mutex> lock{mu_};
  return ticks_;
}

}  // namespace usaas::core::telemetry
