#include "core/telemetry/event_journal.h"

namespace usaas::core::telemetry {

const char* to_string(JournalEventKind k) {
  switch (k) {
    case JournalEventKind::kBreakerTransition: return "breaker-transition";
    case JournalEventKind::kCostBiasBump: return "cost-bias-bump";
    case JournalEventKind::kCostBiasDecay: return "cost-bias-decay";
    case JournalEventKind::kBackpressure: return "backpressure";
  }
  return "unknown";
}

const char* journal_breaker_state_name(double state) {
  if (state == 0.0) return "closed";
  if (state == 1.0) return "open";
  if (state == 2.0) return "half-open";
  return "unknown";
}

EventJournal::EventJournal(std::size_t capacity, bool enabled)
    : capacity_{capacity}, enabled_{enabled && capacity > 0} {}

void EventJournal::record(JournalEventKind kind, std::string_view tenant,
                          std::uint64_t trace_id, double at_seconds, double a,
                          double b) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock{mu_};
  JournalEvent ev;
  ev.order = ++recorded_;
  ev.trace_id = trace_id;
  ev.at_seconds = at_seconds;
  ev.a = a;
  ev.b = b;
  ev.kind = kind;
  ev.tenant.assign(tenant);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<JournalEvent> EventJournal::snapshot() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<JournalEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t EventJournal::recorded() const {
  std::lock_guard<std::mutex> lock{mu_};
  return recorded_;
}

std::uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock{mu_};
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

}  // namespace usaas::core::telemetry
