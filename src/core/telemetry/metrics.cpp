#include "core/telemetry/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace usaas::core::telemetry {

namespace {

/// Relaxed CAS add/max for atomic doubles (fetch_add on floating atomics
/// is C++20 but not uniformly lock-free; the CAS loop is portable and the
/// contention is already spread across shards).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::size_t histogram_bucket(double v) {
  if (!(v > 0.0)) return 0;  // zeros, negatives and NaN land in bucket 0
  const int exp = std::ilogb(v);  // floor(log2(v)): exact for edge values
  const long idx = static_cast<long>(exp) - kHistogramMinExp;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kHistogramBuckets)) {
    return kHistogramBuckets - 1;
  }
  return static_cast<std::size_t>(idx);
}

double histogram_bucket_upper(std::size_t bucket) {
  if (bucket + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, kHistogramMinExp + static_cast<int>(bucket) + 1);
}

bool telemetry_enabled_value(const char* env_value) {
  if (env_value == nullptr) return true;
  std::string v{env_value};
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return v != "off" && v != "0" && v != "false" && v != "no";
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum_before = 0;
  for (const auto& [upper, cum] : buckets) {
    if (static_cast<double>(cum) >= rank) {
      const std::uint64_t in_bucket = cum - cum_before;
      if (in_bucket == 0) continue;
      // The bucket's lower edge is half its upper edge (log2 buckets);
      // bucket 0 and the overflow bucket have no finite span, so clamp
      // to the exact max instead of interpolating past it.
      double lower = 0.0;
      double hi = upper;
      if (std::isinf(upper)) {
        hi = max;
        lower = max;
      } else if (upper > std::ldexp(1.0, kHistogramMinExp + 1)) {
        lower = upper / 2.0;
      }
      const double within = (rank - static_cast<double>(cum_before)) /
                            static_cast<double>(in_bucket);
      return std::min(max, lower + (hi - lower) * within);
    }
    cum_before = cum;
  }
  return max;
}

void Counter::add(std::uint64_t n) const {
  if (cells_ == nullptr) return;
  cells_->shards[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  if (cells_ == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& s : cells_->shards) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::set(double v) const {
  if (cell_ != nullptr) cell_->v.store(v, std::memory_order_relaxed);
}

void Gauge::add(double v) const {
  if (cell_ != nullptr) atomic_add(cell_->v, v);
}

double Gauge::value() const {
  return cell_ != nullptr ? cell_->v.load(std::memory_order_relaxed) : 0.0;
}

void Histogram::observe(double v) const {
  if (cells_ == nullptr) return;
  detail::HistogramShard& shard = cells_->shards[thread_shard()];
  shard.counts[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(shard.sum, v);
  atomic_max(shard.max, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  if (cells_ == nullptr) return snap;
  std::array<std::uint64_t, kHistogramBuckets> merged{};
  for (const detail::HistogramShard& shard : cells_->shards) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      merged[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (merged[b] == 0) continue;
    cum += merged[b];
    snap.buckets.emplace_back(histogram_bucket_upper(b), cum);
  }
  snap.count = cum;
  // Always expose the +Inf bucket so cumulative counts are complete even
  // when the top finite bucket is empty.
  if (snap.buckets.empty() || !std::isinf(snap.buckets.back().first)) {
    snap.buckets.emplace_back(std::numeric_limits<double>::infinity(), cum);
  }
  snap.p50 = snap.quantile(0.50);
  snap.p95 = snap.quantile(0.95);
  snap.p99 = snap.quantile(0.99);
  return snap;
}

Registry::Registry()
    : enabled_{telemetry_enabled_value(std::getenv("USAAS_TELEMETRY"))} {}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string sanitize_label_value(std::string_view value) {
  std::string out;
  out.reserve(std::min(value.size(), kMaxLabelValueBytes));
  for (const char c : value) {
    if (out.size() >= kMaxLabelValueBytes) break;
    const auto u = static_cast<unsigned char>(c);
    out.push_back((u < 0x20 || u == 0x7f) ? '_' : c);
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string render_labels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out.push_back(',');
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out.push_back('"');
  }
  return out;
}

Registry::Metric& Registry::get_or_create(std::string_view name,
                                          std::string_view help,
                                          const Labels& labels,
                                          MetricKind kind) {
  // Callers hold mu_.
  std::string rendered = render_labels(labels);
  std::string key{name};
  key.push_back('\x1f');
  key += rendered;
  const auto [it, inserted] = index_.try_emplace(key, metrics_.size());
  if (inserted) {
    auto metric = std::make_unique<Metric>();
    metric->name = name;
    metric->labels = std::move(rendered);
    metric->help = help;
    metric->kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        metric->counter = std::make_unique<detail::CounterCells>();
        break;
      case MetricKind::kGauge:
        metric->gauge = std::make_unique<detail::GaugeCell>();
        break;
      case MetricKind::kHistogram:
        metric->histogram = std::make_unique<detail::HistogramCells>();
        break;
    }
    metrics_.push_back(std::move(metric));
  }
  return *metrics_[it->second];
}

Counter Registry::counter(std::string_view name, std::string_view help,
                          const Labels& labels) {
  if (!enabled_) return Counter{};
  const std::lock_guard<std::mutex> lock{mu_};
  return Counter{
      get_or_create(name, help, labels, MetricKind::kCounter).counter.get()};
}

Gauge Registry::gauge(std::string_view name, std::string_view help,
                      const Labels& labels) {
  if (!enabled_) return Gauge{};
  const std::lock_guard<std::mutex> lock{mu_};
  return Gauge{
      get_or_create(name, help, labels, MetricKind::kGauge).gauge.get()};
}

Histogram Registry::histogram(std::string_view name, std::string_view help,
                              const Labels& labels) {
  if (!enabled_) return Histogram{};
  const std::lock_guard<std::mutex> lock{mu_};
  return Histogram{
      get_or_create(name, help, labels, MetricKind::kHistogram)
          .histogram.get()};
}

std::size_t Registry::metric_count() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return metrics_.size();
}

std::vector<MetricFamily> Registry::collect() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<MetricFamily> families;
  std::map<std::string, std::size_t> family_index;
  for (const auto& metric : metrics_) {
    const auto [it, inserted] =
        family_index.try_emplace(metric->name, families.size());
    if (inserted) {
      families.push_back(
          {metric->name, metric->help, metric->kind, {}});
    }
    MetricFamily& family = families[it->second];
    Sample sample;
    sample.labels = metric->labels;
    switch (metric->kind) {
      case MetricKind::kCounter:
        sample.value_u = Counter{metric->counter.get()}.value();
        break;
      case MetricKind::kGauge:
        sample.floating = true;
        sample.value_d = Gauge{metric->gauge.get()}.value();
        break;
      case MetricKind::kHistogram:
        sample.histogram = Histogram{metric->histogram.get()}.snapshot();
        break;
    }
    family.samples.push_back(std::move(sample));
  }
  return families;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace usaas::core::telemetry
