// Fixed-interval telemetry history: folds the registry's families into
// bounded per-series rings so "what was this tenant's shed rate / breaker
// state / cost bias over the last hour" is a query, not a guess.
//
// Each tick (default every 10 s, 360 slots = one hour) walks
// Registry::collect() and appends one point per series:
//
//   counter    -> delta since the previous tick (a rate, not a lifetime
//                 total — the thing a dashboard actually plots);
//   gauge      -> current value (breaker state, queue depth, cost bias);
//   histogram  -> four derived sub-series, `key:count` (observation
//                 delta) and `key:p50`/`key:p95`/`key:p99` (quantiles of
//                 the lifetime distribution at tick time).
//
// Series are keyed `name{labels}` exactly as the exposition layer keys
// samples, so a point here is joinable against /metrics.json by string
// equality. A series that appears mid-flight (a new tenant) is
// back-filled with NaN for the ticks before it existed; the JSON
// renderer emits those as null.
//
// Ticks are driven by callers that already hold "now" (the HTTP listener
// per request, tests explicitly with virtual time) — the history never
// reads a clock itself, which makes the USAAS_TELEMETRY=off contract
// (no clock reads, no allocations) trivial and keeps tests
// deterministic. The due-check is one relaxed atomic load, so ticking
// per request costs nothing between intervals.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/telemetry/metrics.h"

namespace usaas::core::telemetry {

struct HistoryConfig {
  double interval_seconds{10.0};
  std::size_t slots{360};
};

class TelemetryHistory {
 public:
  TelemetryHistory() = default;  ///< Disabled.
  TelemetryHistory(Registry* registry, const HistoryConfig& cfg,
                   bool enabled);

  TelemetryHistory(const TelemetryHistory&) = delete;
  TelemetryHistory& operator=(const TelemetryHistory&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const HistoryConfig& config() const { return cfg_; }

  /// Takes a snapshot iff `interval_seconds` have elapsed since the last
  /// one (the first call always snapshots). Returns whether it folded.
  bool tick(double now_seconds);

  /// Unconditional snapshot (tests, shutdown flush).
  void force_tick(double now_seconds);

  struct Series {
    std::string key;  ///< `name{labels}` (+ `:count`/`:p50`/... suffix).
    MetricKind kind{MetricKind::kCounter};
    /// One value per retained tick, aligned with Snapshot::at_seconds;
    /// NaN where the series did not exist yet.
    std::vector<double> values;
  };

  struct Snapshot {
    double interval_seconds{0.0};
    std::size_t slots{0};
    std::vector<double> at_seconds;  ///< Tick stamps, oldest first.
    std::vector<Series> series;      ///< Key-sorted.
  };

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::uint64_t ticks() const;

 private:
  struct SeriesData {
    MetricKind kind{MetricKind::kCounter};
    double prev{0.0};  ///< Previous cumulative value (counter / count).
    std::vector<double> values;  ///< Aligned with times_.
  };

  void fold_locked(double now_seconds);
  void append_point_locked(const std::string& key, MetricKind kind,
                           double cumulative_or_value, bool is_delta);

  Registry* registry_{nullptr};
  HistoryConfig cfg_{};
  bool enabled_{false};
  std::atomic<double> next_due_{-std::numeric_limits<double>::infinity()};
  mutable std::mutex mu_;
  std::vector<double> times_;
  std::uint64_t ticks_{0};
  std::map<std::string, SeriesData> series_;
};

}  // namespace usaas::core::telemetry
