// Process-wide, low-overhead metrics: counters, gauges and log2-bucketed
// latency histograms behind a named registry.
//
// The §5 USaaS service is operator-facing: ingest lag, query latency,
// cache efficacy and degradation must be visible at a glance (the
// crowdsourced-QoE monitoring need Hoßfeld et al. call out). The hot
// paths this observes push millions of records per second, so the design
// budget is "a single relaxed atomic add per increment":
//
//   * every Counter and Histogram is sharded across kMetricShards
//     cache-line-padded atomic cells; a writer touches only the cell its
//     thread hashes to (no contention between pool workers), and
//     collection merges the shards;
//   * Histograms bucket values into pure power-of-two ranges — bucket i
//     holds v in [2^(kHistogramMinExp+i), 2^(kHistogramMinExp+i+1)), so
//     a value landing exactly on a bucket's lower edge belongs to that
//     bucket, with no floating-point edge ambiguity. P50/P95/P99 are
//     interpolated from the merged buckets; max is tracked exactly;
//   * the registry hands out trivially-copyable handles (a single
//     pointer); a disabled registry (USAAS_TELEMETRY=off, or
//     Registry{false}) registers nothing and hands out null handles whose
//     operations are single-branch no-ops — the kill switch costs one
//     predictable branch, not an atomic.
//
// Metrics are registered get-or-create by (name, labels): asking twice
// returns the same cells, so independent components can share a metric
// without coordination. Collection (collect()) is the cold path: it
// snapshots every metric into MetricFamily records that the exposition
// layer (exposition.h) renders as Prometheus text or JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace usaas::core::telemetry {

/// How many cache-line-padded cells each counter/histogram shards across.
inline constexpr std::size_t kMetricShards = 16;
/// Histogram buckets: power-of-two ranges starting at 2^kHistogramMinExp
/// seconds (~0.93 ns); 48 buckets reach 2^17 s (~36 h) before the
/// overflow bucket.
inline constexpr std::size_t kHistogramBuckets = 48;
inline constexpr int kHistogramMinExp = -30;

/// Stable per-thread shard index in [0, kMetricShards). Assigned on first
/// use per thread (monotone round-robin), so pool workers land on
/// distinct cells.
[[nodiscard]] std::size_t thread_shard();

/// The bucket a value falls into: values <= 0 (and subnormal tails below
/// the first edge) land in bucket 0; bucket i >= 1 holds
/// [2^(kHistogramMinExp+i), 2^(kHistogramMinExp+i+1)); the last bucket
/// absorbs everything above.
[[nodiscard]] std::size_t histogram_bucket(double v);
/// Exclusive upper edge of a bucket (+infinity for the last).
[[nodiscard]] double histogram_bucket_upper(std::size_t bucket);

/// `USAAS_TELEMETRY` parsing: "off", "0", "false", "no" (any case)
/// disable; unset or anything else enables. Exposed for tests.
[[nodiscard]] bool telemetry_enabled_value(const char* env_value);

namespace detail {

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> v{0};
};

struct CounterCells {
  std::array<PaddedCount, kMetricShards> shards{};
};

struct GaugeCell {
  std::atomic<double> v{0.0};
};

struct alignas(64) HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> counts{};
  std::atomic<double> sum{0.0};
  std::atomic<double> max{0.0};
};

struct HistogramCells {
  std::array<HistogramShard, kMetricShards> shards{};
};

}  // namespace detail

/// Merged view of one histogram at collection time.
struct HistogramSnapshot {
  std::uint64_t count{0};
  double sum{0.0};
  double max{0.0};
  double p50{0.0};
  double p95{0.0};
  double p99{0.0};
  /// (upper edge, cumulative count) for every non-empty bucket, ascending;
  /// the final entry is the +Inf bucket (cumulative == count).
  std::vector<std::pair<double, std::uint64_t>> buckets;

  /// Quantile in [0, 1]: interpolated within the owning bucket, clamped
  /// to the exact max.
  [[nodiscard]] double quantile(double q) const;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// One collected sample. Counters carry their exact integer value in
/// `value_u` unless `floating` is set (cumulative-seconds counters);
/// gauges use `value_d`; histograms use `histogram`.
struct Sample {
  std::string labels;  // rendered `key="value",...` without braces
  bool floating{false};
  std::uint64_t value_u{0};
  double value_d{0.0};
  HistogramSnapshot histogram;
};

/// All samples sharing a metric name.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind{MetricKind::kCounter};
  std::vector<Sample> samples;
};

/// Label set at registration time, rendered in the given order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter handle. Null (from a disabled registry) makes
/// every operation a no-op; copyable and trivially destructible, so hot
/// paths keep handles by value.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  [[nodiscard]] std::uint64_t value() const;  // merged across shards
  [[nodiscard]] explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCells* cells) : cells_{cells} {}
  detail::CounterCells* cells_{nullptr};
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  void add(double v) const;
  [[nodiscard]] double value() const;
  [[nodiscard]] explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) : cell_{cell} {}
  detail::GaugeCell* cell_{nullptr};
};

/// Log2-bucketed distribution (typically seconds).
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCells* cells) : cells_{cells} {}
  detail::HistogramCells* cells_{nullptr};
};

/// Named metric registry. Thread-safe; registration is get-or-create by
/// (name, labels). Handles stay valid for the registry's lifetime (cells
/// are heap-held and never move). Not copyable or movable — components
/// borrow it by pointer.
class Registry {
 public:
  /// Enabled unless the USAAS_TELEMETRY environment variable disables
  /// telemetry (see telemetry_enabled_value). Read per construction, so
  /// tests can flip the variable around a fresh Registry.
  Registry();
  explicit Registry(bool enabled) : enabled_{enabled} {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  Counter counter(std::string_view name, std::string_view help = {},
                  const Labels& labels = {});
  Gauge gauge(std::string_view name, std::string_view help = {},
              const Labels& labels = {});
  Histogram histogram(std::string_view name, std::string_view help = {},
                      const Labels& labels = {});

  /// Registered metric count (0 for a disabled registry — the kill
  /// switch registers nothing, it does not merely hide values).
  [[nodiscard]] std::size_t metric_count() const;

  /// Snapshot every metric, grouped into families by name in first-
  /// registration order (samples in registration order within a family).
  [[nodiscard]] std::vector<MetricFamily> collect() const;

  /// The process-wide registry (the default sink for every service that
  /// is not handed an explicit one).
  [[nodiscard]] static Registry& global();

 private:
  struct Metric {
    std::string name;
    std::string labels;  // rendered
    std::string help;
    MetricKind kind{MetricKind::kCounter};
    std::unique_ptr<detail::CounterCells> counter;
    std::unique_ptr<detail::GaugeCell> gauge;
    std::unique_ptr<detail::HistogramCells> histogram;
  };

  Metric& get_or_create(std::string_view name, std::string_view help,
                        const Labels& labels, MetricKind kind);

  bool enabled_{true};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Metric>> metrics_;
  std::map<std::string, std::size_t> index_;  // name \x1f labels -> slot
};

/// Escapes a label value for the Prometheus text format (backslash,
/// double quote, newline).
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Maximum bytes of a client-controlled string admitted as a label value
/// by sanitize_label_value (longer inputs are truncated). Bounds both
/// exposition line length and the cardinality a hostile client can mint.
inline constexpr std::size_t kMaxLabelValueBytes = 64;

/// Defense-in-depth for *client-controlled* label values (tenant names
/// from the wire): replaces control bytes (< 0x20, 0x7f) — which
/// escape_label_value passes through verbatim and which can smuggle CR
/// or split exposition lines — with '_', truncates to
/// kMaxLabelValueBytes, and maps an empty result to "_". Distinct raw
/// names can collide after sanitization; colliding tenants share a label
/// series, which is the safe failure mode.
[[nodiscard]] std::string sanitize_label_value(std::string_view value);

/// Renders labels as `key="value",...` (no braces), in the given order.
[[nodiscard]] std::string render_labels(const Labels& labels);

}  // namespace usaas::core::telemetry
