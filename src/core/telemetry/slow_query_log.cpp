#include "core/telemetry/slow_query_log.h"

#include <algorithm>

namespace usaas::core::telemetry {

void SlowQueryLog::record(const SlowQueryEntry& entry) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock{mu_};
  for (SlowQueryEntry& resident : entries_) {
    if (resident.fingerprint != entry.fingerprint) continue;
    const std::uint64_t hits = resident.hits + 1;
    if (entry.seconds > resident.seconds) {
      resident = entry;  // the new worst run for this fingerprint
    }
    resident.hits = hits;
    // Freshness is unconditional: the worst-run fields may describe an
    // ancient run, but last_seen_version always names the corpus this
    // dashboard most recently ran against.
    resident.last_seen_version = entry.corpus_version;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    entries_.back().hits = 1;
    entries_.back().last_seen_version = entry.corpus_version;
    return;
  }
  auto fastest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        if (a.seconds != b.seconds) return a.seconds < b.seconds;
        return a.fingerprint < b.fingerprint;
      });
  if (entry.seconds <= fastest->seconds) return;  // newcomer not slower
  *fastest = entry;
  fastest->hits = 1;
  fastest->last_seen_version = entry.corpus_version;
  ++evictions_;
}

std::optional<SlowQueryEntry> SlowQueryLog::find(
    std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock{mu_};
  for (const SlowQueryEntry& resident : entries_) {
    if (resident.fingerprint == fingerprint) return resident;
  }
  return std::nullopt;
}

std::vector<SlowQueryEntry> SlowQueryLog::worst() const {
  std::vector<SlowQueryEntry> out;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

std::size_t SlowQueryLog::size() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return entries_.size();
}

std::uint64_t SlowQueryLog::evictions() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return evictions_;
}

}  // namespace usaas::core::telemetry
