#include "core/telemetry/slow_query_log.h"

#include <algorithm>

namespace usaas::core::telemetry {

void SlowQueryLog::record(const SlowQueryEntry& entry) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock{mu_};
  for (SlowQueryEntry& resident : entries_) {
    if (resident.fingerprint != entry.fingerprint) continue;
    const std::uint64_t hits = resident.hits + 1;
    if (entry.seconds > resident.seconds) {
      resident = entry;  // the new worst run for this fingerprint
    }
    resident.hits = hits;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    entries_.back().hits = 1;
    return;
  }
  auto fastest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        if (a.seconds != b.seconds) return a.seconds < b.seconds;
        return a.fingerprint < b.fingerprint;
      });
  if (entry.seconds <= fastest->seconds) return;  // newcomer not slower
  *fastest = entry;
  fastest->hits = 1;
  ++evictions_;
}

std::vector<SlowQueryEntry> SlowQueryLog::worst() const {
  std::vector<SlowQueryEntry> out;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

std::size_t SlowQueryLog::size() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return entries_.size();
}

std::uint64_t SlowQueryLog::evictions() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return evictions_;
}

}  // namespace usaas::core::telemetry
