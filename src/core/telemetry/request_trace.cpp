#include "core/telemetry/request_trace.h"

#include <algorithm>
#include <thread>

namespace usaas::core::telemetry {

const char* to_string(TraceOutcome o) {
  switch (o) {
    case TraceOutcome::kAdmitted: return "admitted";
    case TraceOutcome::kDegraded: return "degraded";
    case TraceOutcome::kShed: return "shed";
    case TraceOutcome::kExpired: return "expired";
  }
  return "unknown";
}

const char* to_string(TracePath p) {
  switch (p) {
    case TracePath::kNone: return "none";
    case TracePath::kCache: return "cache";
    case TracePath::kSummaryMerge: return "summary-merge";
    case TracePath::kScan: return "scan";
    case TracePath::kMixed: return "mixed";
    case TracePath::kInvalid: return "invalid";
    case TracePath::kExpired: return "expired";
  }
  return "unknown";
}

void TraceRecord::set_tenant(std::string_view name) {
  const std::size_t n = std::min(name.size(), kTenantBytes - 1);
  std::memcpy(tenant, name.data(), n);
  std::memset(tenant + n, 0, kTenantBytes - n);
}

std::string_view TraceRecord::tenant_view() const {
  return std::string_view{tenant, ::strnlen(tenant, kTenantBytes)};
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) return;
  cap_ = round_up_pow2(capacity);
  mask_ = cap_ - 1;
  slots_ = std::make_unique<Slot[]>(cap_);
}

void TraceRing::write_slot(Slot& slot, const TraceRecord& rec) {
  // Claim: CAS the sequence from even to odd. A concurrent writer that
  // lapped the ring onto this same slot spins here; slot claims are
  // ticketed, so this only contends after a full ring revolution. The
  // sequence must be reloaded every iteration — an odd value skips the
  // CAS, so a load hoisted out of the loop would spin on the stale odd
  // value forever. The yield matters on few-core hosts: the slot owner
  // may be preempted mid-write, and a bare spin burns the whole
  // timeslice before the owner can run again to release the slot.
  std::uint64_t seq;
  for (;;) {
    seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) == 0 &&
        slot.seq.compare_exchange_weak(seq, seq + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      break;
    }
    std::this_thread::yield();
  }
  std::uint64_t words[kTraceRecordWords];
  std::memcpy(words, &rec, sizeof(rec));
  for (std::size_t w = 0; w < kTraceRecordWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
}

bool TraceRing::read_slot(const Slot& slot, TraceRecord* out) const {
  const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
  if (before == 0 || (before & 1) != 0) return false;
  std::uint64_t words[kTraceRecordWords];
  for (std::size_t w = 0; w < kTraceRecordWords; ++w) {
    words[w] = slot.words[w].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != before) return false;
  std::memcpy(out, words, sizeof(*out));
  return true;
}

void TraceRing::push(const TraceRecord& rec) {
  if (cap_ == 0) return;
  const std::uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  write_slot(slots_[static_cast<std::size_t>(ticket) & mask_], rec);
}

void TraceRing::store(std::size_t slot, const TraceRecord& rec) {
  if (slot >= cap_) return;
  write_slot(slots_[slot], rec);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::vector<TraceRecord> out;
  if (cap_ == 0) return out;
  out.reserve(cap_);
  TraceRecord rec;
  for (std::size_t i = 0; i < cap_; ++i) {
    if (read_slot(slots_[i], &rec)) out.push_back(rec);
  }
  return out;
}

RequestTracer::RequestTracer(const TracerConfig& cfg, bool enabled)
    : cfg_{cfg},
      enabled_{enabled && (cfg.tail_entries > 0 || cfg.reservoir_entries > 0)},
      tail_{enabled_ ? cfg.tail_entries : 0},
      reservoir_{enabled_ && cfg.sampling == TraceSampling::kTail
                     ? cfg.reservoir_entries
                     : 0} {}

std::uint64_t RequestTracer::mint_id() {
  if (!enabled_) return 0;
  const std::uint64_t id =
      mix64(id_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  return id != 0 ? id : 1;
}

bool RequestTracer::interesting(const TraceRecord& rec) const {
  if (rec.outcome != static_cast<std::uint8_t>(TraceOutcome::kAdmitted)) {
    return true;
  }
  if (rec.served_by == static_cast<std::uint8_t>(TracePath::kInvalid)) {
    return true;
  }
  if ((rec.flags & (TraceRecord::kFlagBreakerShortCircuit |
                    TraceRecord::kFlagUnpayable)) != 0) {
    return true;
  }
  return rec.run_seconds >= cfg_.slow_seconds;
}

void RequestTracer::record(TraceRecord rec) {
  if (!enabled_) return;
  if (rec.run_seconds >= cfg_.slow_seconds) {
    rec.flags |= TraceRecord::kFlagSlow;
  }
  const bool tail = interesting(rec);
  rec.order = order_.fetch_add(1, std::memory_order_relaxed) + 1;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.sampling == TraceSampling::kAll || tail) {
    tail_kept_.fetch_add(1, std::memory_order_relaxed);
    tail_.push(rec);
    return;
  }
  // Algorithm R over the deterministic mix64 stream: the n-th fast
  // admitted trace survives with probability k/n.
  const std::uint64_t n =
      reservoir_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t k = reservoir_.capacity();
  if (k == 0) return;
  if (n <= k) {
    reservoir_kept_.fetch_add(1, std::memory_order_relaxed);
    reservoir_.store(static_cast<std::size_t>(n - 1), rec);
    return;
  }
  const std::uint64_t j = mix64(n) % n;
  if (j < k) {
    reservoir_kept_.fetch_add(1, std::memory_order_relaxed);
    reservoir_.store(static_cast<std::size_t>(j), rec);
  }
}

std::vector<TraceRecord> RequestTracer::snapshot() const {
  std::vector<TraceRecord> out = tail_.snapshot();
  std::vector<TraceRecord> sampled = reservoir_.snapshot();
  out.insert(out.end(), sampled.begin(), sampled.end());
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.order < b.order;
            });
  return out;
}

}  // namespace usaas::core::telemetry
