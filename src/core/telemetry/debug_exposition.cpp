#include "core/telemetry/debug_exposition.h"

#include <cmath>
#include <cstdio>

#include "core/telemetry/exposition.h"

namespace usaas::core::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

/// JSON has no NaN literal; NaN marks "series did not exist yet".
void append_value_or_null(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "null";
  } else {
    out += format_double(v);
  }
}

void append_trace(std::string& out, const TraceRecord& rec) {
  out += "{\"trace_id\": \"";
  append_hex(out, rec.trace_id);
  out += "\", \"order\": ";
  append_u64(out, rec.order);
  out += ", \"tenant\": \"" + json_escape(std::string{rec.tenant_view()});
  out += "\", \"outcome\": \"";
  out += to_string(static_cast<TraceOutcome>(rec.outcome));
  out += "\", \"served_by\": \"";
  out += to_string(static_cast<TracePath>(rec.served_by));
  out += "\", \"corpus_version\": ";
  append_u64(out, rec.corpus_version);
  out += ", \"staleness\": ";
  append_u64(out, rec.staleness);
  out += ", \"wait_seconds\": " + format_double(rec.wait_seconds);
  out += ", \"run_seconds\": " + format_double(rec.run_seconds);
  out += ", \"validate_seconds\": " + format_double(rec.validate_seconds);
  out += ", \"cache_probe_seconds\": " +
         format_double(rec.cache_probe_seconds);
  out += ", \"implicit_seconds\": " + format_double(rec.implicit_seconds);
  out += ", \"social_seconds\": " + format_double(rec.social_seconds);
  out += ", \"cost_tokens\": " + format_double(rec.cost_tokens);
  out += ", \"retry_after_seconds\": " +
         format_double(rec.retry_after_seconds);
  out += ", \"shards_from_summary\": ";
  append_u64(out, rec.shards_from_summary);
  out += ", \"shards_scanned\": ";
  append_u64(out, rec.shards_scanned);
  out += ", \"post_shards_from_summary\": ";
  append_u64(out, rec.post_shards_from_summary);
  out += ", \"post_shards_scanned\": ";
  append_u64(out, rec.post_shards_scanned);
  out += ", \"slow\": ";
  append_bool(out, (rec.flags & TraceRecord::kFlagSlow) != 0);
  out += ", \"queued\": ";
  append_bool(out, (rec.flags & TraceRecord::kFlagQueued) != 0);
  out += ", \"breaker_short_circuit\": ";
  append_bool(out,
              (rec.flags & TraceRecord::kFlagBreakerShortCircuit) != 0);
  out += ", \"unpayable\": ";
  append_bool(out, (rec.flags & TraceRecord::kFlagUnpayable) != 0);
  out += "}";
}

}  // namespace

std::string debug_traces_json(const RequestTracer& tracer) {
  std::string out = "{\n  \"enabled\": ";
  append_bool(out, tracer.enabled());
  out += ",\n  \"sampling\": \"";
  out += tracer.config().sampling == TraceSampling::kAll ? "all" : "tail";
  out += "\",\n  \"recorded\": ";
  append_u64(out, tracer.recorded());
  out += ",\n  \"tail_kept\": ";
  append_u64(out, tracer.tail_kept());
  out += ",\n  \"reservoir_seen\": ";
  append_u64(out, tracer.reservoir_seen());
  out += ",\n  \"reservoir_kept\": ";
  append_u64(out, tracer.reservoir_kept());
  out += ",\n  \"traces\": [";
  bool first = true;
  for (const TraceRecord& rec : tracer.snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_trace(out, rec);
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string debug_events_json(const EventJournal& journal) {
  std::string out = "{\n  \"enabled\": ";
  append_bool(out, journal.enabled());
  out += ",\n  \"recorded\": ";
  append_u64(out, journal.recorded());
  out += ",\n  \"dropped\": ";
  append_u64(out, journal.dropped());
  out += ",\n  \"events\": [";
  bool first = true;
  for (const JournalEvent& ev : journal.snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"order\": ";
    append_u64(out, ev.order);
    out += ", \"kind\": \"";
    out += to_string(ev.kind);
    out += "\", \"tenant\": \"" + json_escape(ev.tenant);
    out += "\", \"trace_id\": \"";
    append_hex(out, ev.trace_id);
    out += "\", \"at_seconds\": " + format_double(ev.at_seconds);
    switch (ev.kind) {
      case JournalEventKind::kBreakerTransition:
        out += ", \"from\": \"";
        out += journal_breaker_state_name(ev.a);
        out += "\", \"to\": \"";
        out += journal_breaker_state_name(ev.b);
        out += "\"";
        break;
      case JournalEventKind::kCostBiasBump:
      case JournalEventKind::kCostBiasDecay:
        out += ", \"old_bias\": " + format_double(ev.a);
        out += ", \"new_bias\": " + format_double(ev.b);
        break;
      case JournalEventKind::kBackpressure:
        out += ", \"depth\": " + format_double(ev.a);
        out += ", \"limit\": " + format_double(ev.b);
        break;
    }
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string debug_timeseries_json(const TelemetryHistory& history) {
  const TelemetryHistory::Snapshot snap = history.snapshot();
  std::string out = "{\n  \"enabled\": ";
  append_bool(out, history.enabled());
  out += ",\n  \"interval_seconds\": ";
  out += format_double(snap.interval_seconds);
  out += ",\n  \"slots\": ";
  append_u64(out, snap.slots);
  out += ",\n  \"ticks\": ";
  append_u64(out, history.ticks());
  out += ",\n  \"at_seconds\": [";
  for (std::size_t i = 0; i < snap.at_seconds.size(); ++i) {
    if (i > 0) out += ", ";
    out += format_double(snap.at_seconds[i]);
  }
  out += "],\n  \"series\": {";
  bool first = true;
  for (const TelemetryHistory::Series& series : snap.series) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + json_escape(series.key) + "\": {\"kind\": \"";
    out += to_string(series.kind);
    out += "\", \"values\": [";
    for (std::size_t i = 0; i < series.values.size(); ++i) {
      if (i > 0) out += ", ";
      append_value_or_null(out, series.values[i]);
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace usaas::core::telemetry
