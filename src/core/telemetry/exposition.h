// Exposition: renders collected metric families as Prometheus text or a
// JSON snapshot. Pure formatting over the MetricFamily model — no locks,
// no registry access — so the service layer can merge registry-native
// families with families derived from its own stats structs and render
// both through one code path (which is what keeps stats() and the
// exposition endpoint from ever disagreeing).
//
// Number formatting contract: integers (counter values, bucket counts)
// print exactly; doubles print with %.17g so a parse round-trips to the
// identical bit pattern.
#pragma once

#include <string>
#include <vector>

#include "core/telemetry/metrics.h"
#include "core/telemetry/slow_query_log.h"

namespace usaas::core::telemetry {

/// Formats a double with enough digits (%.17g) that parsing it back
/// yields the same value; integral values with small magnitude print
/// without an exponent or trailing zeros ("42", not "4.2e+01").
[[nodiscard]] std::string format_double(double v);

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, and control bytes as \uXXXX). Shared by the metrics and
/// /debug/* renderers.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Prometheus text exposition format (v0.0.4):
///   # HELP name help
///   # TYPE name counter|gauge|histogram
///   name{labels} value
/// Histograms emit name_bucket{...,le="X"} cumulative counts (always
/// ending at le="+Inf"), name_sum, name_count, interpolated
/// name{quantile="0.5|0.95|0.99"} samples and a name_max gauge line.
[[nodiscard]] std::string to_prometheus(
    const std::vector<MetricFamily>& families);

/// JSON snapshot: {"counters": {...}, "gauges": {...},
/// "histograms": {...}, "slow_queries": [...]}. Metrics are keyed
/// "name{labels}" (braces omitted when unlabeled); histogram values are
/// objects with count/sum/max/p50/p95/p99 and a buckets array of
/// {"le": edge, "count": cumulative}.
[[nodiscard]] std::string to_json(const std::vector<MetricFamily>& families,
                                  const std::vector<SlowQueryEntry>& slow);

}  // namespace usaas::core::telemetry
