// Bounded worst-queries log, keyed by canonical query fingerprint.
//
// Operators triaging a latency regression need the *shape* of the worst
// queries (fingerprint, fan-out, how the query was served), not a full
// request log. The log keeps the N slowest distinct fingerprints seen so
// far: re-running the same dashboard updates its entry (hit count, and
// the timing fields when the new run is slower) instead of flooding the
// log, and when a new fingerprint arrives at capacity it evicts the
// fastest resident entry — but only if the newcomer is slower.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace usaas::core::telemetry {

struct SlowQueryEntry {
  /// Canonical query fingerprint (version-independent): the identity a
  /// repeated dashboard shares across corpus mutations.
  std::uint64_t fingerprint{0};
  /// Worst observed duration for this fingerprint.
  double seconds{0.0};
  /// How that worst run was served ("cache", "summary-merge", "scan",
  /// "mixed", "invalid").
  std::string path;
  /// Fan-out shape of the worst run.
  std::uint64_t shards_from_summary{0};
  std::uint64_t shards_scanned{0};
  std::size_t sessions{0};
  std::uint64_t corpus_version{0};
  /// Times this fingerprint was recorded (all runs, not just the worst).
  std::uint64_t hits{1};
  /// Corpus version of the MOST RECENT run (every record, not just the
  /// worst). The timing fields above deliberately describe the worst run
  /// — which may be ancient — so freshness lives here: a hot dashboard's
  /// entry always carries the version it last ran against. Declared last
  /// so aggregate-initialized entries stay source-compatible.
  std::uint64_t last_seen_version{0};
  /// Trace ID of the worst run (travels with the timing fields above on
  /// same-fingerprint updates), linking a slow-log line to its full
  /// TraceRecord in /debug/traces. 0 = untraced run. Declared after
  /// last_seen_version for the same aggregate-init compatibility.
  std::uint64_t trace_id{0};
};

class SlowQueryLog {
 public:
  /// Capacity 0 disables the log (record() is a no-op).
  explicit SlowQueryLog(std::size_t capacity = 32) : capacity_{capacity} {}

  /// Thread-safe. Same fingerprint: bumps hits, stamps last_seen_version
  /// unconditionally, and adopts the entry's timing/fan-out fields when
  /// `entry.seconds` beats the resident worst. New fingerprint: appended
  /// while below capacity; at capacity it replaces the fastest resident
  /// entry iff it is slower than it.
  void record(const SlowQueryEntry& entry);

  /// Snapshot of one fingerprint's entry, if resident. The admission
  /// scheduler's cost estimator seeds from this history.
  [[nodiscard]] std::optional<SlowQueryEntry> find(
      std::uint64_t fingerprint) const;

  /// Snapshot sorted slowest-first (ties broken by fingerprint for a
  /// deterministic order).
  [[nodiscard]] std::vector<SlowQueryEntry> worst() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Entries displaced by a slower newcomer (not same-fingerprint
  /// updates).
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;
  std::uint64_t evictions_{0};
};

}  // namespace usaas::core::telemetry
