// RAII phase tracing: a TraceSpan times a scope into a latency Histogram,
// and lap() carves the scope into named phases with one clock read per
// boundary (not one per phase start + end).
//
//   TraceSpan span{query_seconds};      // clock read (if enabled)
//   validate();
//   span.lap(phase_validate_seconds);   // observes validate, resets lap
//   probe_cache();
//   span.lap(phase_cache_probe_seconds);
//   ...
//   const double total = span.finish(); // observes the whole span
//
// A span over a null Histogram (telemetry disabled) performs no clock
// reads at all — the kill switch removes the dominant cost of tracing,
// not just the atomic adds.
#pragma once

#include <chrono>

#include "core/telemetry/metrics.h"

namespace usaas::core::telemetry {

class TraceSpan {
 public:
  /// Starts timing iff `total` is a live histogram handle.
  explicit TraceSpan(Histogram total) : total_{total} {
    if (total_) {
      start_ = std::chrono::steady_clock::now();
      lap_ = start_;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Observes the time since the last lap (or the span start) into
  /// `phase`, restarts the lap clock, and returns the lap duration so
  /// callers can stamp per-phase seconds into execution reports without
  /// a second clock read. Returns 0.0 on a dead span (no clock read).
  double lap(Histogram phase) {
    if (!total_) return 0.0;
    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(now - lap_).count();
    phase.observe(seconds);
    lap_ = now;
    return seconds;
  }

  /// Stops the span now, observes the total duration, and returns it
  /// (0.0 on a dead span). Idempotent; the destructor then does nothing.
  double finish() {
    if (!total_) return 0.0;
    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(now - start_).count();
    total_.observe(seconds);
    total_ = Histogram{};
    return seconds;
  }

  ~TraceSpan() { finish(); }

 private:
  Histogram total_;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point lap_{};
};

}  // namespace usaas::core::telemetry
