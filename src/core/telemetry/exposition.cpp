#include "core/telemetry/exposition.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace usaas::core::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// "name{labels}" (or just "name" when unlabeled), optionally merging an
/// extra rendered label (used for the le="..." histogram bucket label).
std::string sample_key(const std::string& name, const std::string& labels,
                       const std::string& extra = {}) {
  std::string out = name;
  std::string inner = labels;
  if (!extra.empty()) {
    if (!inner.empty()) inner.push_back(',');
    inner += extra;
  }
  if (!inner.empty()) {
    out.push_back('{');
    out += inner;
    out.push_back('}');
  }
  return out;
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\": ";
  append_u64(out, h.count);
  out += ", \"sum\": " + format_double(h.sum);
  out += ", \"max\": " + format_double(h.max);
  out += ", \"p50\": " + format_double(h.p50);
  out += ", \"p95\": " + format_double(h.p95);
  out += ", \"p99\": " + format_double(h.p99);
  out += ", \"buckets\": [";
  bool first = true;
  for (const auto& [upper, cum] : h.buckets) {
    if (!first) out += ", ";
    first = false;
    out += "{\"le\": ";
    // JSON has no Infinity literal; mirror Prometheus' "+Inf" as a string.
    out += std::isinf(upper) ? std::string{"\"+Inf\""} : format_double(upper);
    out += ", \"count\": ";
    append_u64(out, cum);
    out += "}";
  }
  out += "]}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  // Exact integers below 2^53 print as plain integers: counter-like
  // doubles stay bit-for-bit comparable with their integer twins.
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string to_prometheus(const std::vector<MetricFamily>& families) {
  std::string out;
  for (const MetricFamily& family : families) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " + family.help + "\n";
    }
    out += "# TYPE " + family.name + " ";
    out += to_string(family.kind);
    out.push_back('\n');
    for (const Sample& sample : family.samples) {
      if (family.kind == MetricKind::kHistogram) {
        const HistogramSnapshot& h = sample.histogram;
        for (const auto& [upper, cum] : h.buckets) {
          out += sample_key(family.name + "_bucket", sample.labels,
                            "le=\"" + format_double(upper) + "\"");
          out.push_back(' ');
          append_u64(out, cum);
          out.push_back('\n');
        }
        out += sample_key(family.name + "_sum", sample.labels) + " " +
               format_double(h.sum) + "\n";
        out += sample_key(family.name + "_count", sample.labels) + " ";
        append_u64(out, h.count);
        out.push_back('\n');
        for (const auto& [q, qv] : {std::pair<const char*, double>{
                                        "0.5", h.p50},
                                    {"0.95", h.p95},
                                    {"0.99", h.p99}}) {
          out += sample_key(family.name, sample.labels,
                            std::string{"quantile=\""} + q + "\"") +
                 " " + format_double(qv) + "\n";
        }
        out += sample_key(family.name + "_max", sample.labels) + " " +
               format_double(h.max) + "\n";
      } else {
        out += sample_key(family.name, sample.labels);
        out.push_back(' ');
        if (sample.floating) {
          out += format_double(sample.value_d);
        } else {
          append_u64(out, sample.value_u);
        }
        out.push_back('\n');
      }
    }
  }
  return out;
}

std::string to_json(const std::vector<MetricFamily>& families,
                    const std::vector<SlowQueryEntry>& slow) {
  std::string counters, gauges, histograms;
  for (const MetricFamily& family : families) {
    for (const Sample& sample : family.samples) {
      std::string key = "\"";
      key += json_escape(sample_key(family.name, sample.labels));
      key += "\": ";
      switch (family.kind) {
        case MetricKind::kCounter:
          if (!counters.empty()) counters += ", ";
          counters += key;
          if (sample.floating) {
            counters += format_double(sample.value_d);
          } else {
            append_u64(counters, sample.value_u);
          }
          break;
        case MetricKind::kGauge:
          if (!gauges.empty()) gauges += ", ";
          gauges += key + format_double(sample.value_d);
          break;
        case MetricKind::kHistogram:
          if (!histograms.empty()) histograms += ", ";
          histograms += key;
          append_histogram_json(histograms, sample.histogram);
          break;
      }
    }
  }
  std::string out;
  out += "{\n  \"counters\": {";
  out += counters;
  out += "},\n  \"gauges\": {";
  out += gauges;
  out += "},\n  \"histograms\": {";
  out += histograms;
  out += "},\n  \"slow_queries\": [";
  bool first = true;
  for (const SlowQueryEntry& entry : slow) {
    if (!first) out += ", ";
    first = false;
    out += "{\"fingerprint\": \"";
    append_hex(out, entry.fingerprint);
    out += "\", \"seconds\": " + format_double(entry.seconds);
    out += ", \"path\": \"" + json_escape(entry.path) + "\"";
    out += ", \"shards_from_summary\": ";
    append_u64(out, entry.shards_from_summary);
    out += ", \"shards_scanned\": ";
    append_u64(out, entry.shards_scanned);
    out += ", \"sessions\": ";
    append_u64(out, static_cast<std::uint64_t>(entry.sessions));
    out += ", \"corpus_version\": ";
    append_u64(out, entry.corpus_version);
    out += ", \"hits\": ";
    append_u64(out, entry.hits);
    out += ", \"last_seen_version\": ";
    append_u64(out, entry.last_seen_version);
    out += ", \"trace_id\": \"";
    append_hex(out, entry.trace_id);
    out += "\"}";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace usaas::core::telemetry
