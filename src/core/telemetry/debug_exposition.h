// JSON renderers for the /debug/* observability endpoints: retained
// request traces, the control-plane event journal, and the telemetry
// time-series history. Pure formatting over snapshots (same contract as
// exposition.h) so tests can golden the exact bytes.
//
// All three renderers emit an "enabled" flag: a disabled subsystem
// renders an honest empty document instead of a 404, so a scrape can
// tell "nothing happened" from "telemetry is off".
#pragma once

#include <string>

#include "core/telemetry/event_journal.h"
#include "core/telemetry/history.h"
#include "core/telemetry/request_trace.h"

namespace usaas::core::telemetry {

/// /debug/traces: {"enabled", "sampling", ledger counters, "traces": [...]}
/// with traces oldest-completion-first and trace IDs as 16-hex strings.
[[nodiscard]] std::string debug_traces_json(const RequestTracer& tracer);

/// /debug/events: {"enabled", "recorded", "dropped", "events": [...]}
/// oldest first, with kind-specific payload field names (from/to states,
/// old/new bias, depth/limit).
[[nodiscard]] std::string debug_events_json(const EventJournal& journal);

/// /debug/timeseries: {"enabled", "interval_seconds", "slots", "ticks",
/// "at_seconds": [...], "series": {key: {"kind", "values": [...]}}} with
/// NaN back-fill rendered as null.
[[nodiscard]] std::string debug_timeseries_json(
    const TelemetryHistory& history);

}  // namespace usaas::core::telemetry
