// Request-scoped tracing: one bounded structured TraceRecord per request,
// kept in lock-free seqlock rings with tail-based retention.
//
// The paper's complaint about aggregate dashboards is that they cannot
// answer "what happened to *this* request": a gauge says the shed rate is
// 3%, not which tenant's query was shed, after how long a queue wait,
// with how much budget left. A TraceRecord is that answer — outcome,
// tenant, staleness, per-phase seconds, shard fan-out and serve path for
// one request — minted at the HTTP boundary (or adopted from
// X-Request-Id) and assembled by the admission scheduler when the
// outcome is decided.
//
// Retention is tail-based because the interesting requests are the rare
// ones: every shed / expired / degraded / invalid / slow /
// breaker-short-circuited request is always kept (the "tail" ring,
// overwriting oldest), while fast admitted requests — the overwhelming
// majority — are reservoir-sampled (Algorithm R over a deterministic
// splitmix64 stream, so tests replay bit-identically) into a second
// ring. `TraceSampling::kAll` routes everything into the tail ring for
// reconciliation tests: with capacity >= requests, every ledger row has
// exactly one trace.
//
// The rings are single-writer-per-slot seqlocks built entirely from
// atomics (slot sequence + word-wise payload), so TSan sees no data
// race: writers claim a slot by ticket, CAS the slot's sequence odd,
// store the record as relaxed 8-byte words, and release the sequence
// even; readers snapshot the words and keep the copy only if the
// sequence was stable, even and nonzero around the read. Claiming is a
// wait-free fetch_add; two writers collide on one slot only after a
// full ring lap.
//
// A default-constructed (disabled) tracer allocates nothing and reads no
// clocks — the USAAS_TELEMETRY=off contract.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

namespace usaas::core::telemetry {

/// Admission outcome as recorded in a trace. Mirrors the service layer's
/// four-way ledger (the scheduler converts explicitly; the numeric values
/// here are the wire/JSON contract).
enum class TraceOutcome : std::uint8_t {
  kAdmitted = 0,
  kDegraded = 1,
  kShed = 2,
  kExpired = 3,
};

/// How an admitted/degraded request was served.
enum class TracePath : std::uint8_t {
  kNone = 0,  ///< Never ran (shed, or expired before execution).
  kCache = 1,
  kSummaryMerge = 2,
  kScan = 3,
  kMixed = 4,
  kInvalid = 5,
  kExpired = 6,  ///< Ran but hit its deadline mid-execution.
};

[[nodiscard]] const char* to_string(TraceOutcome o);
[[nodiscard]] const char* to_string(TracePath p);

/// One request's trace. Plain trivially-copyable data, sized to a whole
/// number of 8-byte words so the ring can move it through relaxed atomic
/// word stores. The tenant name is truncated to fit — traces identify,
/// labels aggregate.
struct TraceRecord {
  static constexpr std::size_t kTenantBytes = 28;

  // Retention flags (`flags` below).
  static constexpr std::uint8_t kFlagSlow = 1u << 0;
  static constexpr std::uint8_t kFlagQueued = 1u << 1;
  static constexpr std::uint8_t kFlagBreakerShortCircuit = 1u << 2;
  static constexpr std::uint8_t kFlagUnpayable = 1u << 3;

  std::uint64_t trace_id{0};
  /// Completion order stamp assigned by RequestTracer::record (monotone
  /// across both rings; no clock involved).
  std::uint64_t order{0};
  std::uint64_t corpus_version{0};
  /// Versions behind head for degraded serves.
  std::uint64_t staleness{0};
  double wait_seconds{0.0};
  double run_seconds{0.0};
  double validate_seconds{0.0};
  double cache_probe_seconds{0.0};
  double implicit_seconds{0.0};
  double social_seconds{0.0};
  double cost_tokens{0.0};
  double retry_after_seconds{0.0};
  std::uint32_t shards_from_summary{0};
  std::uint32_t shards_scanned{0};
  std::uint32_t post_shards_from_summary{0};
  std::uint32_t post_shards_scanned{0};
  std::uint8_t outcome{0};    ///< TraceOutcome
  std::uint8_t served_by{0};  ///< TracePath
  std::uint8_t flags{0};
  std::uint8_t reserved{0};
  char tenant[kTenantBytes]{};  ///< NUL-padded, truncated.

  void set_tenant(std::string_view name);
  [[nodiscard]] std::string_view tenant_view() const;
};

static_assert(std::is_trivially_copyable_v<TraceRecord>);
static_assert(sizeof(TraceRecord) % sizeof(std::uint64_t) == 0);

inline constexpr std::size_t kTraceRecordWords =
    sizeof(TraceRecord) / sizeof(std::uint64_t);

/// Deterministic 64-bit mixer (splitmix64 finalizer). The tracer's ID
/// mint and reservoir sampling both draw from it so runs replay exactly.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Fixed-capacity overwriting ring of TraceRecords, readable while
/// written. Capacity is rounded up to a power of two; capacity 0 is a
/// valid disabled ring that allocates nothing.
class TraceRing {
 public:
  TraceRing() = default;
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Appends, overwriting the oldest record once full. No-op when
  /// capacity is 0.
  void push(const TraceRecord& rec);

  /// Writes a specific slot (reservoir sampling); slot must be below
  /// capacity().
  void store(std::size_t slot, const TraceRecord& rec);

  /// Copies out every slot that has ever been written, skipping slots
  /// that are mid-write (a skipped slot is simply retried by the next
  /// scrape — exposition is advisory, the ledger counters are exact).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] std::uint64_t pushed() const {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// 0 = never written; odd = write in progress; even > 0 = stable.
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kTraceRecordWords> words{};
  };

  void write_slot(Slot& slot, const TraceRecord& rec);
  [[nodiscard]] bool read_slot(const Slot& slot, TraceRecord* out) const;

  std::unique_ptr<Slot[]> slots_;
  std::size_t cap_{0};
  std::size_t mask_{0};
  std::atomic<std::uint64_t> cursor_{0};
};

enum class TraceSampling : std::uint8_t {
  /// Tail-based: keep every interesting trace, reservoir-sample the rest.
  kTail = 0,
  /// Keep everything in the tail ring (reconciliation / debugging).
  kAll = 1,
};

struct TracerConfig {
  /// Tail ring: shed / expired / degraded / invalid / slow /
  /// short-circuited traces (all traces under kAll).
  std::size_t tail_entries{256};
  /// Reservoir ring for fast admitted traces (kTail only).
  std::size_t reservoir_entries{128};
  TraceSampling sampling{TraceSampling::kTail};
  /// Admitted runs at or above this duration count as slow (tail-kept).
  double slow_seconds{0.050};
};

/// The per-service tracer: mints trace IDs and retains TraceRecords.
/// All methods are thread-safe; a disabled tracer is free (no rings, no
/// clocks, single-branch no-ops).
class RequestTracer {
 public:
  RequestTracer() = default;  ///< Disabled.
  RequestTracer(const TracerConfig& cfg, bool enabled);

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const TracerConfig& config() const { return cfg_; }

  /// Fresh nonzero trace ID (deterministic splitmix64 stream); 0 when
  /// disabled — callers treat 0 as "no trace".
  [[nodiscard]] std::uint64_t mint_id();

  /// Classifies, stamps `order`, and retains per the sampling policy.
  /// `rec` is taken by value because the tracer rewrites bookkeeping
  /// fields before storing.
  void record(TraceRecord rec);

  /// Every retained trace (tail + reservoir), oldest completion first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// True when the record would be tail-kept under kTail sampling.
  [[nodiscard]] bool interesting(const TraceRecord& rec) const;

  // -- Exact ledger (counted even when the rings overwrite) --
  [[nodiscard]] std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tail_kept() const {
    return tail_kept_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reservoir_seen() const {
    return reservoir_seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reservoir_kept() const {
    return reservoir_kept_.load(std::memory_order_relaxed);
  }

 private:
  TracerConfig cfg_{};
  bool enabled_{false};
  TraceRing tail_;
  TraceRing reservoir_;
  std::atomic<std::uint64_t> id_seq_{0};
  std::atomic<std::uint64_t> order_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> tail_kept_{0};
  std::atomic<std::uint64_t> reservoir_seen_{0};
  std::atomic<std::uint64_t> reservoir_kept_{0};
};

}  // namespace usaas::core::telemetry
