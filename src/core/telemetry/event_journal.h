// Bounded journal of rare control-plane events: circuit-breaker
// transitions, degrade-feedback cost-bias bumps/decays, and backpressure
// episodes, each back-linked to the trace that caused it.
//
// Gauges answer "what is the breaker state now"; the journal answers
// "when did it open, what tripped it, and which request was the straw" —
// the longitudinal question the paper says dashboards miss. Events are
// rare by construction (state *changes*, not samples), so a mutex-guarded
// overwrite ring is the right tool: the hot request path never records
// here unless the control plane actually moved.
//
// Event payload is two kind-specific doubles:
//   kBreakerTransition  a = from-state, b = to-state
//                       (0 = closed, 1 = open, 2 = half-open)
//   kCostBiasBump /     a = old bias, b = new bias
//   kCostBiasDecay
//   kBackpressure       a = pending depth, b = configured limit
//
// A default-constructed (disabled) journal allocates nothing and every
// record() is a single-branch no-op.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace usaas::core::telemetry {

enum class JournalEventKind : std::uint8_t {
  kBreakerTransition = 0,
  kCostBiasBump = 1,
  kCostBiasDecay = 2,
  kBackpressure = 3,
};

[[nodiscard]] const char* to_string(JournalEventKind k);

/// Breaker-state value names for the kBreakerTransition a/b payload.
[[nodiscard]] const char* journal_breaker_state_name(double state);

struct JournalEvent {
  std::uint64_t order{0};     ///< Monotone journal sequence (assigned).
  std::uint64_t trace_id{0};  ///< Causing request's trace (0 = none).
  double at_seconds{0.0};     ///< Caller-supplied clock seconds.
  double a{0.0};
  double b{0.0};
  JournalEventKind kind{JournalEventKind::kBreakerTransition};
  std::string tenant;
};

class EventJournal {
 public:
  EventJournal() = default;  ///< Disabled.
  EventJournal(std::size_t capacity, bool enabled);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Thread-safe; `at_seconds` comes from the caller's clock (the
  /// journal itself never reads one — callers already hold "now" at
  /// every emission site, and a disabled journal must read no clocks).
  void record(JournalEventKind kind, std::string_view tenant,
              std::uint64_t trace_id, double at_seconds, double a, double b);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<JournalEvent> snapshot() const;

  /// Total events ever recorded (keeps counting past overwrites).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring overwrite.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  std::size_t capacity_{0};
  bool enabled_{false};
  mutable std::mutex mu_;
  std::vector<JournalEvent> ring_;  ///< Ring once full; `head_` = oldest.
  std::size_t head_{0};
  std::uint64_t recorded_{0};
};

}  // namespace usaas::core::telemetry
