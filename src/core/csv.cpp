#include "core/csv.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace usaas::core {

CsvTable::CsvTable(std::vector<std::string> headers)
    : headers_{std::move(headers)} {
  if (headers_.empty()) {
    throw std::invalid_argument("CsvTable: no headers");
  }
}

void CsvTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void CsvTable::add_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

std::string CsvTable::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{cell};
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvTable::to_string() const {
  std::string out;
  auto append_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += escape(cells[i]);
    }
    out.push_back('\n');
  };
  append_line(headers_);
  for (const auto& row : rows_) append_line(row);
  return out;
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream file{path};
  if (!file) throw std::runtime_error("CsvTable: cannot open " + path);
  file << to_string();
  if (!file) throw std::runtime_error("CsvTable: write failed for " + path);
}

}  // namespace usaas::core
