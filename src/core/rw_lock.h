// A reader/writer lock for the live-ingest query path.
//
// §5's USaaS is a continuously-ingesting service: operator queries must
// keep answering while the streaming front-end flushes staged batches into
// the shard stores. Flushes are rare and batch-sized, queries are frequent
// and read-only — the classic many-readers/one-writer shape — so the shard
// table is guarded by one shared mutex: a flush holds it exclusively for
// the duration of a batch append, a query holds it shared across its whole
// shard fan-out. Readers therefore always observe a *flushed prefix* of
// the corpus (never a torn shard, never a half-appended batch), which is
// what makes streaming ingest bit-identical to batch ingest from the
// query's point of view. A single corpus-wide lock (rather than one lock
// per shard) is deliberate: per-shard locks cannot give a query a
// consistent cross-shard snapshot, and the writer path is a handful of
// batch appends per second at most.
//
// The acquisition counters exist for tests and operational introspection
// (how read-heavy is this service?); they are relaxed atomics and impose
// no ordering of their own.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace usaas::core {

class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  /// Shared (reader) guard: any number of concurrent holders, excluded
  /// only by a writer. Blocks while a writer holds the lock.
  [[nodiscard]] std::shared_lock<std::shared_mutex> read() {
    std::shared_lock<std::shared_mutex> guard{mu_};
    reads_.fetch_add(1, std::memory_order_relaxed);
    return guard;
  }

  /// Exclusive (writer) guard. Blocks until every reader released.
  [[nodiscard]] std::unique_lock<std::shared_mutex> write() {
    std::unique_lock<std::shared_mutex> guard{mu_};
    writes_.fetch_add(1, std::memory_order_relaxed);
    return guard;
  }

  /// Cumulative successful acquisitions (for tests / stats; relaxed).
  [[nodiscard]] std::uint64_t read_acquisitions() const {
    return reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t write_acquisitions() const {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_mutex mu_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
};

}  // namespace usaas::core
