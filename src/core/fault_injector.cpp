#include "core/fault_injector.h"

#include <cstdlib>
#include <string>

namespace usaas::core {

namespace {

[[nodiscard]] std::optional<double> env_double(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::strtod(v, nullptr);
}

[[nodiscard]] std::optional<std::uint64_t> env_u64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::strtoull(v, nullptr, 10);
}

/// Parses the compact `key=value,key=value` socket-fault spec (see the
/// header). Unknown keys are ignored so the spec can grow. Returns true
/// when any probability knob was set above zero (the spec arms the
/// injector).
bool apply_socket_spec(std::string_view spec, FaultInjector::Config& config) {
  bool armed = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = item.substr(0, eq);
    const std::string value{item.substr(eq + 1)};
    const double num = std::strtod(value.c_str(), nullptr);
    if (key == "accept_fail") {
      config.accept_failure_p = num;
      armed = armed || num > 0.0;
    } else if (key == "slow_read") {
      config.slow_read_p = num;
      armed = armed || num > 0.0;
    } else if (key == "slow_read_ms") {
      config.slow_read_delay =
          std::chrono::milliseconds{static_cast<std::int64_t>(num)};
    } else if (key == "partial") {
      config.partial_request_p = num;
      armed = armed || num > 0.0;
    } else if (key == "disconnect") {
      config.disconnect_p = num;
      armed = armed || num > 0.0;
    }
  }
  return armed;
}

}  // namespace

FaultInjector::FaultInjector(Config config)
    : config_{config}, rng_{config.seed} {}

std::optional<FaultInjector::Config> FaultInjector::config_from_env() {
  Config config;
  bool armed = false;
  if (const auto seed = env_u64("USAAS_FAULT_SEED")) config.seed = *seed;
  if (const auto n = env_u64("USAAS_FAULT_FAIL_FIRST_FLUSHES")) {
    config.fail_first_flushes = static_cast<std::size_t>(*n);
    armed = armed || *n > 0;
  }
  if (const auto p = env_double("USAAS_FAULT_FLUSH_FAIL_P")) {
    config.flush_failure_p = *p;
    armed = armed || *p > 0.0;
  }
  if (const auto p = env_double("USAAS_FAULT_CORRUPT_P")) {
    config.corrupt_record_p = *p;
    armed = armed || *p > 0.0;
  }
  if (const auto p = env_double("USAAS_FAULT_SLOW_FLUSH_P")) {
    config.slow_flush_p = *p;
    armed = armed || *p > 0.0;
  }
  if (const auto ms = env_u64("USAAS_FAULT_SLOW_FLUSH_MS")) {
    config.slow_flush_delay =
        std::chrono::milliseconds{static_cast<std::int64_t>(*ms)};
  }
  if (const char* spec = std::getenv("USAAS_FAULT_SOCKET");
      spec != nullptr && *spec != '\0') {
    armed = apply_socket_spec(spec, config) || armed;
  }
  if (!armed) return std::nullopt;
  return config;
}

bool FaultInjector::fail_this_flush() {
  const std::lock_guard<std::mutex> lock{mu_};
  const std::size_t attempt = flush_attempts_seen_++;
  bool fail = attempt < config_.fail_first_flushes;
  if (!fail && config_.flush_failure_p > 0.0) {
    fail = rng_.bernoulli(config_.flush_failure_p);
  }
  if (fail) ++flush_failures_;
  return fail;
}

std::chrono::milliseconds FaultInjector::flush_delay() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.slow_flush_p <= 0.0 ||
      config_.slow_flush_delay <= std::chrono::milliseconds{0}) {
    return std::chrono::milliseconds{0};
  }
  if (!rng_.bernoulli(config_.slow_flush_p)) {
    return std::chrono::milliseconds{0};
  }
  ++slow_flushes_;
  return config_.slow_flush_delay;
}

bool FaultInjector::corrupt_this_record() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.corrupt_record_p <= 0.0) return false;
  const bool corrupt = rng_.bernoulli(config_.corrupt_record_p);
  if (corrupt) ++corruptions_;
  return corrupt;
}

bool FaultInjector::fail_this_accept() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.accept_failure_p <= 0.0) return false;
  const bool fail = rng_.bernoulli(config_.accept_failure_p);
  if (fail) ++accept_failures_;
  return fail;
}

std::chrono::milliseconds FaultInjector::slow_read_stall() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.slow_read_p <= 0.0 ||
      config_.slow_read_delay <= std::chrono::milliseconds{0}) {
    return std::chrono::milliseconds{0};
  }
  if (!rng_.bernoulli(config_.slow_read_p)) {
    return std::chrono::milliseconds{0};
  }
  ++slow_reads_;
  return config_.slow_read_delay;
}

bool FaultInjector::truncate_this_request() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.partial_request_p <= 0.0) return false;
  const bool truncate = rng_.bernoulli(config_.partial_request_p);
  if (truncate) ++truncated_requests_;
  return truncate;
}

bool FaultInjector::disconnect_before_response() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.disconnect_p <= 0.0) return false;
  const bool disconnect = rng_.bernoulli(config_.disconnect_p);
  if (disconnect) ++disconnects_;
  return disconnect;
}

std::size_t FaultInjector::flush_failures_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return flush_failures_;
}

std::size_t FaultInjector::slow_flushes_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return slow_flushes_;
}

std::size_t FaultInjector::corruptions_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return corruptions_;
}

std::size_t FaultInjector::accept_failures_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return accept_failures_;
}

std::size_t FaultInjector::slow_reads_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return slow_reads_;
}

std::size_t FaultInjector::truncated_requests_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return truncated_requests_;
}

std::size_t FaultInjector::disconnects_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return disconnects_;
}

}  // namespace usaas::core
