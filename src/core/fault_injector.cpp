#include "core/fault_injector.h"

#include <cstdlib>
#include <string>

namespace usaas::core {

namespace {

[[nodiscard]] std::optional<double> env_double(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::strtod(v, nullptr);
}

[[nodiscard]] std::optional<std::uint64_t> env_u64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

FaultInjector::FaultInjector(Config config)
    : config_{config}, rng_{config.seed} {}

std::optional<FaultInjector::Config> FaultInjector::config_from_env() {
  Config config;
  bool armed = false;
  if (const auto seed = env_u64("USAAS_FAULT_SEED")) config.seed = *seed;
  if (const auto n = env_u64("USAAS_FAULT_FAIL_FIRST_FLUSHES")) {
    config.fail_first_flushes = static_cast<std::size_t>(*n);
    armed = armed || *n > 0;
  }
  if (const auto p = env_double("USAAS_FAULT_FLUSH_FAIL_P")) {
    config.flush_failure_p = *p;
    armed = armed || *p > 0.0;
  }
  if (const auto p = env_double("USAAS_FAULT_CORRUPT_P")) {
    config.corrupt_record_p = *p;
    armed = armed || *p > 0.0;
  }
  if (const auto p = env_double("USAAS_FAULT_SLOW_FLUSH_P")) {
    config.slow_flush_p = *p;
    armed = armed || *p > 0.0;
  }
  if (const auto ms = env_u64("USAAS_FAULT_SLOW_FLUSH_MS")) {
    config.slow_flush_delay =
        std::chrono::milliseconds{static_cast<std::int64_t>(*ms)};
  }
  if (!armed) return std::nullopt;
  return config;
}

bool FaultInjector::fail_this_flush() {
  const std::lock_guard<std::mutex> lock{mu_};
  const std::size_t attempt = flush_attempts_seen_++;
  bool fail = attempt < config_.fail_first_flushes;
  if (!fail && config_.flush_failure_p > 0.0) {
    fail = rng_.bernoulli(config_.flush_failure_p);
  }
  if (fail) ++flush_failures_;
  return fail;
}

std::chrono::milliseconds FaultInjector::flush_delay() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.slow_flush_p <= 0.0 ||
      config_.slow_flush_delay <= std::chrono::milliseconds{0}) {
    return std::chrono::milliseconds{0};
  }
  if (!rng_.bernoulli(config_.slow_flush_p)) {
    return std::chrono::milliseconds{0};
  }
  ++slow_flushes_;
  return config_.slow_flush_delay;
}

bool FaultInjector::corrupt_this_record() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (config_.corrupt_record_p <= 0.0) return false;
  const bool corrupt = rng_.bernoulli(config_.corrupt_record_p);
  if (corrupt) ++corruptions_;
  return corrupt;
}

std::size_t FaultInjector::flush_failures_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return flush_failures_;
}

std::size_t FaultInjector::slow_flushes_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return slow_flushes_;
}

std::size_t FaultInjector::corruptions_injected() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return corruptions_;
}

}  // namespace usaas::core
