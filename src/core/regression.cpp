#include "core/regression.h"

#include <cmath>

#include "core/correlation.h"
#include "core/stats.h"

namespace usaas::core {

SimpleFit fit_simple(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_simple: need >= 2 paired points");
  }
  const double vx = variance(xs);
  SimpleFit f;
  if (vx == 0.0) {
    f.intercept = mean(ys);
    f.slope = 0.0;
    f.r2 = 0.0;
    return f;
  }
  f.slope = covariance(xs, ys) / vx;
  f.intercept = mean(ys) - f.slope * mean(xs);
  const double r = pearson(xs, ys);
  f.r2 = r * r;
  return f;
}

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) {
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[pivot * n + c], a[col * n + c]);
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i * n + c] * x[c];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

LinearModel LinearModel::fit(std::span<const double> rows,
                             std::size_t num_features,
                             std::span<const double> ys, double ridge) {
  if (num_features == 0) throw std::invalid_argument("fit: no features");
  if (ys.empty() || rows.size() != ys.size() * num_features) {
    throw std::invalid_argument("fit: shape mismatch");
  }
  if (ridge < 0.0) throw std::invalid_argument("fit: negative ridge");
  const std::size_t n = ys.size();
  const std::size_t p = num_features + 1;  // +1 for intercept column

  // Normal equations: (X^T X + ridge I) beta = X^T y, with X = [1 | rows].
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  std::vector<double> xi(p, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t f = 0; f < num_features; ++f) {
      xi[f + 1] = rows[r * num_features + f];
    }
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += xi[i] * ys[r];
      for (std::size_t j = 0; j < p; ++j) xtx[i * p + j] += xi[i] * xi[j];
    }
  }
  // Do not regularize the intercept.
  for (std::size_t i = 1; i < p; ++i) xtx[i * p + i] += ridge;

  const auto beta = solve_linear_system(std::move(xtx), std::move(xty));
  LinearModel m;
  m.intercept_ = beta[0];
  m.coef_.assign(beta.begin() + 1, beta.end());
  return m;
}

double LinearModel::predict(std::span<const double> features) const {
  if (features.size() != coef_.size()) {
    throw std::invalid_argument("predict: feature count mismatch");
  }
  double acc = intercept_;
  for (std::size_t i = 0; i < coef_.size(); ++i) {
    acc += coef_[i] * features[i];
  }
  return acc;
}

RegressionMetrics evaluate_predictions(std::span<const double> predicted,
                                       std::span<const double> actual) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    throw std::invalid_argument("evaluate_predictions: shape mismatch");
  }
  const std::size_t n = predicted.size();
  double abs_acc = 0.0;
  double sq_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = predicted[i] - actual[i];
    abs_acc += std::fabs(e);
    sq_acc += e * e;
  }
  RegressionMetrics m;
  m.mae = abs_acc / static_cast<double>(n);
  m.rmse = std::sqrt(sq_acc / static_cast<double>(n));
  const double var_y = variance(actual);
  m.r2 = var_y == 0.0 ? 0.0 : 1.0 - (sq_acc / static_cast<double>(n)) / var_y;
  return m;
}

}  // namespace usaas::core
