// A bounded least-recently-used cache with hit/miss/eviction accounting.
//
// The insight cache (QueryService) is the primary user: repeated operator
// dashboards re-run identical queries, so a small LRU keyed on (canonical
// query fingerprint, corpus version) turns them into O(1) lookups. The
// container is deliberately unsynchronized — callers serialize access
// (QueryService guards it with its own mutex so lookups stay cheap under
// the corpus read lock).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace usaas::core {

/// Bounded LRU map. `capacity() == 0` disables storage: find() always
/// misses and insert() is a no-op, so callers can keep one code path.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_{capacity} {}

  /// Returns the cached value (promoting it to most-recently-used) or
  /// nullptr. The pointer is valid until the next non-const call. A
  /// disabled cache (capacity 0) reports no traffic at all: find() cannot
  /// hit, so counting its calls as misses would poison hit-rate math for
  /// a cache that was configured off rather than merely cold.
  [[nodiscard]] const Value* find(const Key& key) {
    if (capacity_ == 0) return nullptr;
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  /// Presence probe: no promotion, no hit/miss accounting. For cost
  /// estimators that want to know whether a key WOULD hit without
  /// perturbing either the LRU order or the stats.
  [[nodiscard]] bool contains(const Key& key) const {
    return index_.find(key) != index_.end();
  }

  /// Inserts or replaces; the new/updated entry becomes most recent.
  /// `bytes` is the caller's estimate of the value's footprint, summed
  /// into bytes() for observability (it does not bound the cache).
  void insert(const Key& key, Value value, std::size_t bytes = 0) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      bytes_ += bytes;
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      const Entry& oldest = entries_.back();
      bytes_ -= oldest.bytes;
      index_.erase(oldest.key);
      entries_.pop_back();
      ++evictions_;
    }
    entries_.push_front(Entry{key, std::move(value), bytes});
    index_[key] = entries_.begin();
    bytes_ += bytes;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes{0};
  };

  std::size_t capacity_;
  std::size_t bytes_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace usaas::core
