// Bootstrap confidence intervals.
//
// The paper's curves are "uneven due to unknown confounders" (§3.2) and only
// broad trends matter; the benches therefore report bootstrap CIs on binned
// means/medians so a reader can tell signal from bin noise.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace usaas::core {

struct ConfidenceInterval {
  double lo{0.0};
  double hi{0.0};
  double point{0.0};
};

/// Percentile-bootstrap CI of an arbitrary statistic. `level` in (0, 1),
/// e.g. 0.95. Deterministic for a given seed.
[[nodiscard]] ConfidenceInterval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    double level, std::size_t resamples, std::uint64_t seed);

/// Convenience wrappers for the two statistics the pipelines use.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                                   double level,
                                                   std::size_t resamples,
                                                   std::uint64_t seed);
[[nodiscard]] ConfidenceInterval bootstrap_median_ci(std::span<const double> xs,
                                                     double level,
                                                     std::size_t resamples,
                                                     std::uint64_t seed);

}  // namespace usaas::core
