// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulators takes an explicit seed so
// that each figure-reproduction bench is bit-for-bit repeatable. We carry
// our own xoshiro256** implementation instead of <random> engines because
// (a) its streams are identical across standard libraries, and (b) we rely
// on cheap stream splitting (one independent child generator per call /
// user / day) which std engines do not offer.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace usaas::core {

/// SplitMix64: used to expand a single 64-bit seed into the 256-bit state
/// of xoshiro256**, and as the mixing function for stream derivation.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) with convenience distributions.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; `salt` distinguishes siblings.
  /// Deterministic: same parent seed + same salt => same child stream.
  [[nodiscard]] Rng split(std::uint64_t salt) const;

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw; p outside [0,1] is clamped.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (caches the spare deviate).
  double normal();
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Poisson counting draw (Knuth for small mean, normal approx for large).
  std::int64_t poisson(double mean);

  /// Pareto (Lomax-shifted) heavy-tailed draw with minimum xm and shape a.
  double pareto(double xm, double alpha);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Uniformly picks one element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("pick from empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double spare_normal_{0.0};
  bool has_spare_normal_{false};
};

}  // namespace usaas::core
