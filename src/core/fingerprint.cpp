#include "core/fingerprint.h"

#include <cstring>

namespace usaas::core {

Fingerprint& Fingerprint::mix(std::string_view s) {
  mix(static_cast<std::uint64_t>(s.size()));
  std::uint64_t word = 0;
  std::size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    std::memcpy(&word, s.data() + i, 8);
    mix(word);
  }
  if (i < s.size()) {
    word = 0;
    std::memcpy(&word, s.data() + i, s.size() - i);
    mix(word);
  }
  return *this;
}

}  // namespace usaas::core
