// The call-corpus generator.
//
// Produces a stream of CallRecords resembling the paper's Jan-Apr 2022
// enterprise dataset, in two sampling regimes:
//   * kPopulation — network baselines drawn from the access-technology
//     mixture (realistic joint distribution; used by the MOS study and the
//     QueryService examples);
//   * kSweep — one metric swept uniformly with the others clamped inside
//     the paper's control windows (used by the Fig 1-3 benches to guarantee
//     even bin occupancy, mirroring the paper's "other metrics roughly
//     constant" filter).
// Telemetry can be fully simulated tick-by-tick (kFull) or summarized
// analytically (kFast) for large corpora.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "confsim/behavior.h"
#include "confsim/call.h"
#include "confsim/mos.h"
#include "core/date.h"
#include "core/rng.h"
#include "netsim/path_model.h"

namespace usaas::confsim {

enum class ConditionSampling {
  kPopulation,
  kSweep,
};

enum class TelemetryMode {
  /// Per-5-second PathModel simulation fed through TelemetryCollector.
  kFull,
  /// Baseline + analytic within-session dispersion (two orders of
  /// magnitude faster; session means match kFull closely).
  kFast,
};

struct DatasetConfig {
  std::uint64_t seed{20220101};
  std::size_t num_calls{1000};
  core::Date first_day{2022, 1, 3};
  core::Date last_day{2022, 4, 29};
  ConditionSampling sampling{ConditionSampling::kPopulation};
  TelemetryMode telemetry{TelemetryMode::kFast};
  /// Sweep parameters (only used when sampling == kSweep).
  netsim::Metric sweep_metric{netsim::Metric::kLatency};
  double sweep_lo{0.0};
  double sweep_hi{300.0};
  netsim::ControlWindows control_windows{};
  /// Whether the swept baseline applies per participant (true — each user
  /// has their own last mile) or per call.
  bool per_participant_conditions{true};
  /// Meeting size: 3 + Poisson(mean_extra_participants), capped.
  double mean_extra_participants{3.0};
  int max_participants{25};
  /// Scheduled meeting length (minutes): lognormal around 30.
  double duration_mu{3.4};
  double duration_sigma{0.35};
  int min_minutes{5};
  int max_minutes{120};
  /// Apply the paper's enterprise filter during generation.
  bool enterprise_only{true};
  BehaviorParams behavior{default_behavior_params()};
  netsim::MitigationConfig mitigation{};
  MosModelParams mos{};
};

class CallDatasetGenerator {
 public:
  explicit CallDatasetGenerator(DatasetConfig config);

  /// Generates the full corpus.
  [[nodiscard]] std::vector<CallRecord> generate() const;

  /// Streaming generation: invokes sink per call, never holding the corpus
  /// in memory. Used by the large figure sweeps.
  void generate_stream(const std::function<void(const CallRecord&)>& sink) const;

  [[nodiscard]] const DatasetConfig& config() const { return config_; }

 private:
  [[nodiscard]] CallRecord make_call(std::uint64_t call_id,
                                     core::Rng& rng) const;
  [[nodiscard]] netsim::SessionNetworkSummary make_summary(
      const netsim::NetworkConditions& baseline, int minutes,
      core::Rng& rng) const;

  DatasetConfig config_;
  UserBehaviorModel behavior_model_;
  MosModel mos_model_;
};

}  // namespace usaas::confsim
