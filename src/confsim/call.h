// Call / participant record types — the rows of the simulated Teams corpus.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "confsim/platform.h"
#include "core/date.h"
#include "core/units.h"
#include "netsim/profiles.h"
#include "netsim/telemetry.h"

namespace usaas::confsim {

/// One participant's session within a call, as the analysis pipeline sees
/// it: network session summary + engagement actions + optional MOS.
struct ParticipantRecord {
  std::uint64_t user_id{0};
  Platform platform{Platform::kWindowsPc};
  /// Size of the call this session belonged to (a §6 confounder).
  int meeting_size{3};
  netsim::AccessTechnology access{netsim::AccessTechnology::kCable};
  netsim::SessionNetworkSummary network;
  double presence_pct{100.0};
  double cam_on_pct{0.0};
  double mic_on_pct{0.0};
  bool dropped_early{false};
  /// Present only for the sampled-feedback fraction of sessions.
  std::optional<core::Mos> mos;
};

/// A multi-party call.
struct CallRecord {
  std::uint64_t call_id{0};
  core::DateTime start;
  int scheduled_minutes{30};
  std::vector<ParticipantRecord> participants;

  [[nodiscard]] int size() const {
    return static_cast<int>(participants.size());
  }
};

/// The paper's §3.1 dataset filter: "enterprise calls during business hours
/// (9 AM - 8 PM EST) on weekdays with 3+ participants, all in the US."
[[nodiscard]] inline bool passes_enterprise_filter(const CallRecord& call) {
  return call.size() >= 3 && call.start.date.is_weekday() &&
         core::in_business_hours(call.start.time);
}

}  // namespace usaas::confsim
