#include "confsim/mos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::confsim {

MosModel::MosModel(MosModelParams params) : params_{params} {
  if (params_.sampling_rate < 0.0 || params_.sampling_rate > 1.0) {
    throw std::invalid_argument("MosModel: sampling_rate out of [0,1]");
  }
  if (params_.gamma <= 0.0) {
    throw std::invalid_argument("MosModel: gamma must be positive");
  }
}

double MosModel::expected_rating(double experience_impairment) const {
  const double x = std::clamp(experience_impairment, 0.0, 1.0);
  return params_.best_rating -
         params_.impairment_range * std::pow(x, params_.gamma);
}

core::Mos MosModel::rate(double experience_impairment, double user_bias,
                         core::Rng& rng) const {
  double r = expected_rating(experience_impairment) + user_bias +
             rng.normal(0.0, params_.rating_noise);
  if (params_.quantize) r = std::round(r);
  return core::clamp_mos(core::Mos{r});
}

std::optional<core::Mos> MosModel::maybe_collect(double experience_impairment,
                                                 double user_bias,
                                                 core::Rng& rng) const {
  if (!rng.bernoulli(params_.sampling_rate)) return std::nullopt;
  if (!rng.bernoulli(params_.response_rate)) return std::nullopt;
  return rate(experience_impairment, user_bias, rng);
}

double MosModel::draw_user_bias(core::Rng& rng) const {
  return rng.normal(0.0, params_.user_bias_sigma);
}

}  // namespace usaas::confsim
