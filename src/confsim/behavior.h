// The user behaviour model: session conditions -> engagement actions.
//
// Given a participant's session-mean network conditions, platform, meeting
// size and personal conditioning, computes the *expected* engagement
// metrics (Presence / Cam On / Mic On as percentages, plus early-drop-off
// probability), then realizes a noisy observation. The expectation half is
// exposed separately so tests can check curve shapes without sampling noise.
#pragma once

#include "confsim/behavior_params.h"
#include "confsim/platform.h"
#include "core/rng.h"
#include "core/units.h"
#include "netsim/conditions.h"
#include "netsim/loss.h"

namespace usaas::confsim {

/// Damage (fraction of engagement lost, each in [0, 1]) per channel.
struct ChannelDamage {
  double presence{0.0};
  double cam{0.0};
  double mic{0.0};
  /// Probability the user abandons the call early.
  double drop_off{0.0};
  /// Overall experienced impairment in [0, 1]; feeds the MOS model.
  double experience{0.0};
};

/// Context beyond network conditions that shapes behaviour (the paper's
/// confounders: platform, meeting size, long-term conditioning).
struct BehaviorContext {
  Platform platform{Platform::kWindowsPc};
  int meeting_size{3};
  /// Personal sensitivity multiplier (1.0 = average; <1 = acclimatized).
  double conditioning{1.0};
};

/// Observed engagement for one participant session.
struct Engagement {
  double presence_pct{100.0};  // capped at 100 per the paper
  double cam_on_pct{0.0};
  double mic_on_pct{0.0};
  bool dropped_early{false};
};

class UserBehaviorModel {
 public:
  explicit UserBehaviorModel(
      BehaviorParams params = default_behavior_params(),
      netsim::MitigationConfig mitigation = {});

  /// Pure damage computation — deterministic, no baselines or noise.
  [[nodiscard]] ChannelDamage damage(const netsim::NetworkConditions& c,
                                     const BehaviorContext& ctx) const;

  /// Expected engagement (no noise): baselines scaled by (1 - damage),
  /// with the drop-off term folded into presence.
  [[nodiscard]] Engagement expected_engagement(
      const netsim::NetworkConditions& c, const BehaviorContext& ctx) const;

  /// Noisy realization of one participant's behaviour.
  [[nodiscard]] Engagement realize(const netsim::NetworkConditions& c,
                                   const BehaviorContext& ctx,
                                   core::Rng& rng) const;

  [[nodiscard]] const BehaviorParams& params() const { return params_; }
  [[nodiscard]] const netsim::MitigationConfig& mitigation() const {
    return mitigation_;
  }

 private:
  BehaviorParams params_;
  netsim::MitigationConfig mitigation_;
};

}  // namespace usaas::confsim
