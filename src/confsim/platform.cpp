#include "confsim/platform.h"

#include <array>

namespace usaas::confsim {

const char* to_string(Platform p) {
  switch (p) {
    case Platform::kWindowsPc: return "windows-pc";
    case Platform::kMacPc: return "mac-pc";
    case Platform::kIos: return "ios";
    case Platform::kAndroid: return "android";
  }
  return "unknown";
}

PlatformTraits traits_for(Platform p) {
  PlatformTraits t;
  t.platform = p;
  switch (p) {
    case Platform::kWindowsPc:
      t.sensitivity = 1.0;
      break;
    case Platform::kMacPc:
      t.sensitivity = 0.9;
      t.base_cam_offset = 2.0;
      break;
    case Platform::kIos:
      t.sensitivity = 1.3;
      t.base_presence_offset = -4.0;
      t.base_cam_offset = -12.0;
      t.base_mic_offset = -6.0;
      break;
    case Platform::kAndroid:
      // Wider device spread => weaker app-level optimizations on average.
      t.sensitivity = 1.45;
      t.base_presence_offset = -5.0;
      t.base_cam_offset = -15.0;
      t.base_mic_offset = -7.0;
      break;
  }
  return t;
}

std::span<const PlatformShare> default_platform_mix() {
  static constexpr std::array<PlatformShare, 4> kMix = {{
      {Platform::kWindowsPc, 0.62},
      {Platform::kMacPc, 0.18},
      {Platform::kIos, 0.12},
      {Platform::kAndroid, 0.08},
  }};
  return kMix;
}

}  // namespace usaas::confsim
