#include "confsim/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::confsim {

CallDatasetGenerator::CallDatasetGenerator(DatasetConfig config)
    : config_{std::move(config)},
      behavior_model_{config_.behavior, config_.mitigation},
      mos_model_{config_.mos} {
  if (config_.num_calls == 0) {
    throw std::invalid_argument("DatasetConfig: num_calls == 0");
  }
  if (config_.last_day < config_.first_day) {
    throw std::invalid_argument("DatasetConfig: last_day < first_day");
  }
  if (config_.max_participants < 3) {
    throw std::invalid_argument("DatasetConfig: max_participants < 3");
  }
}

namespace {

Platform draw_platform(core::Rng& rng) {
  const auto mix = default_platform_mix();
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& m : mix) weights.push_back(m.weight);
  return mix[rng.weighted_index(weights)].platform;
}

netsim::AccessTechnology draw_access(core::Rng& rng) {
  const auto mix = netsim::default_access_mixture();
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& m : mix) weights.push_back(m.weight);
  return mix[rng.weighted_index(weights)].technology;
}

}  // namespace

netsim::SessionNetworkSummary CallDatasetGenerator::make_summary(
    const netsim::NetworkConditions& baseline, int minutes,
    core::Rng& rng) const {
  if (config_.telemetry == TelemetryMode::kFull) {
    const auto ticks = static_cast<std::size_t>(
        std::max(1.0, minutes * 60.0 / netsim::kSampleIntervalSeconds));
    const auto path = netsim::simulate_path(baseline, netsim::PathModelConfig{},
                                            ticks, rng.split(0xfeed));
    return netsim::summarize_path(path);
  }
  // kFast: analytic within-session dispersion. The session mean
  // concentrates near the baseline (relative error shrinking with length);
  // the P95/median spread mirrors what the AR(1) path model produces.
  netsim::SessionNetworkSummary s;
  const auto ticks = std::max(1.0, minutes * 60.0 / netsim::kSampleIntervalSeconds);
  const double mean_jitter_rel = 0.18 / std::sqrt(ticks / 60.0);
  auto fill = [&](double base, double lo_clamp, netsim::MetricAggregate& agg,
                  double tail_mult) {
    const double mean_v =
        std::max(lo_clamp, base * (1.0 + rng.normal(0.0, mean_jitter_rel)));
    agg.mean = mean_v;
    agg.median = std::max(lo_clamp, mean_v * rng.uniform(0.88, 0.99));
    agg.p95 = mean_v * tail_mult * rng.uniform(0.95, 1.25);
    return mean_v;
  };
  fill(baseline.latency.ms(), 0.1, s.latency_ms, 1.9);
  fill(baseline.loss.percent(), 0.0, s.loss_pct, 2.6);
  fill(baseline.jitter.ms(), 0.0, s.jitter_ms, 2.2);
  // Bandwidth's tail slot stores the low (P5) side; see telemetry.cpp.
  const double bw_mean = std::max(
      0.01, baseline.bandwidth.mbps() * (1.0 + rng.normal(0.0, mean_jitter_rel)));
  s.bandwidth_mbps.mean = bw_mean;
  s.bandwidth_mbps.median = bw_mean * rng.uniform(0.97, 1.08);
  s.bandwidth_mbps.p95 = bw_mean * rng.uniform(0.5, 0.8);
  s.sample_count = static_cast<std::size_t>(ticks);
  s.duration_seconds = ticks * netsim::kSampleIntervalSeconds;
  return s;
}

CallRecord CallDatasetGenerator::make_call(std::uint64_t call_id,
                                           core::Rng& rng) const {
  CallRecord call;
  call.call_id = call_id;

  // Start time: weekday business hours when enterprise_only.
  const auto span_days = config_.first_day.days_until(config_.last_day);
  core::Date day = config_.first_day.plus_days(rng.uniform_int(0, span_days));
  if (config_.enterprise_only) {
    while (!day.is_weekday()) day = day.plus_days(1);
    if (day > config_.last_day) day = config_.first_day.plus_days(3);
  }
  call.start.date = day;
  call.start.time.hour = static_cast<int>(
      config_.enterprise_only ? rng.uniform_int(9, 19) : rng.uniform_int(0, 23));
  call.start.time.minute = static_cast<int>(rng.uniform_int(0, 59));

  call.scheduled_minutes = static_cast<int>(std::clamp(
      rng.lognormal(config_.duration_mu, config_.duration_sigma),
      static_cast<double>(config_.min_minutes),
      static_cast<double>(config_.max_minutes)));

  const int extra = static_cast<int>(
      std::min<std::int64_t>(rng.poisson(config_.mean_extra_participants),
                             config_.max_participants - 3));
  const int size = 3 + extra;

  // Per-call baseline when conditions are shared (e.g. one office LAN).
  netsim::NetworkConditions call_baseline;
  if (!config_.per_participant_conditions) {
    call_baseline =
        config_.sampling == ConditionSampling::kSweep
            ? netsim::sample_sweep(config_.sweep_metric, config_.sweep_lo,
                                   config_.sweep_hi, config_.control_windows,
                                   rng)
            : netsim::sample_mixed_baseline(rng);
  }

  call.participants.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    ParticipantRecord rec;
    rec.user_id = call_id * 64 + static_cast<std::uint64_t>(i);
    rec.meeting_size = size;
    rec.platform = draw_platform(rng);
    rec.access = draw_access(rng);

    netsim::NetworkConditions baseline = call_baseline;
    if (config_.per_participant_conditions) {
      baseline =
          config_.sampling == ConditionSampling::kSweep
              ? netsim::sample_sweep(config_.sweep_metric, config_.sweep_lo,
                                     config_.sweep_hi, config_.control_windows,
                                     rng)
              : netsim::sample_session_baseline(
                    netsim::profile_for(rec.access), rng);
    }
    rec.network = make_summary(baseline, call.scheduled_minutes, rng);

    BehaviorContext ctx;
    ctx.platform = rec.platform;
    ctx.meeting_size = size;
    ctx.conditioning =
        1.0 + rng.uniform(-config_.behavior.conditioning_spread,
                          config_.behavior.conditioning_spread);

    // Behaviour responds to what the user lived through: the session means.
    const netsim::NetworkConditions lived = rec.network.mean_conditions();
    const Engagement eng = behavior_model_.realize(lived, ctx, rng);
    rec.presence_pct = eng.presence_pct;
    rec.cam_on_pct = eng.cam_on_pct;
    rec.mic_on_pct = eng.mic_on_pct;
    rec.dropped_early = eng.dropped_early;

    const ChannelDamage dmg = behavior_model_.damage(lived, ctx);
    const double bias = mos_model_.draw_user_bias(rng);
    rec.mos = mos_model_.maybe_collect(dmg.experience, bias, rng);

    call.participants.push_back(std::move(rec));
  }
  return call;
}

std::vector<CallRecord> CallDatasetGenerator::generate() const {
  std::vector<CallRecord> out;
  out.reserve(config_.num_calls);
  generate_stream([&](const CallRecord& c) { out.push_back(c); });
  return out;
}

void CallDatasetGenerator::generate_stream(
    const std::function<void(const CallRecord&)>& sink) const {
  core::Rng root{config_.seed};
  for (std::uint64_t id = 0; id < config_.num_calls; ++id) {
    core::Rng call_rng = root.split(id + 1);
    const CallRecord call = make_call(id, call_rng);
    if (config_.enterprise_only && !passes_enterprise_filter(call)) continue;
    sink(call);
  }
}

}  // namespace usaas::confsim
