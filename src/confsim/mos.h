// Explicit feedback: the end-of-call rating splash screen.
//
// §3.1: "MS Teams requests a subset of users to submit explicit feedback at
// the end of sessions — a rating between 1 (worst) and 5 (best) ... Such
// feedback is only provided for a small fraction (between 0.1% and 1%) of
// sessions." We model the rating as a noisy, coarsely quantized readout of
// the experienced impairment, plus a user-specific grumpiness offset —
// which is why MOS needs engagement signals to back it up.
#pragma once

#include <optional>

#include "confsim/behavior.h"
#include "core/rng.h"
#include "core/units.h"

namespace usaas::confsim {

struct MosModelParams {
  /// Rating of a perfect session before noise.
  double best_rating{4.7};
  /// Rating lost at experience impairment = 1.
  double impairment_range{3.4};
  /// Curvature: perceived quality falls faster early (Weber-ish).
  double gamma{0.85};
  /// Noise stddev on the continuous rating before quantization.
  double rating_noise{0.45};
  /// Stddev of the per-user bias (chronic 5-star or 3-star raters).
  double user_bias_sigma{0.3};
  /// Probability a session is asked for feedback (paper: 0.1% - 1%).
  double sampling_rate{0.005};
  /// Probability the asked user actually answers.
  double response_rate{0.5};
  /// Whether ratings are rounded to integers 1..5 (the splash screen is
  /// star-based).
  bool quantize{true};
};

class MosModel {
 public:
  explicit MosModel(MosModelParams params = {});

  /// Continuous expected rating for an experienced impairment in [0, 1].
  [[nodiscard]] double expected_rating(double experience_impairment) const;

  /// Realized rating of one user (noise + bias + quantization).
  [[nodiscard]] core::Mos rate(double experience_impairment, double user_bias,
                               core::Rng& rng) const;

  /// Samples the splash-screen flow: returns a rating only for the small
  /// sampled-and-responded fraction of sessions.
  [[nodiscard]] std::optional<core::Mos> maybe_collect(
      double experience_impairment, double user_bias, core::Rng& rng) const;

  /// Draws a per-user rating bias.
  [[nodiscard]] double draw_user_bias(core::Rng& rng) const;

  [[nodiscard]] const MosModelParams& params() const { return params_; }

 private:
  MosModelParams params_;
};

}  // namespace usaas::confsim
