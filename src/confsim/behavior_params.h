// PLANTED GROUND TRUTH: the behavioural response curves.
//
// This header is the single place where "how users react to network
// degradation" is defined. The analysis pipeline (usaas::CorrelationEngine
// and the figure benches) never reads these constants — it must *recover*
// the shapes through the same noisy, confounded, session-aggregated
// telemetry the paper analyzed. Tests assert the recovery.
//
// The shapes are chosen to encode the paper's findings as behavioural
// mechanisms, not to hard-code its plot values:
//   * Latency: muting is the first resort — Mic On damage rises steeply to
//     150 ms then plateaus; Presence/Cam damage grows roughly linearly to
//     300 ms (§3.2, Fig 1 left).
//   * Loss: engagement responds to *residual* loss after the app-layer
//     safeguards (netsim::residual_loss), so 0-2 % raw loss barely matters;
//     past ~3 % the safeguards saturate and drop-off probability jumps
//     (Fig 1 middle-left). Crucially, retransmission needs RTT headroom,
//     so high latency disables half the mitigation — that interaction is
//     what produces Fig 2's compounding.
//   * Jitter: hits video hardest (de-jitter buffer overruns freeze video
//     first) — Cam On loses >15 % by 10 ms (Fig 1 middle-right).
//   * Bandwidth: audio needs orders of magnitude less than broadband
//     offers, so Mic On is flat; video degrades below ~1 Mbps
//     (Fig 1 right).
#pragma once

namespace usaas::confsim {

struct BehaviorParams {
  // ---- Latency damage (x = mean session latency in ms) ----
  /// Mic damage accrued linearly over [0, latency_knee_ms]...
  double mic_latency_steep{0.28};
  /// ...then this much more over (knee, 2*knee] (the plateau).
  double mic_latency_plateau{0.05};
  double latency_knee_ms{150.0};
  /// Presence / Cam damage at latency_full_ms, linear from 0.
  double presence_latency_full{0.20};
  double cam_latency_full{0.21};
  double latency_full_ms{300.0};

  // ---- Loss damage (driven by residual loss, see netsim/loss.h) ----
  /// Mild annoyance slope on *raw* loss (visible even when safeguards win):
  /// damage = annoy_per_pct * raw_loss_pct.
  double loss_annoyance_per_pct{0.022};
  /// Engagement impairment from residual loss: smoothstep between onset and
  /// collapse (fractions of packets).
  double loss_eng_onset{0.0015};
  double loss_eng_collapse{0.02};
  double loss_eng_scale{0.22};
  /// Early-drop-off impairment (steeper; residual bursts make the call
  /// unusable): smoothstep between onset and collapse.
  double loss_drop_onset{0.002};
  double loss_drop_collapse{0.008};
  /// P(drop early) = loss_drop_scale * impairment.
  double loss_drop_scale{0.42};

  // ---- Jitter damage (x = mean session jitter in ms) ----
  double cam_jitter_scale{0.17};
  double presence_jitter_scale{0.06};
  double mic_jitter_scale{0.05};
  double jitter_full_ms{10.0};
  double jitter_cap{1.3};  // damage saturates at cap * scale

  // ---- Bandwidth damage (x = mean session available bw in Mbps) ----
  /// Above starvation_mbps: gentle slope so that engagement at 1 Mbps is
  /// within ~5 % of the best (at plenty_mbps).
  double bw_plenty_mbps{4.0};
  double bw_starvation_mbps{1.0};
  double cam_bw_gentle{0.05};
  double presence_bw_gentle{0.04};
  /// Below starvation: steep video collapse per missing Mbps.
  double cam_bw_starved_per_mbps{0.35};
  double presence_bw_starved_per_mbps{0.20};

  // ---- Compounding ----
  /// Extra superadditive term: synergy * d_latency * d_loss per channel.
  double latency_loss_synergy{0.9};

  // ---- Baselines (percentage points, 3-participant reference call) ----
  double base_presence{96.0};
  double base_cam{72.0};
  double base_mic{93.0};
  /// Mic baseline falls with meeting size (big meetings are mostly muted):
  /// per extra participant beyond 3, up to a floor.
  double mic_per_participant{-4.5};
  double mic_floor{35.0};
  double presence_per_participant{-0.4};
  double cam_per_participant{-1.2};
  double cam_floor{30.0};

  // ---- Behavioural noise (stddev, percentage points) ----
  double presence_noise{7.0};
  double cam_noise{16.0};
  double mic_noise{12.0};

  /// Long-term conditioning: a user accustomed to bad networks reacts less
  /// (§6 "long-term conditioning ... (relatively weaker) impact").
  /// Sensitivity multiplier drawn per user in
  /// [1 - conditioning_spread, 1 + conditioning_spread].
  double conditioning_spread{0.2};
};

/// The default planted truth used by the dataset generator and the benches.
[[nodiscard]] inline const BehaviorParams& default_behavior_params() {
  static const BehaviorParams kParams{};
  return kParams;
}

}  // namespace usaas::confsim
