// Client platforms and their engagement sensitivities.
//
// Fig 3: "Different platforms (PC/mobile, operating system, etc.) have
// different impacts on user sensitivity to network performance ... Users
// joining calls on their mobile devices tend to drop off sooner."
#pragma once

#include <span>

namespace usaas::confsim {

enum class Platform {
  kWindowsPc,
  kMacPc,
  kIos,
  kAndroid,
};

inline constexpr int kNumPlatforms = 4;

[[nodiscard]] const char* to_string(Platform p);

/// Per-platform behavioural modifiers. `sensitivity` scales network-damage
/// terms (mobile users abandon degraded calls sooner); the base offsets
/// encode platform norms (mobile joiners keep cameras off more often and
/// are less engaged in work meetings to begin with).
struct PlatformTraits {
  Platform platform{Platform::kWindowsPc};
  /// Multiplier on all network-damage terms (1.0 = reference PC).
  double sensitivity{1.0};
  /// Additive offset (percentage points) on baseline engagement.
  double base_presence_offset{0.0};
  double base_cam_offset{0.0};
  double base_mic_offset{0.0};
};

[[nodiscard]] PlatformTraits traits_for(Platform p);

/// Default platform mix of an enterprise US call population.
struct PlatformShare {
  Platform platform;
  double weight;
};
[[nodiscard]] std::span<const PlatformShare> default_platform_mix();

}  // namespace usaas::confsim
