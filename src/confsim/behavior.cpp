#include "confsim/behavior.h"

#include <algorithm>
#include <cmath>

namespace usaas::confsim {

namespace {

double smoothstep01(double x) {
  x = std::clamp(x, 0.0, 1.0);
  return x * x * (3.0 - 2.0 * x);
}

double smooth_between(double v, double onset, double collapse) {
  if (collapse <= onset) return v >= collapse ? 1.0 : 0.0;
  return smoothstep01((v - onset) / (collapse - onset));
}

}  // namespace

UserBehaviorModel::UserBehaviorModel(BehaviorParams params,
                                     netsim::MitigationConfig mitigation)
    : params_{params}, mitigation_{mitigation} {}

ChannelDamage UserBehaviorModel::damage(const netsim::NetworkConditions& c,
                                        const BehaviorContext& ctx) const {
  const BehaviorParams& p = params_;

  // ---- Latency ----
  const double lat = std::max(c.latency.ms(), 0.0);
  const double knee = p.latency_knee_ms;
  const double mic_lat =
      p.mic_latency_steep * std::min(lat, knee) / knee +
      p.mic_latency_plateau * std::clamp((lat - knee) / knee, 0.0, 1.0);
  const double pres_lat =
      p.presence_latency_full * std::min(lat / p.latency_full_ms, 1.2);
  const double cam_lat =
      p.cam_latency_full * std::min(lat / p.latency_full_ms, 1.2);

  // ---- Loss (via the app-layer safeguards) ----
  const double raw_loss = c.loss.fraction();
  // Retransmission effectiveness depends on the RTT headroom, which is how
  // latency and loss compound (Fig 2).
  const double rtt_ms = 2.0 * lat;
  const double residual =
      netsim::residual_loss(raw_loss, core::Milliseconds{rtt_ms}, mitigation_);
  const double annoy = p.loss_annoyance_per_pct * c.loss.percent();
  const double eng_impair =
      p.loss_eng_scale *
      smooth_between(residual, p.loss_eng_onset, p.loss_eng_collapse);
  const double loss_eng = annoy + eng_impair;
  const double drop_impair =
      smooth_between(residual, p.loss_drop_onset, p.loss_drop_collapse);

  // ---- Jitter ----
  const double jit = std::max(c.jitter.ms(), 0.0);
  const double jit_x = std::min(jit / p.jitter_full_ms, p.jitter_cap);
  const double cam_jit = p.cam_jitter_scale * jit_x;
  const double pres_jit = p.presence_jitter_scale * jit_x;
  const double mic_jit = p.mic_jitter_scale * jit_x;

  // ---- Bandwidth ----
  const double bw = std::max(c.bandwidth.mbps(), 0.0);
  const double gentle_span = p.bw_plenty_mbps - p.bw_starvation_mbps;
  const double gentle_frac =
      std::clamp((p.bw_plenty_mbps - bw) / gentle_span, 0.0, 1.0);
  const double starved_mbps = std::max(p.bw_starvation_mbps - bw, 0.0);
  const double cam_bw =
      p.cam_bw_gentle * gentle_frac + p.cam_bw_starved_per_mbps * starved_mbps;
  const double pres_bw = p.presence_bw_gentle * gentle_frac +
                         p.presence_bw_starved_per_mbps * starved_mbps;
  // Audio needs orders of magnitude less bandwidth: mic is flat.
  const double mic_bw = 0.0;

  // ---- Combine: survival product plus latency x loss synergy ----
  const double sens = traits_for(ctx.platform).sensitivity * ctx.conditioning;
  auto combine = [&](double d_lat, double d_loss, double d_jit, double d_bw) {
    const double survival =
        (1.0 - d_lat) * (1.0 - d_loss) * (1.0 - d_jit) * (1.0 - d_bw);
    const double synergy = p.latency_loss_synergy * d_lat * d_loss;
    return std::clamp(sens * (1.0 - survival + synergy), 0.0, 1.0);
  };

  ChannelDamage d;
  d.presence = combine(pres_lat, loss_eng, pres_jit, pres_bw);
  d.cam = combine(cam_lat, loss_eng, cam_jit, cam_bw);
  d.mic = combine(mic_lat, loss_eng, mic_jit, mic_bw);
  d.drop_off =
      std::clamp(sens * p.loss_drop_scale * drop_impair +
                     sens * 0.05 * std::min(lat / p.latency_full_ms, 1.2),
                 0.0, 1.0);
  // Experienced impairment: what MOS responds to. Weighted toward the
  // channels the user notices (audio interactivity, then video).
  d.experience = std::clamp(
      0.40 * (mic_lat + pres_lat) + 0.9 * (eng_impair + drop_impair * 0.5) +
          0.35 * cam_jit + 0.5 * (cam_bw * 0.5 + pres_bw) + 0.5 * annoy,
      0.0, 1.0);
  return d;
}

Engagement UserBehaviorModel::expected_engagement(
    const netsim::NetworkConditions& c, const BehaviorContext& ctx) const {
  const BehaviorParams& p = params_;
  const ChannelDamage d = damage(c, ctx);
  const PlatformTraits traits = traits_for(ctx.platform);
  const int extra = std::max(ctx.meeting_size - 3, 0);

  const double base_presence = std::clamp(
      p.base_presence + traits.base_presence_offset +
          p.presence_per_participant * extra,
      0.0, 100.0);
  const double base_cam =
      std::clamp(p.base_cam + traits.base_cam_offset +
                     p.cam_per_participant * extra,
                 p.cam_floor, 100.0);
  const double base_mic =
      std::clamp(p.base_mic + traits.base_mic_offset +
                     p.mic_per_participant * extra,
                 p.mic_floor, 100.0);

  Engagement e;
  // An early drop costs, on average, half the session.
  const double presence_with_drop =
      (1.0 - d.presence) * (1.0 - 0.5 * d.drop_off);
  e.presence_pct = std::clamp(base_presence * presence_with_drop, 0.0, 100.0);
  e.cam_on_pct = std::clamp(base_cam * (1.0 - d.cam), 0.0, 100.0);
  e.mic_on_pct = std::clamp(base_mic * (1.0 - d.mic), 0.0, 100.0);
  e.dropped_early = false;
  return e;
}

Engagement UserBehaviorModel::realize(const netsim::NetworkConditions& c,
                                      const BehaviorContext& ctx,
                                      core::Rng& rng) const {
  const BehaviorParams& p = params_;
  const ChannelDamage d = damage(c, ctx);
  Engagement e = expected_engagement(c, ctx);

  const bool dropped = rng.bernoulli(d.drop_off);
  if (dropped) {
    // Leave at a uniformly random point of the would-be session. The
    // expected_engagement already discounted presence by the *expected*
    // drop cost; undo that and apply the realized leave time instead.
    const double base = e.presence_pct / (1.0 - 0.5 * d.drop_off);
    e.presence_pct = base * rng.uniform(0.05, 0.95);
  }
  e.dropped_early = dropped;
  e.presence_pct = std::clamp(e.presence_pct + rng.normal(0.0, p.presence_noise),
                              0.0, 100.0);
  e.cam_on_pct =
      std::clamp(e.cam_on_pct + rng.normal(0.0, p.cam_noise), 0.0, 100.0);
  e.mic_on_pct =
      std::clamp(e.mic_on_pct + rng.normal(0.0, p.mic_noise), 0.0, 100.0);
  return e;
}

}  // namespace usaas::confsim
