#include "nlp/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace usaas::nlp {

const CharClass& char_class() {
  static const CharClass table = [] {
    CharClass t;
    for (int c = 0; c < 256; ++c) {
      const auto u = static_cast<unsigned char>(c);
      t.lower[c] = static_cast<unsigned char>(std::tolower(u));
      t.word[c] = std::isalnum(u) != 0;
      t.alpha[c] = std::isalpha(u) != 0;
      t.upper[c] = std::isupper(u) != 0;
    }
    return t;
  }();
  return table;
}

std::string to_lower(std::string_view s) {
  const CharClass& cc = char_class();
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(static_cast<char>(cc.lower[static_cast<unsigned char>(c)]));
  }
  return out;
}

namespace {

// Shared scanner behind tokenize_into / tokenize_words: emits each raw
// (not yet lowercased) token as a substring view of `text`. Tokens are
// always contiguous runs of the input: word characters extend the
// current run, and an apostrophe only joins when a run is open and a
// word character follows — so no leading or trailing apostrophe ever
// enters a token.
template <typename Emit>
void for_each_raw_token(std::string_view text, Emit&& emit) {
  const CharClass& cc = char_class();
  std::size_t start = 0;
  std::size_t len = 0;
  const auto flush = [&] {
    if (len > 0) emit(text.substr(start, len));
    len = 0;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (cc.word[c]) {
      if (len == 0) start = i;
      ++len;
    } else if (c == '\'' && len > 0 && i + 1 < text.size() &&
               cc.word[static_cast<unsigned char>(text[i + 1])]) {
      ++len;  // intra-word apostrophe: isn't, don't
    } else {
      flush();
    }
  }
  flush();
}

}  // namespace

std::span<const Token> tokenize_into(std::string_view text,
                                     TokenScratch& scratch) {
  const CharClass& cc = char_class();
  // Every token byte comes from a distinct input byte, so the whole
  // token stream fits in text.size() arena bytes. Resizing once up
  // front keeps the buffer stable — no view into it ever dangles from a
  // mid-scan reallocation.
  if (scratch.arena.size() < text.size()) scratch.arena.resize(text.size());
  char* const arena = scratch.arena.data();
  std::size_t used = 0;
  std::size_t n = 0;
  for_each_raw_token(text, [&](std::string_view raw) {
    char* const dst = arena + used;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      dst[i] = static_cast<char>(
          cc.lower[static_cast<unsigned char>(raw[i])]);
    }
    used += raw.size();
    if (scratch.tokens.size() <= n) scratch.tokens.emplace_back();
    scratch.tokens[n] = {{dst, raw.size()}, n};
    ++n;
  });
  return {scratch.tokens.data(), n};
}

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> out;
  for_each_raw_token(text, [&](std::string_view raw) {
    out.push_back(to_lower(raw));
  });
  return out;
}

std::size_t count_exclamations(std::string_view text) {
  return static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '!'));
}

double uppercase_ratio(std::string_view text) {
  const CharClass& cc = char_class();
  std::size_t letters = 0;
  std::size_t upper = 0;
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (cc.alpha[u]) {
      ++letters;
      if (cc.upper[u]) ++upper;
    }
  }
  if (letters == 0) return 0.0;
  return static_cast<double>(upper) / static_cast<double>(letters);
}

bool is_stop_word(std::string_view word) {
  static const std::unordered_set<std::string_view> kStops = {
      "a",      "about", "above",  "after",   "again",  "all",    "also",
      "am",     "an",    "and",    "any",     "are",    "aren't", "as",
      "at",     "be",    "because","been",    "before", "being",  "below",
      "between","both",  "but",    "by",      "can",    "cannot", "could",
      // NB: "down" is deliberately NOT a stop word — in this domain it is
      // the single most load-bearing outage term (Fig 5b / Fig 6).
      "did",    "do",    "does",   "doing",   "don't",  "during",
      "each",   "few",   "for",    "from",    "further","get",    "got",
      "had",    "has",   "have",   "having",  "he",     "her",    "here",
      "hers",   "him",   "his",    "how",     "i",      "i'm",    "i've",
      "if",     "in",    "into",   "is",      "isn't",  "it",     "it's",
      "its",    "itself","just",   "like",    "me",     "more",   "most",
      "my",     "myself","no",     "nor",     "now",    "of",     "off",
      "on",     "once",  "only",   "or",      "other",  "our",    "ours",
      "out",    "over",  "own",    "same",    "she",    "should", "so",
      "some",   "such",  "than",   "that",    "the",    "their",  "theirs",
      "them",   "then",  "there",  "these",   "they",   "this",   "those",
      "through","to",    "too",    "under",   "until",  "up",     "very",
      "was",    "we",    "were",   "what",    "when",   "where",  "which",
      "while",  "who",   "whom",   "why",     "will",   "with",   "would",
      "you",    "your",  "yours",  "yourself","u",      "im",     "ive",
      "dont",   "its",   "thats",  "gonna",   "really", "one",    "two",
  };
  return kStops.contains(word);
}

std::vector<std::string> content_words(std::string_view text) {
  std::vector<std::string> out;
  for_each_raw_token(text, [&](std::string_view raw) {
    if (raw.size() < 2) return;
    std::string lower = to_lower(raw);
    if (is_stop_word(lower)) return;
    out.push_back(std::move(lower));
  });
  return out;
}

}  // namespace usaas::nlp
