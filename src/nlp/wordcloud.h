// Word clouds: the paper's per-day summarization of r/Starlink (§4.1,
// Fig 5b). A cloud is the top-k content unigrams of a document set; its
// top-3 terms become the news-search query for peak annotation.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/ngrams.h"

namespace usaas::nlp {

struct CloudWord {
  std::string word;
  std::size_t count{0};
  /// Relative size in (0, 1], 1 = the most frequent word.
  double relative_size{1.0};
};

class WordCloud {
 public:
  /// Builds a cloud from documents; keeps the top `max_words`.
  static WordCloud build(std::span<const std::string> documents,
                         std::size_t max_words = 30);

  [[nodiscard]] std::span<const CloudWord> words() const { return words_; }
  [[nodiscard]] bool empty() const { return words_.empty(); }

  /// The top-k words (k <= max_words), the paper's search-query terms.
  [[nodiscard]] std::vector<std::string> top_terms(std::size_t k) const;

  /// Rank of a word (0-based); nullopt when absent from the cloud.
  [[nodiscard]] std::optional<std::size_t> rank_of(std::string_view word) const;

  /// Renders a terminal-friendly cloud (one word per line, bar-scaled).
  [[nodiscard]] std::string render_text(std::size_t rows = 15) const;

 private:
  std::vector<CloudWord> words_;
};

}  // namespace usaas::nlp
