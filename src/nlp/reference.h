// The pre-fast-path NLP pipeline, frozen verbatim as the differential
// oracle.
//
// Before the fused fast path, scoring a post was: tokenize into owned
// std::string tokens, run the sentiment loop with three unordered_map
// probes per token, then count keywords with two unordered_set probes
// per token (assembling a "first second" string for bigrams). This
// namespace keeps that exact shape alive — reading only the Lexicon's
// map accessors and the KeywordDictionary's set path — so
// tests/test_nlp_differential.cpp can assert the optimized paths are
// bit-identical to it on any input, forever. Not for production use.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/keywords.h"
#include "nlp/lexicon.h"
#include "nlp/sentiment.h"

namespace usaas::nlp::reference {

/// A token owning its text — the original Token layout.
struct Token {
  std::string text;
  std::size_t position{0};
};

/// The original two-phase tokenizer: lowercase word tokens with owned
/// storage, intra-word apostrophes kept, digits kept.
[[nodiscard]] std::vector<Token> tokenize(std::string_view text);

/// The original sentiment scan: three map probes per token, negation
/// window, intensifier composition, exclamation/shouting emphasis,
/// simplex mapping.
[[nodiscard]] SentimentScores score_sentiment(const Lexicon& lexicon,
                                              const SentimentConfig& config,
                                              std::string_view text);

/// The original keyword counting: per token, one unigram set probe plus
/// an assembled-bigram set probe.
[[nodiscard]] std::size_t count_keywords(const KeywordDictionary& dict,
                                         std::string_view text);

}  // namespace usaas::nlp::reference
