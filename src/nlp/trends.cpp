#include "nlp/trends.h"

#include <algorithm>
#include <unordered_set>

#include "nlp/tokenizer.h"

namespace usaas::nlp {

TrendMiner::TrendMiner(TrendMinerConfig config) : config_{config} {}

void TrendMiner::add_document(const TrendDocument& doc) {
  const auto day = doc.date.days_since_epoch();
  auto& terms = days_[day];
  ++doc_counts_[day];

  const auto words = content_words(doc.text);
  // Each term counted once per document (document frequency semantics).
  std::unordered_set<std::string> seen;
  auto touch = [&](std::string term) {
    if (!seen.insert(term).second) return;
    auto& cell = terms[term];
    cell.weight += doc.popularity;
    ++cell.documents;
  };
  for (const std::string& w : words) touch(w);
  if (config_.include_bigrams) {
    for (std::size_t i = 0; i + 1 < words.size(); ++i) {
      touch(words[i] + " " + words[i + 1]);
    }
  }
}

double TrendMiner::window_weight(std::string_view term,
                                 const core::Date& last_day, int days) const {
  const auto last = last_day.days_since_epoch();
  double acc = 0.0;
  for (auto it = days_.lower_bound(last - days + 1);
       it != days_.end() && it->first <= last; ++it) {
    const auto t = it->second.find(term);
    if (t != it->second.end()) acc += t->second.weight;
  }
  return acc;
}

std::size_t TrendMiner::window_documents(std::string_view term,
                                         const core::Date& last_day,
                                         int days) const {
  const auto last = last_day.days_since_epoch();
  std::size_t acc = 0;
  for (auto it = days_.lower_bound(last - days + 1);
       it != days_.end() && it->first <= last; ++it) {
    const auto t = it->second.find(term);
    if (t != it->second.end()) acc += t->second.documents;
  }
  return acc;
}

std::size_t TrendMiner::total_documents(const core::Date& last_day,
                                        int days) const {
  const auto last = last_day.days_since_epoch();
  std::size_t acc = 0;
  for (auto it = doc_counts_.lower_bound(last - days + 1);
       it != doc_counts_.end() && it->first <= last; ++it) {
    acc += it->second;
  }
  return acc;
}

double TrendMiner::burst_score_on(std::string_view term,
                                  const core::Date& day) const {
  const double now =
      window_weight(term, day, config_.window_days) / config_.window_days;
  const core::Date history_end = day.plus_days(-config_.window_days);
  const double then =
      window_weight(term, history_end, config_.history_days) /
      config_.history_days;
  constexpr double kEpsilon = 1.0;
  return now / (then + kEpsilon);
}

std::vector<EmergingTopic> TrendMiner::detect() const {
  std::vector<EmergingTopic> out;
  if (days_.empty()) return out;
  std::unordered_set<std::string> already_fired;

  const auto first_day = days_.begin()->first;
  const auto last_day = days_.rbegin()->first;

  // Warm-up: a burst is only meaningful against real history, so nothing
  // fires during the first history window (otherwise every standing topic
  // would "emerge" on day one of the corpus).
  const auto detection_start = first_day + config_.history_days;

  for (auto day = detection_start; day <= last_day; ++day) {
    const core::Date d = core::Date::from_days_since_epoch(day);
    const std::size_t window_docs =
        total_documents(d, config_.window_days);
    if (window_docs == 0) continue;

    // Candidate terms: anything seen today (a term can only *start*
    // bursting on a day it appears).
    const auto it = days_.find(day);
    if (it == days_.end()) continue;
    for (const auto& [term, stats] : it->second) {
      if (already_fired.contains(term)) continue;
      const double w =
          window_weight(term, d, config_.window_days);
      if (w < config_.min_window_weight) continue;
      const double share =
          static_cast<double>(window_documents(term, d, config_.window_days)) /
          static_cast<double>(window_docs);
      if (share < config_.min_document_share) continue;
      const double burst = burst_score_on(term, d);
      if (burst < config_.burst_threshold) continue;
      already_fired.insert(term);
      out.push_back({term, d, burst, w});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EmergingTopic& a, const EmergingTopic& b) {
              if (a.first_detected != b.first_detected) {
                return a.first_detected < b.first_detected;
              }
              return a.burst_score > b.burst_score;
            });
  return out;
}

}  // namespace usaas::nlp
