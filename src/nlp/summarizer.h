// Extractive summarization of a document set.
//
// §5: USaaS should be "effectively summarizing and quantifying contextual
// user feedback". The paper points at LLMs; our offline substrate uses a
// classical extractive approach (salience-weighted sentence ranking with
// redundancy suppression, TextRank-adjacent) that needs no model weights
// and is fully deterministic: score each sentence by the corpus frequency
// of its content words, then pick top sentences greedily while penalizing
// overlap with already-picked ones.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace usaas::nlp {

struct SummarySentence {
  std::string text;
  double salience{0.0};
  /// Index of the source document the sentence came from.
  std::size_t document{0};
};

struct SummarizerConfig {
  std::size_t max_sentences{3};
  /// A sentence is skipped when more than this fraction of its content
  /// words already appear in the summary (redundancy suppression).
  double max_overlap{0.6};
  /// Sentences shorter than this many content words are never picked
  /// (fragments make poor summaries).
  std::size_t min_content_words{3};
};

class Summarizer {
 public:
  explicit Summarizer(SummarizerConfig config = {});

  /// Splits text into sentences on [.!?] boundaries.
  [[nodiscard]] static std::vector<std::string> split_sentences(
      std::string_view text);

  /// Summarizes a set of documents into the most salient sentences.
  [[nodiscard]] std::vector<SummarySentence> summarize(
      std::span<const std::string> documents) const;

  /// Convenience: summary as one string, sentences joined by spaces.
  [[nodiscard]] std::string summarize_to_text(
      std::span<const std::string> documents) const;

 private:
  SummarizerConfig config_;
};

}  // namespace usaas::nlp
