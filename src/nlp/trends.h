// Emerging-topic detection over popularity-weighted discussions.
//
// §4.1: "we were also able to detect Redditors discussing the roaming
// feature ~2 weeks before Elon Musk announced it ... using a systematic
// pipeline which mines popular discussions (using upvotes and comment
// numbers)." TrendMiner implements that pipeline: per-day n-gram
// frequencies weighted by (upvotes + comments), compared against a
// trailing history window; a term whose popularity-weighted rate bursts
// above its own history is flagged as emergent.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/date.h"

namespace usaas::nlp {

/// One document entering the miner.
struct TrendDocument {
  core::Date date;
  std::string text;
  double popularity{1.0};  // upvotes + comments, or any salience weight
};

struct EmergingTopic {
  std::string term;
  core::Date first_detected;
  /// Burst ratio at detection: rate_now / (historic rate + epsilon).
  double burst_score{0.0};
  /// Popularity-weighted occurrences in the detection window.
  double weight{0.0};
};

struct TrendMinerConfig {
  /// Sliding detection window (days): a topic fires when its weighted rate
  /// over the last `window_days` bursts vs the preceding history.
  int window_days{7};
  int history_days{56};
  /// Minimum burst ratio and minimum absolute weighted rate to fire.
  double burst_threshold{6.0};
  double min_window_weight{40.0};
  /// Smallest share of window documents that must mention the term
  /// (filters one-thread wonders).
  double min_document_share{0.04};
  /// Also mine bigrams ("roaming enabled").
  bool include_bigrams{true};
};

class TrendMiner {
 public:
  explicit TrendMiner(TrendMinerConfig config = {});

  void add_document(const TrendDocument& doc);

  /// Scans the full date range and reports each term the first day it
  /// bursts, earliest first. Terms already globally common never fire.
  [[nodiscard]] std::vector<EmergingTopic> detect() const;

  /// Burst score of a specific term on a specific day (for diagnostics).
  [[nodiscard]] double burst_score_on(std::string_view term,
                                      const core::Date& day) const;

 private:
  struct DayTermStats {
    double weight{0.0};
    std::size_t documents{0};
  };
  // day -> term -> stats; std::map keeps days ordered.
  using TermMap = std::map<std::string, DayTermStats, std::less<>>;

  [[nodiscard]] double window_weight(std::string_view term,
                                     const core::Date& last_day,
                                     int days) const;
  [[nodiscard]] std::size_t window_documents(std::string_view term,
                                             const core::Date& last_day,
                                             int days) const;
  [[nodiscard]] std::size_t total_documents(const core::Date& last_day,
                                            int days) const;

  TrendMinerConfig config_;
  std::map<std::int64_t, TermMap> days_;          // epoch-day -> term stats
  std::map<std::int64_t, std::size_t> doc_counts_;  // epoch-day -> #docs
};

}  // namespace usaas::nlp
