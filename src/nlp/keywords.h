// Keyword dictionaries — the paper's hand-built outage vocabulary.
//
// §4.1: "we first built a dictionary (a manual tedious process at the
// moment, scanning such posts and online articles on network outages) with
// keywords related to outages and filtered the Reddit threads containing
// them." KeywordDictionary is that artifact as a type: a named set of
// lowercase terms (uni- or bigrams) with containment and counting queries.
//
// Counting runs on either of two paths over the same vocabulary:
//   * the set path (count_occurrences over tokens + a bigram probe
//     buffer) — two unordered_set probes per token, retained as the
//     reference for the differential harness;
//   * the fast path (probe) — one perfect-hash probe per token returning
//     a packed entry that says "this word is a unigram term" and/or
//     "this word heads these bigrams"; the scorer then matches the next
//     token against the (tiny) seconds list instead of assembling a
//     "first second" probe string. Zero allocations, zero extra probes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "nlp/perfect_hash.h"
#include "nlp/tokenizer.h"

namespace usaas::nlp {

class KeywordDictionary {
 public:
  /// Packed per-word record for the fused scan: role flags plus, for
  /// bigram heads, the [seconds_begin, seconds_begin + seconds_count)
  /// range into the seconds list (see second()).
  struct Entry {
    std::uint8_t flags{0};
    std::uint32_t seconds_begin{0};
    std::uint32_t seconds_count{0};
    static constexpr std::uint8_t kUnigram = 1;
    static constexpr std::uint8_t kBigramHead = 2;
  };

  KeywordDictionary(std::string name, std::vector<std::string> keywords);

  /// The paper's outage dictionary (hand-built, network-domain).
  static const KeywordDictionary& outage_dictionary();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return unigrams_.size() + bigrams_.size(); }

  /// Whether the text contains at least one dictionary term.
  [[nodiscard]] bool matches(std::string_view text) const;

  /// Number of dictionary-term occurrences in the text (Fig 6 counts
  /// day-wise keyword occurrences, not just matching threads).
  [[nodiscard]] std::size_t count_occurrences(std::string_view text) const;

  /// Same count over pre-tokenized text; `bigram` is a reusable probe
  /// buffer so the word-pair lookup allocates nothing at steady state.
  /// (The set-based reference path.)
  [[nodiscard]] std::size_t count_occurrences(std::span<const Token> tokens,
                                              std::string& bigram) const;

  /// The matched terms (deduplicated, in dictionary order of discovery).
  [[nodiscard]] std::vector<std::string> matched_terms(
      std::string_view text) const;

  /// Whether probe() is available (the perfect hash built cleanly).
  [[nodiscard]] bool has_fast_path() const { return fast_ok_; }

  /// Single-probe lookup; `hash` must be string_hash(word). nullptr for
  /// words that are neither unigram terms nor bigram heads.
  [[nodiscard]] const Entry* probe(std::string_view word,
                                   std::uint64_t hash) const {
    const std::uint32_t idx = index_.lookup(word, hash);
    return idx == PerfectStringIndex::npos ? nullptr : &entries_[idx];
  }

  /// Second word of a bigram, addressed through an Entry's seconds range.
  [[nodiscard]] std::string_view second(std::uint32_t idx) const {
    return seconds_[idx];
  }

 private:
  // Heterogeneous lookup so string_view tokens probe without allocating.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  using Set = std::unordered_set<std::string, Hash, Eq>;

  void build_fast_path();

  std::string name_;
  Set unigrams_;
  Set bigrams_;

  PerfectStringIndex index_;
  std::vector<Entry> entries_;
  /// Views into bigrams_ set nodes (stable; the set is frozen after
  /// construction).
  std::vector<std::string_view> seconds_;
  bool fast_ok_{false};
};

}  // namespace usaas::nlp
