// Keyword dictionaries — the paper's hand-built outage vocabulary.
//
// §4.1: "we first built a dictionary (a manual tedious process at the
// moment, scanning such posts and online articles on network outages) with
// keywords related to outages and filtered the Reddit threads containing
// them." KeywordDictionary is that artifact as a type: a named set of
// lowercase terms (uni- or bigrams) with containment and counting queries.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "nlp/tokenizer.h"

namespace usaas::nlp {

class KeywordDictionary {
 public:
  KeywordDictionary(std::string name, std::vector<std::string> keywords);

  /// The paper's outage dictionary (hand-built, network-domain).
  static const KeywordDictionary& outage_dictionary();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return unigrams_.size() + bigrams_.size(); }

  /// Whether the text contains at least one dictionary term.
  [[nodiscard]] bool matches(std::string_view text) const;

  /// Number of dictionary-term occurrences in the text (Fig 6 counts
  /// day-wise keyword occurrences, not just matching threads).
  [[nodiscard]] std::size_t count_occurrences(std::string_view text) const;

  /// Same count over pre-tokenized text; `bigram` is a reusable probe
  /// buffer so the word-pair lookup allocates nothing at steady state.
  [[nodiscard]] std::size_t count_occurrences(std::span<const Token> tokens,
                                              std::string& bigram) const;

  /// The matched terms (deduplicated, in dictionary order of discovery).
  [[nodiscard]] std::vector<std::string> matched_terms(
      std::string_view text) const;

 private:
  std::string name_;
  std::unordered_set<std::string> unigrams_;
  std::unordered_set<std::string> bigrams_;
};

}  // namespace usaas::nlp
