#include "nlp/reference.h"

#include <algorithm>
#include <cctype>

#include "nlp/tokenizer.h"

namespace usaas::nlp::reference {

namespace {

bool is_word_char(unsigned char c) {
  return std::isalnum(c) != 0;
}

std::string lower_copy(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t start = 0;
  std::size_t len = 0;
  const auto flush = [&] {
    if (len > 0) out.push_back({lower_copy(text.substr(start, len)),
                                out.size()});
    len = 0;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (is_word_char(c)) {
      if (len == 0) start = i;
      ++len;
    } else if (c == '\'' && len > 0 && i + 1 < text.size() &&
               is_word_char(static_cast<unsigned char>(text[i + 1]))) {
      ++len;  // intra-word apostrophe: isn't, don't
    } else {
      flush();
    }
  }
  flush();
  return out;
}

SentimentScores score_sentiment(const Lexicon& lexicon,
                                const SentimentConfig& config,
                                std::string_view text) {
  const std::vector<Token> tokens = tokenize(text);

  double pos_mass = 0.0;
  double neg_mass = 0.0;
  std::size_t negation_left = 0;
  double intensity = 1.0;

  for (const Token& t : tokens) {
    if (lexicon.is_negator(t.text)) {
      negation_left = config.negation_window;
      intensity = 1.0;
      continue;
    }
    if (const auto mult = lexicon.intensity(t.text)) {
      intensity *= *mult;
      if (negation_left > 0) --negation_left;
      continue;
    }
    if (const auto v = lexicon.valence(t.text)) {
      double val = *v * intensity;
      if (negation_left > 0) {
        val = -val * config.negation_strength;
      }
      if (val > 0.0) {
        pos_mass += val;
      } else {
        neg_mass += -val;
      }
    }
    intensity = 1.0;
    if (negation_left > 0) --negation_left;
  }

  const double excl =
      static_cast<double>(std::min(count_exclamations(text),
                                   config.max_exclamations));
  double emphasis = 1.0 + config.exclamation_boost * excl;
  if (uppercase_ratio(text) > 0.6 && tokens.size() >= 2) {
    emphasis += config.shouting_boost;
  }
  pos_mass *= emphasis;
  neg_mass *= emphasis;

  const double total = pos_mass + neg_mass;
  SentimentScores s;
  if (total <= 0.0) return s;
  const double confidence = total / (total + config.saturation * 0.5);
  s.positive = confidence * pos_mass / total;
  s.negative = confidence * neg_mass / total;
  s.neutral = 1.0 - s.positive - s.negative;
  s.neutral = std::max(s.neutral, 0.0);
  return s;
}

std::size_t count_keywords(const KeywordDictionary& dict,
                           std::string_view text) {
  // Drive the dictionary's retained set-based counting loop (two set
  // probes per token, assembled bigram strings) over this tokenizer's
  // owned tokens.
  const std::vector<Token> tokens = tokenize(text);
  std::vector<nlp::Token> views;
  views.reserve(tokens.size());
  for (const Token& t : tokens) views.push_back({t.text, t.position});
  std::string bigram;
  return dict.count_occurrences(views, bigram);
}

}  // namespace usaas::nlp::reference
