// The fused post-scoring fast path: tokenize + sentiment + outage-keyword
// counting in one scan over the text.
//
// The two-phase path materializes a token vector, then walks it twice
// (sentiment, then keywords) probing hash maps five times per token. The
// fused path makes a single pass over the characters:
//   * each byte is classified and lowercased through the shared CharClass
//     table (identical semantics to the two-phase tokenizer);
//   * token bytes stream into the scratch arena while the token's hash is
//     folded incrementally (FNV-1a), so when a token closes, its
//     string_view and hash are both ready;
//   * one perfect-hash probe into the Lexicon drives the shared
//     SentimentAccum state machine; one probe into the KeywordDictionary
//     counts unigram terms and flags bigram heads — the *next* token is
//     matched against the head's (tiny) seconds list, so bigrams cost no
//     extra probe and no pair-string assembly;
//   * '!' counts and the uppercase/letter counts for the shouting cue
//     fold into the same pass.
// The arithmetic is shared with SentimentAnalyzer (SentimentAccum /
// finish_scores), and the probe priority mirrors the map path, so the
// result is bit-identical to running the two-phase pipeline — the
// differential harness in tests/test_nlp_differential.cpp enforces that.
//
// When either vocabulary failed to build its perfect hash, score()
// transparently runs the two-phase reference pipeline instead; fused()
// reports which path is live.
#pragma once

#include <cstdint>
#include <string_view>

#include "nlp/keywords.h"
#include "nlp/lexicon.h"
#include "nlp/sentiment.h"
#include "nlp/tokenizer.h"

namespace usaas::nlp {

class PostScorer {
 public:
  struct Result {
    SentimentScores sentiment;
    std::uint32_t keyword_hits{0};
  };

  explicit PostScorer(
      const Lexicon& lexicon = Lexicon::builtin(),
      const KeywordDictionary& keywords =
          KeywordDictionary::outage_dictionary(),
      SentimentConfig config = {});

  /// Scores `text` in one pass. `scratch.arena` holds the lowercased
  /// token bytes (resized once to the text length, then reused), so the
  /// steady state allocates nothing. `text` may alias `scratch.text`.
  [[nodiscard]] Result score(std::string_view text,
                             TokenScratch& scratch) const;

  /// Convenience overload with its own scratch (tests, one-off callers).
  [[nodiscard]] Result score(std::string_view text) const {
    TokenScratch scratch;
    return score(text, scratch);
  }

  /// True when the single-pass path is live (both vocabularies built
  /// their perfect hash); false means score() runs the two-phase
  /// reference pipeline — same results, slower.
  [[nodiscard]] bool fused() const { return fused_; }

  [[nodiscard]] const Lexicon& lexicon() const { return *lexicon_; }
  [[nodiscard]] const KeywordDictionary& keywords() const {
    return *keywords_;
  }

 private:
  [[nodiscard]] Result score_fused(std::string_view text,
                                   TokenScratch& scratch) const;
  [[nodiscard]] Result score_two_phase(std::string_view text,
                                       TokenScratch& scratch) const;

  const Lexicon* lexicon_;            // non-owning
  const KeywordDictionary* keywords_; // non-owning
  SentimentConfig config_;
  SentimentAnalyzer analyzer_;  // the fallback / reference composition
  bool fused_{false};
};

}  // namespace usaas::nlp
