#include "nlp/wordcloud.h"

#include <algorithm>

namespace usaas::nlp {

WordCloud WordCloud::build(std::span<const std::string> documents,
                           std::size_t max_words) {
  NgramCounter counter{1};
  for (const std::string& doc : documents) counter.add_document(doc);
  WordCloud cloud;
  const auto top = counter.top(max_words);
  if (top.empty()) return cloud;
  const double max_count = static_cast<double>(top.front().count);
  cloud.words_.reserve(top.size());
  for (const auto& t : top) {
    cloud.words_.push_back(
        {t.ngram, t.count,
         max_count > 0 ? static_cast<double>(t.count) / max_count : 0.0});
  }
  return cloud;
}

std::vector<std::string> WordCloud::top_terms(std::size_t k) const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < std::min(k, words_.size()); ++i) {
    out.push_back(words_[i].word);
  }
  return out;
}

std::optional<std::size_t> WordCloud::rank_of(std::string_view word) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i].word == word) return i;
  }
  return std::nullopt;
}

std::string WordCloud::render_text(std::size_t rows) const {
  std::string out;
  const std::size_t n = std::min(rows, words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto bar_len =
        static_cast<std::size_t>(1 + words_[i].relative_size * 40.0);
    out += words_[i].word;
    out.append(words_[i].word.size() < 18 ? 18 - words_[i].word.size() : 1, ' ');
    out.append(bar_len, '#');
    out += " (" + std::to_string(words_[i].count) + ")\n";
  }
  return out;
}

}  // namespace usaas::nlp
