// The valence lexicon behind the sentiment analyzer.
//
// A compact VADER-style lexicon: word -> valence in [-1, 1], plus negators
// ("not", "never") and intensifiers/dampeners ("very", "slightly") with
// multiplicative strengths. The vocabulary is weighted toward the ISP /
// network domain ("outage", "buffering", "uptime", "unusable") since that
// is what r/Starlink posts talk about.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace usaas::nlp {

class Lexicon {
 public:
  /// The built-in network-domain lexicon.
  static const Lexicon& builtin();

  /// Empty lexicon for custom builds.
  Lexicon() = default;

  void add_word(std::string word, double valence);
  void add_negator(std::string word);
  void add_intensifier(std::string word, double multiplier);

  /// Valence of a word, if known. In [-1, 1].
  [[nodiscard]] std::optional<double> valence(std::string_view word) const;
  [[nodiscard]] bool is_negator(std::string_view word) const;
  /// Intensity multiplier (>1 amplifies, <1 dampens), if the word is one.
  [[nodiscard]] std::optional<double> intensity(std::string_view word) const;

  [[nodiscard]] std::size_t size() const { return valence_.size(); }

 private:
  // Heterogeneous lookup so string_view queries don't allocate.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  template <typename V>
  using Map = std::unordered_map<std::string, V, Hash, Eq>;

  Map<double> valence_;
  Map<char> negators_;
  Map<double> intensifiers_;
};

}  // namespace usaas::nlp
