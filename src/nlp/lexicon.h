// The valence lexicon behind the sentiment analyzer.
//
// A compact VADER-style lexicon: word -> valence in [-1, 1], plus negators
// ("not", "never") and intensifiers/dampeners ("very", "slightly") with
// multiplicative strengths. The vocabulary is weighted toward the ISP /
// network domain ("outage", "buffering", "uptime", "unusable") since that
// is what r/Starlink posts talk about.
//
// Two lookup paths share one vocabulary:
//   * the map path (valence / is_negator / intensity): three node-based
//     probes, kept verbatim as the reference the differential harness
//     compares against;
//   * the fast path (probe): a build-time perfect-hash table where one
//     probe returns the word's full packed record — valence, intensity
//     multiplier and role flags in one Entry. Rebuilt eagerly after every
//     add_* (the vocabulary is a few hundred words; rebuilds are O(N)).
//     If the perfect hash cannot be built the fast path simply stays
//     unavailable and callers fall back to the maps — behavior, not just
//     results, is identical either way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "nlp/perfect_hash.h"

namespace usaas::nlp {

class Lexicon {
 public:
  /// One word's packed record: everything the scorer needs from a single
  /// probe. Flag checks must follow the map-path order (negator, then
  /// intensifier, then valence) so a word carrying several roles behaves
  /// identically on both paths.
  struct Entry {
    double valence{0.0};
    double intensity{1.0};
    std::uint8_t flags{0};
    static constexpr std::uint8_t kHasValence = 1;
    static constexpr std::uint8_t kNegator = 2;
    static constexpr std::uint8_t kIntensifier = 4;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  /// The built-in network-domain lexicon. Construction verifies that
  /// every word round-trips through the perfect hash (throws otherwise).
  static const Lexicon& builtin();

  /// Empty lexicon for custom builds.
  Lexicon() = default;
  /// Custom perfect-hash limits — tests pass max_displacement = 0 to
  /// force the build to fail and exercise the map fallback.
  explicit Lexicon(PerfectHashOptions options) : options_{options} {}

  void add_word(std::string word, double valence);
  void add_negator(std::string word);
  void add_intensifier(std::string word, double multiplier);

  /// Valence of a word, if known. In [-1, 1]. (Map path.)
  [[nodiscard]] std::optional<double> valence(std::string_view word) const;
  [[nodiscard]] bool is_negator(std::string_view word) const;
  /// Intensity multiplier (>1 amplifies, <1 dampens), if the word is one.
  [[nodiscard]] std::optional<double> intensity(std::string_view word) const;

  /// Whether probe() is available (the perfect hash built cleanly).
  [[nodiscard]] bool has_fast_path() const { return fast_ok_; }

  /// Single-probe lookup; `hash` must be string_hash(word). Returns
  /// nullptr for words outside the vocabulary. Only valid when
  /// has_fast_path(); the scorer falls back to the map path otherwise.
  [[nodiscard]] const Entry* probe(std::string_view word,
                                   std::uint64_t hash) const {
    const std::uint32_t idx = index_.lookup(word, hash);
    return idx == PerfectStringIndex::npos ? nullptr : &entries_[idx];
  }

  [[nodiscard]] std::size_t size() const { return valence_.size(); }

 private:
  // Heterogeneous lookup so string_view queries don't allocate.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  template <typename V>
  using Map = std::unordered_map<std::string, V, Hash, Eq>;

  /// Rebuilds the flat table from the maps; on success verifies every
  /// word round-trips (probe returns its own entry).
  void rebuild_fast_path();

  Map<double> valence_;
  Map<char> negators_;
  Map<double> intensifiers_;

  PerfectHashOptions options_{};
  PerfectStringIndex index_;
  std::vector<Entry> entries_;
  bool fast_ok_{false};
};

}  // namespace usaas::nlp
