#include "nlp/ngrams.h"

#include <algorithm>
#include <stdexcept>

#include "nlp/tokenizer.h"

namespace usaas::nlp {

NgramCounter::NgramCounter(std::size_t n, bool drop_stop_words)
    : n_{n}, drop_stop_words_{drop_stop_words} {
  if (n == 0) throw std::invalid_argument("NgramCounter: n must be >= 1");
}

void NgramCounter::add_document(std::string_view text, double weight) {
  const std::vector<std::string> words =
      drop_stop_words_ ? content_words(text) : tokenize_words(text);
  if (words.size() < n_) {
    ++documents_;
    return;
  }
  for (std::size_t i = 0; i + n_ <= words.size(); ++i) {
    std::string key = words[i];
    for (std::size_t j = 1; j < n_; ++j) {
      key += ' ';
      key += words[i + j];
    }
    auto& cell = counts_[std::move(key)];
    ++cell.count;
    cell.weight += weight;
  }
  ++documents_;
}

std::vector<NgramCount> NgramCounter::top(std::size_t k) const {
  std::vector<NgramCount> all;
  all.reserve(counts_.size());
  for (const auto& [ngram, cell] : counts_) {
    all.push_back({ngram, cell.count, cell.weight});
  }
  std::sort(all.begin(), all.end(), [](const NgramCount& a, const NgramCount& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.count != b.count) return a.count > b.count;
    return a.ngram < b.ngram;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::size_t NgramCounter::count_of(std::string_view ngram) const {
  const auto it = counts_.find(std::string{ngram});
  return it == counts_.end() ? 0 : it->second.count;
}

double NgramCounter::weight_of(std::string_view ngram) const {
  const auto it = counts_.find(std::string{ngram});
  return it == counts_.end() ? 0.0 : it->second.weight;
}

}  // namespace usaas::nlp
