// Build-time perfect hashing for small, fixed string vocabularies.
//
// The post-scoring hot path probes the sentiment lexicon and the outage
// keyword dictionary once per token. Both vocabularies are frozen after
// construction and tiny (a few hundred words), which is exactly the
// regime where a CHD-style perfect hash beats unordered_map: one hash,
// one displacement fetch, one slot fetch, one key compare — no chains,
// no tombstones, and the token's hash is computed incrementally during
// the character scan, so the probe itself touches the key bytes only for
// the final equality check.
//
// PerfectStringIndex maps each distinct key to its index in the build
// input; callers keep their payload in a parallel array. Construction is
// randomized-free and deterministic: per-bucket displacements are found
// by brute force in increasing order, so the same key set always builds
// the same table. Building can fail (pathological key sets, or a
// max_displacement forced low by tests); callers must keep a fallback
// path — the Lexicon keeps its maps for exactly that reason.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace usaas::nlp {

/// 64-bit FNV-1a over the key bytes, then a splitmix64 finalizer. The
/// FNV stage is exposed as offset/step so tokenizing scans can fold the
/// hash incrementally as they lowercase each character.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

[[nodiscard]] inline constexpr std::uint64_t fnv_step(std::uint64_t h,
                                                      unsigned char byte) {
  return (h ^ byte) * 0x100000001b3ULL;
}

/// splitmix64 finalizer: spreads FNV's weak high bits over the whole
/// word so bucket (high bits) and slot (low bits) indices decorrelate.
[[nodiscard]] inline constexpr std::uint64_t finalize_hash(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// The full hash of a key, equal to finalize_hash(fnv_step*(kFnvOffset)).
[[nodiscard]] inline constexpr std::uint64_t string_hash(
    std::string_view key) {
  std::uint64_t h = kFnvOffset;
  for (const char c : key) h = fnv_step(h, static_cast<unsigned char>(c));
  return finalize_hash(h);
}

struct PerfectHashOptions {
  /// Highest per-bucket displacement tried before giving up. 0 makes any
  /// non-empty build fail — the test knob for the fallback path.
  std::uint32_t max_displacement{4096};
  /// Slot table size multiplier (load factor 1/slots_per_key).
  double slots_per_key{2.0};
};

class PerfectStringIndex {
 public:
  static constexpr std::uint32_t npos = 0xffffffffU;

  /// Builds the index over `keys`; returns false (leaving the index
  /// empty) when no collision-free displacement assignment exists within
  /// the option limits — duplicates in `keys` always fail. Key bytes are
  /// copied, so the spans need not outlive the call.
  [[nodiscard]] bool build(std::span<const std::string_view> keys,
                           const PerfectHashOptions& options = {});

  /// Index of `key` in the build input, or npos. `hash` must be
  /// string_hash(key) — callers on the scan path already have it.
  [[nodiscard]] std::uint32_t lookup(std::string_view key,
                                     std::uint64_t hash) const {
    const std::uint32_t d = displacements_[hash >> bucket_shift_];
    if (d == 0) return npos;  // bucket holds no keys at all
    const std::uint64_t mixed =
        finalize_hash(hash ^ (static_cast<std::uint64_t>(d) * kGolden));
    const std::uint32_t idx = slots_[mixed & slot_mask_];
    if (idx == npos || stored_key(idx) != key) return npos;
    return idx;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t size() const {
    return key_ends_.empty() ? 0 : key_ends_.size() - 1;
  }

 private:
  static constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

  [[nodiscard]] std::string_view stored_key(std::uint32_t idx) const {
    const std::uint32_t begin = key_ends_[idx];
    return {key_bytes_.data() + begin, key_ends_[idx + 1] - begin};
  }

  bool ok_{false};
  unsigned bucket_shift_{63};  // bucket = hash >> shift (top bits)
  std::uint64_t slot_mask_{0};
  /// Per-bucket displacement; 0 means the bucket is empty (search starts
  /// at 1, so 0 never collides with a real displacement). Two zero
  /// buckets by default so lookup() on an unbuilt index is a plain miss.
  std::vector<std::uint32_t> displacements_{0, 0};
  /// Slot -> key index (npos = empty slot).
  std::vector<std::uint32_t> slots_{npos};
  /// Verification copy of the keys: concatenated bytes + end offsets
  /// (key_ends_[0] == 0; key i spans [key_ends_[i], key_ends_[i+1])).
  std::string key_bytes_;
  std::vector<std::uint32_t> key_ends_;
};

}  // namespace usaas::nlp
