#include "nlp/summarizer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "nlp/tokenizer.h"

namespace usaas::nlp {

Summarizer::Summarizer(SummarizerConfig config) : config_{config} {}

std::vector<std::string> Summarizer::split_sentences(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    current.push_back(c);
    if (c == '.' || c == '!' || c == '?') {
      // Trim leading whitespace.
      const auto start = current.find_first_not_of(" \t\n\r");
      if (start != std::string::npos && current.size() - start > 1) {
        out.push_back(current.substr(start));
      }
      current.clear();
    }
  }
  const auto start = current.find_first_not_of(" \t\n\r");
  if (start != std::string::npos) out.push_back(current.substr(start));
  return out;
}

std::vector<SummarySentence> Summarizer::summarize(
    std::span<const std::string> documents) const {
  // Corpus word frequencies (content words only).
  std::unordered_map<std::string, double> freq;
  for (const std::string& doc : documents) {
    for (const std::string& w : content_words(doc)) freq[w] += 1.0;
  }
  if (freq.empty()) return {};

  struct Candidate {
    std::string text;
    std::vector<std::string> words;
    double salience{0.0};
    std::size_t document{0};
  };
  std::vector<Candidate> candidates;
  for (std::size_t d = 0; d < documents.size(); ++d) {
    for (std::string& sentence : split_sentences(documents[d])) {
      Candidate c;
      c.words = content_words(sentence);
      if (c.words.size() < config_.min_content_words) continue;
      double score = 0.0;
      for (const std::string& w : c.words) score += freq[w];
      // Normalize by length^0.7: favour dense sentences without letting
      // run-ons win on bulk alone.
      c.salience = score / std::pow(static_cast<double>(c.words.size()), 0.7);
      c.text = std::move(sentence);
      c.document = d;
      candidates.push_back(std::move(c));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.salience != b.salience) return a.salience > b.salience;
              return a.text < b.text;  // deterministic tiebreak
            });

  std::vector<SummarySentence> out;
  std::unordered_set<std::string> covered;
  for (const Candidate& c : candidates) {
    if (out.size() >= config_.max_sentences) break;
    std::size_t overlap = 0;
    for (const std::string& w : c.words) {
      if (covered.contains(w)) ++overlap;
    }
    const double overlap_frac =
        static_cast<double>(overlap) / static_cast<double>(c.words.size());
    if (!out.empty() && overlap_frac > config_.max_overlap) continue;
    for (const std::string& w : c.words) covered.insert(w);
    out.push_back({c.text, c.salience, c.document});
  }
  return out;
}

std::string Summarizer::summarize_to_text(
    std::span<const std::string> documents) const {
  std::string out;
  for (const auto& s : summarize(documents)) {
    if (!out.empty()) out += ' ';
    out += s.text;
  }
  return out;
}

}  // namespace usaas::nlp
