#include "nlp/post_scorer.h"

#include "nlp/perfect_hash.h"

namespace usaas::nlp {

PostScorer::PostScorer(const Lexicon& lexicon,
                       const KeywordDictionary& keywords,
                       SentimentConfig config)
    : lexicon_{&lexicon},
      keywords_{&keywords},
      config_{config},
      analyzer_{lexicon, config},
      fused_{lexicon.has_fast_path() && keywords.has_fast_path()} {}

PostScorer::Result PostScorer::score(std::string_view text,
                                     TokenScratch& scratch) const {
  return fused_ ? score_fused(text, scratch)
                : score_two_phase(text, scratch);
}

PostScorer::Result PostScorer::score_two_phase(std::string_view text,
                                               TokenScratch& scratch) const {
  Result out;
  const std::span<const Token> tokens = tokenize_into(text, scratch);
  out.sentiment = analyzer_.score(tokens, text);
  out.keyword_hits = static_cast<std::uint32_t>(
      keywords_->count_occurrences(tokens, scratch.bigram));
  return out;
}

PostScorer::Result PostScorer::score_fused(std::string_view text,
                                           TokenScratch& scratch) const {
  const CharClass& cc = char_class();
  if (scratch.arena.size() < text.size()) scratch.arena.resize(text.size());
  char* const arena = scratch.arena.data();

  SentimentAccum accum;
  std::uint32_t keyword_hits = 0;
  std::size_t num_tokens = 0;
  std::size_t exclamations = 0;
  std::size_t letters = 0;
  std::size_t upper = 0;

  // Open-token state: the current token's bytes sit at arena[used,
  // used + tok_len); `used` advances as tokens close. The hash is folded
  // incrementally so closing a token costs only the finalizer.
  std::size_t used = 0;
  std::size_t tok_len = 0;
  std::uint64_t tok_fnv = kFnvOffset;
  // The previous token's keyword entry, if it heads bigrams — the
  // current token is matched against its seconds list.
  const KeywordDictionary::Entry* prev_kw = nullptr;

  const auto close_token = [&] {
    if (tok_len == 0) return;
    const std::string_view token{arena + used, tok_len};
    const std::uint64_t hash = finalize_hash(tok_fnv);
    ++num_tokens;

    // Sentiment: one probe, flag priority mirroring the map path
    // (negator, then intensifier, then valence).
    const Lexicon::Entry* lex = lexicon_->probe(token, hash);
    if (lex == nullptr) {
      accum.on_plain();
    } else if ((lex->flags & Lexicon::Entry::kNegator) != 0) {
      accum.on_negator(config_);
    } else if ((lex->flags & Lexicon::Entry::kIntensifier) != 0) {
      accum.on_intensifier(lex->intensity);
    } else {
      accum.on_valence(lex->valence, config_);
    }

    // Keywords: one probe covers "is this a unigram term" and "does it
    // head bigrams"; the pending head from the previous token matches
    // this token against its seconds. The per-position order differs
    // from the reference (which checks pair (i, i+1) while at i), but
    // the total is a sum of the same matches.
    const KeywordDictionary::Entry* kw = keywords_->probe(token, hash);
    if (kw != nullptr && (kw->flags & KeywordDictionary::Entry::kUnigram)) {
      ++keyword_hits;
    }
    if (prev_kw != nullptr) {
      const std::uint32_t end = prev_kw->seconds_begin + prev_kw->seconds_count;
      for (std::uint32_t s = prev_kw->seconds_begin; s < end; ++s) {
        if (keywords_->second(s) == token) {
          ++keyword_hits;
          break;
        }
      }
    }
    prev_kw =
        kw != nullptr && (kw->flags & KeywordDictionary::Entry::kBigramHead)
            ? kw
            : nullptr;

    used += tok_len;
    tok_len = 0;
    tok_fnv = kFnvOffset;
  };

  const std::size_t size = text.size();
  for (std::size_t i = 0; i < size; ++i) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (cc.alpha[c]) {
      ++letters;
      if (cc.upper[c]) ++upper;
    } else if (c == '!') {
      ++exclamations;
    }
    if (cc.word[c]) {
      const unsigned char low = cc.lower[c];
      arena[used + tok_len] = static_cast<char>(low);
      ++tok_len;
      tok_fnv = fnv_step(tok_fnv, low);
    } else if (c == '\'' && tok_len > 0 && i + 1 < size &&
               cc.word[static_cast<unsigned char>(text[i + 1])]) {
      arena[used + tok_len] = '\'';  // intra-word apostrophe
      ++tok_len;
      tok_fnv = fnv_step(tok_fnv, static_cast<unsigned char>('\''));
    } else {
      close_token();
    }
  }
  close_token();

  Result out;
  out.sentiment = finish_scores(accum, config_, exclamations, upper, letters,
                                num_tokens);
  out.keyword_hits = keyword_hits;
  return out;
}

}  // namespace usaas::nlp
