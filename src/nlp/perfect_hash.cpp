#include "nlp/perfect_hash.h"

#include <algorithm>
#include <numeric>

namespace usaas::nlp {

namespace {

std::uint64_t next_pow2(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

bool PerfectStringIndex::build(std::span<const std::string_view> keys,
                               const PerfectHashOptions& options) {
  *this = PerfectStringIndex{};  // reset to the safe empty state
  if (keys.empty()) {
    ok_ = true;
    return true;
  }

  const std::size_t n = keys.size();
  // One bucket per ~4 keys keeps the displacement search short; at least
  // 2 buckets so the shift stays < 64 (hash >> 64 is UB).
  const std::uint64_t num_buckets =
      std::max<std::uint64_t>(2, next_pow2((n + 3) / 4));
  const double spk = std::max(1.0, options.slots_per_key);
  const std::uint64_t num_slots = std::max<std::uint64_t>(
      2, next_pow2(static_cast<std::uint64_t>(
             static_cast<double>(n) * spk)));
  unsigned shift = 64;
  for (std::uint64_t b = num_buckets; b > 1; b >>= 1) --shift;

  std::vector<std::uint64_t> hashes(n);
  std::vector<std::vector<std::uint32_t>> buckets(num_buckets);
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = string_hash(keys[i]);
    buckets[hashes[i] >> shift].push_back(static_cast<std::uint32_t>(i));
  }

  // Place big buckets first while the slot table is still sparse.
  std::vector<std::uint32_t> order(num_buckets);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return buckets[a].size() > buckets[b].size();
                   });

  std::vector<std::uint32_t> disp(num_buckets, 0);
  std::vector<std::uint32_t> slots(num_slots, npos);
  const std::uint64_t mask = num_slots - 1;
  std::vector<std::uint64_t> trial;
  for (const std::uint32_t b : order) {
    const auto& bucket = buckets[b];
    if (bucket.empty()) continue;
    bool placed = false;
    for (std::uint32_t d = 1; d <= options.max_displacement; ++d) {
      trial.clear();
      bool clash = false;
      for (const std::uint32_t i : bucket) {
        const std::uint64_t slot =
            finalize_hash(hashes[i] ^
                          (static_cast<std::uint64_t>(d) * kGolden)) &
            mask;
        if (slots[slot] != npos ||
            std::find(trial.begin(), trial.end(), slot) != trial.end()) {
          clash = true;
          break;
        }
        trial.push_back(slot);
      }
      if (clash) continue;
      for (std::size_t j = 0; j < bucket.size(); ++j) {
        slots[trial[j]] = bucket[j];
      }
      disp[b] = d;
      placed = true;
      break;
    }
    if (!placed) return false;  // index stays in the safe empty state
  }

  bucket_shift_ = shift;
  slot_mask_ = mask;
  displacements_ = std::move(disp);
  slots_ = std::move(slots);
  key_ends_.assign(1, 0);
  key_ends_.reserve(n + 1);
  std::size_t total_bytes = 0;
  for (const auto key : keys) total_bytes += key.size();
  key_bytes_.reserve(total_bytes);
  for (const auto key : keys) {
    key_bytes_.append(key);
    key_ends_.push_back(static_cast<std::uint32_t>(key_bytes_.size()));
  }
  ok_ = true;
  return true;
}

}  // namespace usaas::nlp
