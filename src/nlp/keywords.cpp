#include "nlp/keywords.h"

#include <algorithm>
#include <map>

#include "nlp/tokenizer.h"

namespace usaas::nlp {

KeywordDictionary::KeywordDictionary(std::string name,
                                     std::vector<std::string> keywords)
    : name_{std::move(name)} {
  for (std::string& k : keywords) {
    std::string lower = to_lower(k);
    if (lower.find(' ') != std::string::npos) {
      bigrams_.insert(std::move(lower));
    } else {
      unigrams_.insert(std::move(lower));
    }
  }
  build_fast_path();
}

void KeywordDictionary::build_fast_path() {
  // Keys = unigram terms plus first words of bigrams; a word can be
  // both ("offline" and "offline again"). Ordered map so the table is
  // deterministic regardless of set iteration order.
  std::map<std::string_view, Entry> merged;
  for (const auto& word : unigrams_) {
    merged[word].flags |= Entry::kUnigram;
  }
  seconds_.clear();
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  for (const auto& bigram : bigrams_) {
    const std::string_view view{bigram};
    const std::size_t space = view.find(' ');
    pairs.emplace_back(view.substr(0, space), view.substr(space + 1));
  }
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [head, tail] : pairs) {
    Entry& e = merged[head];
    if ((e.flags & Entry::kBigramHead) == 0) {
      e.flags |= Entry::kBigramHead;
      e.seconds_begin = static_cast<std::uint32_t>(seconds_.size());
    }
    ++e.seconds_count;  // pairs are sorted, so a head's seconds are runs
    seconds_.push_back(tail);
  }

  std::vector<std::string_view> keys;
  keys.reserve(merged.size());
  entries_.clear();
  entries_.reserve(merged.size());
  for (const auto& [word, entry] : merged) {
    keys.push_back(word);
    entries_.push_back(entry);
  }
  fast_ok_ = index_.build(keys);
  if (!fast_ok_) {
    index_ = PerfectStringIndex{};
    entries_.clear();
    seconds_.clear();
  }
}

const KeywordDictionary& KeywordDictionary::outage_dictionary() {
  static const KeywordDictionary instance{
      "outage",
      {
          "outage", "outages", "down", "offline", "dead", "no service",
          "no internet", "no connection", "lost connection", "lost signal",
          "service down", "internet down", "went down", "went dark",
          "not working", "stopped working", "cut out", "dropped out",
          "downtime", "blackout", "interruption", "interruptions",
          "disconnected", "disconnects", "unreachable", "no connectivity",
          "obstructed", "searching", "offline again",
      }};
  return instance;
}

std::size_t KeywordDictionary::count_occurrences(std::string_view text) const {
  TokenScratch scratch;
  return count_occurrences(tokenize_into(text, scratch), scratch.bigram);
}

std::size_t KeywordDictionary::count_occurrences(std::span<const Token> tokens,
                                                 std::string& bigram) const {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (unigrams_.contains(tokens[i].text)) ++hits;
    if (i + 1 < tokens.size()) {
      bigram.assign(tokens[i].text);
      bigram.push_back(' ');
      bigram.append(tokens[i + 1].text);
      if (bigrams_.contains(bigram)) ++hits;
    }
  }
  return hits;
}

bool KeywordDictionary::matches(std::string_view text) const {
  return count_occurrences(text) > 0;
}

std::vector<std::string> KeywordDictionary::matched_terms(
    std::string_view text) const {
  const auto words = tokenize_words(text);
  std::vector<std::string> out;
  auto add_unique = [&](std::string term) {
    if (std::find(out.begin(), out.end(), term) == out.end()) {
      out.push_back(std::move(term));
    }
  };
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (unigrams_.contains(words[i])) add_unique(words[i]);
    if (i + 1 < words.size()) {
      std::string bigram = words[i] + " " + words[i + 1];
      if (bigrams_.contains(bigram)) add_unique(std::move(bigram));
    }
  }
  return out;
}

}  // namespace usaas::nlp
