// N-gram counting over document collections.
//
// The word-cloud and trend pipelines both reduce to "count normalized
// n-grams across a document set and rank them" (§4.1 uses top-3 unigrams
// from daily word clouds as news-search queries; the roaming discovery
// surfaced 'roaming' and 'roaming enabled' as the most common uni/bigrams).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace usaas::nlp {

struct NgramCount {
  std::string ngram;
  std::size_t count{0};
  /// Weighted count (documents can carry weights, e.g. upvotes).
  double weight{0.0};
};

class NgramCounter {
 public:
  /// n = 1 for unigrams, 2 for bigrams, ... Stop words are removed before
  /// n-gram formation when `drop_stop_words` (bigrams like "roaming
  /// enabled" survive, "is enabled" does not).
  explicit NgramCounter(std::size_t n, bool drop_stop_words = true);

  /// Adds one document with an importance weight (1.0 = plain count).
  void add_document(std::string_view text, double weight = 1.0);

  [[nodiscard]] std::size_t distinct() const { return counts_.size(); }
  [[nodiscard]] std::size_t total_documents() const { return documents_; }

  /// Top-k by weight (ties: count, then lexicographic for determinism).
  [[nodiscard]] std::vector<NgramCount> top(std::size_t k) const;

  /// Count/weight of one n-gram (joined with single spaces).
  [[nodiscard]] std::size_t count_of(std::string_view ngram) const;
  [[nodiscard]] double weight_of(std::string_view ngram) const;

 private:
  std::size_t n_;
  bool drop_stop_words_;
  std::size_t documents_{0};
  struct Cell {
    std::size_t count{0};
    double weight{0.0};
  };
  std::unordered_map<std::string, Cell> counts_;
};

}  // namespace usaas::nlp
