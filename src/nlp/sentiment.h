// Sentiment analysis — the Azure Cognitive Services stand-in.
//
// §4.1: "The sentiment analysis service assigns three different scores —
// positive, negative, and neutral — to each piece of text (posts in this
// case), which add up to 1. We count the number of posts with strong
// positive (>=0.7) or negative (>=0.7) scores per day."
// SentimentAnalyzer reproduces exactly that contract: a lexicon pass with
// negation scope, intensifiers, exclamation and shouting emphasis, mapped
// to a (positive, negative, neutral) simplex.
//
// The per-token state machine and the mass->simplex mapping live in
// SentimentAccum / finish_scores so the analyzer and the fused
// single-pass PostScorer run literally the same arithmetic — the
// bit-identical-across-paths contract is held structurally, not by two
// copies that must be kept in sync.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <string_view>

#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"

namespace usaas::nlp {

/// The 3-score simplex the pipeline consumes; components sum to 1.
struct SentimentScores {
  double positive{0.0};
  double negative{0.0};
  double neutral{1.0};

  /// The paper's strong-score threshold.
  static constexpr double kStrongThreshold = 0.7;

  [[nodiscard]] bool strong_positive() const {
    return positive >= kStrongThreshold;
  }
  [[nodiscard]] bool strong_negative() const {
    return negative >= kStrongThreshold;
  }
  /// Net polarity in [-1, 1] (positive - negative).
  [[nodiscard]] double polarity() const { return positive - negative; }
};

struct SentimentConfig {
  /// How many following tokens a negator flips.
  std::size_t negation_window{3};
  /// Valence multiplier applied by a flip (sign inverted, slightly damped:
  /// "not great" is bad but weaker than "terrible").
  double negation_strength{0.75};
  /// Per-'!' amplification, capped.
  double exclamation_boost{0.08};
  std::size_t max_exclamations{4};
  /// Amplification when >60 % of letters are uppercase.
  double shouting_boost{0.25};
  /// Valence mass required for a fully confident (non-neutral) call; lower
  /// raw scores leave mass on neutral.
  double saturation{2.0};
};

/// The token-by-token scan state. Feed each token through exactly one of
/// the on_* steps, in stream order; the step choice must follow the
/// lookup priority negator > intensifier > valence.
struct SentimentAccum {
  double pos_mass{0.0};
  double neg_mass{0.0};
  std::size_t negation_left{0};
  double intensity{1.0};

  void on_negator(const SentimentConfig& config) {
    negation_left = config.negation_window;
    intensity = 1.0;
  }
  void on_intensifier(double multiplier) {
    // Consecutive intensifiers compose ("really very slow").
    intensity *= multiplier;
    if (negation_left > 0) --negation_left;
  }
  void on_valence(double valence, const SentimentConfig& config) {
    double val = valence * intensity;
    if (negation_left > 0) {
      val = -val * config.negation_strength;
    }
    if (val > 0.0) {
      pos_mass += val;
    } else {
      neg_mass += -val;
    }
    on_plain();
  }
  /// A token the lexicon knows nothing about.
  void on_plain() {
    intensity = 1.0;
    if (negation_left > 0) --negation_left;
  }
};

/// Maps accumulated masses + emphasis cues onto the simplex.
/// `upper_letters` / `letters` are the uppercase_ratio counts over the
/// full original text; `num_tokens` gates the shouting boost.
[[nodiscard]] inline SentimentScores finish_scores(
    const SentimentAccum& accum, const SentimentConfig& config,
    std::size_t exclamations, std::size_t upper_letters, std::size_t letters,
    std::size_t num_tokens) {
  // Emphasis cues scale whatever polarity is already present.
  const double excl = static_cast<double>(
      std::min(exclamations, config.max_exclamations));
  double emphasis = 1.0 + config.exclamation_boost * excl;
  const double upper_ratio =
      letters == 0 ? 0.0
                   : static_cast<double>(upper_letters) /
                         static_cast<double>(letters);
  if (upper_ratio > 0.6 && num_tokens >= 2) {
    emphasis += config.shouting_boost;
  }
  const double pos_mass = accum.pos_mass * emphasis;
  const double neg_mass = accum.neg_mass * emphasis;

  // Map masses onto the simplex: confidence saturates with total valence
  // mass; leftover probability stays neutral.
  const double total = pos_mass + neg_mass;
  SentimentScores s;
  if (total <= 0.0) return s;  // fully neutral
  const double confidence = total / (total + config.saturation * 0.5);
  s.positive = confidence * pos_mass / total;
  s.negative = confidence * neg_mass / total;
  s.neutral = 1.0 - s.positive - s.negative;
  // Guard tiny negative zeros from floating error.
  s.neutral = std::max(s.neutral, 0.0);
  return s;
}

class SentimentAnalyzer {
 public:
  explicit SentimentAnalyzer(const Lexicon& lexicon = Lexicon::builtin(),
                             SentimentConfig config = {});

  /// Scores a text into the (pos, neg, neu) simplex.
  [[nodiscard]] SentimentScores score(std::string_view text) const;

  /// Same scoring over pre-tokenized text — `tokens` must be the
  /// tokenize_into() output for `text` (still needed for the exclamation
  /// / shouting cues). The allocation-free path for ingest loops that
  /// hold a TokenScratch. Uses the lexicon's single-probe fast path when
  /// available; results are identical either way.
  [[nodiscard]] SentimentScores score(std::span<const Token> tokens,
                                      std::string_view text) const;

  [[nodiscard]] const Lexicon& lexicon() const { return *lexicon_; }
  [[nodiscard]] const SentimentConfig& config() const { return config_; }

 private:
  const Lexicon* lexicon_;  // non-owning; builtin() outlives everything
  SentimentConfig config_;
};

}  // namespace usaas::nlp
