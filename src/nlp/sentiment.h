// Sentiment analysis — the Azure Cognitive Services stand-in.
//
// §4.1: "The sentiment analysis service assigns three different scores —
// positive, negative, and neutral — to each piece of text (posts in this
// case), which add up to 1. We count the number of posts with strong
// positive (>=0.7) or negative (>=0.7) scores per day."
// SentimentAnalyzer reproduces exactly that contract: a lexicon pass with
// negation scope, intensifiers, exclamation and shouting emphasis, mapped
// to a (positive, negative, neutral) simplex.
#pragma once

#include <span>
#include <string_view>

#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"

namespace usaas::nlp {

/// The 3-score simplex the pipeline consumes; components sum to 1.
struct SentimentScores {
  double positive{0.0};
  double negative{0.0};
  double neutral{1.0};

  /// The paper's strong-score threshold.
  static constexpr double kStrongThreshold = 0.7;

  [[nodiscard]] bool strong_positive() const {
    return positive >= kStrongThreshold;
  }
  [[nodiscard]] bool strong_negative() const {
    return negative >= kStrongThreshold;
  }
  /// Net polarity in [-1, 1] (positive - negative).
  [[nodiscard]] double polarity() const { return positive - negative; }
};

struct SentimentConfig {
  /// How many following tokens a negator flips.
  std::size_t negation_window{3};
  /// Valence multiplier applied by a flip (sign inverted, slightly damped:
  /// "not great" is bad but weaker than "terrible").
  double negation_strength{0.75};
  /// Per-'!' amplification, capped.
  double exclamation_boost{0.08};
  std::size_t max_exclamations{4};
  /// Amplification when >60 % of letters are uppercase.
  double shouting_boost{0.25};
  /// Valence mass required for a fully confident (non-neutral) call; lower
  /// raw scores leave mass on neutral.
  double saturation{2.0};
};

class SentimentAnalyzer {
 public:
  explicit SentimentAnalyzer(const Lexicon& lexicon = Lexicon::builtin(),
                             SentimentConfig config = {});

  /// Scores a text into the (pos, neg, neu) simplex.
  [[nodiscard]] SentimentScores score(std::string_view text) const;

  /// Same scoring over pre-tokenized text — `tokens` must be the
  /// tokenize() output for `text` (still needed for the exclamation /
  /// shouting cues). The allocation-free path for ingest loops that hold
  /// a TokenScratch.
  [[nodiscard]] SentimentScores score(std::span<const Token> tokens,
                                      std::string_view text) const;

 private:
  const Lexicon* lexicon_;  // non-owning; builtin() outlives everything
  SentimentConfig config_;
};

}  // namespace usaas::nlp
