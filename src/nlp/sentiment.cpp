#include "nlp/sentiment.h"

#include "nlp/perfect_hash.h"
#include "nlp/tokenizer.h"

namespace usaas::nlp {

SentimentAnalyzer::SentimentAnalyzer(const Lexicon& lexicon,
                                     SentimentConfig config)
    : lexicon_{&lexicon}, config_{config} {}

SentimentScores SentimentAnalyzer::score(std::string_view text) const {
  TokenScratch scratch;
  return score(tokenize_into(text, scratch), text);
}

SentimentScores SentimentAnalyzer::score(std::span<const Token> tokens,
                                         std::string_view text) const {
  SentimentAccum accum;
  if (lexicon_->has_fast_path()) {
    for (const Token& t : tokens) {
      const Lexicon::Entry* e = lexicon_->probe(t.text, string_hash(t.text));
      if (e == nullptr) {
        accum.on_plain();
      } else if ((e->flags & Lexicon::Entry::kNegator) != 0) {
        accum.on_negator(config_);
      } else if ((e->flags & Lexicon::Entry::kIntensifier) != 0) {
        accum.on_intensifier(e->intensity);
      } else {
        accum.on_valence(e->valence, config_);
      }
    }
  } else {
    for (const Token& t : tokens) {
      if (lexicon_->is_negator(t.text)) {
        accum.on_negator(config_);
      } else if (const auto mult = lexicon_->intensity(t.text)) {
        accum.on_intensifier(*mult);
      } else if (const auto v = lexicon_->valence(t.text)) {
        accum.on_valence(*v, config_);
      } else {
        accum.on_plain();
      }
    }
  }

  std::size_t letters = 0;
  std::size_t upper = 0;
  const CharClass& cc = char_class();
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (cc.alpha[u]) {
      ++letters;
      if (cc.upper[u]) ++upper;
    }
  }
  return finish_scores(accum, config_, count_exclamations(text), upper,
                       letters, tokens.size());
}

}  // namespace usaas::nlp
