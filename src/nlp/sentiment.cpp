#include "nlp/sentiment.h"

#include <algorithm>
#include <cmath>

#include "nlp/tokenizer.h"

namespace usaas::nlp {

SentimentAnalyzer::SentimentAnalyzer(const Lexicon& lexicon,
                                     SentimentConfig config)
    : lexicon_{&lexicon}, config_{config} {}

SentimentScores SentimentAnalyzer::score(std::string_view text) const {
  return score(tokenize(text), text);
}

SentimentScores SentimentAnalyzer::score(std::span<const Token> tokens,
                                         std::string_view text) const {
  double pos_mass = 0.0;
  double neg_mass = 0.0;

  // Scan state: pending negation (tokens remaining) and pending intensity.
  std::size_t negation_left = 0;
  double intensity = 1.0;

  for (const Token& t : tokens) {
    if (lexicon_->is_negator(t.text)) {
      negation_left = config_.negation_window;
      intensity = 1.0;
      continue;
    }
    if (const auto mult = lexicon_->intensity(t.text)) {
      // Consecutive intensifiers compose ("really very slow").
      intensity *= *mult;
      if (negation_left > 0) --negation_left;
      continue;
    }
    if (const auto v = lexicon_->valence(t.text)) {
      double val = *v * intensity;
      if (negation_left > 0) {
        val = -val * config_.negation_strength;
      }
      if (val > 0.0) {
        pos_mass += val;
      } else {
        neg_mass += -val;
      }
    }
    intensity = 1.0;
    if (negation_left > 0) --negation_left;
  }

  // Emphasis cues scale whatever polarity is already present.
  const double excl =
      static_cast<double>(std::min(count_exclamations(text),
                                   config_.max_exclamations));
  double emphasis = 1.0 + config_.exclamation_boost * excl;
  if (uppercase_ratio(text) > 0.6 && tokens.size() >= 2) {
    emphasis += config_.shouting_boost;
  }
  pos_mass *= emphasis;
  neg_mass *= emphasis;

  // Map masses onto the simplex: confidence saturates with total valence
  // mass; leftover probability stays neutral.
  const double total = pos_mass + neg_mass;
  SentimentScores s;
  if (total <= 0.0) return s;  // fully neutral
  const double confidence = total / (total + config_.saturation * 0.5);
  s.positive = confidence * pos_mass / total;
  s.negative = confidence * neg_mass / total;
  s.neutral = 1.0 - s.positive - s.negative;
  // Guard tiny negative zeros from floating error.
  s.neutral = std::max(s.neutral, 0.0);
  return s;
}

}  // namespace usaas::nlp
