// Tokenization and normalization for the social-media pipelines.
//
// The paper leans on NLTK-style preprocessing for its word clouds (§4.1)
// and on Azure Cognitive Services for sentiment. Our substrate needs the
// same front end: lowercase, split on non-word characters (keeping
// intra-word apostrophes and numbers), optional stop-word removal.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace usaas::nlp {

/// A token with its position in the token stream (positions let the
/// sentiment analyzer apply negation windows).
struct Token {
  std::string text;
  std::size_t position{0};
};

/// Reusable buffers for the allocation-free tokenize_into path. Ingest
/// hot loops keep one per worker: token strings and the bigram probe
/// retain their capacity across texts, so steady-state scoring allocates
/// nothing.
struct TokenScratch {
  std::vector<Token> tokens;
  /// Callers may assemble the input here (e.g. title + ' ' + body).
  std::string text;
  /// Bigram probe buffer for KeywordDictionary::count_occurrences.
  std::string bigram;
};

/// Lowercases ASCII; leaves other bytes untouched.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Splits into lowercase word tokens. Keeps embedded apostrophes
/// ("isn't" -> "isn't") and digits ("99" survives); everything else is a
/// separator. Trailing punctuation marks exclamation density, which the
/// caller can query separately via count_exclamations.
[[nodiscard]] std::vector<Token> tokenize(std::string_view text);

/// tokenize() into reused storage: identical output, but token strings
/// reuse the scratch's capacity instead of allocating per call. The
/// returned span aliases `scratch.tokens` and stays valid until the next
/// call with the same scratch. `text` may alias `scratch.text`.
[[nodiscard]] std::span<const Token> tokenize_into(std::string_view text,
                                                   TokenScratch& scratch);

/// Convenience: tokens as plain strings.
[[nodiscard]] std::vector<std::string> tokenize_words(std::string_view text);

/// Number of '!' characters (sentiment emphasis cue).
[[nodiscard]] std::size_t count_exclamations(std::string_view text);

/// Fraction of alphabetic characters that are uppercase in the original
/// text (ALL-CAPS shouting cue). Returns 0 for texts with no letters.
[[nodiscard]] double uppercase_ratio(std::string_view text);

/// True for English stop words (a compact embedded list).
[[nodiscard]] bool is_stop_word(std::string_view word);

/// Removes stop words and single-character tokens.
[[nodiscard]] std::vector<std::string> content_words(std::string_view text);

}  // namespace usaas::nlp
