// Tokenization and normalization for the social-media pipelines.
//
// The paper leans on NLTK-style preprocessing for its word clouds (§4.1)
// and on Azure Cognitive Services for sentiment. Our substrate needs the
// same front end: lowercase, split on non-word characters (keeping
// intra-word apostrophes and numbers), optional stop-word removal.
//
// Tokens do not own their text: tokenize_into lowercases every token's
// bytes into the scratch's arena and hands out string_views over it, so
// steady-state tokenization performs zero allocations per text (the
// arena is resized once to the input length — total token bytes can
// never exceed it — and keeps its capacity across calls).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace usaas::nlp {

/// A token with its position in the token stream (positions let the
/// sentiment analyzer apply negation windows). `text` views the arena of
/// the TokenScratch that produced it and stays valid until the next
/// tokenize_into call with the same scratch.
struct Token {
  std::string_view text;
  std::size_t position{0};
};

/// Reusable buffers for the allocation-free tokenize_into path. Ingest
/// hot loops keep one per worker: the token vector, the arena holding
/// the lowercased token bytes, and the bigram probe all retain their
/// capacity across texts, so steady-state scoring allocates nothing.
struct TokenScratch {
  std::vector<Token> tokens;
  /// Callers may assemble the input here (e.g. title + ' ' + body).
  std::string text;
  /// Lowercased token bytes; every Token's text points into this.
  std::string arena;
  /// Bigram probe buffer for KeywordDictionary::count_occurrences.
  std::string bigram;
};

/// Lowercases ASCII; leaves other bytes untouched.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Splits `text` into lowercase word tokens stored in `scratch`. Keeps
/// embedded apostrophes ("isn't" -> "isn't") and digits ("99" survives);
/// everything else is a separator — tokens always start and end on a
/// word character, so a quoting or trailing apostrophe ("users'") never
/// enters a token. The returned span aliases `scratch.tokens`, whose
/// views alias `scratch.arena`; both stay valid until the next call with
/// the same scratch. `text` may alias `scratch.text` (the arena is a
/// separate buffer).
[[nodiscard]] std::span<const Token> tokenize_into(std::string_view text,
                                                   TokenScratch& scratch);

/// Convenience: tokens as plain owned strings.
[[nodiscard]] std::vector<std::string> tokenize_words(std::string_view text);

/// Number of '!' characters (sentiment emphasis cue).
[[nodiscard]] std::size_t count_exclamations(std::string_view text);

/// Fraction of alphabetic characters that are uppercase in the original
/// text (ALL-CAPS shouting cue). Returns 0 for texts with no letters.
[[nodiscard]] double uppercase_ratio(std::string_view text);

/// True for English stop words (a compact embedded list).
[[nodiscard]] bool is_stop_word(std::string_view word);

/// Removes stop words and single-character tokens.
[[nodiscard]] std::vector<std::string> content_words(std::string_view text);

/// The character classification the tokenizer and the fused scorer share:
/// one 256-entry table built from the <cctype> predicates, so the fused
/// single-pass scan classifies and lowercases bytes with exactly the
/// same semantics as the two-phase path.
struct CharClass {
  unsigned char lower[256];
  bool word[256];   // isalnum
  bool alpha[256];  // isalpha
  bool upper[256];  // isupper
};
[[nodiscard]] const CharClass& char_class();

}  // namespace usaas::nlp
