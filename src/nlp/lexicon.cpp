#include "nlp/lexicon.h"

#include <stdexcept>

namespace usaas::nlp {

void Lexicon::add_word(std::string word, double valence) {
  if (valence < -1.0 || valence > 1.0) {
    throw std::invalid_argument("Lexicon: valence outside [-1, 1]");
  }
  valence_[std::move(word)] = valence;
  rebuild_fast_path();
}

void Lexicon::add_negator(std::string word) {
  negators_[std::move(word)] = 1;
  rebuild_fast_path();
}

void Lexicon::add_intensifier(std::string word, double multiplier) {
  if (multiplier <= 0.0) {
    throw std::invalid_argument("Lexicon: non-positive intensity");
  }
  intensifiers_[std::move(word)] = multiplier;
  rebuild_fast_path();
}

void Lexicon::rebuild_fast_path() {
  // Union of the three vocabularies; views into the node-based maps'
  // keys are stable while we build. A word may carry several roles —
  // the packed entry holds all of them.
  std::unordered_map<std::string_view, Entry> merged;
  for (const auto& [word, val] : valence_) {
    Entry& e = merged[word];
    e.valence = val;
    e.flags |= Entry::kHasValence;
  }
  for (const auto& [word, _] : negators_) {
    merged[word].flags |= Entry::kNegator;
  }
  for (const auto& [word, mult] : intensifiers_) {
    Entry& e = merged[word];
    e.intensity = mult;
    e.flags |= Entry::kIntensifier;
  }

  std::vector<std::string_view> keys;
  keys.reserve(merged.size());
  std::vector<Entry> entries;
  entries.reserve(merged.size());
  for (const auto& [word, entry] : merged) {
    keys.push_back(word);
    entries.push_back(entry);
  }

  fast_ok_ = index_.build(keys, options_);
  if (!fast_ok_) {
    index_ = PerfectStringIndex{};
    entries_.clear();
    return;
  }
  entries_ = std::move(entries);
  // Collision-freedom check: every word must come back as itself. A
  // failure here is a construction bug, not bad input — hence
  // logic_error (the builtin() path turns this into a startup check).
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (index_.lookup(keys[i], string_hash(keys[i])) != i) {
      throw std::logic_error(
          "Lexicon: perfect-hash round-trip failed for '" +
          std::string(keys[i]) + "'");
    }
  }
}

std::optional<double> Lexicon::valence(std::string_view word) const {
  const auto it = valence_.find(word);
  if (it == valence_.end()) return std::nullopt;
  return it->second;
}

bool Lexicon::is_negator(std::string_view word) const {
  return negators_.find(word) != negators_.end();
}

std::optional<double> Lexicon::intensity(std::string_view word) const {
  const auto it = intensifiers_.find(word);
  if (it == intensifiers_.end()) return std::nullopt;
  return it->second;
}

namespace {

struct Entry {
  const char* word;
  double valence;
};

// Positive valence.
constexpr Entry kPositive[] = {
    {"good", 0.5},        {"great", 0.7},       {"awesome", 0.85},
    {"amazing", 0.85},    {"excellent", 0.8},   {"fantastic", 0.85},
    {"incredible", 0.8},  {"love", 0.75},       {"loving", 0.7},
    {"loved", 0.7},       {"happy", 0.65},      {"glad", 0.55},
    {"thrilled", 0.8},    {"excited", 0.65},    {"impressed", 0.7},
    {"impressive", 0.7},  {"solid", 0.5},       {"stable", 0.55},
    {"reliable", 0.6},    {"fast", 0.6},        {"faster", 0.6},
    {"fastest", 0.7},     {"quick", 0.5},       {"snappy", 0.6},
    {"smooth", 0.55},     {"flawless", 0.8},    {"perfect", 0.8},
    {"perfectly", 0.75},  {"works", 0.4},       {"working", 0.35},
    {"worked", 0.35},     {"improved", 0.6},    {"improvement", 0.6},
    {"improving", 0.55},  {"better", 0.5},      {"best", 0.7},
    {"upgrade", 0.45},    {"upgraded", 0.5},    {"win", 0.6},
    {"winner", 0.65},     {"recommend", 0.65},  {"recommended", 0.65},
    {"satisfied", 0.6},   {"satisfying", 0.55}, {"pleased", 0.6},
    {"enjoy", 0.55},      {"enjoying", 0.55},   {"wow", 0.6},
    {"finally", 0.3},     {"yes", 0.3},         {"nice", 0.5},
    {"beautiful", 0.65},  {"blazing", 0.6},     {"rocks", 0.65},
    {"gamechanger", 0.8}, {"lifesaver", 0.8},   {"consistent", 0.5},
    {"consistently", 0.45},{"uptime", 0.35},    {"thanks", 0.45},
    {"thank", 0.45},      {"grateful", 0.6},    {"worth", 0.45},
    {"delivered", 0.4},   {"arrived", 0.4},     {"shipping", 0.2},
    {"shipped", 0.35},    {"enabled", 0.3},     {"available", 0.3},
    {"cheap", 0.25},      {"affordable", 0.45}, {"helpful", 0.5},
    {"responsive", 0.5},  {"painless", 0.55},   {"stoked", 0.7},
    {"hyped", 0.6},       {"pumped", 0.6},      {"crisp", 0.5},
    {"usable", 0.3},      {"decent", 0.35},     {"fine", 0.3},
    {"okay", 0.2},        {"ok", 0.2},          {"playable", 0.35},
    {"watchable", 0.3},   {"seamless", 0.65},   {"rock-solid", 0.7},
};

// Negative valence.
constexpr Entry kNegative[] = {
    {"bad", -0.5},         {"terrible", -0.8},    {"horrible", -0.8},
    {"awful", -0.8},       {"worst", -0.85},      {"worse", -0.6},
    {"poor", -0.55},       {"hate", -0.75},       {"hated", -0.7},
    {"angry", -0.65},      {"furious", -0.8},     {"annoyed", -0.55},
    {"annoying", -0.55},   {"frustrated", -0.65}, {"frustrating", -0.65},
    {"disappointed", -0.65},{"disappointing", -0.65},{"disappointment", -0.65},
    {"slow", -0.55},       {"slower", -0.5},      {"slowest", -0.65},
    {"sluggish", -0.55},   {"laggy", -0.6},       {"lag", -0.5},
    {"lagging", -0.55},    {"unstable", -0.6},    {"unreliable", -0.65},
    {"unusable", -0.8},    {"useless", -0.75},    {"broken", -0.65},
    {"broke", -0.55},      {"breaks", -0.55},     {"fails", -0.6},
    {"failed", -0.6},      {"failure", -0.65},    {"failing", -0.6},
    {"outage", -0.7},      {"outages", -0.7},     {"down", -0.5},
    {"offline", -0.6},     {"dead", -0.65},       {"drops", -0.5},
    {"dropped", -0.5},     {"dropping", -0.55},   {"dropout", -0.6},
    {"dropouts", -0.6},    {"disconnect", -0.6},  {"disconnects", -0.6},
    {"disconnected", -0.6},{"disconnecting", -0.6},{"disconnection", -0.6},
    {"interruption", -0.55},{"interruptions", -0.6},{"interrupted", -0.5},
    {"buffering", -0.6},   {"stutter", -0.55},    {"stuttering", -0.55},
    {"freeze", -0.55},     {"freezes", -0.55},    {"freezing", -0.55},
    {"frozen", -0.5},      {"choppy", -0.55},     {"spotty", -0.5},
    {"flaky", -0.55},      {"glitchy", -0.55},    {"glitch", -0.45},
    {"crawl", -0.5},       {"crawling", -0.5},    {"throttled", -0.6},
    {"throttling", -0.6},  {"congested", -0.6},   {"congestion", -0.55},
    {"oversold", -0.65},   {"oversubscribed", -0.6},{"overloaded", -0.6},
    {"delay", -0.45},      {"delays", -0.5},      {"delayed", -0.5},
    {"waiting", -0.35},    {"wait", -0.3},        {"stuck", -0.5},
    {"cancel", -0.5},      {"cancelled", -0.55},  {"canceled", -0.55},
    {"cancelling", -0.5},  {"refund", -0.5},      {"returned", -0.35},
    {"expensive", -0.45},  {"overpriced", -0.6},  {"ripoff", -0.75},
    {"scam", -0.8},        {"joke", -0.5},        {"garbage", -0.75},
    {"trash", -0.7},       {"crap", -0.65},       {"sucks", -0.7},
    {"suck", -0.65},       {"pathetic", -0.7},    {"unacceptable", -0.7},
    {"regret", -0.6},      {"avoid", -0.5},       {"warning", -0.4},
    {"issue", -0.4},       {"issues", -0.45},     {"problem", -0.45},
    {"problems", -0.5},    {"trouble", -0.45},    {"error", -0.45},
    {"errors", -0.5},      {"obstruction", -0.4}, {"obstructions", -0.45},
    {"timeout", -0.5},     {"timeouts", -0.55},   {"unplayable", -0.7},
    {"unwatchable", -0.7}, {"degraded", -0.55},   {"degradation", -0.55},
    {"spikes", -0.4},      {"spiking", -0.45},    {"jitter", -0.35},
    {"packet", -0.05},     {"complaint", -0.5},   {"complaints", -0.5},
    {"angrier", -0.65},    {"mad", -0.55},        {"livid", -0.8},
    {"nightmare", -0.75},  {"disaster", -0.75},   {"mess", -0.55},
    {"meltdown", -0.7},    {"churn", -0.4},       {"bricked", -0.65},
};

struct IntensityEntry {
  const char* word;
  double multiplier;
};

constexpr IntensityEntry kIntensifiers[] = {
    {"very", 1.3},       {"really", 1.25},   {"extremely", 1.5},
    {"incredibly", 1.45},{"absolutely", 1.4},{"totally", 1.3},
    {"completely", 1.35},{"utterly", 1.45},  {"so", 1.2},
    {"super", 1.3},      {"insanely", 1.5},  {"ridiculously", 1.45},
    {"constantly", 1.3}, {"always", 1.2},    {"entirely", 1.3},
    // Dampeners.
    {"slightly", 0.6},   {"somewhat", 0.7},  {"kinda", 0.7},
    {"kind", 0.8},       {"bit", 0.7},       {"barely", 0.55},
    {"occasionally", 0.7},{"sometimes", 0.75},{"mildly", 0.6},
    {"fairly", 0.85},    {"mostly", 0.85},   {"little", 0.7},
};

constexpr const char* kNegators[] = {
    "not",    "no",      "never", "none",  "isn't",  "aren't", "wasn't",
    "weren't","don't",   "doesn't","didn't","can't", "cannot", "couldn't",
    "won't",  "wouldn't","shouldn't","ain't","without","hardly", "nothing",
    "nobody", "neither", "nor",   "stopped", "zero",
};

}  // namespace

const Lexicon& Lexicon::builtin() {
  static const Lexicon instance = [] {
    Lexicon lex;
    for (const auto& e : kPositive) lex.add_word(e.word, e.valence);
    for (const auto& e : kNegative) lex.add_word(e.word, e.valence);
    for (const auto& e : kIntensifiers) {
      lex.add_intensifier(e.word, e.multiplier);
    }
    for (const char* n : kNegators) lex.add_negator(n);
    return lex;
  }();
  return instance;
}

}  // namespace usaas::nlp
