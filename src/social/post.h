// The Reddit post record.
//
// `kind` and `true_*` fields are simulation ground truth: they exist so
// tests and EXPERIMENTS.md can score the pipelines (did the sentiment
// analyzer recover the intended polarity? did the outage detector find the
// planted outage days?). The USaaS analysis pipelines never read them —
// they see only date, text, upvotes, comment count, and the screenshot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/date.h"
#include "ocr/screenshot.h"

namespace usaas::social {

enum class PostKind {
  kExperience,      // "been using it for a month, here's how it's going"
  kSpeedtest,       // screenshot share with caption
  kOutageReport,    // "is starlink down for anyone else?"
  kEventReaction,   // reaction to a news/announcement event
  kQuestion,        // setup / purchase questions
  kOffTopic,        // launch photos, memes, dishy pictures
  kFeatureDiscovery,// early reports of an unannounced feature (roaming)
};

[[nodiscard]] constexpr const char* to_string(PostKind k) {
  switch (k) {
    case PostKind::kExperience: return "experience";
    case PostKind::kSpeedtest: return "speedtest";
    case PostKind::kOutageReport: return "outage-report";
    case PostKind::kEventReaction: return "event-reaction";
    case PostKind::kQuestion: return "question";
    case PostKind::kOffTopic: return "off-topic";
    case PostKind::kFeatureDiscovery: return "feature-discovery";
  }
  return "unknown";
}

struct Post {
  std::uint64_t id{0};
  core::Date date;
  std::uint64_t author_id{0};
  std::string title;
  std::string body;
  int upvotes{0};
  int num_comments{0};
  /// Attached speed-test screenshot (rendered text raster), when any.
  std::optional<std::string> screenshot;

  // ---- Ground truth (not visible to the analysis pipelines) ----
  PostKind kind{PostKind::kOffTopic};
  /// Intended polarity in [-1, 1] that the text was generated to express.
  double true_polarity{0.0};
  /// The true measurement behind the screenshot, when any.
  std::optional<ocr::TestResult> true_test;

  /// Popularity weight used by the trend miner (upvotes + comments).
  [[nodiscard]] double popularity() const {
    return static_cast<double>(upvotes + num_comments);
  }
  [[nodiscard]] std::string full_text() const { return title + " " + body; }
};

}  // namespace usaas::social
