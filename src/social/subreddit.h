// The r/Starlink simulator.
//
// Drives two years of posting behaviour off the LEO substrate:
//   * background chatter grows with the subscriber base (the paper
//     observes 372 posts/week on average);
//   * experience & speed-test posts express sentiment about the *delta*
//     between today's experienced speed and the community's adapted
//     expectation (an EWMA of recent medians) — the "shifting fulcrum" of
//     §4.2;
//   * outages spawn keyword-dense report threads scaled by severity;
//   * news events spawn reaction bursts scaled by buzz;
//   * the roaming storyline seeds feature-discovery posts with rising
//     popularity starting ~2 weeks before the official announcement.
#pragma once

#include <cstdint>
#include <vector>

#include "core/date.h"
#include "core/rng.h"
#include "leo/events.h"
#include "leo/outages.h"
#include "leo/speed.h"
#include "social/post.h"
#include "social/text_gen.h"

namespace usaas::social {

struct SubredditConfig {
  std::uint64_t seed{777};
  core::Date first_day{2021, 1, 1};
  core::Date last_day{2022, 12, 31};
  /// Background post volume ramp (posts/day), linear over the range.
  double posts_per_day_start{25.0};
  double posts_per_day_end{80.0};
  /// Background mix (fractions of background posts; remainder = reactions
  /// to nothing, treated as off-topic).
  double experience_share{0.34};
  double speedtest_share{0.05};
  double question_share{0.22};
  double offtopic_share{0.33};
  /// Event-reaction posts per unit of event buzz.
  double reaction_posts_per_buzz{150.0};
  /// Outage-report posts per unit of outage severity.
  double outage_posts_per_severity{120.0};
  /// Fulcrum: daily EWMA factor of the community speed expectation.
  double expectation_alpha{0.035};
  /// Sentiment gain on relative speed delta (polarity = gain * delta).
  double delta_gain{3.5};
  /// ABLATION SWITCH: when false, users judge speeds against a fixed
  /// absolute reference instead of their adapted expectation — no
  /// hedonic adaptation, so sentiment becomes a pure function of the
  /// current speed level (§4.2's "wheel of time" disappears).
  bool adaptation_enabled{true};
  double absolute_reference_mbps{60.0};
  /// Spread of per-author mood noise added to polarity.
  double mood_noise{0.35};
  /// Roaming storyline.
  bool enable_roaming_storyline{true};
  double roaming_posts_day_one{2.0};
  double roaming_posts_growth{1.25};  // per day until announcement
  /// Upvote model: lognormal(mu, sigma) baseline, scaled on hot days.
  double upvote_mu{1.6};
  double upvote_sigma{1.1};
  double hot_day_upvote_mult{2.5};
};

/// A generated day of subreddit activity plus the ground truth used by
/// tests (expectation level, median speed).
struct DayTruth {
  core::Date date;
  double median_speed{0.0};
  double expectation{0.0};
  double outage_severity{0.0};
};

class RedditSim {
 public:
  RedditSim(SubredditConfig config, leo::SpeedModel speed_model,
            leo::OutageModel outage_model, leo::EventTimeline events);

  /// Runs the full simulation; returns posts sorted by date.
  [[nodiscard]] std::vector<Post> simulate() const;

  /// Ground-truth series (one entry per day), filled by simulate().
  /// Invariant: call simulate() first; empty before that.
  [[nodiscard]] const std::vector<DayTruth>& day_truths() const {
    return truths_;
  }

  [[nodiscard]] const SubredditConfig& config() const { return config_; }
  [[nodiscard]] const leo::OutageModel& outages() const {
    return outage_model_;
  }
  [[nodiscard]] const leo::EventTimeline& events() const { return events_; }
  [[nodiscard]] const leo::SpeedModel& speed_model() const {
    return speed_model_;
  }

 private:
  void add_post(std::vector<Post>& posts, const core::Date& d, PostKind kind,
                GeneratedText text, double true_polarity, double hotness,
                core::Rng& rng) const;

  SubredditConfig config_;
  leo::SpeedModel speed_model_;
  leo::OutageModel outage_model_;
  leo::EventTimeline events_;
  TextGenerator gen_;
  mutable std::vector<DayTruth> truths_;
  mutable std::uint64_t next_post_id_{1};
};

}  // namespace usaas::social
