// Template-grammar post text generation.
//
// Generates the title/body of each simulated post from phrase banks whose
// vocabulary overlaps the sentiment lexicon and the outage dictionary — so
// the NLP pipelines face text whose *intended* polarity is known ground
// truth but must still be recovered from words, negations, intensifiers
// and noise (hedges, off-topic filler, typo-free but colloquial phrasing).
#pragma once

#include <string>

#include "core/rng.h"
#include "leo/events.h"
#include "social/post.h"

namespace usaas::social {

/// Title + body of a generated post.
struct GeneratedText {
  std::string title;
  std::string body;
};

class TextGenerator {
 public:
  /// Experience / speedtest-caption text expressing `polarity` in [-1, 1]
  /// about the given downlink speed. Polarity near 0 produces hedged,
  /// mostly-neutral text.
  [[nodiscard]] GeneratedText experience(double polarity, double speed_mbps,
                                         core::Rng& rng) const;

  /// Outage report; `confirmed_global` posts use stronger, keyword-dense
  /// phrasing ("global outage"), transient ones are localized and hedged.
  /// `press_covered` reports echo the official vocabulary the news used
  /// ("global downtime", "service down worldwide"), which is why the
  /// reported outages of Fig 6 spike higher in keyword counts.
  [[nodiscard]] GeneratedText outage_report(bool confirmed_global,
                                            bool press_covered,
                                            core::Rng& rng) const;

  /// Reaction to a news event with the given keywords and sentiment.
  [[nodiscard]] GeneratedText event_reaction(const leo::NewsEvent& event,
                                             core::Rng& rng) const;

  /// Setup / purchase question (neutral).
  [[nodiscard]] GeneratedText question(core::Rng& rng) const;

  /// Off-topic chatter (neutral to mildly positive).
  [[nodiscard]] GeneratedText off_topic(core::Rng& rng) const;

  /// Early feature-discovery post (the roaming storyline): enthusiastic,
  /// mentions the feature term prominently.
  [[nodiscard]] GeneratedText feature_discovery(const std::string& feature_term,
                                                core::Rng& rng) const;
};

}  // namespace usaas::social
