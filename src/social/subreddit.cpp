#include "social/subreddit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::social {

RedditSim::RedditSim(SubredditConfig config, leo::SpeedModel speed_model,
                     leo::OutageModel outage_model, leo::EventTimeline events)
    : config_{config},
      speed_model_{std::move(speed_model)},
      outage_model_{std::move(outage_model)},
      events_{std::move(events)} {
  if (config_.last_day < config_.first_day) {
    throw std::invalid_argument("SubredditConfig: last_day < first_day");
  }
  const double mix = config_.experience_share + config_.speedtest_share +
                     config_.question_share + config_.offtopic_share;
  if (mix > 1.0 + 1e-9) {
    throw std::invalid_argument("SubredditConfig: background mix > 1");
  }
}

void RedditSim::add_post(std::vector<Post>& posts, const core::Date& d,
                         PostKind kind, GeneratedText text,
                         double true_polarity, double hotness,
                         core::Rng& rng) const {
  Post p;
  p.id = next_post_id_++;
  p.date = d;
  p.author_id = static_cast<std::uint64_t>(rng.uniform_int(1, 250000));
  p.title = std::move(text.title);
  p.body = std::move(text.body);
  const double upvote_scale =
      1.0 + (config_.hot_day_upvote_mult - 1.0) * std::clamp(hotness, 0.0, 1.0);
  p.upvotes = static_cast<int>(
      rng.lognormal(config_.upvote_mu, config_.upvote_sigma) * upvote_scale);
  p.num_comments = static_cast<int>(rng.poisson(2.0 + 0.5 * p.upvotes));
  p.kind = kind;
  p.true_polarity = true_polarity;
  posts.push_back(std::move(p));
}

std::vector<Post> RedditSim::simulate() const {
  std::vector<Post> posts;
  truths_.clear();
  next_post_id_ = 1;
  core::Rng root{config_.seed};

  const auto total_days =
      static_cast<double>(config_.first_day.days_until(config_.last_day));

  // Community speed expectation (the fulcrum), seeded at the day-one median.
  double expectation =
      speed_model_.median_downlink_mbps(config_.first_day);

  const core::Date roam_start = leo::EventTimeline::roaming_user_discovery_date();
  const core::Date roam_announce = leo::EventTimeline::roaming_announcement_date();

  core::for_each_day(config_.first_day, config_.last_day, [&](const core::Date& d) {
    core::Rng rng = root.split(static_cast<std::uint64_t>(d.days_since_epoch()));

    const double median_speed = speed_model_.median_downlink_mbps(d);
    const double outage_sev = outage_model_.affected_fraction_on(d) *
                              0.6 +
                              outage_model_.severity_on(d) * 0.4;
    const double buzz = events_.buzz_on(d);
    const double hotness = std::clamp(buzz + outage_sev, 0.0, 1.0);

    // ---- Background chatter ----
    const double t = total_days == 0.0
                         ? 0.0
                         : static_cast<double>(
                               config_.first_day.days_until(d)) / total_days;
    const double base_rate =
        config_.posts_per_day_start +
        t * (config_.posts_per_day_end - config_.posts_per_day_start);
    const auto n_background = rng.poisson(base_rate);

    for (std::int64_t i = 0; i < n_background; ++i) {
      const double u = rng.uniform();
      if (u < config_.experience_share + config_.speedtest_share) {
        // Experience of a specific user today.
        const leo::SpeedSample sample =
            speed_model_.draw_test(d, rng, outage_model_.affected_fraction_on(d));
        const double reference = config_.adaptation_enabled
                                     ? expectation
                                     : config_.absolute_reference_mbps;
        const double delta =
            reference > 0.0
                ? (sample.downlink_mbps - reference) / reference
                : 0.0;
        double polarity = std::clamp(config_.delta_gain * delta, -1.0, 1.0) +
                          rng.normal(0.0, config_.mood_noise);
        if (sample.during_outage) polarity -= 0.8;
        polarity = std::clamp(polarity, -1.0, 1.0);

        const bool share_screenshot = u >= config_.experience_share;
        GeneratedText text =
            gen_.experience(polarity, sample.downlink_mbps, rng);
        Post p;
        p.id = next_post_id_++;
        p.date = d;
        p.author_id = static_cast<std::uint64_t>(rng.uniform_int(1, 250000));
        p.title = std::move(text.title);
        p.body = std::move(text.body);
        p.upvotes = static_cast<int>(
            rng.lognormal(config_.upvote_mu, config_.upvote_sigma));
        p.num_comments = static_cast<int>(rng.poisson(2.0 + 0.5 * p.upvotes));
        p.true_polarity = polarity;
        if (share_screenshot) {
          p.kind = PostKind::kSpeedtest;
          ocr::TestResult tr;
          tr.provider = static_cast<ocr::Provider>(
              rng.weighted_index(std::array{0.45, 0.25, 0.25, 0.05}));
          tr.download_mbps = sample.downlink_mbps;
          tr.upload_mbps = sample.uplink_mbps;
          tr.latency_ms = sample.latency_ms;
          p.screenshot = ocr::render_screenshot(tr);
          p.true_test = tr;
        } else {
          p.kind = PostKind::kExperience;
        }
        posts.push_back(std::move(p));
      } else if (u < config_.experience_share + config_.speedtest_share +
                         config_.question_share) {
        add_post(posts, d, PostKind::kQuestion, gen_.question(rng), 0.0, 0.0,
                 rng);
      } else {
        add_post(posts, d, PostKind::kOffTopic, gen_.off_topic(rng), 0.05, 0.0,
                 rng);
      }
    }

    // ---- Event reactions ----
    for (const leo::NewsEvent& ev : events_.on(d)) {
      const auto n_reactions =
          rng.poisson(config_.reaction_posts_per_buzz * ev.buzz);
      for (std::int64_t i = 0; i < n_reactions; ++i) {
        const double pol = ev.sentiment == leo::EventSentiment::kPositive
                               ? 0.8
                               : ev.sentiment == leo::EventSentiment::kNegative
                                     ? -0.8
                                     : 0.0;
        add_post(posts, d, PostKind::kEventReaction,
                 gen_.event_reaction(ev, rng), pol, hotness, rng);
      }
    }

    // ---- Outage reports ----
    for (const leo::Outage& o : outage_model_.on(d)) {
      const auto n_reports =
          rng.poisson(config_.outage_posts_per_severity * o.severity());
      const bool global = o.affected_fraction > 0.5;
      for (std::int64_t i = 0; i < n_reports; ++i) {
        add_post(posts, d, PostKind::kOutageReport,
                 gen_.outage_report(global, o.publicly_reported, rng),
                 global ? -0.85 : -0.45, hotness, rng);
      }
    }

    // ---- Roaming storyline ----
    if (config_.enable_roaming_storyline && d >= roam_start &&
        d < roam_announce) {
      const auto days_in =
          static_cast<double>(roam_start.days_until(d));
      const double rate = config_.roaming_posts_day_one *
                          std::pow(config_.roaming_posts_growth, days_in);
      const auto n_roam = rng.poisson(std::min(rate, 25.0));
      for (std::int64_t i = 0; i < n_roam; ++i) {
        Post p;
        GeneratedText text = gen_.feature_discovery("roaming", rng);
        p.id = next_post_id_++;
        p.date = d;
        p.author_id = static_cast<std::uint64_t>(rng.uniform_int(1, 250000));
        p.title = std::move(text.title);
        p.body = std::move(text.body);
        // Popular discussions: these threads drew unusual engagement.
        p.upvotes = static_cast<int>(
            rng.lognormal(config_.upvote_mu + 1.2, config_.upvote_sigma));
        p.num_comments = static_cast<int>(rng.poisson(4.0 + 0.6 * p.upvotes));
        p.kind = PostKind::kFeatureDiscovery;
        p.true_polarity = 0.8;
        posts.push_back(std::move(p));
      }
    }

    truths_.push_back({d, median_speed, expectation, outage_sev});

    // Fulcrum update: the community acclimatizes to what it experienced.
    expectation = (1.0 - config_.expectation_alpha) * expectation +
                  config_.expectation_alpha * median_speed;
  });

  return posts;
}

}  // namespace usaas::social
