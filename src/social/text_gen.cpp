#include "social/text_gen.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <span>

namespace usaas::social {

namespace {

template <std::size_t N>
const char* pick(const std::array<const char*, N>& bank, core::Rng& rng) {
  return bank[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(N) - 1))];
}

std::string speed_str(double mbps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", mbps);
  return buf;
}

// ---- Experience phrase banks, bucketed by intended polarity ----

constexpr std::array<const char*, 10> kVeryPositiveTitles = {
    "Starlink has been absolutely amazing for us",
    "Incredible speeds tonight, so impressed",
    "This service is a total gamechanger out here",
    "Couldn't be happier with Starlink",
    "Blown away by how good this is",
    "From 2 Mbps DSL to this. Awesome!",
    "Best decision we made this year",
    "Starlink just works, and works great",
    "Rural internet finally solved, amazing",
    "Absolutely loving the new speeds",
};

constexpr std::array<const char*, 10> kVeryPositiveBodies = {
    "Streaming 4k on two TVs while gaming, zero buffering. This is "
    "incredible and I am so happy we switched.",
    "Zoom calls are flawless now, uploads are fast, latency is great. "
    "Absolutely love it!",
    "Everything is smooth and reliable. Best internet we have ever had at "
    "this house, period.",
    "Work from home is finally painless. Fast, stable, consistent. Could "
    "not recommend it more.",
    "I was skeptical but this thing is amazing. Speeds are excellent even "
    "at peak hours and it has been rock solid.",
    "My kids can game while I upload video. Never thought I would say that "
    "out here. Fantastic service.",
    "The latency is so good I forget it is satellite. Great work SpaceX, "
    "genuinely impressed.",
    "Perfect video calls all week, excellent speeds, zero drops. Love "
    "this thing!",
    "Went from hopeless DSL to reliable fast internet overnight. A total "
    "lifesaver for our family, love it.",
    "Install took ten minutes and it has been flawless since. Amazing.",
};

constexpr std::array<const char*, 8> kPositiveTitles = {
    "Pretty happy with Starlink so far",
    "Solid speeds this week",
    "Good experience after one month",
    "Nice improvement lately",
    "Speeds are looking better recently",
    "Happy camper here",
    "Decent performance in my cell",
    "Service has been reliable lately",
};

constexpr std::array<const char*, 8> kPositiveBodies = {
    "Getting good speeds most of the day. The occasional dip but overall "
    "happy with it.",
    "Noticeably better than last month. Streaming works fine and calls are "
    "mostly smooth.",
    "It has been reliable for work. Speeds are good enough for everything "
    "we do.",
    "Solid service lately. A few slow patches in the evening but I am "
    "satisfied overall.",
    "Better than anything else available here. Good speeds, mostly stable.",
    "The last few weeks have been smooth. Glad I kept it.",
    "Uploads improved and the connection feels more consistent. Nice.",
    "No complaints this month, it just works for us.",
};

constexpr std::array<const char*, 8> kNeutralTitles = {
    "One month update from a new user",
    "Mixed results so far",
    "Speeds vary a lot during the day",
    "Average experience in my area",
    "It is okay, not great, not terrible",
    "Some days good, some days meh",
    "Honest review after six weeks",
    "Performance report from my cell",
};

constexpr std::array<const char*, 8> kNeutralBodies = {
    "Speeds are fine in the morning and slower in the evening. It is okay "
    "for what we need but not amazing.",
    "Works for browsing and email. Video calls are sometimes fine, "
    "sometimes a bit choppy.",
    "Honestly it is decent. Not the speeds from the ads but usable for "
    "most things.",
    "Day to day it varies. Some evenings are slow, mornings are fine.",
    "It does the job. I would like more consistency but I can live with "
    "this.",
    "About what I expected. Fine for streaming, just okay for gaming.",
    "Nothing special to report. Average speeds, occasional hiccup.",
    "Usable but uneven. Still better than my old connection.",
};

constexpr std::array<const char*, 9> kNegativeTitles = {
    "Speeds have been disappointing lately",
    "Anyone else seeing slower speeds?",
    "Performance is getting worse in my cell",
    "Frustrated with evening slowdowns",
    "Not happy with the recent speeds",
    "Slower every month, what is going on",
    "Evening congestion is getting bad",
    "Speeds dropped again this month",
    "Is it just me or is it slower lately",
};

constexpr std::array<const char*, 9> kNegativeBodies = {
    "Evenings are slow and video calls keep stuttering. This is getting "
    "frustrating.",
    "Speeds dropped noticeably over the last month. Buffering on streams "
    "almost every night now.",
    "It used to be fast here but lately it is sluggish and inconsistent. "
    "Disappointed.",
    "More and more congestion in my cell. Peak hours are bad and getting "
    "worse.",
    "Paying this much for slow, unstable service is annoying. Hope they "
    "fix the congestion.",
    "The slowdown is real. Uploads crawl and the latency spikes every "
    "evening.",
    "Not impressed anymore. The speeds are poor compared to launch and "
    "support is useless.",
    "Constant buffering tonight, slow downloads, laggy calls. Bad month.",
    "We went from great speeds to barely usable evenings. Frustrating.",
};

constexpr std::array<const char*, 8> kVeryNegativeTitles = {
    "This service has become unusable",
    "Absolutely fed up with Starlink",
    "Worst month yet, constant problems",
    "Terrible speeds, considering cancelling",
    "Unusable every evening now",
    "What a disappointment this has become",
    "Done with these awful slowdowns",
    "Service is a mess lately",
};

constexpr std::array<const char*, 8> kVeryNegativeBodies = {
    "Barely 5 Mbps at night, constant drops, unusable for work. This is "
    "terrible and support does not care.",
    "Completely fed up. Slow, unstable, disconnects every hour. Worst "
    "internet decision I have made.",
    "It is awful now. Unusable for video calls, horrible speeds, and no "
    "answers from support. Cancelling soon.",
    "Every evening is a nightmare of buffering and timeouts. Totally "
    "unacceptable for the price.",
    "The service degraded into garbage in my area. Horrible latency, "
    "dead slow downloads, useless support.",
    "Absolutely terrible month. Drops, slowdowns, failures. I regret "
    "recommending this to anyone.",
    "Unusable. Full stop. Paying premium prices for dead slow internet "
    "is a ripoff.",
    "This has become the worst connection I have ever had. Awful.",
};

// ---- Outage banks ----

constexpr std::array<const char*, 8> kGlobalOutageTitles = {
    "Starlink DOWN worldwide?",
    "Global outage right now?",
    "Is Starlink down for everyone else?",
    "Complete outage here, anyone else?",
    "Starlink offline across the whole region",
    "Major outage - no service at all",
    "Everything is down, dish searching",
    "Worldwide outage happening now",
};

constexpr std::array<const char*, 8> kGlobalOutageBodies = {
    "Total outage here. No internet, no connection, dish just says "
    "searching. Friends two states away are down too. Terrible timing.",
    "Service went down an hour ago and is still offline. Looks like a "
    "global outage, reports from everywhere. Awful.",
    "Our connection is completely dead. No service since this morning. "
    "This outage is hitting everyone I know with Starlink.",
    "Down here as well. The whole network seems offline. Horrible outage, "
    "lost connection in the middle of a work call.",
    "Internet down, app says offline, no connectivity at all. Seeing "
    "outage reports from multiple countries. This is bad.",
    "Dead here too. Downtime is over two hours now. This interruption is "
    "the worst outage yet.",
    "No internet, no signal, everything offline. Massive outage and not a "
    "word from support. Unacceptable.",
    "Connection dropped out and never came back. Looks like a huge outage "
    "across the network. Frustrating.",
};

constexpr std::array<const char*, 8> kTransientOutageTitles = {
    "Short outage in my area this morning",
    "Brief dropouts tonight, anyone else nearby?",
    "Lost connection for an hour here",
    "Service down briefly during the storm",
    "Local outage? dish went offline",
    "Random disconnects this evening",
    "Intermittent outage in my cell",
    "Connection cut out for a while today",
};

constexpr std::array<const char*, 8> kTransientOutageBodies = {
    "Went offline for about forty minutes, then came back. Probably "
    "weather but annoying.",
    "A few short interruptions tonight. No internet for a bit, then fine "
    "again. Anyone else in the area seeing this?",
    "Heavy snow and the dish dropped out twice. Brief downtime, nothing "
    "major, back online now.",
    "Lost signal around noon. Neighbors with Starlink were down too. Back "
    "up after an hour.",
    "Intermittent disconnects all evening. Not a full outage but the "
    "drops are frequent and irritating.",
    "Dish said searching for a while this morning. Local outage I guess. "
    "Working again now.",
    "Short outage here, maybe a gateway issue. Came back by itself.",
    "Two brief dropouts today. Seems like a transient problem in my cell.",
};

// ---- Questions / off-topic ----

constexpr std::array<const char*, 8> kQuestionTitles = {
    "Best mounting option for a metal roof?",
    "How long did your preorder take?",
    "Router placement question",
    "Can I use my own router with this?",
    "Power consumption in winter?",
    "Which ethernet adapter do you use?",
    "Moving soon - how does address change work?",
    "Trees to the north - will it work?",
};

constexpr std::array<const char*, 10> kQuestionBodies = {
    // Neutral threads can mention outage vocabulary without any outage
    // happening — the Fig 6 gate's other false-positive source.
    "How much downtime do you folks see during storms? Trying to gauge "
    "whether I need a backup link for the occasional blackout.",
    "Planning for a remote cabin: how often does the dish sit there "
    "searching after heavy snow, and how long does downtime usually last?",
    "Planning the install this weekend and wondering what has worked for "
    "people with a similar setup. Any advice appreciated.",
    "Trying to decide between the ridge mount and a pole in the yard. "
    "What did you all do?",
    "The app shows a few obstructions. How much does that matter in "
    "practice?",
    "First time setting this up, want to avoid drilling twice. Photos of "
    "your installs welcome.",
    "Ordered in the spring, still waiting. What are current shipping "
    "times looking like in your region?",
    "Does the stock cable reach fifty feet or do I need the longer one?",
    "Any tips on running the cable through a finished wall cleanly?",
    "Considering ordering for a cabin we visit monthly. Does that work?",
};

constexpr std::array<const char*, 8> kOffTopicTitles = {
    "Dishy in the snow this morning",
    "Caught the launch from my backyard",
    "My cat claimed the dish box",
    "Sunset behind the dish, had to share",
    "Finally got the sticker on the truck",
    "Saw the satellite train last night",
    "New cable management setup",
    "Dish survived the hail storm",
};

constexpr std::array<const char*, 9> kOffTopicBodies = {
    "Power went out for the whole street, ran the dish off the truck "
    "inverter. Zero downtime while the neighbours had a blackout.",
    "Just a photo post. The melt feature is doing its job nicely.",
    "The satellite train was visible for a good minute. Pretty great "
    "sight.",
    "No real content here, just appreciate this little dish.",
    "Watched the launch stream then stepped outside and saw the stack fly "
    "over. Very cool.",
    "Rearranged the office and the router finally has a good home.",
    "The neighbors keep asking what the white circle is. I enjoy the "
    "conversations.",
    "Snow slid right off, connection stayed up. Neat.",
    "Nothing beats rural sunsets with a side of working internet.",
};

// ---- Event reactions ----

constexpr std::array<const char*, 6> kPositiveReactionTitles = {
    "Great news today!",
    "Finally! So glad this happened",
    "Big announcement and I am excited",
    "This update is excellent news",
    "Awesome development for Starlink users",
    "Love to see this news",
};

constexpr std::array<const char*, 6> kNegativeReactionTitles = {
    "Not happy about this news",
    "This announcement is disappointing",
    "Bad news for those of us waiting",
    "Frustrating update today",
    "This is a letdown",
    "Annoyed by today's news",
};

constexpr std::array<const char*, 6> kNeutralReactionTitles = {
    "Thoughts on today's news?",
    "Interesting announcement today",
    "Saw the update, discussion thread",
    "News drop - what does it mean for us",
    "Today's announcement, details inside",
    "Update from SpaceX today",
};

}  // namespace

GeneratedText TextGenerator::experience(double polarity, double speed_mbps,
                                        core::Rng& rng) const {
  GeneratedText out;
  const std::string spd = speed_str(speed_mbps);
  if (polarity > 0.6) {
    out.title = pick(kVeryPositiveTitles, rng);
    out.body = std::string{pick(kVeryPositiveBodies, rng)} +
               " Pulling around " + spd + " Mbps, excellent!";
  } else if (polarity > 0.2) {
    out.title = pick(kPositiveTitles, rng);
    out.body = std::string{pick(kPositiveBodies, rng)} + " Seeing about " +
               spd + " Mbps these days.";
  } else if (polarity > -0.2) {
    out.title = pick(kNeutralTitles, rng);
    out.body = std::string{pick(kNeutralBodies, rng)} + " Around " + spd +
               " Mbps on average.";
  } else if (polarity > -0.6) {
    out.title = pick(kNegativeTitles, rng);
    out.body = std::string{pick(kNegativeBodies, rng)} + " Down to about " +
               spd + " Mbps now.";
  } else {
    out.title = pick(kVeryNegativeTitles, rng);
    out.body = std::string{pick(kVeryNegativeBodies, rng)} + " Barely " +
               spd + " Mbps!";
  }
  return out;
}

GeneratedText TextGenerator::outage_report(bool confirmed_global,
                                           bool press_covered,
                                           core::Rng& rng) const {
  GeneratedText out;
  if (confirmed_global) {
    out.title = pick(kGlobalOutageTitles, rng);
    out.body = pick(kGlobalOutageBodies, rng);
    if (press_covered) {
      // Posters echo the press vocabulary once an outage makes the news.
      static constexpr std::array<const char*, 4> kPressEchoes = {
          " News sites confirm the outage: global downtime, service down "
          "everywhere, users offline across regions.",
          " Seeing articles about the outage now. Worldwide downtime "
          "confirmed, internet down and offline for everyone.",
          " The outage made the news: massive downtime, service down "
          "across countries, still offline here.",
          " Press confirms the blackout: global outage, downtime "
          "everywhere, connections down and unreachable.",
      };
      out.body += pick(kPressEchoes, rng);
    }
  } else {
    out.title = pick(kTransientOutageTitles, rng);
    out.body = pick(kTransientOutageBodies, rng);
  }
  return out;
}

GeneratedText TextGenerator::event_reaction(const leo::NewsEvent& event,
                                            core::Rng& rng) const {
  GeneratedText out;
  // Lead with the event vocabulary so the peak-day word cloud (whose top
  // unigrams become the news-search query) surfaces it over the generic
  // sentiment words. Redditors title their threads with the subject.
  std::string kw1 = event.keywords.empty() ? "update" : event.keywords.front();
  std::string kw2 = event.keywords.size() > 1
                        ? event.keywords[static_cast<std::size_t>(
                              rng.uniform_int(1, static_cast<std::int64_t>(
                                                     event.keywords.size()) -
                                                     1))]
                        : kw1;
  // Varied strong closers (three valence words each, so a reaction clears
  // the strong-score threshold) without one generic word dominating the
  // peak-day cloud.
  // One closer mentions outage vocabulary in a *positive* context
  // ("zero downtime") — exactly the false-positive the Fig 6 sentiment
  // gate exists to filter. The terms are dictionary keywords that carry
  // no lexicon valence, so the post stays strongly positive.
  static constexpr std::array<const char*, 6> kPositiveClosers = {
      "Really excited, love it, this is excellent!",
      "Fantastic move, so happy, great work!",
      "Awesome development, genuinely impressed, love this!",
      "Great step, very excited, absolutely thrilled!",
      "Love it, impressive, best update yet!",
      "Amazing, love it — and zero downtime on my dish since install, "
      "no blackout ever!"};
  static constexpr std::array<const char*, 5> kNegativeClosers = {
      "Really frustrating, terrible handling, very annoyed.",
      "Awful communication, so disappointed, genuinely angry.",
      "Horrible news, extremely frustrated, worst possible timing.",
      "So annoyed, this is terrible, absolutely unacceptable.",
      "Disappointing, frustrating, and honestly pathetic handling."};
  // Posters quote the press when there is press; when the event never
  // made the news (the uncovered outage, the roaming discovery window)
  // they can only reference the chatter itself.
  const std::string subject =
      event.press_covered
          ? event.headline
          : kw1 + " " + kw2 + " reports all over the subreddit right now";
  switch (event.sentiment) {
    case leo::EventSentiment::kPositive:
      out.title = kw1 + " - " + pick(kPositiveReactionTitles, rng);
      out.body = "Seeing the " + kw1 + " " + kw2 +
                 " everywhere today: " + subject + ". " +
                 pick(kPositiveClosers, rng);
      break;
    case leo::EventSentiment::kNegative:
      out.title = kw1 + " - " + pick(kNegativeReactionTitles, rng);
      out.body = "The " + kw1 + " " + kw2 + " story: " + subject + ". " +
                 pick(kNegativeClosers, rng);
      break;
    case leo::EventSentiment::kNeutral:
      out.title = kw1 + " - " + pick(kNeutralReactionTitles, rng);
      out.body = "For discussion: " + subject + ". Curious what the " + kw1 +
                 " " + kw2 + " means for everyone here.";
      break;
  }
  return out;
}

GeneratedText TextGenerator::question(core::Rng& rng) const {
  return {pick(kQuestionTitles, rng), pick(kQuestionBodies, rng)};
}

GeneratedText TextGenerator::off_topic(core::Rng& rng) const {
  return {pick(kOffTopicTitles, rng), pick(kOffTopicBodies, rng)};
}

GeneratedText TextGenerator::feature_discovery(const std::string& feature_term,
                                               core::Rng& rng) const {
  GeneratedText out;
  static constexpr std::array<const char*, 5> kTitleTemplates = {
      "%s is working for me!",
      "Confirmed: %s works",
      "Tried %s on a trip and it just worked",
      "%s seems to be enabled now",
      "Anyone else notice %s working?",
  };
  char buf[128];
  std::snprintf(buf, sizeof buf, pick(kTitleTemplates, rng),
                feature_term.c_str());
  out.title = buf;
  out.body = "Took the dish away from home and " + feature_term +
             " worked perfectly. " + feature_term +
             " enabled with no config at all. This is great news and opens "
             "up so many uses. Amazing!";
  return out;
}

}  // namespace usaas::social
