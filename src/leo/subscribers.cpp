#include "leo/subscribers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::leo {

namespace {

std::vector<SubscriberMilestone> default_milestones() {
  return {
      {core::Date(2020, 11, 1), 4000, "public beta start"},
      {core::Date(2021, 2, 9), 10000, "FCC ETC filing [70]"},
      {core::Date(2021, 6, 25), 69420, "Musk tweet [50]"},
      {core::Date(2021, 8, 10), 90000, "SpaceX statement [63]"},
      {core::Date(2022, 1, 15), 145000, "CNBC [64]"},
      {core::Date(2022, 2, 14), 250000, "Musk tweet [52]"},
      {core::Date(2022, 5, 20), 400000, "CNBC [65]"},
      {core::Date(2022, 9, 19), 700000, "advanced-television [24]"},
      {core::Date(2022, 12, 19), 1000000, "SpaceX tweet [67]"},
      {core::Date(2023, 5, 6), 1500000, "Starlink tweet [69]"},
  };
}

}  // namespace

SubscriberModel::SubscriberModel() : SubscriberModel(default_milestones()) {}

SubscriberModel::SubscriberModel(std::vector<SubscriberMilestone> milestones)
    : milestones_{std::move(milestones)} {
  if (milestones_.empty()) {
    throw std::invalid_argument("SubscriberModel: no milestones");
  }
  for (const auto& m : milestones_) {
    if (m.subscribers <= 0.0) {
      throw std::invalid_argument("SubscriberModel: non-positive milestone");
    }
  }
  std::sort(milestones_.begin(), milestones_.end(),
            [](const SubscriberMilestone& a, const SubscriberMilestone& b) {
              return a.date < b.date;
            });
}

double SubscriberModel::subscribers_on(const core::Date& d) const {
  const auto& ms = milestones_;
  if (ms.size() == 1) return ms.front().subscribers;

  // Geometric interpolation: log-linear in time.
  auto interp = [](const SubscriberMilestone& a, const SubscriberMilestone& b,
                   const core::Date& d) {
    const double span = static_cast<double>(a.date.days_until(b.date));
    const double t = static_cast<double>(a.date.days_until(d)) / span;
    const double log_v =
        std::log(a.subscribers) +
        t * (std::log(b.subscribers) - std::log(a.subscribers));
    return std::exp(log_v);
  };

  if (d <= ms.front().date) return interp(ms[0], ms[1], d);
  if (d >= ms.back().date) {
    return interp(ms[ms.size() - 2], ms[ms.size() - 1], d);
  }
  for (std::size_t i = 1; i < ms.size(); ++i) {
    if (d <= ms[i].date) return interp(ms[i - 1], ms[i], d);
  }
  return ms.back().subscribers;  // unreachable
}

double SubscriberModel::added_between(const core::Date& first,
                                      const core::Date& last) const {
  return subscribers_on(last) - subscribers_on(first);
}

}  // namespace usaas::leo
