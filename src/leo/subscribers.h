// Subscriber growth model.
//
// Fig 7 is annotated with the publicly reported user counts the paper
// cites [24, 33, 50, 52, 63-65, 67, 69, 70]; demand growth is the force
// that drags the median speed down after Sep '21 despite 37 more launches.
// Daily counts are geometric interpolations between the public milestones.
#pragma once

#include <span>
#include <vector>

#include "core/date.h"

namespace usaas::leo {

struct SubscriberMilestone {
  core::Date date;
  double subscribers{0.0};
  /// Short provenance note ("Musk tweet", "FCC filing", ...).
  const char* source{""};
};

class SubscriberModel {
 public:
  /// Default: the paper's cited public milestones.
  SubscriberModel();
  /// Custom milestones (sorted internally; must be non-empty and positive).
  explicit SubscriberModel(std::vector<SubscriberMilestone> milestones);

  /// Subscribers on a date: geometric interpolation between surrounding
  /// milestones; geometric extrapolation of the boundary growth rate
  /// outside the milestone range.
  [[nodiscard]] double subscribers_on(const core::Date& d) const;

  /// New subscribers added in the inclusive window.
  [[nodiscard]] double added_between(const core::Date& first,
                                     const core::Date& last) const;

  [[nodiscard]] std::span<const SubscriberMilestone> milestones() const {
    return milestones_;
  }

 private:
  std::vector<SubscriberMilestone> milestones_;
};

}  // namespace usaas::leo
