#include "leo/speed.h"

#include <algorithm>
#include <cmath>

namespace usaas::leo {

SpeedModel::SpeedModel(ConstellationModel constellation,
                       SubscriberModel subscribers, SpeedModelParams params)
    : constellation_{std::move(constellation)},
      subscribers_{std::move(subscribers)},
      params_{params} {}

double SpeedModel::maturity(const core::Date& d) const {
  const auto& p = params_;
  if (d <= p.maturity_ramp_start) return p.maturity_start;
  if (d >= p.maturity_ramp_end) return 1.0;
  const double span = static_cast<double>(
      p.maturity_ramp_start.days_until(p.maturity_ramp_end));
  const double t =
      static_cast<double>(p.maturity_ramp_start.days_until(d)) / span;
  return p.maturity_start + t * (1.0 - p.maturity_start);
}

double SpeedModel::supply_demand_ratio(const core::Date& d) const {
  const auto& p = params_;
  const double supply = constellation_.sellable_capacity_mbps(d);
  const double subs = std::max(subscribers_.subscribers_on(d), 1.0);
  const double demand = std::max(
      p.demand_per_subscriber_mbps * p.demand_ref_subscribers *
          std::pow(subs / p.demand_ref_subscribers, p.demand_beta),
      1.0);
  return supply / demand;
}

double SpeedModel::median_downlink_mbps(const core::Date& d) const {
  const double r = supply_demand_ratio(d);
  const double congestion = r / (r + params_.congestion_knee);
  return params_.plan_cap_mbps * congestion * maturity(d);
}

SpeedSample SpeedModel::draw_test(const core::Date& d, core::Rng& rng,
                                  double outage_severity) const {
  const auto& p = params_;
  SpeedSample s;
  const double med = median_downlink_mbps(d);
  // Lognormal around the median: median of exp(N(mu, sigma)) = exp(mu).
  s.downlink_mbps = std::min(med * rng.lognormal(0.0, p.user_sigma),
                             p.plan_cap_mbps * 1.15);
  s.uplink_mbps =
      s.downlink_mbps * p.uplink_fraction * rng.lognormal(0.0, p.uplink_sigma);

  const double r = supply_demand_ratio(d);
  const double load = 1.0 / (1.0 + r);  // 0 when idle, ->1 when swamped
  s.latency_ms = p.latency_base_ms * rng.lognormal(0.0, p.latency_sigma) +
                 p.latency_congestion_ms * load;

  if (outage_severity > 0.0 && rng.bernoulli(outage_severity)) {
    s.during_outage = true;
    s.downlink_mbps *= rng.uniform(0.0, 0.08);
    s.uplink_mbps *= rng.uniform(0.0, 0.08);
    s.latency_ms += rng.uniform(200.0, 1500.0);
  }
  s.downlink_mbps = std::max(s.downlink_mbps, 0.05);
  s.uplink_mbps = std::max(s.uplink_mbps, 0.02);
  return s;
}

}  // namespace usaas::leo
