// Outage process: the ground truth that Fig 6's keyword pipeline must
// rediscover from Reddit chatter.
//
// §4.1: "7th Jan'22 and 30th Aug'22 have the largest spikes ... and
// correspond to reported outages [34, 40]. Interestingly, there are
// numerous shorter peaks ... which correspond to local transient outages.
// Most of these outages are not publicly reported." Plus the 22 Apr '22
// outage that produced the 3rd-highest sentiment peak and was never
// covered by the press. We model major scheduled outages (matching the
// paper's dates) plus a Poisson process of small transient ones (weather,
// satellite-geometry gaps, GEO-arc avoidance, deployment issues).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "core/rng.h"

namespace usaas::leo {

enum class OutageCause {
  kSoftwareGlobal,
  kWeather,
  kGeometryGap,
  kGeoArcAvoidance,
  kGroundStation,
  kDeployment,
};

[[nodiscard]] const char* to_string(OutageCause c);

struct Outage {
  core::Date date;
  /// Fraction of the user base affected, in (0, 1].
  double affected_fraction{0.1};
  /// Duration as a fraction of the day, in (0, 1].
  double duration_fraction{0.1};
  OutageCause cause{OutageCause::kWeather};
  /// Whether the press covered it (major outages usually; transients
  /// almost never — the gap USaaS fills).
  bool publicly_reported{false};

  /// Severity score combining reach and duration, in (0, 1].
  [[nodiscard]] double severity() const {
    return affected_fraction * duration_fraction;
  }
};

struct OutageModelParams {
  /// Mean transient outages per day.
  double transient_rate_per_day{0.22};
  /// Transient severity ranges.
  double transient_affected_lo{0.01};
  double transient_affected_hi{0.12};
  double transient_duration_lo{0.02};
  double transient_duration_hi{0.3};
  /// Probability a transient makes the news anyway.
  double transient_reported_prob{0.02};
};

/// Generates and serves the outage ground truth over a date range.
class OutageModel {
 public:
  /// Builds the timeline: the three major 2022 outages the paper pins to
  /// dates, plus seeded random transients across [first, last].
  OutageModel(core::Date first, core::Date last, std::uint64_t seed,
              OutageModelParams params = {});

  [[nodiscard]] std::span<const Outage> outages() const { return outages_; }

  /// Outages active on a given day.
  [[nodiscard]] std::vector<Outage> on(const core::Date& d) const;

  /// Max severity on the day (0 when no outage).
  [[nodiscard]] double severity_on(const core::Date& d) const;

  /// Fraction of users affected on the day (capped at 1).
  [[nodiscard]] double affected_fraction_on(const core::Date& d) const;

  /// Days with severity above `threshold` — the ground-truth set for the
  /// detector's precision/recall evaluation.
  [[nodiscard]] std::vector<core::Date> days_above(double threshold) const;

  /// The paper's three dated major outages (for annotations in benches).
  [[nodiscard]] static std::vector<Outage> major_outages_2022();

 private:
  core::Date first_;
  core::Date last_;
  std::vector<Outage> outages_;
};

}  // namespace usaas::leo
