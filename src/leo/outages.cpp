#include "leo/outages.h"

#include <algorithm>
#include <stdexcept>

namespace usaas::leo {

const char* to_string(OutageCause c) {
  switch (c) {
    case OutageCause::kSoftwareGlobal: return "software-global";
    case OutageCause::kWeather: return "weather";
    case OutageCause::kGeometryGap: return "geometry-gap";
    case OutageCause::kGeoArcAvoidance: return "geo-arc-avoidance";
    case OutageCause::kGroundStation: return "ground-station";
    case OutageCause::kDeployment: return "deployment";
  }
  return "unknown";
}

std::vector<Outage> OutageModel::major_outages_2022() {
  return {
      // Jan 7 '22: reported global outage [34] — long and wide, hence the
      // largest outage-keyword spike of Fig 6.
      {core::Date(2022, 1, 7), 0.85, 0.62, OutageCause::kSoftwareGlobal, true},
      // Apr 22 '22: large outage confirmed by Redditors in 14 countries but
      // never covered by the press (the paper's Fig 5b story).
      {core::Date(2022, 4, 22), 0.7, 0.45, OutageCause::kSoftwareGlobal, false},
      // Aug 30 '22: reported worldwide interruption [40].
      {core::Date(2022, 8, 30), 0.8, 0.6, OutageCause::kSoftwareGlobal, true},
  };
}

OutageModel::OutageModel(core::Date first, core::Date last, std::uint64_t seed,
                         OutageModelParams params)
    : first_{first}, last_{last} {
  if (last < first) throw std::invalid_argument("OutageModel: last < first");

  for (const Outage& o : major_outages_2022()) {
    if (first <= o.date && o.date <= last) outages_.push_back(o);
  }

  core::Rng rng{seed};
  core::for_each_day(first, last, [&](const core::Date& d) {
    const auto n = rng.poisson(params.transient_rate_per_day);
    for (std::int64_t i = 0; i < n; ++i) {
      Outage o;
      o.date = d;
      o.affected_fraction =
          rng.uniform(params.transient_affected_lo, params.transient_affected_hi);
      o.duration_fraction =
          rng.uniform(params.transient_duration_lo, params.transient_duration_hi);
      static constexpr OutageCause kTransientCauses[] = {
          OutageCause::kWeather, OutageCause::kGeometryGap,
          OutageCause::kGeoArcAvoidance, OutageCause::kGroundStation,
          OutageCause::kDeployment};
      o.cause = kTransientCauses[rng.uniform_int(0, 4)];
      o.publicly_reported = rng.bernoulli(params.transient_reported_prob);
      outages_.push_back(o);
    }
  });

  std::sort(outages_.begin(), outages_.end(),
            [](const Outage& a, const Outage& b) { return a.date < b.date; });
}

std::vector<Outage> OutageModel::on(const core::Date& d) const {
  std::vector<Outage> out;
  for (const Outage& o : outages_) {
    if (o.date == d) out.push_back(o);
  }
  return out;
}

double OutageModel::severity_on(const core::Date& d) const {
  double s = 0.0;
  for (const Outage& o : outages_) {
    if (o.date == d) s = std::max(s, o.severity());
  }
  return s;
}

double OutageModel::affected_fraction_on(const core::Date& d) const {
  double f = 0.0;
  for (const Outage& o : outages_) {
    if (o.date == d) f += o.affected_fraction;
  }
  return std::min(f, 1.0);
}

std::vector<core::Date> OutageModel::days_above(double threshold) const {
  std::vector<core::Date> out;
  core::for_each_day(first_, last_, [&](const core::Date& d) {
    if (severity_on(d) > threshold) out.push_back(d);
  });
  return out;
}

}  // namespace usaas::leo
