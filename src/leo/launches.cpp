#include "leo/launches.h"

#include <algorithm>

namespace usaas::leo {

namespace {

// Monthly launch counts (year, month, launches, satellites per launch).
// Consistent with the paper's §4.2 narrative: 14 launches Jan-Sep '21,
// a Jun-Aug '21 gap, 37 batches Sep '21 - Dec '22.
struct MonthlyLaunches {
  int year;
  int month;
  int count;
  int sats_per_launch;
};

constexpr MonthlyLaunches kHistory[] = {
    // v0.9 / v1.0 era
    {2019, 5, 1, 60}, {2019, 11, 1, 60},
    {2020, 1, 2, 60}, {2020, 2, 1, 60}, {2020, 3, 1, 60}, {2020, 4, 1, 60},
    {2020, 6, 2, 60}, {2020, 8, 2, 58}, {2020, 9, 2, 60}, {2020, 10, 2, 60},
    {2020, 11, 1, 60},
    // 2021: 14 launches Jan-Sep, with the Jun-Aug gap.
    {2021, 1, 2, 60}, {2021, 2, 1, 60}, {2021, 3, 4, 60}, {2021, 4, 2, 60},
    {2021, 5, 4, 58}, {2021, 9, 1, 51},
    // late 2021
    {2021, 11, 2, 53}, {2021, 12, 1, 52},
    // 2022: 33 launches (+4 from Sep-Dec '21 = 37 in the paper's window).
    {2022, 1, 2, 49}, {2022, 2, 3, 47}, {2022, 3, 3, 48}, {2022, 4, 3, 53},
    {2022, 5, 4, 53}, {2022, 6, 3, 53}, {2022, 7, 4, 53}, {2022, 8, 4, 52},
    {2022, 9, 3, 52}, {2022, 10, 2, 52}, {2022, 11, 1, 54}, {2022, 12, 1, 54},
};

std::vector<Launch> build_default() {
  std::vector<Launch> out;
  for (const auto& m : kHistory) {
    // Spread a month's launches evenly across it.
    const int dim = core::Date::days_in_month(m.year, m.month);
    for (int i = 0; i < m.count; ++i) {
      const int day = 1 + (dim * (2 * i + 1)) / (2 * m.count);
      out.push_back({core::Date(m.year, m.month, std::min(day, dim)),
                     m.sats_per_launch});
    }
  }
  return out;
}

}  // namespace

LaunchSchedule::LaunchSchedule() : LaunchSchedule(build_default()) {}

LaunchSchedule::LaunchSchedule(std::vector<Launch> launches)
    : launches_{std::move(launches)} {
  std::sort(launches_.begin(), launches_.end(),
            [](const Launch& a, const Launch& b) { return a.date < b.date; });
}

int LaunchSchedule::launches_between(const core::Date& first,
                                     const core::Date& last) const {
  return static_cast<int>(
      std::count_if(launches_.begin(), launches_.end(), [&](const Launch& l) {
        return first <= l.date && l.date <= last;
      }));
}

int LaunchSchedule::satellites_launched_by(const core::Date& d) const {
  int total = 0;
  for (const Launch& l : launches_) {
    if (l.date <= d) total += l.satellites;
  }
  return total;
}

int LaunchSchedule::launches_in_month(int year, int month) const {
  return static_cast<int>(
      std::count_if(launches_.begin(), launches_.end(), [&](const Launch& l) {
        return l.date.year() == year && l.date.month() == month;
      }));
}

}  // namespace usaas::leo
