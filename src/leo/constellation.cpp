#include "leo/constellation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usaas::leo {

ConstellationModel::ConstellationModel(LaunchSchedule schedule,
                                       ConstellationParams params)
    : schedule_{std::move(schedule)}, params_{params} {
  if (params_.commissioning_days < 0) {
    throw std::invalid_argument("ConstellationParams: negative commissioning");
  }
  if (params_.annual_attrition < 0.0 || params_.annual_attrition >= 1.0) {
    throw std::invalid_argument("ConstellationParams: bad attrition");
  }
}

double ConstellationModel::operational_satellites(const core::Date& d) const {
  double total = 0.0;
  for (const Launch& l : schedule_.launches()) {
    const core::Date in_service = l.date.plus_days(params_.commissioning_days);
    if (in_service > d) continue;
    const double years_in_service =
        static_cast<double>(in_service.days_until(d)) / 365.25;
    const double survival =
        std::pow(1.0 - params_.annual_attrition, years_in_service);
    total += l.satellites * survival;
  }
  return total;
}

double ConstellationModel::coverage_efficiency(const core::Date& d) const {
  if (d <= params_.ramp_start) return params_.efficiency_start;
  if (d >= params_.ramp_end) return params_.efficiency_end;
  const double span =
      static_cast<double>(params_.ramp_start.days_until(params_.ramp_end));
  const double t = static_cast<double>(params_.ramp_start.days_until(d)) / span;
  return params_.efficiency_start +
         t * (params_.efficiency_end - params_.efficiency_start);
}

double ConstellationModel::sellable_capacity_mbps(const core::Date& d) const {
  return operational_satellites(d) * params_.usable_mbps_per_satellite *
         coverage_efficiency(d);
}

}  // namespace usaas::leo
