// Per-user speed experience: supply / demand -> what a speed test shows.
//
// Fig 7's trajectory is the core claim: median downlink rises Jan-Sep '21
// while launches outpace the small user base, dips sharply Jun-Aug '21
// (21 K new users, zero launches), then declines almost steadily through
// Dec '22 as subscribers grow from 90 K to 1 M+ faster than 37 launches
// add capacity. SpeedModel computes the network-wide expected median from
// ConstellationModel supply and SubscriberModel demand, then draws
// individual user speed tests around it.
#pragma once

#include <cstdint>

#include "core/date.h"
#include "core/rng.h"
#include "core/units.h"
#include "leo/constellation.h"
#include "leo/outages.h"
#include "leo/subscribers.h"

namespace usaas::leo {

/// The ground-truth numbers behind one user's speed test.
struct SpeedSample {
  double downlink_mbps{0.0};
  double uplink_mbps{0.0};
  double latency_ms{0.0};
  /// True when the test ran during an outage affecting this user (speeds
  /// collapse to nearly zero).
  bool during_outage{false};
};

struct SpeedModelParams {
  /// Peak plan rate: nobody tests faster than this.
  double plan_cap_mbps{250.0};
  /// Busy-hour demand of the reference subscriber base (Mbps per sub).
  /// Only the supply/demand *ratio* is calibrated; the absolute constants
  /// are not individually meaningful.
  double demand_per_subscriber_mbps{5.0};
  /// Statistical multiplexing improves with scale: effective demand is
  ///   per_sub * ref * (subs / ref)^beta,  beta in (0, 1].
  double demand_beta{0.9};
  double demand_ref_subscribers{100000.0};
  /// Shape of the congestion response: median = cap * r / (r + knee)
  /// where r = supply / demand. knee < 1 means the network delivers most
  /// of the cap while supply comfortably exceeds demand.
  double congestion_knee{1.15};
  /// Ground-segment / software maturity ramp multiplying the deliverable
  /// rate: from `maturity_start` on ramp_start to 1.0 on ramp_end. Early
  /// 2021 speeds were limited by gateways and coverage gaps, not capacity.
  double maturity_start{0.38};
  core::Date maturity_ramp_start{2021, 4, 1};
  core::Date maturity_ramp_end{2021, 6, 1};
  /// Lognormal sigma of individual tests around the median.
  double user_sigma{0.38};
  /// Uplink as a fraction of downlink (Starlink is heavily asymmetric).
  double uplink_fraction{0.09};
  double uplink_sigma{0.3};
  /// Latency distribution (ms): lognormal floor + congestion penalty.
  double latency_base_ms{32.0};
  double latency_sigma{0.25};
  double latency_congestion_ms{45.0};
};

class SpeedModel {
 public:
  SpeedModel(ConstellationModel constellation, SubscriberModel subscribers,
             SpeedModelParams params = {});

  /// Network-wide expected *median* downlink on a date (no noise).
  [[nodiscard]] double median_downlink_mbps(const core::Date& d) const;

  /// Supply / demand ratio on a date.
  [[nodiscard]] double supply_demand_ratio(const core::Date& d) const;

  /// Draws one user's speed test. `outage_severity` in [0, 1] collapses
  /// the result when the user is affected.
  [[nodiscard]] SpeedSample draw_test(const core::Date& d, core::Rng& rng,
                                      double outage_severity = 0.0) const;

  [[nodiscard]] const ConstellationModel& constellation() const {
    return constellation_;
  }
  [[nodiscard]] const SubscriberModel& subscribers() const {
    return subscribers_;
  }
  [[nodiscard]] const SpeedModelParams& params() const { return params_; }

 private:
  [[nodiscard]] double maturity(const core::Date& d) const;

  ConstellationModel constellation_;
  SubscriberModel subscribers_;
  SpeedModelParams params_;
};

}  // namespace usaas::leo
