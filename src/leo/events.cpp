#include "leo/events.h"

#include <algorithm>
#include <cstdlib>

namespace usaas::leo {

const char* to_string(EventSentiment s) {
  switch (s) {
    case EventSentiment::kPositive: return "positive";
    case EventSentiment::kNegative: return "negative";
    case EventSentiment::kNeutral: return "neutral";
  }
  return "unknown";
}

core::Date EventTimeline::roaming_announcement_date() {
  return core::Date(2022, 3, 3);  // Musk tweet "Mobile roaming enabled" [51]
}

core::Date EventTimeline::roaming_user_discovery_date() {
  return core::Date(2022, 2, 15);  // r/Starlink reports [76, 77]
}

namespace {

std::vector<NewsEvent> paper_events() {
  std::vector<NewsEvent> ev;
  ev.push_back({core::Date(2021, 2, 9),
                "SpaceX begins accepting $99 preorders for Starlink in the "
                "US, Canada and UK",
                {"preorder", "order", "deposit", "99", "available", "signup"},
                EventSentiment::kPositive, 1.0, true});
  ev.push_back({core::Date(2021, 11, 24),
                "Starlink emails pre-order customers about delivery delays "
                "pushing terminals into 2022",
                {"delay", "delayed", "delivery", "preorder", "email",
                 "pushed", "waiting"},
                EventSentiment::kNegative, 0.95, true});
  // Press-covered outages need little Reddit amplification beyond the
  // outage-report threads themselves (people read the news instead).
  ev.push_back({core::Date(2022, 1, 7),
                "Starlink suffers global outage",
                {"outage", "down", "offline", "global"},
                EventSentiment::kNegative, 0.2, true});
  // The Apr 22 outage the press never covered: Redditors from 14 countries
  // confirmed it online (the paper's Fig 5(b) story).
  // No press coverage: Redditors flood the subreddit to confirm it
  // themselves, so the buzz is *higher* relative to the reported outages.
  ev.push_back({core::Date(2022, 4, 22),
                "(uncovered) widespread Starlink outage",
                {"outage", "down", "offline"},
                EventSentiment::kNegative, 0.45, false});
  ev.push_back({core::Date(2022, 8, 30),
                "Starlink internet experiences worldwide service interruption",
                {"outage", "down", "offline", "worldwide", "interruption"},
                EventSentiment::kNegative, 0.2, true});
  // Roaming: users discover it ~2 weeks before the official tweet.
  ev.push_back({EventTimeline::roaming_user_discovery_date(),
                "(uncovered) users notice Starlink roaming works across cells",
                {"roaming", "enabled", "moved", "travel", "portable"},
                EventSentiment::kPositive, 0.35, false});
  ev.push_back({EventTimeline::roaming_announcement_date(),
                "Musk: Mobile roaming enabled",
                {"roaming", "enabled", "mobile", "musk", "announcement"},
                EventSentiment::kPositive, 0.6, true});
  ev.push_back({core::Date(2022, 5, 5),
                "Starlink becomes movable with new Portability option",
                {"portability", "roaming", "move", "option"},
                EventSentiment::kPositive, 0.4, true});
  ev.push_back({core::Date(2022, 3, 22),
                "Starlink raises terminal and subscription prices",
                {"price", "increase", "expensive", "cost"},
                EventSentiment::kNegative, 0.5, true});
  return ev;
}

}  // namespace

EventTimeline::EventTimeline(const LaunchSchedule& schedule)
    : events_{paper_events()} {
  for (const Launch& l : schedule.launches()) {
    events_.push_back({l.date,
                       "SpaceX launches another Starlink batch (" +
                           std::to_string(l.satellites) + " satellites)",
                       {"launch", "falcon", "batch", "satellites", "deploy"},
                       EventSentiment::kPositive, 0.15, true});
  }
  std::sort(events_.begin(), events_.end(),
            [](const NewsEvent& a, const NewsEvent& b) { return a.date < b.date; });
}

EventTimeline::EventTimeline(std::vector<NewsEvent> events)
    : events_{std::move(events)} {
  std::sort(events_.begin(), events_.end(),
            [](const NewsEvent& a, const NewsEvent& b) { return a.date < b.date; });
}

std::vector<NewsEvent> EventTimeline::on(const core::Date& d) const {
  std::vector<NewsEvent> out;
  for (const NewsEvent& e : events_) {
    if (e.date == d) out.push_back(e);
  }
  return out;
}

std::optional<NewsEvent> EventTimeline::search(
    std::span<const std::string> query_keywords, const core::Date& around,
    int window_days) const {
  std::optional<NewsEvent> best;
  std::int64_t best_distance = window_days + 1;
  for (const NewsEvent& e : events_) {
    if (!e.press_covered) continue;  // the news search cannot see these
    const std::int64_t dist = std::llabs(around.days_until(e.date));
    if (dist > window_days) continue;
    const bool matches = std::any_of(
        query_keywords.begin(), query_keywords.end(), [&](const std::string& q) {
          return std::find(e.keywords.begin(), e.keywords.end(), q) !=
                 e.keywords.end();
        });
    if (!matches) continue;
    if (dist < best_distance ||
        (dist == best_distance && best && e.buzz > best->buzz)) {
      best = e;
      best_distance = dist;
    }
  }
  return best;
}

double EventTimeline::buzz_on(const core::Date& d) const {
  double b = 0.0;
  for (const NewsEvent& e : events_) {
    if (e.date == d) b += e.buzz;
  }
  return b;
}

}  // namespace usaas::leo
