// The Starlink launch history used by Fig 7's annotations.
//
// The paper reads the launch cadence off public trackers [1, 30, 78, 79]:
// 14 launches with ~60 satellites each between Jan and Sep '21, none
// between Jun and Aug '21, then 37 batches between Sep '21 and Dec '22.
// We encode a monthly schedule consistent with those counts (and with the
// public record to within a launch or two — the model consumes monthly
// totals, not exact dates).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/date.h"

namespace usaas::leo {

struct Launch {
  core::Date date;
  int satellites{60};
};

/// The built-in schedule covering May 2019 (first v1.0 batch) through
/// Dec 2022 (the end of the paper's observation window).
class LaunchSchedule {
 public:
  /// Default: the historical schedule.
  LaunchSchedule();
  /// Custom schedule (launches need not be sorted; they will be).
  explicit LaunchSchedule(std::vector<Launch> launches);

  [[nodiscard]] std::span<const Launch> launches() const { return launches_; }

  /// Number of launches in the inclusive [first, last] date window.
  [[nodiscard]] int launches_between(const core::Date& first,
                                     const core::Date& last) const;

  /// Cumulative satellites launched on or before `d`.
  [[nodiscard]] int satellites_launched_by(const core::Date& d) const;

  /// Launches in a given month.
  [[nodiscard]] int launches_in_month(int year, int month) const;

 private:
  std::vector<Launch> launches_;
};

}  // namespace usaas::leo
