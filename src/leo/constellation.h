// Constellation capacity model.
//
// Turns the launch schedule into usable downlink supply over time:
// satellites need a commissioning period (orbit raising + checkout) before
// serving users, a small fraction attrits per year, and only part of a
// shell's aggregate capacity lands on populated, licensed cells (coverage
// efficiency, which improves as shells fill out and more ground stations
// come online).
#pragma once

#include "core/date.h"
#include "leo/launches.h"

namespace usaas::leo {

struct ConstellationParams {
  /// Days from launch until a batch starts serving users (orbit raising).
  /// Short enough that the real Jun-Aug '21 launch gap shows up as flat
  /// supply in exactly that window — the paper's speed-dip mechanism.
  int commissioning_days{20};
  /// Annual satellite attrition (deorbits, failures).
  double annual_attrition{0.025};
  /// Sellable downlink per operational satellite (Mbps) toward actual
  /// subscriber cells — far below the marketing aggregate because beams
  /// mostly cover ocean/unlicensed areas. Calibrated jointly with the
  /// demand constants; only the supply/demand ratio is meaningful.
  double usable_mbps_per_satellite{280.0};
  /// Coverage/ground-segment efficiency ramp: fraction of nominal capacity
  /// that is actually sellable, ramping linearly from `efficiency_start`
  /// on `ramp_start` to `efficiency_end` on `ramp_end`.
  double efficiency_start{0.30};
  double efficiency_end{0.90};
  core::Date ramp_start{2021, 1, 1};
  core::Date ramp_end{2022, 12, 31};
};

class ConstellationModel {
 public:
  explicit ConstellationModel(LaunchSchedule schedule = LaunchSchedule{},
                              ConstellationParams params = {});

  /// Operational (commissioned, surviving) satellites on a date.
  [[nodiscard]] double operational_satellites(const core::Date& d) const;

  /// Sellable downlink supply (Mbps) on a date.
  [[nodiscard]] double sellable_capacity_mbps(const core::Date& d) const;

  [[nodiscard]] double coverage_efficiency(const core::Date& d) const;

  [[nodiscard]] const LaunchSchedule& schedule() const { return schedule_; }
  [[nodiscard]] const ConstellationParams& params() const { return params_; }

 private:
  LaunchSchedule schedule_;
  ConstellationParams params_;
};

}  // namespace usaas::leo
