// The dated news / announcement timeline.
//
// §4.1's annotation pipeline searches "online" for news matching a peak
// day's word-cloud keywords. Our substitute corpus carries the events the
// paper itself cites: preorders opening (9 Feb '21), the delivery-delay
// email (24 Nov '21), the reported outages, the roaming tweet (and the
// 2-weeks-earlier user discovery window), and every launch. Each event has
// searchable keywords, a sentiment hint, and a buzz factor that drives
// post volume in the social simulator.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/date.h"
#include "leo/launches.h"

namespace usaas::leo {

enum class EventSentiment { kPositive, kNegative, kNeutral };

[[nodiscard]] const char* to_string(EventSentiment s);

struct NewsEvent {
  core::Date date;
  std::string headline;
  /// Lowercase searchable keywords.
  std::vector<std::string> keywords;
  EventSentiment sentiment{EventSentiment::kNeutral};
  /// Relative post-volume boost in [0, 1].
  double buzz{0.1};
  /// False for things Redditors knew but the press never covered
  /// (the 22 Apr '22 outage; roaming before the official announcement).
  bool press_covered{true};
};

class EventTimeline {
 public:
  /// Default timeline: paper-cited events + per-launch events from the
  /// given schedule.
  explicit EventTimeline(const LaunchSchedule& schedule = LaunchSchedule{});
  /// Custom events only.
  explicit EventTimeline(std::vector<NewsEvent> events);

  [[nodiscard]] std::span<const NewsEvent> events() const { return events_; }

  /// Events on a specific day.
  [[nodiscard]] std::vector<NewsEvent> on(const core::Date& d) const;

  /// "Search the news": press-covered events within +/- window_days of
  /// `around` matching any of the query keywords. Returns the best match
  /// (closest date, then highest buzz), mimicking the paper's keyword +
  /// custom-date news search.
  [[nodiscard]] std::optional<NewsEvent> search(
      std::span<const std::string> query_keywords, const core::Date& around,
      int window_days) const;

  /// Net event buzz on a day (sum over events).
  [[nodiscard]] double buzz_on(const core::Date& d) const;

  /// The official roaming announcement date (Musk tweet, 3 Mar '22) and
  /// the date user discussions started (~2 weeks prior) — the early-
  /// detection experiment's ground truth.
  [[nodiscard]] static core::Date roaming_announcement_date();
  [[nodiscard]] static core::Date roaming_user_discovery_date();

 private:
  std::vector<NewsEvent> events_;
};

}  // namespace usaas::leo
