// The §5 flagship scenario: Starlink-coupled Teams calls corroborating
// the subreddit's complaints, and vice versa.
#include "usaas/isp_bridge.h"

#include <gtest/gtest.h>

#include "social/subreddit.h"

namespace usaas::service {
namespace {

using core::Date;

struct Scenario {
  std::vector<confsim::CallRecord> calls;
  std::vector<social::Post> posts;
  Date first{2022, 1, 1};
  Date last{2022, 12, 31};
};

const Scenario& scenario() {
  static const Scenario instance = [] {
    Scenario s;
    leo::LaunchSchedule sched;
    leo::SpeedModel speed{leo::ConstellationModel{sched},
                          leo::SubscriberModel{}};
    leo::OutageModel outages{s.first, s.last, 42};
    IspCallConfig cfg;
    cfg.first_day = s.first;
    cfg.last_day = s.last;
    s.calls = IspCoupledCallGenerator{speed, outages, cfg}.generate();
    social::SubredditConfig scfg;
    scfg.first_day = s.first;
    scfg.last_day = s.last;
    social::RedditSim sim{scfg, speed, leo::OutageModel{s.first, s.last, 42},
                          leo::EventTimeline{sched}};
    s.posts = sim.simulate();
    return s;
  }();
  return instance;
}

TEST(IspBridge, GeneratesPlausibleVolume) {
  const auto& s = scenario();
  // ~40 calls/day over 365 days.
  EXPECT_GT(s.calls.size(), 12000u);
  EXPECT_LT(s.calls.size(), 18000u);
  for (const auto& call : s.calls) {
    EXPECT_GE(call.size(), 3);
    for (const auto& rec : call.participants) {
      EXPECT_EQ(rec.access, netsim::AccessTechnology::kLeoSatellite);
    }
  }
}

TEST(IspBridge, OutageDaysDegradeCalls) {
  const auto& s = scenario();
  double outage_drop = 0.0;
  std::size_t outage_n = 0;
  double normal_drop = 0.0;
  std::size_t normal_n = 0;
  for (const auto& call : s.calls) {
    const bool outage_day = call.start.date == Date(2022, 1, 7) ||
                            call.start.date == Date(2022, 4, 22) ||
                            call.start.date == Date(2022, 8, 30);
    for (const auto& rec : call.participants) {
      if (outage_day) {
        outage_drop += rec.dropped_early ? 1.0 : 0.0;
        ++outage_n;
      } else {
        normal_drop += rec.dropped_early ? 1.0 : 0.0;
        ++normal_n;
      }
    }
  }
  ASSERT_GT(outage_n, 100u);
  const double outage_rate = outage_drop / static_cast<double>(outage_n);
  const double normal_rate = normal_drop / static_cast<double>(normal_n);
  EXPECT_GT(outage_rate, 5.0 * normal_rate);
}

TEST(IspBridge, DeterministicForSeed) {
  leo::LaunchSchedule sched;
  leo::SpeedModel speed{leo::ConstellationModel{sched},
                        leo::SubscriberModel{}};
  IspCallConfig cfg;
  cfg.first_day = Date(2022, 3, 1);
  cfg.last_day = Date(2022, 3, 31);
  const IspCoupledCallGenerator gen{
      speed, leo::OutageModel{cfg.first_day, cfg.last_day, 9}, cfg};
  const auto a = gen.generate();
  const auto b = gen.generate();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.front().participants.front().presence_pct,
                   b.front().participants.front().presence_pct);
}

TEST(IspBridge, CorroborationLinksTheTwoSides) {
  const auto& s = scenario();
  const nlp::SentimentAnalyzer analyzer;
  const auto report =
      corroborate(s.calls, s.posts, s.first, s.last, analyzer);
  // The two independent signal paths agree strongly.
  EXPECT_GT(report.correlation, 0.5);
  // All three major outages are corroborated by both sides.
  auto has = [](const std::vector<Date>& days, const Date& d) {
    return std::find(days.begin(), days.end(), d) != days.end();
  };
  EXPECT_TRUE(has(report.corroborated_days, Date(2022, 1, 7)));
  EXPECT_TRUE(has(report.corroborated_days, Date(2022, 4, 22)));
  EXPECT_TRUE(has(report.corroborated_days, Date(2022, 8, 30)));
  // And nothing spikes on one side only (the sides see the same network).
  EXPECT_LE(report.social_only_days.size(), 2u);
  EXPECT_LE(report.implicit_only_days.size(), 2u);
}

TEST(IspBridge, CorroborationValidation) {
  const nlp::SentimentAnalyzer analyzer;
  EXPECT_THROW(corroborate({}, {}, Date(2022, 2, 1), Date(2022, 1, 1),
                           analyzer),
               std::invalid_argument);
}

TEST(IspBridge, ConfigValidation) {
  leo::LaunchSchedule sched;
  leo::SpeedModel speed{leo::ConstellationModel{sched},
                        leo::SubscriberModel{}};
  IspCallConfig bad;
  bad.last_day = Date(2021, 1, 1);
  EXPECT_THROW(IspCoupledCallGenerator(
                   speed, leo::OutageModel{Date(2021, 1, 1),
                                           Date(2021, 1, 2), 1},
                   bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace usaas::service
