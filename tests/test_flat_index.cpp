// DenseKeyCounts + ScatterPlan: the counting/prefix-sum substrate of the
// two-pass counted ingest pipeline.
#include "core/flat_index.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace usaas::core {
namespace {

TEST(DenseKeyCounts, EmptyByDefault) {
  DenseKeyCounts counts;
  EXPECT_TRUE(counts.empty());
  EXPECT_EQ(counts.count(0), 0u);
  EXPECT_EQ(counts.count(-5), 0u);
}

TEST(DenseKeyCounts, RebasesDownAndGrowsUp) {
  DenseKeyCounts counts;
  counts.add(10);
  counts.add(7);       // rebase below the first key
  counts.add(13, 3);   // grow above it
  counts.add(10);
  EXPECT_FALSE(counts.empty());
  EXPECT_EQ(counts.min_key(), 7);
  EXPECT_EQ(counts.max_key(), 13);
  EXPECT_EQ(counts.count(7), 1u);
  EXPECT_EQ(counts.count(10), 2u);
  EXPECT_EQ(counts.count(13), 3u);
  EXPECT_EQ(counts.count(11), 0u);  // in range, never added
  EXPECT_EQ(counts.count(6), 0u);   // below range
  EXPECT_EQ(counts.count(14), 0u);  // above range
}

TEST(DenseKeyCounts, NegativeKeys) {
  DenseKeyCounts counts;
  counts.add(-3, 2);
  counts.add(1);
  EXPECT_EQ(counts.min_key(), -3);
  EXPECT_EQ(counts.max_key(), 1);
  EXPECT_EQ(counts.count(-3), 2u);
  EXPECT_EQ(counts.count(0), 0u);
  EXPECT_EQ(counts.count(1), 1u);
}

TEST(ScatterPlan, AllChunksEmpty) {
  const std::array<DenseKeyCounts, 3> chunks{};
  const ScatterPlan plan = build_scatter_plan(chunks);
  EXPECT_EQ(plan.num_keys, 0u);
  EXPECT_EQ(plan.num_chunks, 3u);
  EXPECT_TRUE(plan.totals.empty());
}

TEST(ScatterPlan, OffsetsAreExclusivePrefixSumsPerKey) {
  // chunk 0: key 5 -> 2, key 6 -> 1;  chunk 1: empty;
  // chunk 2: key 4 -> 3, key 6 -> 2.
  std::array<DenseKeyCounts, 3> chunks;
  chunks[0].add(5, 2);
  chunks[0].add(6, 1);
  chunks[2].add(4, 3);
  chunks[2].add(6, 2);
  const ScatterPlan plan = build_scatter_plan(chunks);
  ASSERT_EQ(plan.min_key, 4);
  ASSERT_EQ(plan.num_keys, 3u);
  EXPECT_EQ(plan.total(0), 3u);  // key 4
  EXPECT_EQ(plan.total(1), 2u);  // key 5
  EXPECT_EQ(plan.total(2), 3u);  // key 6

  // Per key, each chunk's offset is the sum of earlier chunks' counts.
  const std::vector<std::size_t> c0 = plan.chunk_cursor(0);
  const std::vector<std::size_t> c1 = plan.chunk_cursor(1);
  const std::vector<std::size_t> c2 = plan.chunk_cursor(2);
  EXPECT_EQ(c0, (std::vector<std::size_t>{0, 0, 0}));
  // key 4's records all live in chunk 2, so earlier chunks contribute 0;
  // keys 5 and 6 start after chunk 0's 2 and 1 records respectively.
  EXPECT_EQ(c1, (std::vector<std::size_t>{0, 2, 1}));
  EXPECT_EQ(c2, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(ScatterPlan, SlotsTileEachKeysSliceExactly) {
  // Property: walking chunks in order and claiming cursor slots per key
  // visits every slot of [0, total) exactly once, in chunk order.
  std::array<DenseKeyCounts, 4> chunks;
  const int keys[] = {2, 3, 5};
  const std::size_t per_chunk_counts[4][3] = {
      {1, 0, 4}, {0, 0, 0}, {2, 5, 1}, {3, 1, 0}};
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t k = 0; k < 3; ++k) {
      if (per_chunk_counts[c][k] > 0) {
        chunks[c].add(keys[k], per_chunk_counts[c][k]);
      }
    }
  }
  const ScatterPlan plan = build_scatter_plan(chunks);
  ASSERT_EQ(plan.min_key, 2);
  ASSERT_EQ(plan.num_keys, 4u);
  std::vector<std::vector<int>> slot_owner(plan.num_keys);
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    slot_owner[k].assign(plan.total(k), -1);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    std::vector<std::size_t> cursor = plan.chunk_cursor(c);
    for (std::size_t k = 0; k < 3; ++k) {
      const auto dense = static_cast<std::size_t>(keys[k] - plan.min_key);
      for (std::size_t i = 0; i < per_chunk_counts[c][k]; ++i) {
        const std::size_t slot = cursor[dense]++;
        ASSERT_LT(slot, slot_owner[dense].size());
        EXPECT_EQ(slot_owner[dense][slot], -1) << "slot claimed twice";
        slot_owner[dense][slot] = static_cast<int>(c);
      }
    }
  }
  for (std::size_t k = 0; k < plan.num_keys; ++k) {
    int last_chunk = -1;
    for (const int owner : slot_owner[k]) {
      EXPECT_NE(owner, -1) << "unclaimed slot";
      EXPECT_GE(owner, last_chunk) << "chunk order violated";
      last_chunk = owner;
    }
  }
}

}  // namespace
}  // namespace usaas::core
