// Tests for signal normalization (Fig 8's ingestion layer) plus the P95
// aggregation claim and the access-network query filter.
#include <gtest/gtest.h>

#include "confsim/dataset.h"
#include "social/subreddit.h"
#include "usaas/correlation_engine.h"
#include "usaas/query_service.h"
#include "usaas/signals.h"

namespace usaas::service {
namespace {

using core::Date;

// ---- normalize_call ----

TEST(NormalizeCall, OneImplicitSignalPerParticipant) {
  confsim::DatasetConfig cfg;
  cfg.seed = 3;
  cfg.num_calls = 50;
  const auto calls = confsim::CallDatasetGenerator{cfg}.generate();
  for (const auto& call : calls) {
    const auto signals = normalize_call(call);
    std::size_t implicit = 0;
    std::size_t mos = 0;
    for (const auto& s : signals) {
      if (std::holds_alternative<ImplicitSignal>(s)) ++implicit;
      if (std::holds_alternative<MosSignal>(s)) ++mos;
      EXPECT_EQ(signal_date(s), call.start.date);
    }
    EXPECT_EQ(implicit, call.participants.size());
    std::size_t rated = 0;
    for (const auto& p : call.participants) rated += p.mos ? 1 : 0;
    EXPECT_EQ(mos, rated);
  }
}

TEST(NormalizeCall, FieldsCarriedThrough) {
  confsim::DatasetConfig cfg;
  cfg.seed = 4;
  cfg.num_calls = 5;
  const auto calls = confsim::CallDatasetGenerator{cfg}.generate();
  const auto signals = normalize_call(calls.front());
  const auto& sig = std::get<ImplicitSignal>(signals.front());
  const auto& rec = calls.front().participants.front();
  EXPECT_EQ(sig.platform, rec.platform);
  EXPECT_DOUBLE_EQ(sig.presence_pct, rec.presence_pct);
  EXPECT_DOUBLE_EQ(sig.conditions.latency.ms(),
                   rec.network.latency_ms.mean);
}

// ---- normalize_post ----

class NormalizePostTest : public ::testing::Test {
 protected:
  static const std::vector<social::Post>& posts() {
    static const auto instance = [] {
      social::SubredditConfig cfg;
      cfg.first_day = Date(2022, 1, 1);
      cfg.last_day = Date(2022, 2, 28);
      leo::LaunchSchedule sched;
      social::RedditSim sim{
          cfg,
          leo::SpeedModel{leo::ConstellationModel{sched},
                          leo::SubscriberModel{}},
          leo::OutageModel{cfg.first_day, cfg.last_day, 5},
          leo::EventTimeline{sched}};
      return sim.simulate();
    }();
    return instance;
  }
  nlp::SentimentAnalyzer analyzer_;
};

TEST_F(NormalizePostTest, ScoresSumToOneAndDatesMatch) {
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& post = posts()[i * posts().size() / 200];
    const auto sig = std::get<SocialSignal>(normalize_post(
        post, analyzer_, nlp::KeywordDictionary::outage_dictionary()));
    EXPECT_NEAR(sig.positive + sig.negative + sig.neutral, 1.0, 1e-9);
    EXPECT_EQ(sig.date, post.date);
    EXPECT_DOUBLE_EQ(sig.popularity, post.popularity());
  }
}

TEST_F(NormalizePostTest, ScreenshotPostsYieldDownlink) {
  std::size_t with_screenshot = 0;
  std::size_t extracted = 0;
  for (const auto& post : posts()) {
    if (!post.screenshot) continue;
    ++with_screenshot;
    const auto sig = std::get<SocialSignal>(normalize_post(
        post, analyzer_, nlp::KeywordDictionary::outage_dictionary()));
    if (sig.reported_downlink_mbps) {
      ++extracted;
      EXPECT_GT(*sig.reported_downlink_mbps, 0.0);
    }
  }
  ASSERT_GT(with_screenshot, 20u);
  // Most screenshots extract; some fail through OCR noise.
  EXPECT_GT(static_cast<double>(extracted) / with_screenshot, 0.7);
}

TEST_F(NormalizePostTest, OutageReportsFlagged) {
  std::size_t outage_posts = 0;
  for (const auto& post : posts()) {
    if (post.kind != social::PostKind::kOutageReport) continue;
    ++outage_posts;
    const auto sig = std::get<SocialSignal>(normalize_post(
        post, analyzer_, nlp::KeywordDictionary::outage_dictionary()));
    EXPECT_TRUE(sig.mentions_outage);
  }
  EXPECT_GT(outage_posts, 10u);
}

TEST_F(NormalizePostTest, DeterministicForSeed) {
  const social::Post* shot = nullptr;
  for (const auto& post : posts()) {
    if (post.screenshot) {
      shot = &post;
      break;
    }
  }
  ASSERT_NE(shot, nullptr);
  const auto a = std::get<SocialSignal>(normalize_post(
      *shot, analyzer_, nlp::KeywordDictionary::outage_dictionary(), 7));
  const auto b = std::get<SocialSignal>(normalize_post(
      *shot, analyzer_, nlp::KeywordDictionary::outage_dictionary(), 7));
  EXPECT_EQ(a.reported_downlink_mbps.has_value(),
            b.reported_downlink_mbps.has_value());
  if (a.reported_downlink_mbps) {
    EXPECT_DOUBLE_EQ(*a.reported_downlink_mbps, *b.reported_downlink_mbps);
  }
}

// ---- P95 aggregation (§3.1: "similar trends hold for P95") ----

TEST(P95Aggregation, LatencyTrendsHoldOnP95) {
  confsim::DatasetConfig cfg;
  cfg.seed = 6;
  cfg.num_calls = 6000;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 300.0;
  CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });

  SweepSpec spec;
  spec.metric = netsim::Metric::kLatency;
  spec.lo = 0.0;
  spec.hi = 560.0;  // P95 latency runs ~1.9x the mean
  spec.bins = 8;
  spec.control_others = false;
  spec.aggregate = SessionAggregate::kP95;
  const auto p95_curve =
      engine.engagement_curve(spec, EngagementMetric::kMicOn);
  ASSERT_GE(p95_curve.points.size(), 6u);
  // Same qualitative trend as the mean-based curve: mic-on falls >20%.
  EXPECT_GT(p95_curve.relative_drop_percent(), 20.0);
  // And the curve is broadly monotone decreasing.
  EXPECT_LT(p95_curve.points.back().engagement,
            p95_curve.points.front().engagement);
}

// ---- Access-network query filter (§5's Starlink x Teams example) ----

TEST(AccessFilter, NarrowsToLeoSatelliteUsers) {
  QueryService svc;
  confsim::DatasetConfig cfg;
  cfg.seed = 8;
  cfg.num_calls = 4000;
  svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());

  Query query;
  query.first = cfg.first_day;
  query.last = cfg.last_day;
  const auto all = svc.run(query);
  query.access = netsim::AccessTechnology::kLeoSatellite;
  const auto starlink = svc.run(query);
  // ~3% of the access mixture.
  EXPECT_GT(starlink.sessions, 0u);
  EXPECT_LT(starlink.sessions, all.sessions / 10);
}

}  // namespace
}  // namespace usaas::service
