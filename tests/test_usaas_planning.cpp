// Tests for the §6 opportunity modules: the sentiment-aware deployment
// planner and the QoE-aware resource-allocation experiment.
#include <gtest/gtest.h>

#include "netsim/profiles.h"
#include "usaas/planner.h"
#include "usaas/qoe_controller.h"

namespace usaas::service {
namespace {

using core::Date;

class PlannerTest : public ::testing::Test {
 protected:
  static const DeploymentPlanner& planner() {
    static const DeploymentPlanner instance{
        leo::LaunchSchedule{}, leo::SubscriberModel{}, Date(2023, 1, 1)};
    return instance;
  }
  static constexpr int kBudget = 36;
  static constexpr int kMonths = 12;
};

TEST_F(PlannerTest, CannedPlansSpendExactBudget) {
  EXPECT_EQ(DeploymentPlanner::uniform_plan(kBudget, kMonths).total_launches(),
            kBudget);
  EXPECT_EQ(
      DeploymentPlanner::front_loaded_plan(kBudget, kMonths).total_launches(),
      kBudget);
  EXPECT_EQ(
      DeploymentPlanner::back_loaded_plan(kBudget, kMonths).total_launches(),
      kBudget);
}

TEST_F(PlannerTest, EvaluateProducesOneRowPerMonth) {
  const auto ev = planner().evaluate(
      DeploymentPlanner::uniform_plan(kBudget, kMonths), kMonths);
  ASSERT_EQ(ev.months.size(), static_cast<std::size_t>(kMonths));
  for (const auto& m : ev.months) {
    EXPECT_GT(m.median_downlink_mbps, 0.0);
    EXPECT_GE(m.forecast_pos, 0.0);
    EXPECT_LE(m.forecast_pos, 1.0);
  }
  EXPECT_GE(ev.mean_pos, ev.min_pos);
}

TEST_F(PlannerTest, MoreLaunchesNeverHurtSentiment) {
  const auto small = planner().evaluate(
      DeploymentPlanner::uniform_plan(6, kMonths), kMonths);
  const auto large = planner().evaluate(
      DeploymentPlanner::uniform_plan(48, kMonths), kMonths);
  EXPECT_GT(large.mean_pos, small.mean_pos);
  EXPECT_GT(large.final_median_mbps, small.final_median_mbps);
}

TEST_F(PlannerTest, FrontLoadingTradesStabilityForMean) {
  const auto uniform = planner().evaluate(
      DeploymentPlanner::uniform_plan(kBudget, kMonths), kMonths);
  const auto front = planner().evaluate(
      DeploymentPlanner::front_loaded_plan(kBudget, kMonths), kMonths);
  // Front-loading spikes sentiment early (higher mean) but the long tail
  // of decline hurts the worst month — the fulcrum effect.
  EXPECT_GT(front.mean_pos, uniform.mean_pos - 0.01);
  EXPECT_LT(front.min_pos, uniform.min_pos);
}

TEST_F(PlannerTest, SentimentAwareBeatsCannedOnItsObjective) {
  const PlanSpec canned[] = {
      DeploymentPlanner::uniform_plan(kBudget, kMonths),
      DeploymentPlanner::front_loaded_plan(kBudget, kMonths),
      DeploymentPlanner::back_loaded_plan(kBudget, kMonths),
  };
  // Mean objective.
  const auto mean_plan = planner().sentiment_aware_plan(
      kBudget, kMonths, PlanObjective::kMeanPos);
  EXPECT_EQ(mean_plan.total_launches(), kBudget);
  const auto mean_ev = planner().evaluate(mean_plan, kMonths);
  const auto best_canned_mean =
      planner().best_of(canned, kMonths, PlanObjective::kMeanPos);
  EXPECT_GE(mean_ev.mean_pos, best_canned_mean.mean_pos - 1e-9);
  // Min objective.
  const auto min_plan = planner().sentiment_aware_plan(
      kBudget, kMonths, PlanObjective::kMinPos);
  EXPECT_EQ(min_plan.total_launches(), kBudget);
  const auto min_ev = planner().evaluate(min_plan, kMonths);
  const auto best_canned_min =
      planner().best_of(canned, kMonths, PlanObjective::kMinPos);
  EXPECT_GE(min_ev.min_pos, best_canned_min.min_pos - 1e-9);
}

TEST_F(PlannerTest, PlanAllocationsNeverNegative) {
  const auto plan = planner().sentiment_aware_plan(kBudget, kMonths,
                                                   PlanObjective::kMinPos);
  for (const int n : plan.launches_per_month) EXPECT_GE(n, 0);
}

TEST_F(PlannerTest, Validation) {
  EXPECT_THROW(planner().evaluate(
                   DeploymentPlanner::uniform_plan(6, 12), 0),
               std::invalid_argument);
  EXPECT_THROW(planner().evaluate(
                   DeploymentPlanner::uniform_plan(6, 12), 6),
               std::invalid_argument);  // plan longer than horizon
  EXPECT_THROW(planner().best_of({}, 12), std::invalid_argument);
}

// ---- QoE controller ----

class QoeTest : public ::testing::Test {
 protected:
  static std::vector<netsim::NetworkConditions> sessions() {
    core::Rng rng{5};
    std::vector<netsim::NetworkConditions> out;
    for (int i = 0; i < 4000; ++i) {
      out.push_back(netsim::sample_mixed_baseline(rng));
    }
    return out;
  }
};

TEST_F(QoeTest, BoostImprovesConditions) {
  const BoostAction boost;
  netsim::NetworkConditions c;
  c.latency = core::Milliseconds{100.0};
  c.loss = core::Percent{2.0};
  c.jitter = core::Milliseconds{8.0};
  c.bandwidth = core::Mbps{2.0};
  const auto boosted = boost.apply(c);
  EXPECT_LT(boosted.latency.ms(), c.latency.ms());
  EXPECT_LT(boosted.loss.percent(), c.loss.percent());
  EXPECT_LT(boosted.jitter.ms(), c.jitter.ms());
  EXPECT_GT(boosted.bandwidth.mbps(), c.bandwidth.mbps());
}

TEST_F(QoeTest, AnyPolicyBeatsNoBoosts) {
  const auto pool = sessions();
  const QoeExperiment experiment;
  const auto baseline = experiment.run_unboosted(pool);
  for (const auto policy :
       {BoostPolicy::kRandom, BoostPolicy::kWorstNetworkFirst,
        BoostPolicy::kPredictedGain}) {
    core::Rng rng{7};
    const auto out = experiment.run(pool, policy, rng);
    EXPECT_LT(out.mean_experience_impairment,
              baseline.mean_experience_impairment)
        << to_string(policy);
    EXPECT_GT(out.mean_presence_pct, baseline.mean_presence_pct);
  }
}

TEST_F(QoeTest, BudgetRespected) {
  const auto pool = sessions();
  QoeExperimentConfig cfg;
  cfg.budget_fraction = 0.05;
  const QoeExperiment experiment{cfg};
  core::Rng rng{8};
  const auto out = experiment.run(pool, BoostPolicy::kRandom, rng);
  EXPECT_EQ(out.boosted, static_cast<std::size_t>(0.05 * pool.size()));
}

TEST_F(QoeTest, InformedPoliciesBeatRandom) {
  const auto pool = sessions();
  const QoeExperiment experiment;
  core::Rng r1{9};
  core::Rng r2{9};
  core::Rng r3{9};
  const auto random = experiment.run(pool, BoostPolicy::kRandom, r1);
  const auto worst = experiment.run(pool, BoostPolicy::kWorstNetworkFirst, r2);
  const auto gain = experiment.run(pool, BoostPolicy::kPredictedGain, r3);
  EXPECT_LT(worst.mean_experience_impairment,
            random.mean_experience_impairment);
  EXPECT_LT(gain.mean_experience_impairment,
            random.mean_experience_impairment);
  // The USaaS policy is at least as good as the network-only policy: it
  // sees the marginal benefit, not just the raw badness.
  EXPECT_LE(gain.mean_experience_impairment,
            worst.mean_experience_impairment + 1e-9);
}

TEST_F(QoeTest, ZeroBudgetIsNoOp) {
  const auto pool = sessions();
  QoeExperimentConfig cfg;
  cfg.budget_fraction = 0.0;
  const QoeExperiment experiment{cfg};
  core::Rng rng{10};
  const auto out = experiment.run(pool, BoostPolicy::kPredictedGain, rng);
  const auto baseline = experiment.run_unboosted(pool);
  EXPECT_EQ(out.boosted, 0u);
  EXPECT_DOUBLE_EQ(out.mean_experience_impairment,
                   baseline.mean_experience_impairment);
}

TEST_F(QoeTest, ConfigValidation) {
  QoeExperimentConfig cfg;
  cfg.budget_fraction = 1.5;
  EXPECT_THROW(QoeExperiment{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace usaas::service
