#include "nlp/sentiment.h"

#include <gtest/gtest.h>

#include "nlp/lexicon.h"

namespace usaas::nlp {
namespace {

class SentimentTest : public ::testing::Test {
 protected:
  SentimentAnalyzer analyzer_;
};

TEST_F(SentimentTest, ScoresSumToOne) {
  for (const char* text :
       {"", "neutral words only", "absolutely amazing and wonderful!!",
        "terrible awful horrible outage", "good but slow"}) {
    const auto s = analyzer_.score(text);
    EXPECT_NEAR(s.positive + s.negative + s.neutral, 1.0, 1e-9) << text;
    EXPECT_GE(s.positive, 0.0);
    EXPECT_GE(s.negative, 0.0);
    EXPECT_GE(s.neutral, 0.0);
  }
}

TEST_F(SentimentTest, EmptyTextIsNeutral) {
  const auto s = analyzer_.score("");
  EXPECT_DOUBLE_EQ(s.neutral, 1.0);
  EXPECT_FALSE(s.strong_positive());
  EXPECT_FALSE(s.strong_negative());
}

TEST_F(SentimentTest, ClearlyPositiveText) {
  const auto s = analyzer_.score(
      "This is amazing, excellent speeds, love it, works perfectly!");
  EXPECT_GT(s.positive, s.negative);
  EXPECT_TRUE(s.strong_positive());
}

TEST_F(SentimentTest, ClearlyNegativeText) {
  const auto s = analyzer_.score(
      "Terrible outage, awful service, completely unusable, very "
      "frustrating and disappointing.");
  EXPECT_GT(s.negative, s.positive);
  EXPECT_TRUE(s.strong_negative());
}

TEST_F(SentimentTest, MildTextIsNotStrong) {
  const auto s = analyzer_.score("It works okay for us.");
  EXPECT_FALSE(s.strong_positive());
  EXPECT_FALSE(s.strong_negative());
  EXPECT_GT(s.neutral, 0.3);
}

TEST_F(SentimentTest, NegationFlipsPolarity) {
  const auto plain = analyzer_.score("the connection is good");
  const auto negated = analyzer_.score("the connection is not good");
  EXPECT_GT(plain.positive, plain.negative);
  EXPECT_GT(negated.negative, negated.positive);
}

TEST_F(SentimentTest, NegationOfNegativeBecomesPositive) {
  const auto s = analyzer_.score("no problems and no outage this month");
  EXPECT_GT(s.positive, s.negative);
}

TEST_F(SentimentTest, NegationWindowIsBounded) {
  // The negator is too far from the valence word to flip it.
  const auto s =
      analyzer_.score("not the dish or the router or the cable, great");
  EXPECT_GT(s.positive, s.negative);
}

TEST_F(SentimentTest, IntensifiersAmplify) {
  const auto plain = analyzer_.score("the service is slow");
  const auto intense = analyzer_.score("the service is extremely slow");
  EXPECT_GT(intense.negative, plain.negative);
}

TEST_F(SentimentTest, DampenersSoften) {
  const auto plain = analyzer_.score("the service is slow");
  const auto damped = analyzer_.score("the service is slightly slow");
  EXPECT_LT(damped.negative, plain.negative);
}

TEST_F(SentimentTest, ExclamationsAmplify) {
  const auto calm = analyzer_.score("this is great");
  const auto excited = analyzer_.score("this is great!!!");
  EXPECT_GT(excited.positive, calm.positive);
}

TEST_F(SentimentTest, ShoutingAmplifies) {
  const auto calm = analyzer_.score("service is down again");
  const auto shouting = analyzer_.score("SERVICE IS DOWN AGAIN");
  EXPECT_GT(shouting.negative, calm.negative);
}

TEST_F(SentimentTest, MixedTextSplitsMass) {
  const auto s = analyzer_.score(
      "great speeds but terrible reliability");
  EXPECT_GT(s.positive, 0.1);
  EXPECT_GT(s.negative, 0.1);
  EXPECT_FALSE(s.strong_positive());
  EXPECT_FALSE(s.strong_negative());
}

TEST_F(SentimentTest, PolarityHelper) {
  const auto pos = analyzer_.score("amazing excellent wonderful");
  EXPECT_GT(pos.polarity(), 0.0);
  const auto neg = analyzer_.score("awful terrible horrible");
  EXPECT_LT(neg.polarity(), 0.0);
}

TEST(Lexicon, BuiltinCoversDomainVocabulary) {
  const Lexicon& lex = Lexicon::builtin();
  EXPECT_GT(lex.size(), 150u);
  ASSERT_TRUE(lex.valence("outage").has_value());
  EXPECT_LT(*lex.valence("outage"), 0.0);
  ASSERT_TRUE(lex.valence("fast").has_value());
  EXPECT_GT(*lex.valence("fast"), 0.0);
  EXPECT_TRUE(lex.is_negator("not"));
  EXPECT_TRUE(lex.is_negator("zero"));
  EXPECT_FALSE(lex.is_negator("very"));
  ASSERT_TRUE(lex.intensity("very").has_value());
  EXPECT_GT(*lex.intensity("very"), 1.0);
  ASSERT_TRUE(lex.intensity("slightly").has_value());
  EXPECT_LT(*lex.intensity("slightly"), 1.0);
}

TEST(Lexicon, CustomBuildValidation) {
  Lexicon lex;
  EXPECT_THROW(lex.add_word("x", 1.5), std::invalid_argument);
  EXPECT_THROW(lex.add_intensifier("y", 0.0), std::invalid_argument);
  lex.add_word("sparkly", 0.6);
  EXPECT_DOUBLE_EQ(*lex.valence("sparkly"), 0.6);
  EXPECT_FALSE(lex.valence("unknown").has_value());
}

// Property: adding unambiguous positive words never lowers the positive
// score; strong thresholds are symmetric.
class SentimentAccumulation : public ::testing::TestWithParam<int> {};

TEST_P(SentimentAccumulation, MorePositiveWordsMorePositive) {
  SentimentAnalyzer analyzer;
  std::string text = "the setup was";
  double prev = analyzer.score(text).positive;
  for (int i = 0; i < GetParam(); ++i) {
    text += " excellent";
    const double cur = analyzer.score(text).positive;
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
  if (GetParam() >= 4) {
    EXPECT_TRUE(analyzer.score(text).strong_positive());
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, SentimentAccumulation,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace usaas::nlp
