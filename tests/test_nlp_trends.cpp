#include "nlp/trends.h"

#include <gtest/gtest.h>

namespace usaas::nlp {
namespace {

using core::Date;

TrendMinerConfig fast_config() {
  TrendMinerConfig cfg;
  cfg.window_days = 5;
  cfg.history_days = 20;
  cfg.burst_threshold = 4.0;
  cfg.min_window_weight = 20.0;
  cfg.min_document_share = 0.05;
  return cfg;
}

TEST(TrendMiner, DetectsPlantedBurst) {
  TrendMiner miner{fast_config()};
  // 40 days of background chatter.
  for (int day = 0; day < 40; ++day) {
    const Date d = Date(2022, 1, 1).plus_days(day);
    miner.add_document({d, "dish setup question about mounting", 5.0});
    miner.add_document({d, "weather report and launch chatter", 4.0});
  }
  // A new topic bursts on day 30 with high popularity.
  for (int day = 30; day < 36; ++day) {
    const Date d = Date(2022, 1, 1).plus_days(day);
    miner.add_document({d, "portability works across cells", 40.0});
    miner.add_document({d, "tried portability and it works", 35.0});
  }
  const auto topics = miner.detect();
  ASSERT_FALSE(topics.empty());
  bool found = false;
  for (const auto& t : topics) {
    if (t.term == "portability") {
      found = true;
      EXPECT_GE(t.first_detected, Date(2022, 1, 31));
      EXPECT_LE(t.first_detected, Date(2022, 2, 3));
      EXPECT_GE(t.burst_score, 4.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TrendMiner, SteadyTopicsDoNotFire) {
  TrendMiner miner{fast_config()};
  for (int day = 0; day < 60; ++day) {
    const Date d = Date(2022, 1, 1).plus_days(day);
    miner.add_document({d, "speed report numbers as usual", 20.0});
  }
  for (const auto& t : miner.detect()) {
    EXPECT_NE(t.term, "speed");
    EXPECT_NE(t.term, "report");
  }
}

TEST(TrendMiner, PopularityGatesDetection) {
  // Same text volume, but negligible popularity -> below min weight.
  TrendMiner miner{fast_config()};
  for (int day = 0; day < 30; ++day) {
    miner.add_document(
        {Date(2022, 1, 1).plus_days(day), "background noise post", 5.0});
  }
  for (int day = 25; day < 30; ++day) {
    miner.add_document(
        {Date(2022, 1, 1).plus_days(day), "whisper topic emerging", 0.5});
  }
  for (const auto& t : miner.detect()) {
    EXPECT_NE(t.term, "whisper");
  }
}

TEST(TrendMiner, BigramsDetected) {
  TrendMiner miner{fast_config()};
  for (int day = 0; day < 30; ++day) {
    miner.add_document(
        {Date(2022, 1, 1).plus_days(day), "ordinary chatter here", 8.0});
  }
  for (int day = 26; day < 30; ++day) {
    miner.add_document({Date(2022, 1, 1).plus_days(day),
                        "roaming enabled on my dish, roaming enabled", 30.0});
    miner.add_document({Date(2022, 1, 1).plus_days(day),
                        "confirmed roaming enabled while traveling", 25.0});
  }
  bool bigram_found = false;
  for (const auto& t : miner.detect()) {
    if (t.term == "roaming enabled") bigram_found = true;
  }
  EXPECT_TRUE(bigram_found);
}

TEST(TrendMiner, EachTermFiresOnce) {
  TrendMiner miner{fast_config()};
  for (int day = 0; day < 60; ++day) {
    const double weight = day >= 20 ? 50.0 : 2.0;
    miner.add_document(
        {Date(2022, 1, 1).plus_days(day), "newthing discussion", weight});
  }
  int fires = 0;
  for (const auto& t : miner.detect()) {
    if (t.term == "newthing") ++fires;
  }
  EXPECT_EQ(fires, 1);
}

TEST(TrendMiner, EmptyMinerDetectsNothing) {
  TrendMiner miner{fast_config()};
  EXPECT_TRUE(miner.detect().empty());
}

TEST(TrendMiner, BurstScoreDiagnostics) {
  TrendMiner miner{fast_config()};
  for (int day = 0; day < 20; ++day) {
    miner.add_document(
        {Date(2022, 1, 1).plus_days(day), "quiet background", 2.0});
  }
  miner.add_document({Date(2022, 1, 21), "suddenly spiky topic", 100.0});
  const double score = miner.burst_score_on("spiky", Date(2022, 1, 21));
  EXPECT_GT(score, 5.0);
  EXPECT_LT(miner.burst_score_on("background", Date(2022, 1, 21)), 2.0);
}

}  // namespace
}  // namespace usaas::nlp
