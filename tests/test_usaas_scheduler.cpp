// Admission-control tests: the token bucket as a pure function of its
// (now, consume) sequence, the cost estimator's ordering (cache hit <
// summary merge < cold scan, with slow-log history taking over once a
// fingerprint has run), deadline-aware admission under a virtual clock,
// and the degrade-before-shed contract — a saturated tenant gets a
// bounded-staleness cached Insight, never an error, whenever one exists.
//
// Registered under the `sanitize` ctest label with USAAS_PARALLEL_FORCE=1:
// MixedTenantStressReconcilesExactly hammers submit() from multiple
// tenants while a producer bumps the corpus version, and is the TSan
// workload for the scheduler mutex + bucket state + outcome counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "confsim/call.h"
#include "core/date.h"
#include "core/scheduler_clock.h"
#include "core/token_bucket.h"
#include "usaas/query_scheduler.h"
#include "usaas/query_service.h"

namespace usaas::service {
namespace {

using core::Date;

// ---- Corpus helpers ----------------------------------------------------

confsim::CallRecord sample_call(std::uint64_t id, const Date& day) {
  confsim::CallRecord call;
  call.call_id = id;
  call.start.date = day;
  call.start.time = {9, 0};
  confsim::ParticipantRecord rec;
  rec.user_id = id * 10;
  rec.platform = confsim::Platform::kWindowsPc;
  rec.meeting_size = 2;
  rec.access = netsim::AccessTechnology::kFiber;
  const auto agg = [](double v) { return netsim::MetricAggregate{v, v, v}; };
  rec.network.latency_ms = agg(40.0 + static_cast<double>(id % 50));
  rec.network.loss_pct = agg(0.5);
  rec.network.jitter_ms = agg(3.0);
  rec.network.bandwidth_mbps = agg(25.0);
  rec.network.duration_seconds = 1800.0;
  rec.network.sample_count = 360;
  rec.presence_pct = 90.0;
  rec.cam_on_pct = 50.0;
  rec.mic_on_pct = 30.0;
  call.participants.push_back(rec);
  return call;
}

std::vector<confsim::CallRecord> quarter_calls(std::uint64_t base_id) {
  std::vector<confsim::CallRecord> calls;
  std::uint64_t id = base_id;
  for (int month = 1; month <= 3; ++month) {
    for (int day : {1, 10, 20, 28}) {
      calls.push_back(sample_call(id++, Date(2022, month, day)));
    }
  }
  return calls;
}

Query whole_months_query() {
  Query q;
  q.first = Date(2022, 1, 1);
  q.last = Date(2022, 3, 31);  // month-aligned: summary-answerable
  q.bins = 4;
  return q;
}

Query cut_months_query() {
  Query q;
  q.first = Date(2022, 1, 15);  // both boundary months are cut: rescans
  q.last = Date(2022, 3, 20);
  q.bins = 4;
  return q;
}

struct Fixture {
  core::telemetry::Registry reg{true};
  QueryService svc;
  explicit Fixture() : svc{make_config(&reg)} {
    const auto calls = quarter_calls(0);
    svc.ingest_calls(calls);
  }
  static QueryServiceConfig make_config(core::telemetry::Registry* reg) {
    QueryServiceConfig cfg;
    cfg.sharding = ShardingPolicy::kMonthPlatform;
    cfg.threads = 1;
    cfg.telemetry = reg;
    return cfg;
  }
};

// ---- TokenBucket: pure-function determinism ----------------------------

TEST(TokenBucket, RefillIsAPureFunctionOfTheClockSequence) {
  const auto run = [](std::vector<double>& trace) {
    core::TokenBucket bucket{10.0, 5.0, 0.0};
    trace.push_back(bucket.tokens());  // starts full
    ASSERT_TRUE(bucket.try_consume(5.0));
    trace.push_back(bucket.tokens());
    trace.push_back(bucket.seconds_until(1.0));
    bucket.refill(0.1);
    trace.push_back(bucket.tokens());
    ASSERT_TRUE(bucket.try_consume(1.0));
    bucket.refill(10.0);  // far past: clamps at burst
    trace.push_back(bucket.tokens());
    bucket.refill(3.0);  // older timestamp: ignored, never negative time
    trace.push_back(bucket.tokens());
  };
  std::vector<double> a, b;
  run(a);
  run(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "step " << i;  // bit-identical replay
  }
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_DOUBLE_EQ(a[2], 0.1);  // (1 - 0) / 10
  EXPECT_DOUBLE_EQ(a[3], 1.0);  // 0.1 s * 10/s, exactly
  EXPECT_DOUBLE_EQ(a[4], 5.0);  // clamped at burst
  EXPECT_DOUBLE_EQ(a[5], 5.0);  // monotone guard held
}

TEST(TokenBucket, UnpayableCostsReportInfiniteWait) {
  core::TokenBucket bucket{2.0, 4.0, 0.0};
  EXPECT_EQ(bucket.seconds_until(5.0),
            std::numeric_limits<double>::infinity());  // beyond burst
  core::TokenBucket stalled{0.0, 4.0, 0.0};
  ASSERT_TRUE(stalled.try_consume(4.0));
  EXPECT_EQ(stalled.seconds_until(1.0),
            std::numeric_limits<double>::infinity());  // zero rate
}

// ---- Cost estimator ----------------------------------------------------

TEST(QueryScheduler, CostOrderingCacheThenSummaryThenScan) {
  Fixture fx;
  SchedulerConfig cfg;
  cfg.summary_month_cost = 0.5;  // lift the aligned window off the floor
  core::VirtualClock clock;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Structural estimates, before anything has run: the month-aligned
  // window merges summaries, the cut window rescans its boundary months.
  const QueryCostEstimate aligned = fx.svc.estimate_query(whole_months_query());
  EXPECT_FALSE(aligned.cached);
  EXPECT_EQ(aligned.summary_months, 3u);
  EXPECT_EQ(aligned.scan_months, 0u);
  const QueryCostEstimate cut = fx.svc.estimate_query(cut_months_query());
  EXPECT_EQ(cut.scan_months, 2u);
  EXPECT_EQ(cut.summary_months, 1u);

  const double summary_cost = sched.estimate_cost(whole_months_query());
  const double scan_cost = sched.estimate_cost(cut_months_query());
  EXPECT_LT(summary_cost, scan_cost);  // cold scans queue behind merges

  // Estimating must not look like cache traffic.
  const auto before = fx.svc.stats().insight_cache;
  (void)fx.svc.estimate_query(whole_months_query());
  const auto after = fx.svc.stats().insight_cache;
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);

  // Once cached, the same expensive query costs the floor.
  (void)fx.svc.run(cut_months_query());
  const QueryCostEstimate warm = fx.svc.estimate_query(cut_months_query());
  EXPECT_TRUE(warm.cached);
  EXPECT_GE(warm.slow_log_seconds, 0.0);  // history seeded by the run
  EXPECT_DOUBLE_EQ(sched.estimate_cost(cut_months_query()),
                   cfg.min_cost_tokens);
  EXPECT_LT(sched.estimate_cost(cut_months_query()), summary_cost);

  // After a version bump the cache no longer shields it, but the slow-log
  // history (keyed on the version-independent fingerprint) still does.
  const auto more = quarter_calls(1000);
  fx.svc.ingest_calls(more);
  const QueryCostEstimate bumped = fx.svc.estimate_query(cut_months_query());
  EXPECT_FALSE(bumped.cached);
  EXPECT_GE(bumped.slow_log_seconds, 0.0);
}

// Pins the columnar recalibration of the structural cost model: the
// per-scan-month charge halved (8 -> 4 tokens) because a columnar rescan
// touches only the columns a query names, and the admission properties
// built on the old constant must survive the cheaper scans.
TEST(QueryScheduler, ColumnarScanCostKeepsAdmissionOrdering) {
  const SchedulerConfig defaults;
  EXPECT_DOUBLE_EQ(defaults.scan_month_cost, 4.0);
  EXPECT_LT(defaults.summary_month_cost, defaults.scan_month_cost);

  Fixture fx;
  SchedulerConfig cfg;
  core::VirtualClock clock;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Ordering: cache-floor == month-aligned summary merge < boundary-cut
  // scan — cheap dashboard merges keep admitting ahead of cold scans.
  const double aligned = sched.estimate_cost(whole_months_query());
  const double cut = sched.estimate_cost(cut_months_query());
  EXPECT_DOUBLE_EQ(aligned, cfg.min_cost_tokens);
  EXPECT_DOUBLE_EQ(cut, cfg.summary_month_cost * 1.0 +
                            cfg.scan_month_cost * 2.0);  // 1 merge + 2 scans
  EXPECT_LT(aligned, cut);
  // Even a single boundary-cut month outweighs a whole quarter of
  // summary-answerable months.
  EXPECT_GT(cfg.scan_month_cost,
            cfg.summary_month_cost * 3.0 + cfg.summary_month_cost);

  // PR 7 degrade-before-shed tripwire: the saturation A/B runs batch
  // tenants with burst 4.0 — a two-boundary-cut rescan must stay
  // unpayable outright so the saturated tenant degrades to a bounded-
  // staleness cached answer (or sheds) instead of jumping the queue.
  EXPECT_GT(cut, 4.0);
}

// ---- Deadline-aware admission under a virtual clock --------------------

TEST(QueryScheduler, AdmissionWaitsAreDeterministicUnderVirtualClock) {
  const auto run = [](std::vector<double>& waits, double& end_time) {
    Fixture fx;
    core::VirtualClock clock;
    SchedulerConfig cfg;
    cfg.default_qos = {4.0, 1.0};  // 4 tokens/s, burst 1
    cfg.max_wait_seconds = 10.0;
    cfg.clock = &clock;
    QueryScheduler sched{fx.svc, cfg};
    for (int i = 0; i < 5; ++i) {
      const ScheduledResult r = sched.submit("dash", whole_months_query());
      ASSERT_EQ(r.outcome, AdmissionOutcome::kAdmitted);
      EXPECT_DOUBLE_EQ(r.cost_tokens, 1.0);
      waits.push_back(r.wait_seconds);
    }
    end_time = clock.now();
  };
  std::vector<double> waits_a, waits_b;
  double end_a = 0.0, end_b = 0.0;
  run(waits_a, end_a);
  run(waits_b, end_b);
  ASSERT_EQ(waits_a.size(), 5u);
  EXPECT_DOUBLE_EQ(waits_a[0], 0.0);  // fresh tenant: full burst
  for (std::size_t i = 1; i < waits_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(waits_a[i], 0.25) << "submission " << i;
  }
  EXPECT_DOUBLE_EQ(end_a, 1.0);  // 4 refill waits of exactly 0.25 s
  EXPECT_EQ(waits_a, waits_b);   // bit-identical replay
  EXPECT_EQ(end_a, end_b);
}

// ---- Degrade before shed ----------------------------------------------

TEST(QueryScheduler, DegradesToBoundedStalenessInsteadOfShedding) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  // Rate 0: whatever the burst bought is all this tenant ever gets, so
  // saturation is reached deterministically with no waiting.
  cfg.default_qos = {0.0, 1.0};
  cfg.max_versions_behind = 2;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Warm: the only affordable submission computes and caches the answer.
  const ScheduledResult warm = sched.submit("analyst", whole_months_query());
  ASSERT_EQ(warm.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(warm.insight.staleness, 0u);
  const std::uint64_t warm_version = warm.insight.corpus_version;

  // The corpus moves on: the cached entry is now one version behind.
  const auto more = quarter_calls(500);
  fx.svc.ingest_calls(more);

  // Saturated + stale cache entry available → degraded, not shed, and the
  // answer is the warm insight stamped with exactly how stale it is.
  const ScheduledResult degraded =
      sched.submit("analyst", whole_months_query());
  ASSERT_EQ(degraded.outcome, AdmissionOutcome::kDegraded);
  EXPECT_EQ(degraded.insight.staleness, 1u);
  EXPECT_LE(degraded.insight.staleness, cfg.max_versions_behind);
  EXPECT_EQ(degraded.insight.corpus_version, warm_version);
  EXPECT_EQ(degraded.insight.sessions, warm.insight.sessions);
  EXPECT_EQ(degraded.insight.execution.served_by, ServedBy::kCache);

  // Saturated + nothing cached for this query → shed, and the tripwire
  // stays silent because nothing degradable was discarded.
  const ScheduledResult shed = sched.submit("analyst", cut_months_query());
  EXPECT_EQ(shed.outcome, AdmissionOutcome::kShed);

  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_with_degradable, 0u);
  EXPECT_TRUE(stats.reconciles());

  // The registry view must agree exactly with stats() — the exposition
  // endpoint renders these same cells.
  core::telemetry::Registry& reg = fx.svc.telemetry_registry();
  EXPECT_EQ(reg.counter("usaas_admission_submitted_total").value(), 3u);
  EXPECT_EQ(reg.counter("usaas_admission_queries_total", "",
                        {{"outcome", "admitted"}})
                .value(),
            1u);
  EXPECT_EQ(reg.counter("usaas_admission_queries_total", "",
                        {{"outcome", "degraded"}})
                .value(),
            1u);
  EXPECT_EQ(reg.counter("usaas_admission_queries_total", "",
                        {{"outcome", "shed"}})
                .value(),
            1u);
  EXPECT_EQ(
      reg.counter("usaas_admission_shed_with_degradable_total").value(), 0u);
}

TEST(QueryScheduler, StalenessBoundIsRespectedAcrossManyBumps) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.0, 1.0};
  cfg.max_versions_behind = 2;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};
  ASSERT_EQ(sched.submit("t", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);
  // Three bumps put the only cached entry beyond the staleness bound:
  // serving it would violate the stamp's contract, so the query sheds.
  for (int i = 0; i < 3; ++i) {
    const auto more = quarter_calls(2000 + 100 * static_cast<std::uint64_t>(i));
    fx.svc.ingest_calls(more);
  }
  const ScheduledResult r = sched.submit("t", whole_months_query());
  EXPECT_EQ(r.outcome, AdmissionOutcome::kShed);
  EXPECT_EQ(sched.stats().shed_with_degradable, 0u);
}

TEST(QueryScheduler, DisabledDegradeTripsTheShedWithDegradableTripwire) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.0, 1.0};
  cfg.max_versions_behind = 0;  // degrade disabled
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};
  ASSERT_EQ(sched.submit("t", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);
  // Same query, same version, saturated: a perfectly fresh cached answer
  // exists, degrade is off, so the shed is recorded as a discarded
  // opportunity — the condition scripts/check.sh fails the build on.
  const ScheduledResult r = sched.submit("t", whole_months_query());
  EXPECT_EQ(r.outcome, AdmissionOutcome::kShed);
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_with_degradable, 1u);
  EXPECT_TRUE(stats.reconciles());
}

// ---- Mixed-tenant concurrency (TSan workload) --------------------------

TEST(QueryScheduler, MixedTenantStressReconcilesExactly) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {200.0, 8.0};
  cfg.tenant_qos["dash-0"] = {400.0, 16.0};
  cfg.max_wait_seconds = 0.05;
  cfg.max_versions_behind = 3;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::uint64_t> answered(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const std::string tenant =
          (t % 2 == 0 ? "dash-" : "analyst-") + std::to_string(t % 2);
      for (int i = 0; i < kPerThread; ++i) {
        const Query q =
            (i % 3 == 0) ? cut_months_query() : whole_months_query();
        const ScheduledResult r = sched.submit(tenant, q);
        if (r.outcome != AdmissionOutcome::kShed) {
          ++answered[static_cast<std::size_t>(t)];
          // Degraded answers must honor the bound even mid-race.
          ASSERT_LE(r.insight.staleness, cfg.max_versions_behind);
        }
      }
    });
  }
  // A live producer keeps bumping the corpus version underneath.
  workers.emplace_back([&] {
    for (std::uint64_t i = 0; i < 10; ++i) {
      const std::vector<confsim::CallRecord> batch{
          sample_call(10000 + i, Date(2022, 2, 5))};
      fx.svc.ingest_calls(batch);
    }
  });
  for (std::thread& w : workers) w.join();

  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(stats.reconciles());
  core::telemetry::Registry& reg = fx.svc.telemetry_registry();
  const std::uint64_t exposed =
      reg.counter("usaas_admission_queries_total", "",
                  {{"outcome", "admitted"}})
          .value() +
      reg.counter("usaas_admission_queries_total", "",
                  {{"outcome", "degraded"}})
          .value() +
      reg.counter("usaas_admission_queries_total", "", {{"outcome", "shed"}})
          .value();
  EXPECT_EQ(exposed,
            reg.counter("usaas_admission_submitted_total").value());
  // All waiters drained: every per-tenant queue-depth gauge is back to 0.
  for (const auto& [tenant, snap] : stats.tenants) {
    EXPECT_EQ(snap.queue_depth, 0u) << tenant;
  }
}

// ---- Circuit breaker: the state machine alone --------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndProbesAfterCooldown) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown_seconds = 1.0;
  cfg.cooldown_backoff = 2.0;
  cfg.max_cooldown_seconds = 3.0;
  CircuitBreaker breaker{cfg};

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_success();  // a success resets the streak
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  EXPECT_TRUE(breaker.allow(0.0));  // still closed: two in a row, not three
  breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(0.5));  // cooling down
  EXPECT_DOUBLE_EQ(breaker.seconds_until_probe(0.5), 0.5);

  // Cooldown served: exactly one caller becomes the half-open probe.
  EXPECT_TRUE(breaker.allow(1.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(1.0));  // probe already in flight

  // Probe fails: reopen with doubled cooldown.
  breaker.record_failure(1.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(2.5));  // 2 s cooldown now
  EXPECT_TRUE(breaker.allow(3.0));
  breaker.record_failure(3.0);  // fails again: cooldown capped at 3 s
  EXPECT_DOUBLE_EQ(breaker.seconds_until_probe(3.0), 3.0);
  EXPECT_TRUE(breaker.allow(6.0));

  // Probe succeeds: closed, streak and cooldown fully reset.
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  breaker.record_failure(6.0);
  breaker.record_failure(6.0);
  breaker.record_failure(6.0);
  EXPECT_DOUBLE_EQ(breaker.seconds_until_probe(6.0), 1.0);  // back to base
}

TEST(CircuitBreaker, ThresholdZeroDisablesTheBreakerEntirely) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 0;
  CircuitBreaker breaker{cfg};
  for (int i = 0; i < 100; ++i) breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(0.0));
}

// ---- Circuit breaker wired into admission ------------------------------

TEST(QueryScheduler, OpenBreakerShortCircuitsButStillDegrades) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.0, 1.0};  // one affordable admission, ever
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_seconds = 1.0;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Warm the cache, then shed twice on an unpayable query: breaker opens.
  ASSERT_EQ(sched.submit("t", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);
  ASSERT_EQ(sched.submit("t", cut_months_query()).outcome,
            AdmissionOutcome::kShed);
  ASSERT_EQ(sched.submit("t", cut_months_query()).outcome,
            AdmissionOutcome::kShed);
  ASSERT_EQ(sched.stats().tenants.at("t").breaker,
            CircuitBreaker::State::kOpen);

  // Open breaker, nothing cached for this query: shed without touching
  // the queue, and Retry-After covers at least the remaining cooldown.
  const ScheduledResult shed = sched.submit("t", cut_months_query());
  EXPECT_EQ(shed.outcome, AdmissionOutcome::kShed);
  EXPECT_TRUE(shed.breaker_short_circuit);
  EXPECT_GE(shed.retry_after_seconds, 1.0);

  // Open breaker, warm cache: the short-circuit still serves the stale
  // answer — an open breaker degrades service, it does not black-hole it.
  const ScheduledResult degraded = sched.submit("t", whole_months_query());
  EXPECT_EQ(degraded.outcome, AdmissionOutcome::kDegraded);
  EXPECT_TRUE(degraded.breaker_short_circuit);
  EXPECT_EQ(degraded.insight.execution.served_by, ServedBy::kCache);

  const SchedulerStats mid = sched.stats();
  EXPECT_EQ(mid.breaker_short_circuits, 2u);
  EXPECT_TRUE(mid.reconciles());

  // Cooldown served: the next submission is the half-open probe. It
  // cannot afford tokens either, but it comes back with a (stale)
  // answer, which resolves the probe as success and re-closes the
  // breaker instead of wedging it half-open forever.
  clock.advance(1.5);
  const ScheduledResult probe = sched.submit("t", whole_months_query());
  EXPECT_EQ(probe.outcome, AdmissionOutcome::kDegraded);
  EXPECT_FALSE(probe.breaker_short_circuit);
  EXPECT_EQ(sched.stats().tenants.at("t").breaker,
            CircuitBreaker::State::kClosed);

  // Registry mirror of the short-circuit count.
  EXPECT_EQ(fx.svc.telemetry_registry()
                .counter("usaas_admission_breaker_short_circuits_total")
                .value(),
            2u);
}

TEST(QueryScheduler, HalfOpenProbeFailureReopensWithBackoff) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.0, 0.5};  // nothing is ever affordable
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.cooldown_seconds = 1.0;
  cfg.breaker.cooldown_backoff = 2.0;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // One shed (nothing cached) opens the threshold-1 breaker.
  ASSERT_EQ(sched.submit("t", cut_months_query()).outcome,
            AdmissionOutcome::kShed);
  ASSERT_EQ(sched.stats().tenants.at("t").breaker,
            CircuitBreaker::State::kOpen);

  // The probe sheds too: reopen, and the cooldown doubles.
  clock.advance(1.25);
  const ScheduledResult probe = sched.submit("t", cut_months_query());
  EXPECT_EQ(probe.outcome, AdmissionOutcome::kShed);
  EXPECT_FALSE(probe.breaker_short_circuit);
  EXPECT_EQ(sched.stats().tenants.at("t").breaker,
            CircuitBreaker::State::kOpen);
  const ScheduledResult blocked = sched.submit("t", cut_months_query());
  EXPECT_TRUE(blocked.breaker_short_circuit);
  EXPECT_GE(blocked.retry_after_seconds, 1.9);  // ~2 s of backoff left
}

// ---- Degrade-feedback loop into the cost model -------------------------

TEST(QueryScheduler, ConsecutiveStaleServesBumpCostBiasAndAdmitsDecayIt) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {1.0, 4.0};  // slow refill: saturation is reachable
  cfg.degrade_feedback_threshold = 2;
  cfg.degrade_feedback_factor = 2.0;
  cfg.cost_bias_decay = 0.9;
  cfg.seconds_per_token = 10.0;  // slow-log history stays under the floor
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Drain the burst with fresh admits, then move the corpus on.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(sched.submit("t", whole_months_query()).outcome,
              AdmissionOutcome::kAdmitted);
  }
  fx.svc.ingest_calls(quarter_calls(700));

  // Two consecutive stale serves reach the threshold: bias doubles.
  ASSERT_EQ(sched.submit("t", whole_months_query()).outcome,
            AdmissionOutcome::kDegraded);
  EXPECT_DOUBLE_EQ(sched.stats().tenants.at("t").cost_bias, 1.0);
  ASSERT_EQ(sched.submit("t", whole_months_query()).outcome,
            AdmissionOutcome::kDegraded);
  SchedulerStats stats = sched.stats();
  EXPECT_DOUBLE_EQ(stats.tenants.at("t").cost_bias, 2.0);
  EXPECT_EQ(stats.degrade_feedback_bumps, 1u);
  EXPECT_EQ(fx.svc.telemetry_registry()
                .counter("usaas_admission_degrade_feedback_total")
                .value(),
            1u);

  // The bias is visible in the next submission's effective cost.
  const double raw = sched.estimate_cost(whole_months_query());
  const ScheduledResult biased = sched.submit("t", whole_months_query());
  EXPECT_DOUBLE_EQ(biased.cost_tokens, 2.0 * raw);

  // A fresh admit decays the bias back toward 1.
  clock.advance(4.0);  // refill enough for the biased cost
  const ScheduledResult fresh = sched.submit("t", whole_months_query());
  ASSERT_EQ(fresh.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_DOUBLE_EQ(sched.stats().tenants.at("t").cost_bias, 1.8);
}

// ---- Budget propagation and the expired outcome ------------------------

TEST(QueryScheduler, ZeroBudgetExpiresUnderBothQueueImplementations) {
  for (const bool fair : {true, false}) {
    Fixture fx;
    core::VirtualClock clock;
    SchedulerConfig cfg;
    cfg.fair_queue = fair;
    cfg.clock = &clock;
    QueryScheduler sched{fx.svc, cfg};
    // Tokens are freely available, but the caller's patience is already
    // gone when admission finishes: expired, not admitted — and the run
    // never starts.
    const ScheduledResult r = sched.submit("t", whole_months_query(), 0.0);
    EXPECT_EQ(r.outcome, AdmissionOutcome::kExpired) << "fair=" << fair;
    EXPECT_EQ(r.insight.sessions, 0u);
    const SchedulerStats stats = sched.stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_TRUE(stats.reconciles());
    EXPECT_EQ(fx.svc.telemetry_registry()
                  .counter("usaas_admission_queries_total", "",
                           {{"outcome", "expired"}})
                  .value(),
              1u);
  }
}

TEST(QueryScheduler, InfiniteBudgetReproducesPreBudgetSemantics) {
  Fixture fx;
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};
  const ScheduledResult r = sched.submit("t", whole_months_query());
  EXPECT_EQ(r.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(r.insight.error, QueryError::kNone);
  EXPECT_EQ(sched.stats().expired, 0u);
}

// The TSan deadline-propagation workload: tight real-clock budgets race
// a live producer. An expired answer must be an explicit
// deadline-exceeded skeleton — never a torn half-tally — and the 4-way
// ledger must still reconcile exactly.
TEST(QueryScheduler, TightBudgetsUnderRealClockNeverTearInsights) {
  Fixture fx;
  SchedulerConfig cfg;  // real SteadyClock, fair queue on
  cfg.max_wait_seconds = 0.01;
  QueryScheduler sched{fx.svc, cfg};

  constexpr int kThreads = 3;
  constexpr int kPerThread = 30;
  std::atomic<bool> stop_producer{false};
  std::thread producer{[&] {
    std::uint64_t i = 0;
    while (!stop_producer.load()) {
      const std::vector<confsim::CallRecord> batch{
          sample_call(20000 + i++, Date(2022, 2, 5))};
      fx.svc.ingest_calls(batch);
      std::this_thread::sleep_for(std::chrono::microseconds{200});
    }
  }};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Budgets from "already gone" to "usually plenty"; the scan
        // query exercises the mid-run phase-boundary checkpoints.
        const double budget = (i % 5 == 0) ? 0.0 : 1e-5 * (1 << (i % 10));
        const ScheduledResult r =
            sched.submit("tight-" + std::to_string(t), cut_months_query(),
                         budget);
        if (r.outcome == AdmissionOutcome::kExpired) {
          // Never torn: either the run was skipped outright (default
          // insight) or it was abandoned at a phase boundary and
          // returned the explicit skeleton. No partial tallies leak.
          EXPECT_EQ(r.insight.sessions, 0u);
          EXPECT_EQ(r.insight.posts, 0u);
          if (r.insight.error != QueryError::kNone) {
            EXPECT_EQ(r.insight.error, QueryError::kDeadlineExceeded);
          }
        } else if (r.outcome == AdmissionOutcome::kAdmitted) {
          EXPECT_EQ(r.insight.error, QueryError::kNone);
          EXPECT_GT(r.insight.sessions, 0u);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_producer.store(true);
  producer.join();

  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every fifth submission had literally zero budget: expiry is not a
  // timing accident in this test, it is guaranteed traffic.
  EXPECT_GE(stats.expired, static_cast<std::uint64_t>(kThreads) *
                               (kPerThread / 5));
  EXPECT_TRUE(stats.reconciles());
  core::telemetry::Registry& reg = fx.svc.telemetry_registry();
  std::uint64_t exposed = 0;
  for (const char* outcome : {"admitted", "degraded", "shed", "expired"}) {
    exposed += reg.counter("usaas_admission_queries_total", "",
                           {{"outcome", outcome}})
                   .value();
  }
  EXPECT_EQ(exposed, reg.counter("usaas_admission_submitted_total").value());
}

}  // namespace
}  // namespace usaas::service
