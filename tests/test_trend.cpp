#include "core/trend.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"

namespace usaas::core {
namespace {

TEST(MannKendall, DetectsIncreasingTrend) {
  std::vector<double> xs;
  for (int i = 0; i < 24; ++i) xs.push_back(i + 0.1 * (i % 3));
  const auto r = mann_kendall(xs);
  EXPECT_TRUE(r.increasing());
  EXPECT_FALSE(r.decreasing());
  EXPECT_GT(r.tau, 0.9);
}

TEST(MannKendall, DetectsDecreasingTrend) {
  std::vector<double> xs;
  for (int i = 0; i < 24; ++i) xs.push_back(100.0 - 2.0 * i);
  const auto r = mann_kendall(xs);
  EXPECT_TRUE(r.decreasing());
  EXPECT_NEAR(r.tau, -1.0, 1e-9);
}

TEST(MannKendall, FlatSeriesNotSignificant) {
  const std::vector<double> xs(20, 5.0);
  const auto r = mann_kendall(xs);
  EXPECT_FALSE(r.increasing());
  EXPECT_FALSE(r.decreasing());
  EXPECT_DOUBLE_EQ(r.s, 0.0);
}

TEST(MannKendall, NoiseAloneNotSignificant) {
  Rng rng{9};
  int significant = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 24; ++i) xs.push_back(rng.normal(0.0, 1.0));
    const auto r = mann_kendall(xs);
    if (r.increasing() || r.decreasing()) ++significant;
  }
  // ~5% false positive rate at z = 1.96; allow generous slack.
  EXPECT_LE(significant, 8);
}

TEST(MannKendall, TrendUnderNoiseDetected) {
  Rng rng{10};
  std::vector<double> xs;
  for (int i = 0; i < 24; ++i) xs.push_back(-1.5 * i + rng.normal(0.0, 4.0));
  EXPECT_TRUE(mann_kendall(xs).decreasing());
}

TEST(MannKendall, RequiresThreePoints) {
  EXPECT_THROW((void)mann_kendall(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(TheilSen, ExactSlopeOnLine) {
  std::vector<double> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(3.0 + 2.5 * i);
  EXPECT_NEAR(theil_sen_slope(xs), 2.5, 1e-12);
}

TEST(TheilSen, RobustToOutliers) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(1.0 * i);
  xs[5] = 500.0;   // wild outliers
  xs[15] = -300.0;
  EXPECT_NEAR(theil_sen_slope(xs), 1.0, 0.15);
}

TEST(TheilSen, RequiresTwoPoints) {
  EXPECT_THROW((void)theil_sen_slope(std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace usaas::core
