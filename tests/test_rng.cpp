#include "core/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace usaas::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  const Rng parent{42};
  Rng c1 = parent.split(7);
  Rng c1_again = parent.split(7);
  Rng c2 = parent.split(8);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{10};
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversBoundsInclusive) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng{12};
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng{13};
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng{14};
  const int n = 200000;
  double acc = 0.0;
  double acc2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    acc += x;
    acc2 += x * x;
  }
  const double mean = acc / n;
  const double var = acc2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng{15};
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(0.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 1.0, 0.03);  // median of exp(N(0, s)) = 1
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng{16};
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GT(x, 0.0);
    acc += x;
  }
  EXPECT_NEAR(acc / n, 0.5, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallAndLargeMean) {
  Rng rng{17};
  const int n = 50000;
  double acc_small = 0.0;
  double acc_large = 0.0;
  for (int i = 0; i < n; ++i) {
    acc_small += static_cast<double>(rng.poisson(2.5));
    acc_large += static_cast<double>(rng.poisson(80.0));
  }
  EXPECT_NEAR(acc_small / n, 2.5, 0.05);
  EXPECT_NEAR(acc_large / n, 80.0, 0.5);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{18};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoMinimumRespected) {
  Rng rng{19};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng{20};
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng{21};
  const std::array<double, 2> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
  const std::array<double, 2> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{22};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng{23};
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(std::span<const int>{empty}), std::invalid_argument);
}

}  // namespace
}  // namespace usaas::core
