#include "core/histogram.h"

#include <gtest/gtest.h>

namespace usaas::core {
namespace {

TEST(Binner1D, RejectsBadConstruction) {
  EXPECT_THROW(Binner1D(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Binner1D(2.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Binner1D(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Binner1D, MeansPerBin) {
  Binner1D b{0.0, 10.0, 2};
  b.add(1.0, 10.0);
  b.add(2.0, 20.0);
  b.add(7.0, 100.0);
  const auto bins = b.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].mean_y, 15.0);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].center(), 2.5);
  EXPECT_DOUBLE_EQ(bins[1].mean_y, 100.0);
}

TEST(Binner1D, OutOfRangeIgnored) {
  Binner1D b{0.0, 10.0, 5};
  b.add(-0.1, 1.0);
  b.add(10.0, 1.0);  // hi edge is exclusive
  EXPECT_EQ(b.total_added(), 0u);
  EXPECT_TRUE(b.bins().empty());
}

TEST(Binner1D, EmptyBinsOmitted) {
  Binner1D b{0.0, 10.0, 10};
  b.add(0.5, 1.0);
  b.add(9.5, 2.0);
  EXPECT_EQ(b.bins().size(), 2u);
  const auto curve = b.curve();
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].first, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].first, 9.5);
}

TEST(Binner1D, EdgeValueLandsInBin) {
  Binner1D b{0.0, 1.0, 4};
  b.add(0.25, 1.0);  // exactly on a boundary -> second bin
  const auto bins = b.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].lo, 0.25);
}

TEST(Grid2D, CellAggregation) {
  Grid2D g{0.0, 10.0, 2, 0.0, 10.0, 2};
  g.add(1.0, 1.0, 10.0);
  g.add(2.0, 2.0, 20.0);
  g.add(8.0, 8.0, 100.0);
  EXPECT_EQ(g.cell_count(0, 0), 2u);
  EXPECT_DOUBLE_EQ(*g.cell_mean(0, 0), 15.0);
  EXPECT_FALSE(g.cell_mean(1, 0).has_value());
  EXPECT_DOUBLE_EQ(*g.cell_mean(1, 1), 100.0);
}

TEST(Grid2D, MinMaxCellMeans) {
  Grid2D g{0.0, 4.0, 2, 0.0, 4.0, 2};
  EXPECT_FALSE(g.max_cell_mean().has_value());
  g.add(1.0, 1.0, 50.0);
  g.add(3.0, 3.0, 10.0);
  EXPECT_DOUBLE_EQ(*g.max_cell_mean(), 50.0);
  EXPECT_DOUBLE_EQ(*g.min_cell_mean(), 10.0);
}

TEST(Grid2D, CellsReportCenters) {
  Grid2D g{0.0, 4.0, 2, 0.0, 2.0, 1};
  g.add(0.5, 0.5, 7.0);
  const auto cells = g.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].x_center, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].y_center, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].mean_value, 7.0);
}

TEST(Grid2D, OutOfRangeIgnored) {
  Grid2D g{0.0, 1.0, 1, 0.0, 1.0, 1};
  g.add(-0.5, 0.5, 1.0);
  g.add(0.5, 1.5, 1.0);
  EXPECT_EQ(g.cell_count(0, 0), 0u);
}

TEST(Binner1D, MergeMatchesSequentialFill) {
  Binner1D whole{0.0, 10.0, 4};
  Binner1D left{0.0, 10.0, 4};
  Binner1D right{0.0, 10.0, 4};
  for (int i = 0; i < 40; ++i) {
    const double x = 0.25 * i;
    const double y = 3.0 * i - 17.0;
    whole.add(x, y);
    (i < 20 ? left : right).add(x, y);
  }
  left.merge(right);
  EXPECT_EQ(left.total_added(), whole.total_added());
  const auto merged_bins = left.bins();
  const auto whole_bins = whole.bins();
  ASSERT_EQ(merged_bins.size(), whole_bins.size());
  for (std::size_t i = 0; i < whole_bins.size(); ++i) {
    EXPECT_EQ(merged_bins[i].count, whole_bins[i].count);
    EXPECT_NEAR(merged_bins[i].mean_y, whole_bins[i].mean_y, 1e-12);
  }
}

TEST(Binner1D, MergeWithEmptySidesIsIdentity) {
  Binner1D filled{0.0, 1.0, 2};
  filled.add(0.1, 5.0);
  Binner1D empty{0.0, 1.0, 2};
  filled.merge(empty);            // empty right side
  empty.merge(filled);            // empty left side
  ASSERT_EQ(empty.bins().size(), 1u);
  EXPECT_DOUBLE_EQ(empty.bins()[0].mean_y, 5.0);
}

TEST(Binner1D, MergeRejectsLayoutMismatch) {
  Binner1D a{0.0, 10.0, 4};
  Binner1D bins_differ{0.0, 10.0, 5};
  Binner1D range_differs{0.0, 20.0, 4};
  EXPECT_THROW(a.merge(bins_differ), std::invalid_argument);
  EXPECT_THROW(a.merge(range_differs), std::invalid_argument);
}

TEST(Grid2D, MergeMatchesSequentialFill) {
  Grid2D whole{0.0, 4.0, 2, 0.0, 4.0, 2};
  Grid2D a{0.0, 4.0, 2, 0.0, 4.0, 2};
  Grid2D b{0.0, 4.0, 2, 0.0, 4.0, 2};
  for (int i = 0; i < 32; ++i) {
    const double x = (i % 8) * 0.5;
    const double y = (i % 4) * 1.0;
    const double v = 1.0 + i;
    whole.add(x, y, v);
    (i % 2 == 0 ? a : b).add(x, y, v);
  }
  a.merge(b);
  for (std::size_t yi = 0; yi < 2; ++yi) {
    for (std::size_t xi = 0; xi < 2; ++xi) {
      EXPECT_EQ(a.cell_count(xi, yi), whole.cell_count(xi, yi));
      ASSERT_EQ(a.cell_mean(xi, yi).has_value(),
                whole.cell_mean(xi, yi).has_value());
      if (whole.cell_mean(xi, yi)) {
        EXPECT_NEAR(*a.cell_mean(xi, yi), *whole.cell_mean(xi, yi), 1e-12);
      }
    }
  }
}

TEST(Grid2D, MergeRejectsLayoutMismatch) {
  Grid2D a{0.0, 4.0, 2, 0.0, 4.0, 2};
  Grid2D different{0.0, 4.0, 2, 0.0, 8.0, 2};
  EXPECT_THROW(a.merge(different), std::invalid_argument);
}

}  // namespace
}  // namespace usaas::core
