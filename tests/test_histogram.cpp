#include "core/histogram.h"

#include <gtest/gtest.h>

namespace usaas::core {
namespace {

TEST(Binner1D, RejectsBadConstruction) {
  EXPECT_THROW(Binner1D(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Binner1D(2.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Binner1D(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Binner1D, MeansPerBin) {
  Binner1D b{0.0, 10.0, 2};
  b.add(1.0, 10.0);
  b.add(2.0, 20.0);
  b.add(7.0, 100.0);
  const auto bins = b.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].mean_y, 15.0);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].center(), 2.5);
  EXPECT_DOUBLE_EQ(bins[1].mean_y, 100.0);
}

TEST(Binner1D, OutOfRangeIgnored) {
  Binner1D b{0.0, 10.0, 5};
  b.add(-0.1, 1.0);
  b.add(10.0, 1.0);  // hi edge is exclusive
  EXPECT_EQ(b.total_added(), 0u);
  EXPECT_TRUE(b.bins().empty());
}

TEST(Binner1D, EmptyBinsOmitted) {
  Binner1D b{0.0, 10.0, 10};
  b.add(0.5, 1.0);
  b.add(9.5, 2.0);
  EXPECT_EQ(b.bins().size(), 2u);
  const auto curve = b.curve();
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].first, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].first, 9.5);
}

TEST(Binner1D, EdgeValueLandsInBin) {
  Binner1D b{0.0, 1.0, 4};
  b.add(0.25, 1.0);  // exactly on a boundary -> second bin
  const auto bins = b.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].lo, 0.25);
}

TEST(Grid2D, CellAggregation) {
  Grid2D g{0.0, 10.0, 2, 0.0, 10.0, 2};
  g.add(1.0, 1.0, 10.0);
  g.add(2.0, 2.0, 20.0);
  g.add(8.0, 8.0, 100.0);
  EXPECT_EQ(g.cell_count(0, 0), 2u);
  EXPECT_DOUBLE_EQ(*g.cell_mean(0, 0), 15.0);
  EXPECT_FALSE(g.cell_mean(1, 0).has_value());
  EXPECT_DOUBLE_EQ(*g.cell_mean(1, 1), 100.0);
}

TEST(Grid2D, MinMaxCellMeans) {
  Grid2D g{0.0, 4.0, 2, 0.0, 4.0, 2};
  EXPECT_FALSE(g.max_cell_mean().has_value());
  g.add(1.0, 1.0, 50.0);
  g.add(3.0, 3.0, 10.0);
  EXPECT_DOUBLE_EQ(*g.max_cell_mean(), 50.0);
  EXPECT_DOUBLE_EQ(*g.min_cell_mean(), 10.0);
}

TEST(Grid2D, CellsReportCenters) {
  Grid2D g{0.0, 4.0, 2, 0.0, 2.0, 1};
  g.add(0.5, 0.5, 7.0);
  const auto cells = g.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].x_center, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].y_center, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].mean_value, 7.0);
}

TEST(Grid2D, OutOfRangeIgnored) {
  Grid2D g{0.0, 1.0, 1, 0.0, 1.0, 1};
  g.add(-0.5, 0.5, 1.0);
  g.add(0.5, 1.5, 1.0);
  EXPECT_EQ(g.cell_count(0, 0), 0u);
}

}  // namespace
}  // namespace usaas::core
