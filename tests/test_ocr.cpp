#include <gtest/gtest.h>

#include "core/rng.h"
#include "ocr/extract.h"
#include "ocr/noisy_ocr.h"
#include "ocr/screenshot.h"

namespace usaas::ocr {
namespace {

TestResult sample_result(Provider p) {
  TestResult r;
  r.provider = p;
  r.download_mbps = 123.45;
  r.upload_mbps = 11.2;
  r.latency_ms = 38.0;
  return r;
}

// ---- Clean round trip per provider ----

class ProviderRoundTrip : public ::testing::TestWithParam<Provider> {};

TEST_P(ProviderRoundTrip, CleanExtractionRecoversFields) {
  const TestResult truth = sample_result(GetParam());
  const std::string rendered = render_screenshot(truth);
  const ReportExtractor extractor;
  const auto report = extractor.extract(rendered);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->provider, truth.provider);
  EXPECT_NEAR(report->download_mbps, truth.download_mbps, 1.0);
  if (report->latency_ms) {
    EXPECT_NEAR(*report->latency_ms, truth.latency_ms, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProviders, ProviderRoundTrip,
                         ::testing::Values(Provider::kOokla, Provider::kFast,
                                           Provider::kStarlinkApp,
                                           Provider::kMlab));

TEST(Screenshot, LayoutsDiffer) {
  const auto ookla = render_screenshot(sample_result(Provider::kOokla));
  const auto fast = render_screenshot(sample_result(Provider::kFast));
  EXPECT_NE(ookla, fast);
  EXPECT_NE(ookla.find("SPEEDTEST"), std::string::npos);
  EXPECT_NE(fast.find("FAST.com"), std::string::npos);
}

// ---- Numeric repair ----

TEST(RepairNumeric, FixesCommonConfusions) {
  EXPECT_EQ(ReportExtractor::repair_numeric("1O3,5"), "103.5");
  EXPECT_EQ(ReportExtractor::repair_numeric("BS"), "85");
  EXPECT_EQ(ReportExtractor::repair_numeric("4Z"), "42");
  EXPECT_EQ(ReportExtractor::repair_numeric("12.5"), "12.5");
}

TEST(RepairNumeric, RejectsUnrecoverable) {
  EXPECT_EQ(ReportExtractor::repair_numeric("1.2.3"), "");
  EXPECT_EQ(ReportExtractor::repair_numeric("abc"), "");
  EXPECT_EQ(ReportExtractor::repair_numeric(""), "");
}

TEST(RepairNumeric, TrimsEdgeSeparators) {
  EXPECT_EQ(ReportExtractor::repair_numeric("12."), "12");
  EXPECT_EQ(ReportExtractor::repair_numeric(".5"), "0.5");
}

// ---- Noise channel ----

TEST(NoisyOcr, ZeroNoiseIsIdentity) {
  OcrNoiseParams quiet;
  quiet.confusion_rate = 0.0;
  quiet.drop_rate = 0.0;
  quiet.line_loss_rate = 0.0;
  const NoisyOcr channel{quiet};
  core::Rng rng{1};
  const std::string text = "DOWNLOAD 123.45 Mbps\nUPLOAD 11.2";
  EXPECT_EQ(channel.read(text, rng), text);
}

TEST(NoisyOcr, ConfusionIsInvolutionOnDigits) {
  EXPECT_EQ(NoisyOcr::confuse(NoisyOcr::confuse('0')), '0');
  EXPECT_EQ(NoisyOcr::confuse(NoisyOcr::confuse('5')), '5');
  EXPECT_EQ(NoisyOcr::confuse('x'), 'x');  // unknown chars pass through
}

TEST(NoisyOcr, HighNoiseCorruptsText) {
  OcrNoiseParams loud;
  loud.confusion_rate = 0.5;
  loud.drop_rate = 0.2;
  const NoisyOcr channel{loud};
  core::Rng rng{2};
  const std::string text = "0123456789 0123456789 0123456789";
  const std::string read = channel.read(text, rng);
  EXPECT_NE(read, text);
  EXPECT_LT(read.size(), text.size());
}

TEST(NoisyOcr, LineLossDropsWholeLines) {
  OcrNoiseParams params;
  params.confusion_rate = 0.0;
  params.drop_rate = 0.0;
  params.line_loss_rate = 1.0;  // every line after the first is lost
  const NoisyOcr channel{params};
  core::Rng rng{3};
  const std::string read = channel.read("keep\ngone\ngone", rng);
  EXPECT_EQ(read, "keep\n\n");
}

// ---- Extraction under realistic noise ----

TEST(Extraction, SucceedsUsuallyUnderDefaultNoise) {
  const NoisyOcr channel;
  const ReportExtractor extractor;
  core::Rng rng{4};
  ExtractionStats stats;
  for (int i = 0; i < 2000; ++i) {
    TestResult r = sample_result(
        static_cast<Provider>(rng.uniform_int(0, kNumProviders - 1)));
    r.download_mbps = rng.uniform(5.0, 250.0);
    const auto report =
        extractor.extract(channel.read(render_screenshot(r), rng), &stats);
    if (report) {
      // Recovered download within 25% of truth (confusions inside a digit
      // can shift values; wild misreads are rejected by plausibility).
      EXPECT_GT(report->download_mbps, 0.0);
    }
  }
  EXPECT_GT(stats.success_rate(), 0.75);
  EXPECT_LT(stats.success_rate(), 1.0);  // some loss is the point
  EXPECT_EQ(stats.attempted, 2000u);
  EXPECT_EQ(stats.extracted + stats.provider_unrecognized +
                stats.download_missing + stats.implausible,
            stats.attempted);
}

TEST(Extraction, GarbageYieldsNothing) {
  const ReportExtractor extractor;
  ExtractionStats stats;
  EXPECT_FALSE(extractor.extract("a cat picture", &stats).has_value());
  EXPECT_EQ(stats.provider_unrecognized, 1u);
}

TEST(Extraction, ImplausibleValuesRejected) {
  const ReportExtractor extractor;
  TestResult r = sample_result(Provider::kOokla);
  r.download_mbps = 9999.0;  // beyond any Starlink plan
  ExtractionStats stats;
  EXPECT_FALSE(
      extractor.extract(render_screenshot(r), &stats).has_value());
  EXPECT_EQ(stats.implausible, 1u);
}

TEST(Extraction, LabelLettersNotMisreadAsNumbers) {
  // "DOWNLOAD Mbps" contains O and l; neither may parse as the value.
  const ReportExtractor extractor;
  const auto report = extractor.extract(
      "SPEEDTEST\nDOWNLOAD Mbps\n87.65\nUPLOAD Mbps\n9.10\nPing ms\n41\n");
  ASSERT_TRUE(report.has_value());
  EXPECT_NEAR(report->download_mbps, 87.65, 1e-9);
}

TEST(Extraction, SurvivesConfusedDigitsInValue) {
  const ReportExtractor extractor;
  // 1O3.5 = 103.5 after repair.
  const auto report = extractor.extract(
      "SPEEDTEST\nDOWNLOAD Mbps\n1O3,5\nUPLOAD Mbps\nll.2\nPing ms\n38\n");
  ASSERT_TRUE(report.has_value());
  EXPECT_NEAR(report->download_mbps, 103.5, 1e-9);
}

TEST(Extraction, MissingDownloadCounted) {
  const ReportExtractor extractor;
  ExtractionStats stats;
  EXPECT_FALSE(
      extractor.extract("SPEEDTEST\nUPLOAD Mbps\n9.1\n", &stats).has_value());
  EXPECT_EQ(stats.download_missing, 1u);
}

}  // namespace
}  // namespace usaas::ocr
